//! One-way epidemics: how long does a rumour take to cover a graph?
//!
//! ```text
//! cargo run --release --example epidemic_broadcast
//! ```
//!
//! Reproduces the Section 3 picture: measures the worst-case expected
//! broadcast time `B(G)` on several families and checks it against the
//! paper's analytic sandwich — the Lemma 12 lower bound `(m/Δ)·ln(n−1)`
//! and the Theorem 6 upper bound `O(m·min(log n/β, log n + D))`.

use popele::dynamics::broadcast::{
    estimate_broadcast_time, lower_bound_degree, upper_bound_diameter, BroadcastConfig,
    SourceStrategy,
};
use popele::graph::families;
use popele::graph::properties::diameter;
use popele::graph::Graph;

fn main() {
    let n = 64;
    let cases: Vec<(&str, Graph)> = vec![
        ("clique", families::clique(n)),
        ("cycle", families::cycle(n)),
        ("star", families::star(n)),
        ("torus 8×8", families::torus(8, 8)),
        ("hypercube Q6", families::hypercube(6)),
        ("binary tree", families::binary_tree(n)),
    ];

    println!(
        "{:<12} {:>6} {:>6} {:>4} {:>12} {:>12} {:>12}",
        "family", "n", "m", "D", "B measured", "L12 lower", "T6/L8 upper"
    );
    for (name, g) in cases {
        let est = estimate_broadcast_time(
            &g,
            42,
            &BroadcastConfig {
                sources: SourceStrategy::Heuristic(4),
                trials_per_source: 8,
                threads: 0,
            },
        );
        let d = diameter(&g);
        let lower = lower_bound_degree(g.num_edges(), g.num_nodes(), g.max_degree());
        let upper = upper_bound_diameter(g.num_edges(), g.num_nodes(), d);
        println!(
            "{:<12} {:>6} {:>6} {:>4} {:>12.0} {:>12.0} {:>12.0}",
            name,
            g.num_nodes(),
            g.num_edges(),
            d,
            est.b_estimate,
            lower,
            upper
        );
        // Lemma 8's constants are asymptotic ("for all n ≥ n₀"); at these
        // sizes allow 50% finite-size slack on the upper bound.
        assert!(
            est.b_estimate <= 1.5 * upper,
            "{name}: measured B(G) exceeded the Lemma 8 upper bound with slack"
        );
    }
    println!(
        "\nNote the shapes: the cycle pays Θ(n²) (information crawls across\n\
         Θ(n) sequential edges each costing Θ(m) = Θ(n) steps), while the\n\
         clique, star and hypercube finish in Θ(n log n)."
    );
}
