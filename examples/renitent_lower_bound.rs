//! Building graphs where leader election is provably slow (Section 6).
//!
//! ```text
//! cargo run --release --example renitent_lower_bound
//! ```
//!
//! Theorem 39: for any target `T(n)` between `n log n` and `n³` there are
//! graphs on which stable leader election takes `Θ(T(n))` steps. This
//! example constructs the Lemma 38 four-copy ring for a quadratic target,
//! verifies its `(4, ℓ)`-cover, measures the cover's isolation time
//! (the quantity the Theorem 34 lower bound is built from), and then
//! watches the identifier protocol actually pay the price.

use popele::dynamics::isolation::estimate_isolation;
use popele::engine::Executor;
use popele::graph::renitent::theorem39_graph;
use popele::protocols::params::identifier_bits;
use popele::protocols::IdentifierProtocol;

fn main() {
    let base_n = 16;
    let target = f64::from(base_n).powf(2.5);
    let (g, cover) = theorem39_graph(base_n, target);
    println!("target T = n^2.5 ≈ {target:.0} steps (base n = {base_n})");
    println!("constructed graph: {g}");
    println!(
        "cover: K = {}, ℓ = {}, violations: {:?}",
        cover.k(),
        cover.ell(),
        cover.verify(&g)
    );
    let (i, j) = cover
        .disjoint_pair(&g)
        .expect("a valid cover has a disjoint pair");
    println!("sets V{i} and V{j} have disjoint ℓ-neighbourhoods\n");

    // The lower-bound engine: the cover stays isolated for ~T steps.
    let iso = estimate_isolation(&g, &cover, 10, u64::MAX, 99);
    println!(
        "isolation time Y(C): mean {:.0} steps, Pr[Y ≥ T/8] = {:.2}",
        iso.times.mean(),
        iso.survival_at(target / 8.0)
    );

    // And a protocol paying it: the identifier protocol is time-optimal
    // (O(B(G) + n log n)) yet still needs Ω(T) here because B(G) ∈ Θ(T).
    let p = IdentifierProtocol::new(identifier_bits(g.num_nodes(), false));
    let out = Executor::new(&g, &p, 7)
        .run_until_stable(4_000_000_000)
        .expect("stabilizes");
    println!(
        "identifier protocol stabilized in {} steps ≈ {:.1}·T",
        out.stabilization_step,
        out.stabilization_step as f64 / target
    );
    println!(
        "\nTheorem 34: no protocol can beat Ω(T) on this graph — the four\n\
         ring segments look identical for the first Ω(T) steps, so any\n\
         early committer elects symmetric leaders in distant segments."
    );
}
