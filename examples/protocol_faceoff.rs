//! Race all three protocols across graph families (Table 1 in miniature).
//!
//! ```text
//! cargo run --release --example protocol_faceoff [n]
//! ```
//!
//! For each family the three protocols run on identical graphs with
//! matched trial seeds; the table reports mean stabilization steps and
//! the distinct-state footprint — the time/space trade-off that is the
//! heart of the paper.

use popele::dynamics::broadcast::{estimate_broadcast_time, BroadcastConfig, SourceStrategy};
use popele::engine::monte_carlo::{run_trials, TrialOptions, TrialStats};
use popele::graph::{families, random, Graph};
use popele::protocols::params::{identifier_bits, FastParams};
use popele::protocols::{FastProtocol, IdentifierProtocol, TokenProtocol};

fn main() {
    let n: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(48);
    let side = (f64::from(n).sqrt().round() as u32).max(3);
    let cases: Vec<(&str, Graph)> = vec![
        ("clique", families::clique(n)),
        ("cycle", families::cycle(n)),
        ("torus", families::torus(side, side)),
        ("gnp-1/2", random::erdos_renyi_connected(n, 0.5, 5, 100)),
    ];

    let opts = TrialOptions {
        trials: 6,
        max_steps: 4_000_000_000,
        census: true,
        threads: 0,
        ..TrialOptions::default()
    };

    println!(
        "{:<10} {:<12} {:>14} {:>10} {:>8}",
        "family", "protocol", "mean steps", "±95% CI", "states"
    );
    for (name, g) in cases {
        let b = estimate_broadcast_time(
            &g,
            11,
            &BroadcastConfig {
                sources: SourceStrategy::Heuristic(2),
                trials_per_source: 3,
                threads: 0,
            },
        )
        .b_estimate;

        let token = TokenProtocol::all_candidates();
        let id = IdentifierProtocol::new(identifier_bits(g.num_nodes(), false));
        let fast = FastProtocol::new(FastParams::practical(
            b,
            g.max_degree(),
            g.num_edges(),
            g.num_nodes(),
        ));

        let report = |label: &str, stats: TrialStats| {
            println!(
                "{:<10} {:<12} {:>14.0} {:>10.0} {:>8}",
                name,
                label,
                stats.steps.mean(),
                stats.steps.ci95_halfwidth(),
                stats.max_distinct_states.unwrap_or(0)
            );
        };
        report(
            "token",
            TrialStats::from_results(&run_trials(&g, &token, 1, opts)),
        );
        report(
            "identifier",
            TrialStats::from_results(&run_trials(&g, &id, 2, opts)),
        );
        report(
            "fast",
            TrialStats::from_results(&run_trials(&g, &fast, 3, opts)),
        );
        println!();
    }
}
