//! Quickstart: elect a leader on a random regular network.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```
//!
//! Builds a random 4-regular graph, runs the paper's fast space-efficient
//! protocol (Theorem 24) with parameters derived from a measured broadcast
//! time, and prints the elected leader together with the cost.

use popele::dynamics::broadcast::{estimate_broadcast_time, BroadcastConfig, SourceStrategy};
use popele::engine::Executor;
use popele::graph::random;
use popele::protocols::params::FastParams;
use popele::protocols::FastProtocol;

fn main() {
    let n = 128;
    let seed = 2022; // PODC 2022
    let g = random::random_regular_connected(n, 4, seed, 200);
    println!("graph: {g}");

    // 1. Estimate the worst-case expected broadcast time B(G); the
    //    protocol only needs its order of magnitude.
    let b = estimate_broadcast_time(
        &g,
        seed,
        &BroadcastConfig {
            sources: SourceStrategy::Heuristic(4),
            trials_per_source: 4,
            threads: 0,
        },
    )
    .b_estimate;
    println!("estimated B(G) ≈ {b:.0} steps");

    // 2. Derive protocol parameters and run to stabilization.
    let params = FastParams::practical(b, g.max_degree(), g.num_edges(), g.num_nodes());
    println!("fast-protocol parameters: {params:?}");
    let protocol = FastProtocol::new(params);
    let mut exec = Executor::new(&g, &protocol, seed);
    exec.enable_state_census();
    let outcome = exec
        .run_until_stable(4_000_000_000)
        .expect("the backup phase guarantees stabilization");

    println!(
        "leader elected: node {} (degree {})",
        outcome.leader.expect("unique leader"),
        g.degree(outcome.leader.unwrap())
    );
    println!(
        "stabilized after {} interactions ≈ {:.1} per node, using {} distinct states",
        outcome.stabilization_step,
        outcome.stabilization_step as f64 / f64::from(n),
        outcome.distinct_states.unwrap()
    );
    println!(
        "paper bound: O(B(G)·log n) = O({:.0})",
        b * f64::from(n).log2()
    );
}
