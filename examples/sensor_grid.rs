//! Sensor-network coordinator election on a spatial grid.
//!
//! ```text
//! cargo run --release --example sensor_grid
//! ```
//!
//! The paper's motivation: well-mixed (clique) models are unrealistic when
//! agents interact through *spatial* structure. This example models a
//! field of sensors on a 16×16 torus whose radio links only reach the four
//! nearest neighbours, and compares all three protocols on the task of
//! electing a coordinator: the constant-state token baseline (Theorem 16),
//! the identifier broadcast protocol (Theorem 21) and the fast
//! space-efficient protocol (Theorem 24).

use popele::dynamics::broadcast::{estimate_broadcast_time, BroadcastConfig, SourceStrategy};
use popele::engine::monte_carlo::{run_trials, TrialOptions, TrialStats};
use popele::graph::families;
use popele::protocols::params::{identifier_bits, FastParams};
use popele::protocols::{FastProtocol, IdentifierProtocol, TokenProtocol};

fn main() {
    let side = 16;
    let g = families::torus(side, side);
    let n = g.num_nodes();
    println!("sensor field: {side}×{side} torus, {g}");

    let b = estimate_broadcast_time(
        &g,
        7,
        &BroadcastConfig {
            sources: SourceStrategy::Heuristic(2),
            trials_per_source: 3,
            threads: 0,
        },
    )
    .b_estimate;
    println!("measured broadcast time B(G) ≈ {b:.0} steps\n");

    let opts = TrialOptions {
        trials: 8,
        max_steps: 4_000_000_000,
        census: true,
        threads: 0,
        ..TrialOptions::default()
    };

    let print_stats = |name: &str, stats: &TrialStats, paper: &str| {
        println!(
            "{name:<12} mean {:>12.0} steps  (±{:>8.0}, {} states)   paper: {paper}",
            stats.steps.mean(),
            stats.steps.ci95_halfwidth(),
            stats.max_distinct_states.unwrap_or(0),
        );
    };

    let token = TokenProtocol::all_candidates();
    let stats = TrialStats::from_results(&run_trials(&g, &token, 1, opts));
    print_stats("token", &stats, "O(H(G)·n·log n), O(1) states");

    let id = IdentifierProtocol::new(identifier_bits(n, false));
    let stats = TrialStats::from_results(&run_trials(&g, &id, 2, opts));
    print_stats("identifier", &stats, "O(B(G) + n·log n), O(n⁴) states");

    let fast = FastProtocol::new(FastParams::practical(b, g.max_degree(), g.num_edges(), n));
    let stats = TrialStats::from_results(&run_trials(&g, &fast, 3, opts));
    print_stats("fast", &stats, "O(B(G)·log n), O(log² n) states");

    println!(
        "\nTakeaway: on a {}-node spatial torus, the identifier protocol is the\n\
         time baseline but burns an identifier-sized state space; the fast\n\
         protocol stays within a handful of states per node at a small time\n\
         premium; the 6-state baseline pays the full random-walk penalty.",
        n
    );
}
