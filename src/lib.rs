//! Umbrella crate for the `popele` workspace: leader election in population
//! protocols on graphs, reproducing *Near-Optimal Leader Election in
//! Population Protocols on Graphs* (PODC 2022).
//!
//! This crate re-exports the workspace members under stable names so
//! examples and downstream users need a single dependency:
//!
//! * [`graph`] — interaction graphs, families, random models;
//! * [`engine`] — the stochastic scheduler and protocol executor;
//! * [`dynamics`] — broadcast/epidemic dynamics, random walks;
//! * [`protocols`] — the paper's leader-election protocols;
//! * [`math`] — probability bounds, samplers, statistics.
//!
//! # Quick start
//!
//! ```
//! use popele::graph::families;
//! use popele::protocols::token::TokenProtocol;
//! use popele::engine::{Executor, Protocol};
//!
//! let g = families::clique(50);
//! let protocol = TokenProtocol::all_candidates();
//! let mut exec = Executor::new(&g, &protocol, 1234);
//! let outcome = exec.run_until_stable(10_000_000).expect("stabilizes");
//! assert_eq!(outcome.leader_count, 1);
//! ```

#![warn(missing_docs)]

pub use popele_core as protocols;
pub use popele_dynamics as dynamics;
pub use popele_engine as engine;
pub use popele_graph as graph;
pub use popele_math as math;
