#!/bin/sh
# Markdown link check for the repo's top-level docs.
#
# Verifies, for every inline markdown link in the checked files:
#   * local file targets exist (relative to the repo root);
#   * `#anchor` fragments (with or without a file part) resolve to a
#     heading in the target file, using GitHub's slug rules (lowercase,
#     spaces to dashes, punctuation dropped).
#
# Additionally verifies every backtick-quoted `path:line` anchor (the
# concordance style of PROTOCOLS.md, e.g. `crates/core/src/token.rs:101`):
# the file must exist and actually have that many lines. This is what
# catches concordance rows whose file was split/renamed away (the
# motivating bug: refs into the pre-split `crates/engine/src/compiled.rs`)
# or whose target drifted past the end of the file. In-range line drift
# within a live file is tolerated — the module paths are the stable part
# of the concordance contract.
#
# External links (http/https/mailto) are intentionally skipped — CI and
# the dev environment are offline. Usage:
#
#   tools/check-md-links.sh [FILE.md ...]     # default: the doc set below
#
# Exits nonzero listing every broken link.
set -eu

cd "$(dirname "$0")/.."

FILES="${*:-README.md ARCHITECTURE.md BENCH.md PROTOCOLS.md CHANGES.md}"

status=0

# github_slug TEXT -> slug on stdout (newline-terminated)
github_slug() {
    printf '%s\n' "$1" |
        tr '[:upper:]' '[:lower:]' |
        sed -e 's/`//g' -e 's/[^a-z0-9 _-]//g' -e 's/ /-/g'
}

# anchors FILE -> one slug per heading on stdout (fenced code blocks,
# whose `# comment` lines are not headings, are skipped)
anchors() {
    awk '/^```/ { fence = !fence; next } !fence' "$1" |
        grep -E '^#{1,6} ' | sed -E 's/^#{1,6} //' | while IFS= read -r h; do
        github_slug "$h"
    done
}

for file in $FILES; do
    if [ ! -f "$file" ]; then
        echo "MISSING FILE: $file (not in the doc set?)" >&2
        status=1
        continue
    fi
    # Extract inline link targets: [text](target). One per line; tolerate
    # several links per line. Reference-style links are not used in this
    # repo's docs. Split on newlines only, so targets containing spaces
    # survive. (Known limitation: duplicate headings get no GitHub-style
    # "-1" suffix in anchors(); none of the checked docs use them.)
    targets=$(grep -oE '\]\([^)]+\)' "$file" | sed -e 's/^](//' -e 's/)$//' || true)
    old_ifs=$IFS
    IFS='
'
    for target in $targets; do
        IFS=$old_ifs
        case "$target" in
            http://*|https://*|mailto:*) continue ;;
        esac
        path=${target%%#*}
        fragment=""
        case "$target" in
            *'#'*) fragment=${target#*#} ;;
        esac
        # Resolve the file part (empty path = same file).
        if [ -n "$path" ]; then
            if [ ! -e "$path" ]; then
                echo "$file: broken path: $target" >&2
                status=1
                continue
            fi
            anchor_file=$path
        else
            anchor_file=$file
        fi
        # Resolve the fragment against the target file's headings.
        if [ -n "$fragment" ]; then
            case "$anchor_file" in
                *.md) ;;
                *) continue ;;  # anchors into non-markdown files: skip
            esac
            if ! anchors "$anchor_file" | grep -qxF "$fragment"; then
                echo "$file: broken anchor: $target" >&2
                status=1
            fi
        fi
    done
    IFS=$old_ifs

    # `path:line` anchors: the path part must exist and contain at
    # least `line` lines. Matches backtick-quoted tokens with a file
    # extension, a colon and a line number.
    refs=$(grep -oE '`[A-Za-z0-9_./-]+\.[A-Za-z0-9]+:[0-9]+`' "$file" | tr -d '`' | sort -u || true)
    for ref in $refs; do
        ref_path=${ref%:*}
        ref_line=${ref##*:}
        if [ ! -f "$ref_path" ]; then
            echo "$file: dangling path:line anchor (file missing): $ref" >&2
            status=1
            continue
        fi
        total=$(wc -l <"$ref_path")
        if [ "$ref_line" -gt "$total" ]; then
            echo "$file: dangling path:line anchor (only $total lines): $ref" >&2
            status=1
        fi
    done
done

if [ "$status" -eq 0 ]; then
    echo "check-md-links: OK ($FILES)"
fi
exit "$status"
