#!/usr/bin/env bash
# Guards the committed BENCH_engine.json baseline against silently
# losing measurements. The bench binary already aborts at *generation*
# time when a manifest row has no measurement (see `render_json` in
# crates/bench/benches/bench_engine.rs), but a workload renamed in the
# bench source and committed without regenerating the baseline would
# only surface at the next full bench run — this script makes the gap
# CI-checkable. The expected list mirrors the bench manifests
# (`json_workloads` + `count_workloads`); update both together.
set -euo pipefail
cd "$(dirname "$0")/.."

baseline=BENCH_engine.json
expected=(
  "engine/election/clique_1000"
  "engine/election/cycle_1000"
  "engine/election/identifier_cycle_1000"
  "engine/election/identifier_star_1000"
  "engine/election/identifier_torus_1024"
  "engine/steps/clique_1000"
  "engine/steps/cycle_1000"
  "engine/steps/cycle_120000"
  "engine/steps/fast_cycle_120000"
  "engine/lanes/token_clique_1000_8"
  "engine/lanes/token_clique_1000_16"
  "engine/lanes/fast_cycle_1000_8"
  "engine/lanes/fast_cycle_1000_16"
  "engine/count/fast_clique_1e7"
  "engine/count/fast_clique_1e8"
  "engine/count/token_clique_1e9"
  "sweep/campaign/grid_32shards"
  "sweep/campaign/checkpoint_1000"
)

fail=0
for w in "${expected[@]}"; do
  if ! grep -q "\"workload\": \"$w\"" "$baseline"; then
    echo "missing workload row in $baseline: $w" >&2
    fail=1
  fi
done

# A row count mismatch catches the inverse failure: a workload added to
# the bench (or left behind by a rename) without extending this list.
rows=$(grep -c '"workload"' "$baseline")
if [ "$rows" -ne "${#expected[@]}" ]; then
  echo "$baseline has $rows workload rows, expected ${#expected[@]}" >&2
  fail=1
fi

if [ "$fail" -eq 0 ]; then
  echo "BENCH_engine.json: all ${#expected[@]} workload rows present"
fi
exit "$fail"
