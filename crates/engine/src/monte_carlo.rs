//! Multi-threaded Monte-Carlo harness.
//!
//! Runs many independent executions of a protocol on a graph, each with a
//! deterministically derived seed, and aggregates stabilization times.
//! Trial `i` of a given master seed always produces the same result
//! regardless of thread count, so experiment outputs are reproducible.
//!
//! Six entry points share that contract:
//!
//! * [`run_trials`] — the generic reference engine ([`Executor`]);
//! * [`run_trials_dense`] — the ahead-of-time compiled engine
//!   ([`crate::DenseExecutor`]) over a shared [`CompiledProtocol`] table;
//! * [`run_trials_lazy`] — the lazily-compiling dense engine
//!   ([`crate::LazyDenseExecutor`]), one warm pair cache per worker;
//! * [`run_trials_lanes`] — the lane-parallel dense engine
//!   ([`crate::LaneDenseExecutor`]): 8–16 trials of one compiled cell
//!   stepped in lockstep per worker, retire-and-refill as trials
//!   finish. Per trial trace-identical to [`run_trials_dense`] — each
//!   lane consumes exactly the RNG stream its trial seed would produce
//!   scalar — and opt-in via [`TrialOptions::lanes`];
//! * [`run_trials_count`] — the clique-only count-based batch engine
//!   ([`crate::CountEngine`]), graph-free: the population size alone
//!   describes the clique, which is what lets it reach `10⁷–10⁹`
//!   agents. Deterministic per seed like the others, but exact in
//!   *distribution* rather than trace-identical to them;
//! * [`run_trials_auto`] — the selection point over the sequential
//!   engines (AOT-compiled → lazy-compiled → generic, see
//!   [`select_engine`]), plus the opt-in lane tier when the AOT path
//!   wins a fault-free, census-free cell with at least
//!   [`LANE_MIN_TRIALS`] trials; [`select_engine_clique`] extends the
//!   waterfall with the count tier for graph-free clique populations.
//!   Among the trace-identical engines the choice never changes the
//!   results, only the wall-clock time; the choice made is recorded in
//!   [`TrialResult::engine`].
//!
//! Each entry point has a `*_with_faults` counterpart taking a
//! [`FaultPlan`] (see [`crate::faults`]): per-trial fault realizations
//! derive from the trial seed via [`fault_seed`], so the determinism
//! contract — identical results across engines, thread counts and
//! shardings — extends to fault-injected campaigns, and recovery
//! metrics are attached to each [`TrialResult`].
//!
//! The selecting entry points additionally come in `*_prepared` form
//! ([`run_trials_auto_prepared`], [`run_trials_auto_with_faults_prepared`],
//! [`run_trials_count_prepared`]) taking an [`EngineSelection`] (or
//! pre-compiled count table) the caller produced once and reuses across
//! calls — the hook sweep campaigns use to pay selection and
//! compilation once per *cell* instead of once per shard.

use crate::dense::table::{overflow_walk, WalkVerdict};
use crate::dense::{
    compile_for_count, count_supported, CompiledProtocol, CountEngine, DenseExecutor,
    LaneDenseExecutor, LazyDenseExecutor, COUNT_MIN_AGENTS, DEFAULT_MAX_COMPILED_STATES,
    PROBE_EVAL_BUDGET,
};
use crate::executor::Executor;
use crate::faults::{fault_seed, run_with_faults, FaultPlan, Recovery};
use crate::protocol::Protocol;
use crate::stabilize::HoldingTime;
use popele_graph::{Graph, NodeId};
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;
use std::fmt;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// Which simulation engine executed a trial (or batch of trials).
///
/// Provenance metadata: the three sequential engines are trace-identical
/// per seed, so the tag never affects the observable result — and
/// accordingly it is **excluded from [`TrialResult`]'s equality**, which
/// is what lets differential tests assert
/// `generic_results == lazy_results` directly. The count engine is the
/// exception: it is exact in *distribution* only (its random stream is
/// consumed batch-wise), so its trials are compared to the sequential
/// engines statistically, never per seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Engine {
    /// The generic reference [`Executor`] (typed states, per-step
    /// transition evaluation).
    Generic,
    /// The ahead-of-time compiled [`crate::DenseExecutor`] (`u16` ids,
    /// full `|Λ|²` table).
    Dense,
    /// The lazily-compiling [`crate::LazyDenseExecutor`] (`u32` ids,
    /// on-demand pair cache).
    LazyDense,
    /// The count-based batch engine ([`crate::CountEngine`]):
    /// clique-only, `u64` count per compiled state, collision-free
    /// `O(√n)` interaction batches. Exact in distribution rather than
    /// trace-identical (see [`crate::dense::count`]).
    Count,
    /// The lane-parallel dense engine ([`crate::LaneDenseExecutor`]):
    /// 8–16 trials of one compiled cell stepped in lockstep, each lane
    /// consuming exactly the RNG stream its trial seed would produce on
    /// the scalar [`crate::DenseExecutor`] — per-trial trace-identical
    /// to the sequential engines (see [`crate::dense::lanes`]).
    Lanes,
}

impl Engine {
    /// Stable lowercase label (used by reports and the lab CLI).
    #[must_use]
    pub fn label(self) -> &'static str {
        match self {
            Engine::Generic => "generic",
            Engine::Dense => "dense",
            Engine::LazyDense => "lazy",
            Engine::Count => "count",
            Engine::Lanes => "lanes",
        }
    }
}

impl fmt::Display for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// Result of one Monte-Carlo trial.
#[derive(Debug, Clone, Copy, Eq)]
pub struct TrialResult {
    /// Seed index of the trial.
    pub trial: usize,
    /// Stabilization step, or `None` if the budget was exhausted.
    pub stabilization_step: Option<u64>,
    /// Elected leader (when stabilized).
    pub leader: Option<NodeId>,
    /// Distinct states observed, when the census was requested.
    pub distinct_states: Option<usize>,
    /// Recovery metrics — `Some` exactly when the trial ran under a
    /// (possibly empty-resolving) fault plan via the `*_with_faults`
    /// entry points with a nonempty [`FaultPlan`].
    pub recovery: Option<Recovery>,
    /// Loose-stabilization metrics (election step from an arbitrary
    /// start plus how long the unique-leader configuration held) —
    /// `Some` exactly when the trial ran through the
    /// [`crate::stabilize`] entry points.
    pub holding: Option<HoldingTime>,
    /// Which engine ran the trial. Pure provenance — see [`Engine`] —
    /// and therefore **not** part of `PartialEq`: results from different
    /// engines compare equal whenever the observable outcome is equal,
    /// which is exactly the trace-identity contract.
    pub engine: Engine,
}

impl PartialEq for TrialResult {
    fn eq(&self, other: &Self) -> bool {
        // `engine` is deliberately excluded (provenance, not outcome).
        self.trial == other.trial
            && self.stabilization_step == other.stabilization_step
            && self.leader == other.leader
            && self.distinct_states == other.distinct_states
            && self.recovery == other.recovery
            && self.holding == other.holding
    }
}

/// Options for [`run_trials`].
#[derive(Debug, Clone, Copy)]
pub struct TrialOptions {
    /// Number of independent executions.
    pub trials: usize,
    /// Global index of the first trial. Trial `j` of this call uses
    /// child seed `first_trial + j` of the master seed and reports that
    /// global index in [`TrialResult::trial`], so a batch of
    /// `trials` executions starting at `first_trial` is exactly the
    /// slice `[first_trial, first_trial + trials)` of one big run —
    /// the mechanism sweep campaigns use to shard a cell into
    /// independently checkpointable, bit-identical pieces.
    pub first_trial: usize,
    /// Per-trial step budget.
    pub max_steps: u64,
    /// Whether to record the distinct-state census (slower).
    pub census: bool,
    /// Opt into the lane-parallel dense engine: when set,
    /// [`run_trials_auto`] routes cells that win the AOT tier through
    /// [`run_trials_lanes`] — provided the cell is fault-free, the
    /// census is off, and at least [`LANE_MIN_TRIALS`] trials are
    /// requested. Per-trial results are identical either way (the lane
    /// engine is trace-identical to the scalar dense engine); only the
    /// wall-clock time and the recorded [`TrialResult::engine`] differ.
    pub lanes: bool,
    /// Worker threads; `0` = one per available core.
    pub threads: usize,
}

impl Default for TrialOptions {
    fn default() -> Self {
        Self {
            trials: 16,
            first_trial: 0,
            max_steps: u64::MAX,
            census: false,
            lanes: false,
            threads: 0,
        }
    }
}

/// Runs `options.trials` independent executions of `protocol` on `graph`.
///
/// Results are returned in trial order. Each trial uses child seed
/// `options.first_trial + i` of `master_seed`, so results are independent
/// of the thread count (and, for sharded campaigns, of how a trial range
/// is split into calls).
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::{run_trials, TrialOptions, TrialStats};
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// let g = popele_graph::families::clique(12);
/// let results = run_trials(&g, &Absorb, 42, TrialOptions {
///     trials: 8,
///     max_steps: 1 << 22,
///     ..TrialOptions::default()
/// });
/// let stats = TrialStats::from_results(&results);
/// assert_eq!(stats.steps.len(), 8);
/// assert_eq!(stats.timeouts, 0);
/// ```
#[must_use]
pub fn run_trials<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
) -> Vec<TrialResult> {
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    let run_one = |trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        let mut exec = Executor::new(graph, protocol, seq.child(trial as u64));
        if options.census {
            exec.enable_state_census();
        }
        match exec.run_until_stable(options.max_steps) {
            Ok(outcome) => TrialResult {
                trial,
                stabilization_step: Some(outcome.stabilization_step),
                leader: outcome.leader,
                distinct_states: outcome.distinct_states,
                recovery: None,
                holding: None,
                engine: Engine::Generic,
            },
            Err(_) => TrialResult {
                trial,
                stabilization_step: None,
                leader: None,
                distinct_states: exec.outcome().distinct_states,
                recovery: None,
                holding: None,
                engine: Engine::Generic,
            },
        }
    };

    fan_out(options.trials, threads, || (), |_, trial| run_one(trial))
}

/// Runs `options.trials` independent executions on the compiled engine,
/// sharing one precomputed transition table across all worker threads.
///
/// Seed derivation matches [`run_trials`] exactly, and the compiled
/// engine is trace-identical to the generic one, so for a compilable
/// protocol the two functions return identical results. Each worker
/// thread builds **one** executor and [`DenseExecutor::reset`]s it per
/// trial (a reset is exactly equivalent to fresh construction), so
/// per-trial setup is O(n) regardless of graph size.
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::{run_trials, run_trials_dense, TrialOptions};
/// use popele_engine::CompiledProtocol;
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// let g = popele_graph::families::clique(12);
/// let compiled = CompiledProtocol::compile_default(&Absorb, 12).unwrap();
/// let opts = TrialOptions { trials: 4, max_steps: 1 << 22, ..TrialOptions::default() };
/// // The compiled engine is trace-identical to the generic reference.
/// assert_eq!(
///     run_trials_dense(&g, &compiled, 7, opts),
///     run_trials(&g, &Absorb, 7, opts),
/// );
/// ```
#[must_use]
pub fn run_trials_dense<P: Protocol>(
    graph: &Graph,
    compiled: &CompiledProtocol<P>,
    master_seed: u64,
    options: TrialOptions,
) -> Vec<TrialResult> {
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    let run_one = |exec: &mut DenseExecutor<'_, P>, trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        exec.reset(seq.child(trial as u64));
        match exec.run_until_stable(options.max_steps) {
            Ok(outcome) => TrialResult {
                trial,
                stabilization_step: Some(outcome.stabilization_step),
                leader: outcome.leader,
                distinct_states: outcome.distinct_states,
                recovery: None,
                holding: None,
                engine: Engine::Dense,
            },
            Err(_) => TrialResult {
                trial,
                stabilization_step: None,
                leader: None,
                distinct_states: exec.outcome().distinct_states,
                recovery: None,
                holding: None,
                engine: Engine::Dense,
            },
        }
    };
    let fresh_executor = || {
        let mut exec = DenseExecutor::new(graph, compiled, 0);
        if options.census {
            exec.enable_state_census();
        }
        exec
    };

    fan_out(options.trials, threads, fresh_executor, run_one)
}

/// Runs `options.trials` independent executions on the lazily-compiling
/// dense engine.
///
/// Seed derivation matches [`run_trials`] exactly, and the lazy engine
/// is trace-identical to the generic one, so the two functions return
/// identical results for any protocol. Each worker thread builds **one**
/// [`LazyDenseExecutor`] and [`LazyDenseExecutor::reset`]s it per trial;
/// the reset deliberately keeps the interner and pair cache warm, so all
/// trials after a worker's first run against an already-populated cache
/// (the cache affects speed only, never the trace — results stay
/// independent of thread count and sharding).
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::{run_trials, run_trials_lazy, TrialOptions};
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// let g = popele_graph::families::clique(12);
/// let opts = TrialOptions { trials: 4, max_steps: 1 << 22, ..TrialOptions::default() };
/// // The lazy engine is trace-identical to the generic reference.
/// assert_eq!(
///     run_trials_lazy(&g, &Absorb, 7, opts),
///     run_trials(&g, &Absorb, 7, opts),
/// );
/// ```
#[must_use]
pub fn run_trials_lazy<P: Protocol + Clone>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
) -> Vec<TrialResult> {
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    let run_one = |exec: &mut LazyDenseExecutor<'_, P>, trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        exec.reset(seq.child(trial as u64));
        match exec.run_until_stable(options.max_steps) {
            Ok(outcome) => TrialResult {
                trial,
                stabilization_step: Some(outcome.stabilization_step),
                leader: outcome.leader,
                distinct_states: outcome.distinct_states,
                recovery: None,
                holding: None,
                engine: Engine::LazyDense,
            },
            Err(_) => TrialResult {
                trial,
                stabilization_step: None,
                leader: None,
                distinct_states: exec.outcome().distinct_states,
                recovery: None,
                holding: None,
                engine: Engine::LazyDense,
            },
        }
    };
    let fresh_executor = || {
        let mut exec = LazyDenseExecutor::new(graph, protocol, 0);
        if options.census {
            exec.enable_state_census();
        }
        exec
    };

    fan_out(options.trials, threads, fresh_executor, run_one)
}

/// Runs `options.trials` independent executions on the count-based
/// batch engine over a **clique** of `num_agents` agents.
///
/// Graph-free: a clique is fully described by its population size, and
/// the count engine holds only `O(|Λ|)` counters, so `num_agents` may
/// far exceed what any materialized [`Graph`] (or per-agent engine)
/// could represent — this is the `10⁷–10⁹` entry point. Each worker
/// thread builds **one** [`CountEngine`] over a shared compiled table
/// and [`CountEngine::reset`]s it per trial (`O(|Λ|)`, reusing the
/// cached initial count vector), mirroring the per-worker executor
/// reuse of [`run_trials_dense`].
///
/// Seed derivation matches [`run_trials`] exactly (child seed
/// `first_trial + i` of `master_seed`), so results are deterministic
/// and independent of thread count and sharding. They are **not**
/// trace-identical to the sequential engines — the count engine
/// consumes its random stream batch-wise — but exact in distribution;
/// the workspace pins this with statistical differential tests.
///
/// [`TrialResult::leader`] is always `None` (agents have no identity
/// in count space) and [`TrialResult::engine`] is [`Engine::Count`].
///
/// # Panics
///
/// Panics if the protocol's oracle is neither linear nor
/// census-capable (pre-check with [`count_supported`]), if its state
/// space exceeds [`crate::dense::COUNT_MAX_COMPILED_STATES`], or if `num_agents` is
/// below 2 or above `u32::MAX`.
#[must_use]
pub fn run_trials_count<P: Protocol + Clone>(
    protocol: &P,
    num_agents: u64,
    master_seed: u64,
    options: TrialOptions,
) -> Vec<TrialResult> {
    let compiled = compile_for_count(protocol, num_agents)
        .expect("protocol state space exceeds the count-engine compile cap");
    run_trials_count_prepared(&compiled, num_agents, master_seed, options)
}

/// [`run_trials_count`] with the compile hoisted out: runs on a table
/// the caller compiled once (via [`compile_for_count`]) and reuses
/// across calls — the count tier's counterpart of the `*_prepared`
/// sequential entry points, used by sweep campaigns to share one table
/// across all shards of a count cell.
///
/// `compiled` must come from [`compile_for_count`] for this
/// `num_agents` (the count closure seeds differ from the per-agent
/// compile); given that, results are bit-identical to
/// [`run_trials_count`].
///
/// # Panics
///
/// Panics if `num_agents` is below 2 or above `u32::MAX` (the
/// [`CountEngine`] constructor's contract).
#[must_use]
pub fn run_trials_count_prepared<P: Protocol + Clone>(
    compiled: &CompiledProtocol<P>,
    num_agents: u64,
    master_seed: u64,
    options: TrialOptions,
) -> Vec<TrialResult> {
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    let run_one = |engine: &mut CountEngine<'_, P>, trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        engine.reset(seq.child(trial as u64));
        let (stabilization_step, distinct) = match engine.run_until_stable(options.max_steps) {
            Ok(outcome) => (Some(outcome.stabilization_step), outcome.distinct_states),
            Err(_) => (None, Some(engine.distinct_states())),
        };
        TrialResult {
            trial,
            stabilization_step,
            leader: None,
            distinct_states: if options.census { distinct } else { None },
            recovery: None,
            holding: None,
            engine: Engine::Count,
        }
    };
    let fresh_engine = || CountEngine::new(compiled, num_agents, 0);

    fan_out(options.trials, threads, fresh_engine, run_one)
}

/// Fewest remaining trials for which [`run_trials_auto`] considers the
/// lane engine worth engaging: below a full minimum pack the lockstep
/// interleave has too few independent chains to overlap and the scalar
/// dense engine is at least as fast.
pub const LANE_MIN_TRIALS: usize = 8;

/// Most lanes [`run_trials_lanes`] packs into one
/// [`LaneDenseExecutor`]: past 16 interleaved chains the per-lane state
/// rows start spilling out of the close caches and the marginal overlap
/// gain is gone (the executor itself accepts up to
/// [`crate::dense::MAX_LANES`]).
pub const LANE_MAX_LANES: usize = 16;

/// Runs `options.trials` independent executions on the lane-parallel
/// dense engine: each worker thread owns one [`LaneDenseExecutor`]
/// pack of up to [`LANE_MAX_LANES`] lanes, claims global trial indices
/// work-stealing style, and retire-and-refills lanes as trials finish —
/// a lane that stabilizes frees its slot for the next `first_trial`
/// offset instead of stalling the pack.
///
/// Seed derivation matches [`run_trials`] exactly (child seed
/// `first_trial + i` of `master_seed`, one private scheduler per lane),
/// and the lane engine is trace-identical to the scalar
/// [`DenseExecutor`] per trial, so for any thread count, lane count and
/// sharding the results equal [`run_trials_dense`]'s except for the
/// [`TrialResult::engine`] tag (which equality ignores). The distinct
/// states field is always `None`.
///
/// # Panics
///
/// Panics if `options.census` is set — the lane engine does not census
/// (callers wanting the census take the scalar path, which is what
/// [`run_trials_auto`] arranges).
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::{run_trials_dense, run_trials_lanes, TrialOptions};
/// use popele_engine::CompiledProtocol;
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// let g = popele_graph::families::clique(12);
/// let compiled = CompiledProtocol::compile_default(&Absorb, 12).unwrap();
/// let opts = TrialOptions { trials: 9, max_steps: 1 << 22, ..TrialOptions::default() };
/// // The lane engine is trace-identical to the scalar dense engine.
/// assert_eq!(
///     run_trials_lanes(&g, &compiled, 7, opts),
///     run_trials_dense(&g, &compiled, 7, opts),
/// );
/// ```
#[must_use]
pub fn run_trials_lanes<P: Protocol>(
    graph: &Graph,
    compiled: &CompiledProtocol<P>,
    master_seed: u64,
    options: TrialOptions,
) -> Vec<TrialResult> {
    assert!(
        !options.census,
        "the lane engine does not support the state census"
    );
    let seq = SeedSeq::new(master_seed);
    // One worker per prospective minimum pack, so every worker's
    // executor has at least LANE_MIN_TRIALS trials to interleave.
    let threads = resolve_threads(
        options.threads,
        options.trials.div_ceil(LANE_MIN_TRIALS).max(1),
    );
    let lanes = options.trials.clamp(2, LANE_MAX_LANES);

    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<TrialResult>>> =
        (0..options.trials).map(|_| Mutex::new(None)).collect();
    let worker = || {
        let mut exec = LaneDenseExecutor::new(graph, compiled, lanes);
        loop {
            // Refill free lanes from the shared trial counter. A trial
            // that is stable at step 0 retires inside `load` without
            // occupying the slot, so keep claiming while slots stay
            // free.
            while exec.has_free_lane() {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= options.trials {
                    break;
                }
                let trial = options.first_trial + i;
                exec.load(trial, seq.child(trial as u64));
            }
            while let Some(done) = exec.take_finished() {
                let slot = done.trial - options.first_trial;
                *results[slot].lock().expect("result slot poisoned") = Some(TrialResult {
                    trial: done.trial,
                    stabilization_step: done.stabilization_step,
                    leader: done.leader,
                    distinct_states: None,
                    recovery: None,
                    holding: None,
                    engine: Engine::Lanes,
                });
            }
            // The refill loop only leaves every lane idle once the trial
            // counter is exhausted, so an empty pack means this worker
            // is done.
            if exec.num_active() == 0 {
                break;
            }
            exec.run_block(options.max_steps);
        }
    };
    if threads <= 1 {
        worker();
    } else {
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(worker);
            }
        });
    }
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every trial completed")
        })
        .collect()
}

/// Outcome of the internal engine selection: the compiled table rides
/// along when the AOT path won, so `run_trials_auto` never compiles
/// twice. Shared with [`crate::stabilize`]'s seeded selection. The
/// table sits behind an [`Arc`] so an [`EngineSelection`] can be cloned
/// across worker threads without recompiling.
pub(crate) enum Selected<P: Protocol> {
    Dense(Arc<CompiledProtocol<P>>),
    Lazy,
    Generic,
}

/// A reusable engine selection for one *cell* — one `(protocol,
/// maximum node count)` pair — produced by [`EngineSelection::prepare`]
/// (or [`crate::stabilize::prepare_stabilize_engine`] for
/// arbitrary-start workloads) and consumed by the `*_prepared` entry
/// points.
///
/// Selection is not free: the rejection path runs a bounded state-space
/// probe and the accept path compiles the full `|Λ|²` transition table.
/// A sweep campaign that shards a cell into many independently
/// checkpointable slices would otherwise pay that cost once *per
/// shard*; preparing once per cell and handing the same selection to
/// every shard pays it once, and the `Arc`-shared table makes the
/// hand-off to concurrent shard workers allocation-free. Cloning an
/// `EngineSelection` clones the `Arc`, never the table.
///
/// The selection is only valid for the node count it was prepared for:
/// engine choice depends on the reachable state space, which grows with
/// the population. Fault campaigns must prepare at the plan's maximum
/// node count (`graph.num_nodes() + plan.max_joins()`), exactly as
/// [`run_trials_auto_with_faults`] does internally.
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::{
///     run_trials_auto, run_trials_auto_prepared, EngineSelection, TrialOptions,
/// };
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// let g = popele_graph::families::clique(12);
/// let opts = TrialOptions { trials: 4, max_steps: 1 << 22, ..TrialOptions::default() };
/// let selection = EngineSelection::prepare(&Absorb, g.num_nodes());
/// // The prepared path is bit-identical to the self-selecting one.
/// assert_eq!(
///     run_trials_auto_prepared(&g, &Absorb, &selection, 7, opts),
///     run_trials_auto(&g, &Absorb, 7, opts),
/// );
/// ```
pub struct EngineSelection<P: Protocol> {
    pub(crate) kind: Selected<P>,
}

impl<P: Protocol> Clone for EngineSelection<P> {
    fn clone(&self) -> Self {
        Self {
            kind: match &self.kind {
                Selected::Dense(compiled) => Selected::Dense(Arc::clone(compiled)),
                Selected::Lazy => Selected::Lazy,
                Selected::Generic => Selected::Generic,
            },
        }
    }
}

impl<P: Protocol> fmt::Debug for EngineSelection<P> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("EngineSelection")
            .field("engine", &self.engine())
            .finish()
    }
}

impl<P: Protocol> EngineSelection<P> {
    /// Selects the engine for `protocol` on a graph of `num_nodes`
    /// nodes, compiling the AOT table when that tier wins — the
    /// reusable form of the selection [`run_trials_auto`] performs
    /// internally (same waterfall, same verdict, bit for bit).
    #[must_use]
    pub fn prepare(protocol: &P, num_nodes: u32) -> Self
    where
        P: Clone,
    {
        Self {
            kind: select(protocol, num_nodes),
        }
    }

    /// The sequential-tier engine this selection resolved to —
    /// [`Engine::Dense`], [`Engine::LazyDense`] or [`Engine::Generic`]
    /// (never the opt-in lane tier; see [`Self::engine_for`]).
    #[must_use]
    pub fn engine(&self) -> Engine {
        match &self.kind {
            Selected::Dense(_) => Engine::Dense,
            Selected::Lazy => Engine::LazyDense,
            Selected::Generic => Engine::Generic,
        }
    }

    /// The engine [`run_trials_auto_prepared`] will actually run under
    /// `options`: [`Self::engine`] upgraded to [`Engine::Lanes`] when
    /// the AOT tier won and the options qualify for the lane pack
    /// (lanes opted in, census off, at least [`LANE_MIN_TRIALS`]
    /// trials) — the exact gate the run path applies.
    #[must_use]
    pub fn engine_for(&self, options: &TrialOptions) -> Engine {
        match self.engine() {
            Engine::Dense
                if options.lanes && !options.census && options.trials >= LANE_MIN_TRIALS =>
            {
                Engine::Lanes
            }
            engine => engine,
        }
    }
}

/// Picks the engine for `protocol` on an `num_nodes`-node graph:
///
/// 1. **AOT-compiled** ([`Engine::Dense`]) when the reachable state
///    space fits [`DEFAULT_MAX_COMPILED_STATES`] — fastest, shareable
///    table;
/// 2. **lazy-compiled** ([`Engine::LazyDense`]) when it does not but the
///    protocol declares a finite [`Protocol::state_space_bound`] — the
///    per-run visited slice is then small enough to intern profitably
///    (the identifier protocol at realistic `k`, full-scale fast
///    instances);
/// 3. **generic** ([`Engine::Generic`]) otherwise: a protocol that
///    cannot even bound its state space may intern without limit, and
///    the generic engine caps memory at O(n) states.
///
/// Selection is cheap on the rejection path: a bounded-frontier probe
/// ([`probe_state_space`] with [`PROBE_EVAL_BUDGET`]) detects
/// cap-overflowing state spaces in microseconds instead of running the
/// full BFS closure to overflow on every call (sweep campaigns call this
/// once per shard). Only the rare inconclusive case — a slow-closing
/// state space that might still fit — pays for a full compile attempt,
/// which keeps the AOT/non-AOT split bit-for-bit identical to compiling
/// unconditionally.
fn select<P: Protocol + Clone>(protocol: &P, num_nodes: u32) -> Selected<P> {
    // Phase-1 walk only (not the full probe): on the accept path the
    // probe's closure and the compile's enumeration would be the same
    // work twice, so anything short of a certified overflow goes
    // straight to a single compile attempt.
    let aot = match overflow_walk(
        protocol,
        num_nodes,
        DEFAULT_MAX_COMPILED_STATES,
        PROBE_EVAL_BUDGET,
    ) {
        (WalkVerdict::Exceeds, _) => None,
        (WalkVerdict::Exhausted | WalkVerdict::Budget, _) => {
            CompiledProtocol::compile_default(protocol, num_nodes).ok()
        }
    };
    match aot {
        Some(compiled) => Selected::Dense(Arc::new(compiled)),
        None if protocol.state_space_bound().is_some() => Selected::Lazy,
        None => Selected::Generic,
    }
}

/// The engine [`run_trials_auto`] will pick for `protocol` on a graph
/// with `num_nodes` nodes — exposed so tests and reports can assert the
/// selection without running trials.
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::{select_engine, Engine};
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// // A two-state protocol compiles ahead of time at any size.
/// assert_eq!(select_engine(&Absorb, 1_000_000), Engine::Dense);
/// ```
#[must_use]
pub fn select_engine<P: Protocol + Clone>(protocol: &P, num_nodes: u32) -> Engine {
    match select(protocol, num_nodes) {
        Selected::Dense(_) => Engine::Dense,
        Selected::Lazy => Engine::LazyDense,
        Selected::Generic => Engine::Generic,
    }
}

/// The fourth tier of the engine waterfall, for **clique** populations
/// described by size alone (no materialized [`Graph`]): picks
/// [`Engine::Count`] when the population is at least
/// [`COUNT_MIN_AGENTS`], the oracle is count-capable
/// ([`count_supported`]) and the state space compiles within
/// [`crate::dense::COUNT_MAX_COMPILED_STATES`]; otherwise falls back to the
/// sequential waterfall of [`select_engine`].
///
/// The count tier is deliberately reachable only through this
/// clique-specific entry point: [`run_trials_auto`] takes a
/// materialized graph, and no materializable clique reaches
/// [`COUNT_MIN_AGENTS`] edges-wise, so the sequential engines'
/// trace-identity contract is untouched.
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::{select_engine_clique, Engine};
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &Self::State) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// // Small cliques stay on the sequential engines …
/// assert_eq!(select_engine_clique(&Absorb, 1_000), Engine::Dense);
/// // … huge ones take the count tier.
/// assert_eq!(select_engine_clique(&Absorb, 100_000_000), Engine::Count);
/// ```
#[must_use]
pub fn select_engine_clique<P: Protocol + Clone>(protocol: &P, num_agents: u64) -> Engine {
    if num_agents >= COUNT_MIN_AGENTS
        && num_agents <= u64::from(u32::MAX)
        && count_supported(protocol)
        && compile_for_count(protocol, num_agents).is_ok()
    {
        return Engine::Count;
    }
    select_engine(protocol, u32::try_from(num_agents).unwrap_or(u32::MAX))
}

/// Runs trials on the fastest applicable engine: AOT-compiled when
/// `protocol` compiles within the default state cap, the lazy-compiling
/// dense engine when it does not but the state space is declared finite,
/// and the generic reference engine otherwise (see [`select_engine`]).
///
/// This is the engine-selection point the experiment harness uses: the
/// constant-state protocols (token, star, majority) and small-parameter
/// fast-protocol instances take the AOT path; the identifier protocol at
/// realistic `k` and full-scale fast instances take the lazy path.
/// Whatever is picked, the results are identical — only the speed
/// differs — and the choice is recorded in [`TrialResult::engine`].
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::{run_trials_auto, TrialOptions};
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// let g = popele_graph::families::cycle(10);
/// let opts = TrialOptions { trials: 4, max_steps: 1 << 22, ..TrialOptions::default() };
/// // Thread count never changes results, only wall-clock time.
/// let sequential = run_trials_auto(&g, &Absorb, 3, TrialOptions { threads: 1, ..opts });
/// let parallel = run_trials_auto(&g, &Absorb, 3, TrialOptions { threads: 4, ..opts });
/// assert_eq!(sequential, parallel);
/// ```
#[must_use]
pub fn run_trials_auto<P: Protocol + Clone>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
) -> Vec<TrialResult> {
    let selection = EngineSelection::prepare(protocol, graph.num_nodes());
    run_trials_auto_prepared(graph, protocol, &selection, master_seed, options)
}

/// [`run_trials_auto`] with the engine selection hoisted out: runs on
/// whatever `selection` resolved to instead of re-probing and
/// re-compiling per call.
///
/// `selection` must have been prepared for this protocol at
/// `graph.num_nodes()` (see [`EngineSelection::prepare`]); given that,
/// results are bit-identical to [`run_trials_auto`] — including the
/// opt-in lane upgrade, which applies exactly when
/// [`EngineSelection::engine_for`] says [`Engine::Lanes`]. This is the
/// entry point sweep campaigns use to run many shards of one cell
/// against a single prepared selection.
#[must_use]
pub fn run_trials_auto_prepared<P: Protocol + Clone>(
    graph: &Graph,
    protocol: &P,
    selection: &EngineSelection<P>,
    master_seed: u64,
    options: TrialOptions,
) -> Vec<TrialResult> {
    match &selection.kind {
        Selected::Dense(compiled) => {
            // The opt-in fifth tier: lane-packed trials whenever the AOT
            // path won and the cell qualifies (census off, enough trials
            // to fill a minimum pack). Trace-identical to the scalar
            // path per trial — only speed and the engine tag change.
            if options.lanes && !options.census && options.trials >= LANE_MIN_TRIALS {
                run_trials_lanes(graph, compiled, master_seed, options)
            } else {
                run_trials_dense(graph, compiled, master_seed, options)
            }
        }
        Selected::Lazy => run_trials_lazy(graph, protocol, master_seed, options),
        Selected::Generic => run_trials(graph, protocol, master_seed, options),
    }
}

/// Runs `options.trials` independent *fault-injected* executions on the
/// generic engine.
///
/// Trial `i` resolves `plan` with [`fault_seed`] of its own trial seed,
/// so every trial sees an independent fault realization of the same
/// schedule, and results stay independent of thread count and sharding
/// exactly as in [`run_trials`]. With an empty plan this is **identical**
/// (bit for bit) to [`run_trials`] except that no recovery metrics are
/// attached — the faulted entry points delegate to the plain ones.
#[must_use]
pub fn run_trials_with_faults<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    if plan.is_empty() {
        return run_trials(graph, protocol, master_seed, options);
    }
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    let run_one = |trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        let seed = seq.child(trial as u64);
        let resolved = plan.resolve(graph, fault_seed(seed));
        let mut exec = Executor::new(graph, protocol, seed);
        if options.census {
            exec.enable_state_census();
        }
        let report = run_with_faults(&mut exec, &resolved, options.max_steps);
        faulted_result(
            trial,
            &report,
            exec.outcome().distinct_states,
            Engine::Generic,
        )
    };

    fan_out(options.trials, threads, || (), |_, trial| run_one(trial))
}

/// Runs fault-injected trials on the compiled engine, sharing one
/// precomputed table across workers and trials.
///
/// The table must cover the plan's maximum node count
/// (`graph.num_nodes() + plan.max_joins()` — see
/// [`FaultPlan::max_joins`]); [`run_trials_auto_with_faults`] compiles
/// exactly that. Because topology faults rebind an executor to per-trial
/// epoch graphs, each trial builds a fresh executor instead of resetting
/// a shared one — the construction is O(n + m) and fault campaigns are
/// dominated by simulation anyway. Results are identical to
/// [`run_trials_with_faults`] for the same arguments.
#[must_use]
pub fn run_trials_dense_with_faults<P: Protocol>(
    graph: &Graph,
    compiled: &CompiledProtocol<P>,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    if plan.is_empty() {
        return run_trials_dense(graph, compiled, master_seed, options);
    }
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    let run_one = |trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        let seed = seq.child(trial as u64);
        let resolved = plan.resolve(graph, fault_seed(seed));
        let mut exec = DenseExecutor::new(graph, compiled, seed);
        if options.census {
            exec.enable_state_census();
        }
        let report = run_with_faults(&mut exec, &resolved, options.max_steps);
        faulted_result(
            trial,
            &report,
            exec.outcome().distinct_states,
            Engine::Dense,
        )
    };

    fan_out(options.trials, threads, || (), |_, trial| run_one(trial))
}

/// Runs fault-injected trials on the lazily-compiling dense engine.
///
/// As in [`run_trials_dense_with_faults`], each trial builds a fresh
/// executor (topology faults rebind executors to per-trial epoch
/// graphs), so — unlike the fault-free [`run_trials_lazy`] — the pair
/// cache is per-trial rather than per-worker. Results are identical to
/// [`run_trials_with_faults`] for the same arguments.
#[must_use]
pub fn run_trials_lazy_with_faults<P: Protocol + Clone>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    if plan.is_empty() {
        return run_trials_lazy(graph, protocol, master_seed, options);
    }
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    let run_one = |trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        let seed = seq.child(trial as u64);
        let resolved = plan.resolve(graph, fault_seed(seed));
        let mut exec = LazyDenseExecutor::new(graph, protocol, seed);
        if options.census {
            exec.enable_state_census();
        }
        let report = run_with_faults(&mut exec, &resolved, options.max_steps);
        faulted_result(
            trial,
            &report,
            exec.outcome().distinct_states,
            Engine::LazyDense,
        )
    };

    fan_out(options.trials, threads, || (), |_, trial| run_one(trial))
}

/// Fault-injected counterpart of [`run_trials_auto`]: selects for the
/// plan's maximum node count (`n + max_joins`) among the three engines
/// exactly as [`select_engine`] does. Whatever is picked, the results
/// are identical.
#[must_use]
pub fn run_trials_auto_with_faults<P: Protocol + Clone>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    if plan.is_empty() {
        // Bit-identical delegation (an empty plan resolves to nothing
        // and `max_joins` is 0, so selection is unchanged) — and the
        // only gate through which the fault-aware entry point reaches
        // the lane tier: lane eligibility requires a fault-free cell.
        return run_trials_auto(graph, protocol, master_seed, options);
    }
    let max_nodes = graph.num_nodes() + plan.max_joins();
    let selection = EngineSelection::prepare(protocol, max_nodes);
    run_trials_auto_with_faults_prepared(graph, protocol, &selection, master_seed, options, plan)
}

/// [`run_trials_auto_with_faults`] with the engine selection hoisted
/// out.
///
/// `selection` must have been prepared for this protocol at the plan's
/// maximum node count — `graph.num_nodes() + plan.max_joins()`, which
/// equals `graph.num_nodes()` for an empty plan; given that, results
/// are bit-identical to [`run_trials_auto_with_faults`]. An empty plan
/// delegates to [`run_trials_auto_prepared`] (the fault-free path,
/// including its lane gate), mirroring the unprepared entry point.
#[must_use]
pub fn run_trials_auto_with_faults_prepared<P: Protocol + Clone>(
    graph: &Graph,
    protocol: &P,
    selection: &EngineSelection<P>,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    if plan.is_empty() {
        return run_trials_auto_prepared(graph, protocol, selection, master_seed, options);
    }
    match &selection.kind {
        Selected::Dense(compiled) => {
            run_trials_dense_with_faults(graph, compiled, master_seed, options, plan)
        }
        Selected::Lazy => run_trials_lazy_with_faults(graph, protocol, master_seed, options, plan),
        Selected::Generic => run_trials_with_faults(graph, protocol, master_seed, options, plan),
    }
}

/// Packs a fault report into a [`TrialResult`].
fn faulted_result(
    trial: usize,
    report: &crate::faults::FaultReport,
    distinct_states: Option<usize>,
    engine: Engine,
) -> TrialResult {
    TrialResult {
        trial,
        stabilization_step: report.result.as_ref().ok().map(|o| o.stabilization_step),
        leader: report.result.as_ref().ok().and_then(|o| o.leader),
        distinct_states,
        recovery: Some(report.recovery),
        holding: None,
        engine,
    }
}

pub(crate) fn resolve_threads(requested: usize, trials: usize) -> usize {
    let threads = if requested == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        requested
    };
    threads.min(trials.max(1))
}

/// Work-stealing fan-out over `count` indexed jobs on `threads` workers
/// (callers guarantee `threads >= 1`); results are returned in job
/// order, so the output is independent of the thread count. Each worker
/// owns one `init()`-produced state, so callers can reuse expensive
/// per-worker resources (e.g. an executor reset per trial) — pass
/// `|| ()` when no state is needed.
pub(crate) fn fan_out<S, T, I, F>(count: usize, threads: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if threads <= 1 || count <= 1 {
        let mut state = init();
        return (0..count).map(|idx| job(&mut state, idx)).collect();
    }
    let next = AtomicUsize::new(0);
    let results: Vec<Mutex<Option<T>>> = (0..count).map(|_| Mutex::new(None)).collect();
    std::thread::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= count {
                        break;
                    }
                    let result = job(&mut state, idx);
                    *results[idx].lock().expect("result slot poisoned") = Some(result);
                }
            });
        }
    });
    results
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot poisoned")
                .expect("every job completed")
        })
        .collect()
}

/// Aggregate view over a batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    /// Summary of stabilization steps over *successful* trials.
    pub steps: Summary,
    /// Number of trials that hit the step budget.
    pub timeouts: usize,
    /// Maximum distinct-state count observed (if censused).
    pub max_distinct_states: Option<usize>,
}

impl TrialStats {
    /// Aggregates a batch of trial results.
    #[must_use]
    pub fn from_results(results: &[TrialResult]) -> Self {
        let steps: Summary = results
            .iter()
            .filter_map(|r| r.stabilization_step)
            .map(|s| s as f64)
            .collect();
        let timeouts = results
            .iter()
            .filter(|r| r.stabilization_step.is_none())
            .count();
        let max_distinct_states = results.iter().filter_map(|r| r.distinct_states).max();
        Self {
            steps,
            timeouts,
            max_distinct_states,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{LeaderCountOracle, Role};
    use popele_graph::families;

    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn trials_all_stabilize() {
        let g = families::clique(12);
        let results = run_trials(
            &g,
            &Absorb,
            42,
            TrialOptions {
                trials: 8,
                max_steps: 1 << 22,
                census: true,
                threads: 2,
                ..TrialOptions::default()
            },
        );
        assert_eq!(results.len(), 8);
        for r in &results {
            assert!(r.stabilization_step.is_some());
            assert!(r.leader.is_some());
            assert_eq!(r.distinct_states, Some(2));
        }
        let stats = TrialStats::from_results(&results);
        assert_eq!(stats.timeouts, 0);
        assert_eq!(stats.steps.len(), 8);
        assert_eq!(stats.max_distinct_states, Some(2));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = families::cycle(10);
        let opts = |threads| TrialOptions {
            trials: 6,
            max_steps: 1 << 22,
            census: false,
            threads,
            ..TrialOptions::default()
        };
        let seq = run_trials(&g, &Absorb, 7, opts(1));
        let par = run_trials(&g, &Absorb, 7, opts(4));
        assert_eq!(seq, par);
    }

    #[test]
    fn dense_trials_match_generic_trials() {
        let g = families::clique(14);
        let compiled = CompiledProtocol::compile_default(&Absorb, 14).unwrap();
        let opts = TrialOptions {
            trials: 6,
            max_steps: 1 << 22,
            census: true,
            threads: 1,
            ..TrialOptions::default()
        };
        let generic = run_trials(&g, &Absorb, 99, opts);
        let dense = run_trials_dense(&g, &compiled, 99, opts);
        let auto = run_trials_auto(&g, &Absorb, 99, opts);
        assert_eq!(generic, dense);
        assert_eq!(generic, auto);
    }

    #[test]
    fn dense_trials_bit_identical_across_thread_counts() {
        let g = families::clique(10);
        let compiled = CompiledProtocol::compile_default(&Absorb, 10).unwrap();
        let opts = |threads| TrialOptions {
            trials: 8,
            max_steps: 1 << 22,
            census: false,
            threads,
            ..TrialOptions::default()
        };
        let one = run_trials_dense(&g, &compiled, 7, opts(1));
        let four = run_trials_dense(&g, &compiled, 7, opts(4));
        let eight = run_trials_dense(&g, &compiled, 7, opts(8));
        assert_eq!(one, four);
        assert_eq!(one, eight);
    }

    #[test]
    fn sharded_trials_equal_one_big_run() {
        // Splitting a trial range into `first_trial`-offset shards must
        // reproduce the monolithic run bit for bit, on both engines.
        let g = families::clique(12);
        let compiled = CompiledProtocol::compile_default(&Absorb, 12).unwrap();
        let opts = |first_trial, trials| TrialOptions {
            trials,
            first_trial,
            max_steps: 1 << 22,
            census: false,
            lanes: false,
            threads: 2,
        };
        let whole = run_trials(&g, &Absorb, 77, opts(0, 9));
        let mut sharded = Vec::new();
        for (start, len) in [(0, 4), (4, 3), (7, 2)] {
            sharded.extend(run_trials(&g, &Absorb, 77, opts(start, len)));
            let dense = run_trials_dense(&g, &compiled, 77, opts(start, len));
            assert_eq!(&sharded[start..start + len], &dense[..]);
        }
        assert_eq!(whole, sharded);
        assert_eq!(whole[5].trial, 5);
    }

    #[test]
    fn prepared_selection_matches_self_selecting_paths() {
        // One selection, reused across shards and a fault plan: every
        // prepared entry point must be bit-identical to its
        // self-selecting counterpart.
        let g = families::clique(12);
        let selection = EngineSelection::prepare(&Absorb, g.num_nodes());
        assert_eq!(selection.engine(), Engine::Dense);
        let opts = |first_trial| TrialOptions {
            trials: 3,
            first_trial,
            max_steps: 1 << 22,
            census: false,
            lanes: false,
            threads: 2,
        };
        for first_trial in [0, 3] {
            assert_eq!(
                run_trials_auto_prepared(&g, &Absorb, &selection, 77, opts(first_trial)),
                run_trials_auto(&g, &Absorb, 77, opts(first_trial)),
            );
        }
        let plan = FaultPlan::at(4, crate::faults::FaultKind::CorruptNodes { count: 1 });
        assert_eq!(
            run_trials_auto_with_faults_prepared(&g, &Absorb, &selection, 77, opts(0), &plan),
            run_trials_auto_with_faults(&g, &Absorb, 77, opts(0), &plan),
        );
        // An empty plan must flow through the prepared fault-free path.
        assert_eq!(
            run_trials_auto_with_faults_prepared(
                &g,
                &Absorb,
                &selection,
                77,
                opts(0),
                &FaultPlan::empty()
            ),
            run_trials_auto(&g, &Absorb, 77, opts(0)),
        );
    }

    #[test]
    fn engine_for_mirrors_lane_gate() {
        let selection = EngineSelection::prepare(&Absorb, 64);
        let base = TrialOptions {
            trials: LANE_MIN_TRIALS,
            max_steps: 1 << 22,
            ..TrialOptions::default()
        };
        assert_eq!(selection.engine_for(&base), Engine::Dense);
        let lanes = TrialOptions {
            lanes: true,
            ..base
        };
        assert_eq!(selection.engine_for(&lanes), Engine::Lanes);
        let few = TrialOptions {
            trials: LANE_MIN_TRIALS - 1,
            ..lanes
        };
        assert_eq!(selection.engine_for(&few), Engine::Dense);
        let census = TrialOptions {
            census: true,
            ..lanes
        };
        assert_eq!(selection.engine_for(&census), Engine::Dense);
    }

    #[test]
    fn count_prepared_matches_self_compiling_path() {
        // A tight step budget keeps the quadratic duel endgame of the
        // absorb protocol out of the test: both paths walk the same
        // batch stream to the same deterministic timeout.
        let num_agents = 200_000;
        let compiled = compile_for_count(&Absorb, num_agents).unwrap();
        let opts = TrialOptions {
            trials: 2,
            max_steps: 100_000,
            threads: 1,
            ..TrialOptions::default()
        };
        assert_eq!(
            run_trials_count_prepared(&compiled, num_agents, 5, opts),
            run_trials_count(&Absorb, num_agents, 5, opts),
        );
    }

    #[test]
    fn timeout_reported() {
        let g = families::clique(32);
        let results = run_trials(
            &g,
            &Absorb,
            1,
            TrialOptions {
                trials: 3,
                max_steps: 2,
                census: false,
                threads: 1,
                ..TrialOptions::default()
            },
        );
        let stats = TrialStats::from_results(&results);
        assert_eq!(stats.timeouts, 3);
        assert!(stats.steps.is_empty());
    }
}
