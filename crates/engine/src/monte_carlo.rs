//! Multi-threaded Monte-Carlo harness.
//!
//! Runs many independent executions of a protocol on a graph, each with a
//! deterministically derived seed, and aggregates stabilization times.
//! Trial `i` of a given master seed always produces the same result
//! regardless of thread count, so experiment outputs are reproducible.

use crate::executor::Executor;
use crate::protocol::Protocol;
use popele_graph::{Graph, NodeId};
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;
use std::sync::atomic::{AtomicUsize, Ordering};

/// Result of one Monte-Carlo trial.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrialResult {
    /// Seed index of the trial.
    pub trial: usize,
    /// Stabilization step, or `None` if the budget was exhausted.
    pub stabilization_step: Option<u64>,
    /// Elected leader (when stabilized).
    pub leader: Option<NodeId>,
    /// Distinct states observed, when the census was requested.
    pub distinct_states: Option<usize>,
}

/// Options for [`run_trials`].
#[derive(Debug, Clone, Copy)]
pub struct TrialOptions {
    /// Number of independent executions.
    pub trials: usize,
    /// Per-trial step budget.
    pub max_steps: u64,
    /// Whether to record the distinct-state census (slower).
    pub census: bool,
    /// Worker threads; `0` = one per available core.
    pub threads: usize,
}

impl Default for TrialOptions {
    fn default() -> Self {
        Self {
            trials: 16,
            max_steps: u64::MAX,
            census: false,
            threads: 0,
        }
    }
}

/// Runs `options.trials` independent executions of `protocol` on `graph`.
///
/// Results are returned in trial order. Each trial uses child seed `i` of
/// `master_seed`, so results are independent of the thread count.
#[must_use]
pub fn run_trials<P: Protocol>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
) -> Vec<TrialResult> {
    let seq = SeedSeq::new(master_seed);
    let threads = if options.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        options.threads
    };
    let threads = threads.min(options.trials.max(1));

    let run_one = |trial: usize| -> TrialResult {
        let mut exec = Executor::new(graph, protocol, seq.child(trial as u64));
        if options.census {
            exec.enable_state_census();
        }
        match exec.run_until_stable(options.max_steps) {
            Ok(outcome) => TrialResult {
                trial,
                stabilization_step: Some(outcome.stabilization_step),
                leader: outcome.leader,
                distinct_states: outcome.distinct_states,
            },
            Err(_) => TrialResult {
                trial,
                stabilization_step: None,
                leader: None,
                distinct_states: exec.outcome().distinct_states,
            },
        }
    };

    if threads <= 1 {
        return (0..options.trials).map(run_one).collect();
    }

    let next = AtomicUsize::new(0);
    let results = parking_lot::Mutex::new(vec![
        TrialResult {
            trial: 0,
            stabilization_step: None,
            leader: None,
            distinct_states: None,
        };
        options.trials
    ]);

    crossbeam::scope(|scope| {
        for _ in 0..threads {
            scope.spawn(|_| loop {
                let trial = next.fetch_add(1, Ordering::Relaxed);
                if trial >= options.trials {
                    break;
                }
                let result = run_one(trial);
                results.lock()[trial] = result;
            });
        }
    })
    .expect("worker thread panicked");

    results.into_inner()
}

/// Aggregate view over a batch of trials.
#[derive(Debug, Clone, PartialEq)]
pub struct TrialStats {
    /// Summary of stabilization steps over *successful* trials.
    pub steps: Summary,
    /// Number of trials that hit the step budget.
    pub timeouts: usize,
    /// Maximum distinct-state count observed (if censused).
    pub max_distinct_states: Option<usize>,
}

impl TrialStats {
    /// Aggregates a batch of trial results.
    #[must_use]
    pub fn from_results(results: &[TrialResult]) -> Self {
        let steps: Summary = results
            .iter()
            .filter_map(|r| r.stabilization_step)
            .map(|s| s as f64)
            .collect();
        let timeouts = results
            .iter()
            .filter(|r| r.stabilization_step.is_none())
            .count();
        let max_distinct_states = results.iter().filter_map(|r| r.distinct_states).max();
        Self {
            steps,
            timeouts,
            max_distinct_states,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::{LeaderCountOracle, Role};
    use popele_graph::families;

    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn trials_all_stabilize() {
        let g = families::clique(12);
        let results = run_trials(
            &g,
            &Absorb,
            42,
            TrialOptions {
                trials: 8,
                max_steps: 1 << 22,
                census: true,
                threads: 2,
            },
        );
        assert_eq!(results.len(), 8);
        for r in &results {
            assert!(r.stabilization_step.is_some());
            assert!(r.leader.is_some());
            assert_eq!(r.distinct_states, Some(2));
        }
        let stats = TrialStats::from_results(&results);
        assert_eq!(stats.timeouts, 0);
        assert_eq!(stats.steps.len(), 8);
        assert_eq!(stats.max_distinct_states, Some(2));
    }

    #[test]
    fn parallel_matches_sequential() {
        let g = families::cycle(10);
        let opts = |threads| TrialOptions {
            trials: 6,
            max_steps: 1 << 22,
            census: false,
            threads,
        };
        let seq = run_trials(&g, &Absorb, 7, opts(1));
        let par = run_trials(&g, &Absorb, 7, opts(4));
        assert_eq!(seq, par);
    }

    #[test]
    fn timeout_reported() {
        let g = families::clique(32);
        let results = run_trials(
            &g,
            &Absorb,
            1,
            TrialOptions {
                trials: 3,
                max_steps: 2,
                census: false,
                threads: 1,
            },
        );
        let stats = TrialStats::from_results(&results);
        assert_eq!(stats.timeouts, 3);
        assert!(stats.steps.is_empty());
    }
}
