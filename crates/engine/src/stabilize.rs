//! Self-stabilization workloads: arbitrary initial configurations and
//! holding-time measurement.
//!
//! The paper's protocols assume a *clean* initial configuration
//! (`Protocol::initial_state` on every node). The adjacent literature —
//! loosely-stabilizing leader election (Sudo et al. 2012; Kanaya et al.
//! 2024 on arbitrary graphs) and self-stabilizing election on rings
//! (Yokota et al. 2020) — drops that assumption: an execution starts
//! from an **arbitrary** configuration, must reach a unique-leader
//! configuration within a small expected *election time*, and must then
//! keep it for a large expected *holding time*. This module supplies the
//! engine plumbing for exactly that workload, for all three engines:
//!
//! * [`ArbitraryInit`] — a protocol declares the support of its
//!   adversarial initializer; [`arbitrary_config`] samples one
//!   configuration per trial (seeded via [`arbitrary_seed`] from the
//!   trial seed, the same stable-derivation discipline as
//!   [`crate::faults::fault_seed`]);
//! * every executor gained `set_configuration` (typed states for the
//!   generic engine, table lookups for the ahead-of-time engine —
//!   requires [`CompiledProtocol::compile_with_seeds`] over the support
//!   — and intern-on-first-sight for the lazy engine) and
//!   `run_while_stable`, the loop that keeps running *past* first
//!   stabilization and reports the step of the first violation;
//! * [`run_to_hold`] / [`run_to_hold_with_faults`] — the per-execution
//!   drivers, producing a [`HoldingTime`] (and, under a fault plan,
//!   [`Recovery`] metrics: a corrupt burst mid-hold measures the
//!   *re-election* time, the headline property of this protocol class);
//! * [`run_trials_stabilize`] / [`run_trials_stabilize_dense`] /
//!   [`run_trials_stabilize_lazy`] / [`run_trials_stabilize_auto`] —
//!   Monte-Carlo entry points mirroring [`crate::monte_carlo`],
//!   attaching the metrics to [`TrialResult::holding`].
//!
//! # What "stable" means here
//!
//! For a loosely-stabilizing protocol the unique-leader configuration
//! is *not* stable forever — by design, a timeout can always resurrect
//! a leader, so the classic stability definition is unattainable (and
//! exact self-stabilizing election is impossible for anonymous agents
//! on general interaction graphs; Angluin, Aspnes, Fischer, Jiang
//! 2008). Such protocols therefore use an oracle whose `is_stable`
//! certifies the **holding predicate** — "exactly one node outputs
//! leader" ([`crate::LeaderCountOracle`]) — and this module measures
//! the two quantities that predicate supports: the election step
//! (first time the predicate holds after the start/last fault) and the
//! holding duration (steps until its first violation).
//!
//! # Determinism contract
//!
//! The [`crate::monte_carlo`] guarantees extend verbatim: the sampled
//! start configuration of trial `i` derives from trial `i`'s seed
//! alone, every engine loads the identical configuration at step 0 and
//! continues on the identical scheduler stream, so generic, dense and
//! lazy engines produce identical [`TrialResult`]s — independent of
//! thread count and sharding — from arbitrary initializations too
//! (`tests/stabilize_differential.rs` pins this, fault plans included).
//!
//! # Example
//!
//! Measure elect-then-hold for a deliberately flimsy two-state
//! "protocol" (real ones live in `popele-core`'s `loose` module):
//!
//! ```
//! use popele_engine::stabilize::{arbitrary_config, run_to_hold, ArbitraryInit};
//! use popele_engine::{Executor, LeaderCountOracle, Protocol, Role};
//! use popele_graph::families;
//!
//! // Initiator absorbs the responder's leadership; an all-follower
//! // start deadlocks leaderless, so the *initiator promotes itself*
//! // when neither side leads — which also means a held unique leader
//! // is eventually violated: loose stabilization in miniature.
//! #[derive(Clone, Copy)]
//! struct Flimsy;
//! impl Protocol for Flimsy {
//!     type State = bool;
//!     type Oracle = LeaderCountOracle;
//!     fn initial_state(&self, _node: u32) -> bool { false }
//!     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
//!         match (a, b) {
//!             (true, true) => (true, false),
//!             (false, false) => (true, false),
//!             _ => (*a, *b),
//!         }
//!     }
//!     fn output(&self, s: &bool) -> Role {
//!         if *s { Role::Leader } else { Role::Follower }
//!     }
//!     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
//! }
//! impl ArbitraryInit for Flimsy {
//!     fn arbitrary_support(&self) -> Vec<bool> { vec![false, true] }
//! }
//!
//! let g = families::clique(8);
//! let mut exec = Executor::new(&g, &Flimsy, 7);
//! exec.set_configuration(&arbitrary_config(&Flimsy, 8, 99));
//! let report = run_to_hold(&mut exec, 1 << 20);
//! let holding = report.holding;
//! let elect = holding.elect_step.expect("elects within the budget");
//! // Two followers meeting promote a second leader, so the hold ends.
//! let hold = holding.hold_steps.expect("violated within the budget");
//! assert_eq!(exec.steps(), elect + hold);
//! ```

use crate::dense::{
    CompiledProtocol, DenseExecutor, LazyDenseExecutor, DEFAULT_MAX_COMPILED_STATES,
};
use crate::executor::{Executor, NotStabilized, Outcome};
use crate::faults::{drive_ops, fault_seed, FaultPlan, FaultTarget, Recovery, ResolvedFaultPlan};
use crate::monte_carlo::{
    fan_out, resolve_threads, Engine, EngineSelection, Selected, TrialOptions, TrialResult,
};
use crate::protocol::Protocol;
use popele_graph::Graph;
use popele_math::rng::SeedSeq;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// A protocol that can be started from an adversarial configuration.
///
/// Implementations declare the **support** of the initializer: the set
/// of states the sampler may place on a node, in a deterministic order.
/// [`arbitrary_config`] then draws one state per node uniformly from
/// that support. The support need not be reachable from the clean
/// initial configuration — that is the point — but the transition
/// function must be total over it (every protocol transition already
/// is).
///
/// # Examples
///
/// ```
/// use popele_engine::stabilize::ArbitraryInit;
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// impl ArbitraryInit for Absorb {
///     fn arbitrary_support(&self) -> Vec<bool> {
///         vec![false, true] // any node may start leader or follower
///     }
/// }
/// assert_eq!(Absorb.arbitrary_support().len(), 2);
/// ```
pub trait ArbitraryInit: Protocol {
    /// The states the adversarial initializer may produce, in a fixed,
    /// deterministic order (sampling indexes into this slice, so the
    /// order is part of the reproducibility contract). Must be
    /// nonempty.
    fn arbitrary_support(&self) -> Vec<Self::State>;
}

/// The stream index (child of a trial seed) reserved for sampling the
/// arbitrary start configuration, so initialization randomness never
/// collides with the scheduler's or the fault resolver's.
const ARBITRARY_STREAM: u64 = 0xA5B1;

/// Derives the arbitrary-initialization seed of a trial from the
/// trial's seed — the counterpart of [`crate::faults::fault_seed`] for
/// start-configuration sampling, and the reason a trial's start
/// configuration is independent of thread count, engine and sharding.
///
/// # Examples
///
/// ```
/// use popele_engine::stabilize::arbitrary_seed;
///
/// // A pure function of the trial seed, distinct from it.
/// assert_eq!(arbitrary_seed(7), arbitrary_seed(7));
/// assert_ne!(arbitrary_seed(7), 7);
/// ```
#[must_use]
pub fn arbitrary_seed(trial_seed: u64) -> u64 {
    SeedSeq::new(trial_seed).child(ARBITRARY_STREAM)
}

/// Samples one state per node uniformly from `support` (deterministic
/// in `seed`). The support-slice variant of [`arbitrary_config`], for
/// callers that fetch the support once and sample per trial.
///
/// # Panics
///
/// Panics if `support` is empty.
///
/// # Examples
///
/// ```
/// use popele_engine::stabilize::sample_support;
///
/// let config = sample_support(&['a', 'b', 'c'], 16, 42);
/// assert_eq!(config.len(), 16);
/// assert_eq!(config, sample_support(&['a', 'b', 'c'], 16, 42));
/// ```
#[must_use]
pub fn sample_support<S: Clone>(support: &[S], num_nodes: u32, seed: u64) -> Vec<S> {
    assert!(
        !support.is_empty(),
        "arbitrary-init support must be nonempty"
    );
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..num_nodes)
        .map(|_| support[rng.random_range(0..support.len())].clone())
        .collect()
}

/// Samples an arbitrary start configuration for `protocol` on
/// `num_nodes` nodes: one state per node, uniform over
/// [`ArbitraryInit::arbitrary_support`], deterministic in `seed`.
///
/// # Panics
///
/// Panics if the protocol declares an empty support.
///
/// # Examples
///
/// ```
/// use popele_engine::stabilize::{arbitrary_config, ArbitraryInit};
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
/// # impl ArbitraryInit for Absorb {
/// #     fn arbitrary_support(&self) -> Vec<bool> { vec![false, true] }
/// # }
///
/// let config = arbitrary_config(&Absorb, 32, 7);
/// assert_eq!(config.len(), 32);
/// // Deterministic in the seed; different seeds differ (w.h.p.).
/// assert_eq!(config, arbitrary_config(&Absorb, 32, 7));
/// ```
#[must_use]
pub fn arbitrary_config<P: ArbitraryInit + ?Sized>(
    protocol: &P,
    num_nodes: u32,
    seed: u64,
) -> Vec<P::State> {
    sample_support(&protocol.arbitrary_support(), num_nodes, seed)
}

/// Election and holding metrics of one arbitrarily-initialized run —
/// the loose-stabilization observables, attached to
/// [`TrialResult::holding`].
///
/// # Examples
///
/// ```
/// use popele_engine::stabilize::HoldingTime;
///
/// // A trial that elected at step 120 and held for 3400 steps.
/// let h = HoldingTime { elect_step: Some(120), hold_steps: Some(3400), held_to_budget: false };
/// assert_eq!(h.elect_step.unwrap() + h.hold_steps.unwrap(), 3520);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HoldingTime {
    /// First step at which the holding predicate (unique leader) held —
    /// after the last applied fault, if any. `None`: the budget passed
    /// without an election.
    pub elect_step: Option<u64>,
    /// Steps the predicate then held before its first violation.
    /// `None` when no violation was observed: either the election never
    /// happened, or the hold survived to the budget (see
    /// [`HoldingTime::held_to_budget`] — such holds are right-censored
    /// and should be read as "at least budget − elect").
    pub hold_steps: Option<u64>,
    /// The election happened and the unique-leader configuration was
    /// still intact when the step budget ran out.
    pub held_to_budget: bool,
}

/// What an elect-and-hold run did, in full.
#[derive(Debug, Clone)]
pub struct StabilizeReport {
    /// The election outcome: the [`Outcome`] *at the election step*
    /// (leader identity as first elected — the hold phase runs on
    /// afterwards), or [`NotStabilized`] when the budget passed first.
    pub result: Result<Outcome, NotStabilized>,
    /// The election/holding metrics.
    pub holding: HoldingTime,
    /// Recovery metrics — `Some` exactly for
    /// [`run_to_hold_with_faults`] runs.
    pub recovery: Option<Recovery>,
}

/// Runs the elect-then-hold phases against whatever configuration the
/// executor currently holds and `max_steps` as the *total* budget.
fn elect_and_hold<'g, T: FaultTarget<'g>>(
    exec: &mut T,
    max_steps: u64,
) -> (Result<Outcome, NotStabilized>, HoldingTime) {
    let result = exec.run_until_stable(max_steps);
    let holding = match &result {
        Ok(out) => {
            let elect = out.stabilization_step;
            match exec.run_while_stable(max_steps) {
                Some(violated) => HoldingTime {
                    elect_step: Some(elect),
                    hold_steps: Some(violated - elect),
                    held_to_budget: false,
                },
                None => HoldingTime {
                    elect_step: Some(elect),
                    hold_steps: None,
                    held_to_budget: true,
                },
            }
        }
        Err(_) => HoldingTime {
            elect_step: None,
            hold_steps: None,
            held_to_budget: false,
        },
    };
    (result, holding)
}

/// Drives one (already arbitrarily-initialized) execution to its
/// election and then **past** it: runs to the first unique-leader
/// configuration, keeps running while it holds, and stops right after
/// the first violation (or at `max_steps` total interactions, counted
/// from step 0 — holds alive at the budget are reported as
/// right-censored, never as violations).
///
/// See the [module docs](crate::stabilize) for a complete example.
pub fn run_to_hold<'g, T: FaultTarget<'g>>(exec: &mut T, max_steps: u64) -> StabilizeReport {
    let (result, holding) = elect_and_hold(exec, max_steps);
    StabilizeReport {
        result,
        holding,
        recovery: None,
    }
}

/// Fault-injected counterpart of [`run_to_hold`]: drives the execution
/// through every in-budget fault of `resolved` first (exactly as
/// [`crate::faults::run_with_faults`] does), then measures election —
/// which is now the *re*-election after the last fault; its distance to
/// the last fault step is reported as
/// [`Recovery::reconvergence_steps`] — and holding. A corrupt burst
/// against a loosely-stabilizing protocol thereby measures the class's
/// headline property: bounded re-election time from any perturbation.
pub fn run_to_hold_with_faults<'g, T: FaultTarget<'g>>(
    exec: &mut T,
    resolved: &'g ResolvedFaultPlan,
    max_steps: u64,
) -> StabilizeReport {
    let trace = drive_ops(exec, resolved, max_steps);
    let (result, holding) = elect_and_hold(exec, max_steps);
    let final_leaders = exec.leader_count();
    let peak = trace.peak.max(final_leaders);
    StabilizeReport {
        recovery: Some(Recovery {
            last_fault_step: trace.last_fault_step,
            faults_applied: trace.faults_applied,
            reconvergence_steps: result
                .as_ref()
                .ok()
                .map(|o| o.stabilization_step - trace.last_fault_step),
            peak_leaders: peak as u32,
            final_leaders: final_leaders as u32,
            leader_lost: result.is_err() && final_leaders == 0,
        }),
        result,
        holding,
    }
}

/// Packs a stabilize report into a [`TrialResult`]:
/// `stabilization_step` carries the election step, `leader` the leader
/// *at election*, and `holding` is always attached.
fn stabilize_result(
    trial: usize,
    report: &StabilizeReport,
    distinct_states: Option<usize>,
    engine: Engine,
) -> TrialResult {
    TrialResult {
        trial,
        stabilization_step: report.result.as_ref().ok().map(|o| o.stabilization_step),
        leader: report.result.as_ref().ok().and_then(|o| o.leader),
        distinct_states,
        recovery: report.recovery,
        holding: Some(report.holding),
        engine,
    }
}

/// Runs `options.trials` independent arbitrarily-initialized
/// elect-and-hold executions on the **generic** engine.
///
/// Trial `i` samples its start configuration with
/// [`arbitrary_seed`]`(seed_i)` and (for a nonempty `plan`) its fault
/// realization with [`fault_seed`]`(seed_i)`, so results are
/// independent of thread count and sharding exactly as in
/// [`crate::monte_carlo::run_trials`]. Pass [`FaultPlan::empty`] for
/// the fault-free workload.
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::TrialOptions;
/// use popele_engine::stabilize::{run_trials_stabilize, ArbitraryInit};
/// use popele_engine::FaultPlan;
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Flimsy;
/// # impl Protocol for Flimsy {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { false }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         match (a, b) {
/// #             (true, true) => (true, false),
/// #             (false, false) => (true, false),
/// #             _ => (*a, *b),
/// #         }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
/// # impl ArbitraryInit for Flimsy {
/// #     fn arbitrary_support(&self) -> Vec<bool> { vec![false, true] }
/// # }
///
/// let g = popele_graph::families::clique(8);
/// let opts = TrialOptions { trials: 4, max_steps: 1 << 20, ..TrialOptions::default() };
/// let results = run_trials_stabilize(&g, &Flimsy, 3, opts, &FaultPlan::empty());
/// assert!(results.iter().all(|r| r.holding.is_some()));
/// ```
#[must_use]
pub fn run_trials_stabilize<P: ArbitraryInit>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    let support = protocol.arbitrary_support();
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    let run_one = |trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        let seed = seq.child(trial as u64);
        let config = sample_support(&support, graph.num_nodes(), arbitrary_seed(seed));
        let resolved = (!plan.is_empty()).then(|| plan.resolve(graph, fault_seed(seed)));
        let mut exec = Executor::new(graph, protocol, seed);
        if options.census {
            exec.enable_state_census();
        }
        exec.set_configuration(&config);
        let report = match &resolved {
            Some(resolved) => run_to_hold_with_faults(&mut exec, resolved, options.max_steps),
            None => run_to_hold(&mut exec, options.max_steps),
        };
        stabilize_result(
            trial,
            &report,
            exec.outcome().distinct_states,
            Engine::Generic,
        )
    };

    fan_out(options.trials, threads, || (), |_, trial| run_one(trial))
}

/// Runs arbitrarily-initialized elect-and-hold trials on the
/// **ahead-of-time compiled** engine, sharing one table across workers.
///
/// The table must have been built with
/// [`CompiledProtocol::compile_with_seeds`] over the protocol's
/// [`ArbitraryInit::arbitrary_support`] (and, for plans with node
/// churn, for `graph.num_nodes() + plan.max_joins()` nodes) —
/// [`run_trials_stabilize_auto`] compiles exactly that. Results are
/// identical to [`run_trials_stabilize`] for the same arguments.
///
/// # Panics
///
/// Panics (inside worker threads) if a sampled start state is missing
/// from the compiled table.
#[must_use]
pub fn run_trials_stabilize_dense<P: ArbitraryInit>(
    graph: &Graph,
    compiled: &CompiledProtocol<P>,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    let support = compiled.protocol().arbitrary_support();
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    if plan.is_empty() {
        // Fault-free: no topology changes, so each worker keeps one
        // executor and resets it per trial (as `run_trials_dense` does).
        let run_one = |exec: &mut DenseExecutor<'_, P>, trial: usize| -> TrialResult {
            let trial = options.first_trial + trial;
            let seed = seq.child(trial as u64);
            exec.reset(seed);
            exec.set_configuration(&sample_support(
                &support,
                graph.num_nodes(),
                arbitrary_seed(seed),
            ));
            let report = run_to_hold(exec, options.max_steps);
            stabilize_result(
                trial,
                &report,
                exec.outcome().distinct_states,
                Engine::Dense,
            )
        };
        let fresh_executor = || {
            let mut exec = DenseExecutor::new(graph, compiled, 0);
            if options.census {
                exec.enable_state_census();
            }
            exec
        };
        return fan_out(options.trials, threads, fresh_executor, run_one);
    }

    let run_one = |trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        let seed = seq.child(trial as u64);
        let resolved = plan.resolve(graph, fault_seed(seed));
        let mut exec = DenseExecutor::new(graph, compiled, seed);
        if options.census {
            exec.enable_state_census();
        }
        exec.set_configuration(&sample_support(
            &support,
            graph.num_nodes(),
            arbitrary_seed(seed),
        ));
        let report = run_to_hold_with_faults(&mut exec, &resolved, options.max_steps);
        stabilize_result(
            trial,
            &report,
            exec.outcome().distinct_states,
            Engine::Dense,
        )
    };

    fan_out(options.trials, threads, || (), |_, trial| run_one(trial))
}

/// Runs arbitrarily-initialized elect-and-hold trials on the
/// **lazily-compiling** engine — the stress test of its design: the
/// sampled start states are interned on first sight, exactly like
/// states discovered mid-run. Results are identical to
/// [`run_trials_stabilize`] for the same arguments.
#[must_use]
pub fn run_trials_stabilize_lazy<P: ArbitraryInit + Clone>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    let support = protocol.arbitrary_support();
    let seq = SeedSeq::new(master_seed);
    let threads = resolve_threads(options.threads, options.trials);

    if plan.is_empty() {
        // Fault-free: keep one executor — and thus one warm interner
        // and pair cache — per worker (as `run_trials_lazy` does; the
        // cache only affects speed, never the trace).
        let run_one = |exec: &mut LazyDenseExecutor<'_, P>, trial: usize| -> TrialResult {
            let trial = options.first_trial + trial;
            let seed = seq.child(trial as u64);
            exec.reset(seed);
            exec.set_configuration(&sample_support(
                &support,
                graph.num_nodes(),
                arbitrary_seed(seed),
            ));
            let report = run_to_hold(exec, options.max_steps);
            stabilize_result(
                trial,
                &report,
                exec.outcome().distinct_states,
                Engine::LazyDense,
            )
        };
        let fresh_executor = || {
            let mut exec = LazyDenseExecutor::new(graph, protocol, 0);
            if options.census {
                exec.enable_state_census();
            }
            exec
        };
        return fan_out(options.trials, threads, fresh_executor, run_one);
    }

    let run_one = |trial: usize| -> TrialResult {
        let trial = options.first_trial + trial;
        let seed = seq.child(trial as u64);
        let resolved = plan.resolve(graph, fault_seed(seed));
        let mut exec = LazyDenseExecutor::new(graph, protocol, seed);
        if options.census {
            exec.enable_state_census();
        }
        exec.set_configuration(&sample_support(
            &support,
            graph.num_nodes(),
            arbitrary_seed(seed),
        ));
        let report = run_to_hold_with_faults(&mut exec, &resolved, options.max_steps);
        stabilize_result(
            trial,
            &report,
            exec.outcome().distinct_states,
            Engine::LazyDense,
        )
    };

    fan_out(options.trials, threads, || (), |_, trial| run_one(trial))
}

/// Seeded engine selection for arbitrary-start workloads: AOT when the
/// closure over initial states **and** the arbitrary support fits the
/// default cap, lazy when it does not but the protocol declares a
/// finite state-space bound, generic otherwise.
///
/// Unlike [`crate::monte_carlo::select_engine`] no probe is needed on
/// the rejection path: the support states are interned *before* the
/// BFS closure starts, so supports beyond the cap (the large-timer
/// instances that motivate the lazy engine) are rejected during
/// seeding, in O(cap) work.
fn select_stabilize<P: ArbitraryInit + Clone>(protocol: &P, num_nodes: u32) -> Selected<P> {
    let support = protocol.arbitrary_support();
    match CompiledProtocol::compile_with_seeds(
        protocol,
        num_nodes,
        DEFAULT_MAX_COMPILED_STATES,
        &support,
    ) {
        Ok(compiled) => Selected::Dense(std::sync::Arc::new(compiled)),
        Err(_) if protocol.state_space_bound().is_some() => Selected::Lazy,
        Err(_) => Selected::Generic,
    }
}

/// Seeded engine selection for arbitrary-start workloads, in reusable
/// form: the counterpart of [`EngineSelection::prepare`] that compiles
/// over the protocol's arbitrary support (see
/// [`select_stabilize_engine`] for the waterfall).
///
/// A selection prepared here is **not** interchangeable with one from
/// [`EngineSelection::prepare`] — the AOT table is seeded with the
/// arbitrary support, which the fixed-start closure does not contain —
/// so hand it only to [`run_trials_stabilize_auto_prepared`]. Fault
/// campaigns prepare at the plan's maximum node count
/// (`graph.num_nodes() + plan.max_joins()`), exactly as
/// [`run_trials_stabilize_auto`] does internally.
#[must_use]
pub fn prepare_stabilize_engine<P: ArbitraryInit + Clone>(
    protocol: &P,
    num_nodes: u32,
) -> EngineSelection<P> {
    EngineSelection {
        kind: select_stabilize(protocol, num_nodes),
    }
}

/// The engine [`run_trials_stabilize_auto`] will pick for `protocol`
/// started from arbitrary configurations on `num_nodes` nodes —
/// exposed so tests and reports can assert the selection without
/// running trials.
///
/// # Examples
///
/// ```
/// use popele_engine::monte_carlo::Engine;
/// use popele_engine::stabilize::{select_stabilize_engine, ArbitraryInit};
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
/// # impl ArbitraryInit for Absorb {
/// #     fn arbitrary_support(&self) -> Vec<bool> { vec![false, true] }
/// # }
///
/// // A two-state support compiles ahead of time at any size.
/// assert_eq!(select_stabilize_engine(&Absorb, 1_000_000), Engine::Dense);
/// ```
#[must_use]
pub fn select_stabilize_engine<P: ArbitraryInit + Clone>(protocol: &P, num_nodes: u32) -> Engine {
    match select_stabilize(protocol, num_nodes) {
        Selected::Dense(_) => Engine::Dense,
        Selected::Lazy => Engine::LazyDense,
        Selected::Generic => Engine::Generic,
    }
}

/// Runs arbitrarily-initialized elect-and-hold trials on the fastest
/// applicable engine (see [`select_stabilize_engine`]; the AOT table is
/// compiled over the arbitrary support and the plan's maximum node
/// count). Whatever is picked, the results are identical — the choice
/// is recorded in [`TrialResult::engine`].
///
/// This is the entry point the sweep layer and the `popele-lab
/// stabilize` experiment use for the loosely-stabilizing protocol
/// family.
#[must_use]
pub fn run_trials_stabilize_auto<P: ArbitraryInit + Clone>(
    graph: &Graph,
    protocol: &P,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    let max_nodes = graph.num_nodes() + plan.max_joins();
    let selection = prepare_stabilize_engine(protocol, max_nodes);
    run_trials_stabilize_auto_prepared(graph, protocol, &selection, master_seed, options, plan)
}

/// [`run_trials_stabilize_auto`] with the engine selection hoisted out:
/// runs on whatever `selection` resolved to instead of re-seeding and
/// re-compiling per call.
///
/// `selection` must come from [`prepare_stabilize_engine`] for this
/// protocol at the plan's maximum node count (`graph.num_nodes() +
/// plan.max_joins()`); given that, results are bit-identical to
/// [`run_trials_stabilize_auto`]. This is the entry point sweep
/// campaigns use to run many shards of one loosely-stabilizing cell
/// against a single prepared selection.
#[must_use]
pub fn run_trials_stabilize_auto_prepared<P: ArbitraryInit + Clone>(
    graph: &Graph,
    protocol: &P,
    selection: &EngineSelection<P>,
    master_seed: u64,
    options: TrialOptions,
    plan: &FaultPlan,
) -> Vec<TrialResult> {
    match &selection.kind {
        Selected::Dense(compiled) => {
            run_trials_stabilize_dense(graph, compiled, master_seed, options, plan)
        }
        Selected::Lazy => run_trials_stabilize_lazy(graph, protocol, master_seed, options, plan),
        Selected::Generic => run_trials_stabilize(graph, protocol, master_seed, options, plan),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::faults::FaultKind;
    use crate::protocol::{LeaderCountOracle, Role};
    use popele_graph::families;
    use popele_graph::NodeId;

    /// Initiator absorbs the responder's leadership; a leaderless pair
    /// promotes the initiator — so elections always happen and unique
    /// leaders are eventually violated (loose stabilization in
    /// miniature, without needing the real protocols of popele-core).
    #[derive(Clone, Copy)]
    struct Flimsy;

    impl Protocol for Flimsy {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            false
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            match (a, b) {
                (true, true) => (true, false),
                (false, false) => (true, false),
                _ => (*a, *b),
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }

        fn state_space_bound(&self) -> Option<u64> {
            Some(2)
        }
    }

    impl ArbitraryInit for Flimsy {
        fn arbitrary_support(&self) -> Vec<bool> {
            vec![false, true]
        }
    }

    #[test]
    fn sampling_is_deterministic_and_stream_separated() {
        let a = arbitrary_config(&Flimsy, 64, arbitrary_seed(5));
        let b = arbitrary_config(&Flimsy, 64, arbitrary_seed(5));
        assert_eq!(a, b);
        let c = arbitrary_config(&Flimsy, 64, arbitrary_seed(6));
        assert_ne!(a, c, "different trials sample different starts");
        assert_ne!(arbitrary_seed(5), fault_seed(5), "streams must differ");
    }

    #[test]
    fn run_to_hold_reports_elect_and_violation() {
        let g = families::clique(8);
        let mut exec = Executor::new(&g, &Flimsy, 11);
        exec.set_configuration(&arbitrary_config(&Flimsy, 8, arbitrary_seed(11)));
        let report = run_to_hold(&mut exec, 1 << 20);
        let h = report.holding;
        let elect = h.elect_step.expect("clique elections always happen");
        // Flimsy re-promotes on any follower-follower pair, so the hold
        // breaks within the budget…
        let hold = h.hold_steps.expect("violation within the budget");
        assert!(!h.held_to_budget);
        // …and the executor stops right after the violating step.
        assert_eq!(exec.steps(), elect + hold);
        assert!(!exec.is_stable());
        assert_eq!(report.result.unwrap().leader_count, 1);
        assert!(report.recovery.is_none());
    }

    #[test]
    fn hold_censoring_at_the_budget() {
        // With a unique-leader start on a 2-clique the configuration is
        // stable at step 0 and (leader, follower) never violates — the
        // hold must be censored, not reported as a violation.
        let g = families::clique(2);
        let mut exec = Executor::new(&g, &Flimsy, 1);
        exec.set_configuration(&[true, false]);
        let report = run_to_hold(&mut exec, 1000);
        assert_eq!(report.holding.elect_step, Some(0));
        assert_eq!(report.holding.hold_steps, None);
        assert!(report.holding.held_to_budget);
        assert_eq!(exec.steps(), 1000);
    }

    #[test]
    fn faulted_hold_measures_reelection() {
        let g = families::clique(12);
        let plan = FaultPlan::at(500, FaultKind::CorruptNodes { count: 12 });
        let resolved = plan.resolve(&g, fault_seed(3));
        let mut exec = Executor::new(&g, &Flimsy, 3);
        exec.set_configuration(&arbitrary_config(&Flimsy, 12, arbitrary_seed(3)));
        let report = run_to_hold_with_faults(&mut exec, &resolved, 1 << 20);
        let recovery = report.recovery.expect("faulted runs attach recovery");
        assert_eq!(recovery.last_fault_step, 500);
        // Corrupting every node resets all to follower: the election
        // reported is the re-election after the burst.
        let elect = report.holding.elect_step.unwrap();
        assert!(elect >= 500);
        assert_eq!(recovery.reconvergence_steps, Some(elect - 500));
    }

    #[test]
    fn all_engines_agree_from_arbitrary_starts() {
        let g = families::clique(10);
        let opts = TrialOptions {
            trials: 6,
            max_steps: 1 << 18,
            census: true,
            threads: 1,
            ..TrialOptions::default()
        };
        let compiled =
            CompiledProtocol::compile_with_seeds(&Flimsy, 10, 16, &Flimsy.arbitrary_support())
                .unwrap();
        let plan = FaultPlan::empty();
        let generic = run_trials_stabilize(&g, &Flimsy, 7, opts, &plan);
        let dense = run_trials_stabilize_dense(&g, &compiled, 7, opts, &plan);
        let lazy = run_trials_stabilize_lazy(&g, &Flimsy, 7, opts, &plan);
        let auto = run_trials_stabilize_auto(&g, &Flimsy, 7, opts, &plan);
        assert_eq!(generic, dense);
        assert_eq!(generic, lazy);
        assert_eq!(generic, auto);
        assert!(generic.iter().all(|r| r.holding.is_some()));
    }

    #[test]
    fn thread_count_never_changes_results() {
        let g = families::clique(10);
        let opts = |threads| TrialOptions {
            trials: 8,
            max_steps: 1 << 18,
            census: false,
            threads,
            ..TrialOptions::default()
        };
        let plan = FaultPlan::at(64, FaultKind::CorruptNodes { count: 4 });
        let one = run_trials_stabilize(&g, &Flimsy, 9, opts(1), &plan);
        let four = run_trials_stabilize(&g, &Flimsy, 9, opts(4), &plan);
        assert_eq!(one, four);
        assert!(one.iter().all(|r| r.recovery.is_some()));
    }

    #[test]
    fn selection_prefers_aot_for_tiny_supports() {
        assert_eq!(select_stabilize_engine(&Flimsy, 100), Engine::Dense);
    }
}
