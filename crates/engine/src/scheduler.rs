//! The uniform ordered-pair scheduler of the stochastic population model.

use popele_graph::{Graph, NodeId};
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// Samples, per step, an ordered pair `(u, v)` of adjacent nodes uniformly
/// at random among all `2m` ordered pairs (Section 2.2 of the paper).
///
/// The first component is the **initiator**, the second the **responder**.
///
/// # Examples
///
/// ```
/// use popele_engine::EdgeScheduler;
/// use popele_graph::families;
///
/// let g = families::cycle(5);
/// let mut sched = EdgeScheduler::new(&g, 42);
/// let (u, v) = sched.next_pair();
/// assert!(g.has_edge(u, v));
/// ```
#[derive(Debug, Clone)]
pub struct EdgeScheduler<'g> {
    /// Borrowed canonical edge list of the graph — schedulers are
    /// created per execution (Monte-Carlo runs create thousands), so
    /// copying a multi-megabyte edge list here would dominate setup.
    edges: &'g [(NodeId, NodeId)],
    rng: SmallRng,
    steps: u64,
}

impl<'g> EdgeScheduler<'g> {
    /// Creates a scheduler for `graph` seeded with `seed`.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges (no interaction is possible).
    #[must_use]
    pub fn new(graph: &'g Graph, seed: u64) -> Self {
        assert!(
            graph.num_edges() > 0,
            "scheduler requires a graph with at least one edge"
        );
        Self {
            edges: graph.edges(),
            rng: SmallRng::seed_from_u64(seed),
            steps: 0,
        }
    }

    /// Samples the next ordered pair `(initiator, responder)`.
    #[inline]
    pub fn next_pair(&mut self) -> (NodeId, NodeId) {
        // One draw covers both the edge index and the orientation bit.
        let r = self.next_raw();
        let (u, v) = self.edges[r >> 1];
        if r & 1 == 0 {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Draws `out.len()` consecutive pairs into `out` — exactly
    /// equivalent to calling [`Self::next_pair`] once per slot, but
    /// phrased as two phases per chunk (draw raw indices, then gather
    /// the edges) so the edge-array loads are independent and the memory
    /// system can overlap them. On large graphs whose edge list falls
    /// out of cache this is several times faster than the one-at-a-time
    /// path; the compiled [`crate::DenseExecutor`] draws its batches
    /// through it.
    pub fn fill_pairs(&mut self, out: &mut [(NodeId, NodeId)]) {
        const CHUNK: usize = 64;
        let mut raw = [0usize; CHUNK];
        for chunk in out.chunks_mut(CHUNK) {
            let raw = &mut raw[..chunk.len()];
            self.fill_raw(raw);
            // Independent gathers from the edge array. The orientation
            // select is branchless (a 50/50 data-dependent branch would
            // mispredict constantly and stall speculation, which is
            // exactly the memory parallelism this batch exists to
            // expose).
            for (slot, &r) in chunk.iter_mut().zip(raw.iter()) {
                let (u, v) = self.edges[r >> 1];
                let mask = (r as u32 & 1).wrapping_neg(); // 0 or all-ones
                let x = u ^ v;
                *slot = (u ^ (x & mask), v ^ (x & mask));
            }
        }
    }

    /// Draws `out.len()` consecutive *raw* scheduler indices — each in
    /// `0..2m`, encoding edge index (`r >> 1`) and orientation (`r & 1`)
    /// — consuming the RNG stream exactly as [`Self::next_pair`] /
    /// [`Self::fill_pairs`] would. Callers that own a differently-encoded
    /// copy of the edge list (e.g. the compiled engine's packed edges)
    /// use this to draw the identical interaction sequence while doing
    /// their own gather.
    #[inline]
    pub fn fill_raw(&mut self, out: &mut [usize]) {
        self.steps += out.len() as u64;
        let n2 = 2 * self.edges.len();
        for r in out.iter_mut() {
            *r = self.rng.random_range(0..n2);
        }
    }

    /// Draws one raw scheduler index — in `0..2m`, edge `r >> 1`,
    /// orientation `r & 1` — consuming the RNG stream exactly as
    /// [`Self::next_pair`] would, but leaving the edge resolution to the
    /// caller.
    #[inline]
    pub fn next_raw(&mut self) -> usize {
        self.steps += 1;
        self.rng.random_range(0..2 * self.edges.len())
    }

    /// Draws one raw index per slot of `out` (same stream as
    /// [`Self::fill_raw`]) and hands each to `decode` immediately —
    /// fusing a cheap, cache-resident decode into the draw loop so it
    /// overlaps the RNG dependency chain instead of costing a second
    /// pass.
    #[inline]
    pub fn fill_raw_with<T>(&mut self, out: &mut [T], mut decode: impl FnMut(usize, &mut T)) {
        self.steps += out.len() as u64;
        let n2 = 2 * self.edges.len();
        for slot in out.iter_mut() {
            decode(self.rng.random_range(0..n2), slot);
        }
    }

    /// Number of pairs sampled so far (the model's time step `t`).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Crate-internal access to the generator for bulk steppers (the
    /// lane engine's vectorized draw pass) that advance this
    /// scheduler's stream out-of-band — reproducing it draw for draw —
    /// and hand the state back via [`SmallRng::set_state`], accounting
    /// the draws with [`Self::add_steps`].
    pub(crate) fn rng_mut(&mut self) -> &mut SmallRng {
        &mut self.rng
    }

    /// Accounts `k` out-of-band draws taken through [`Self::rng_mut`],
    /// keeping [`Self::steps`] equal to the number of pairs consumed
    /// from the stream.
    pub(crate) fn add_steps(&mut self, k: u64) {
        self.steps += k;
    }

    /// Number of undirected edges `m` of the underlying graph.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Resets the step counter and reseeds the RNG.
    pub fn reset(&mut self, seed: u64) {
        self.rng = SmallRng::seed_from_u64(seed);
        self.steps = 0;
    }

    /// Rebinds the scheduler to a different graph **without** touching
    /// the RNG state or the step counter: subsequent draws continue the
    /// same random stream, now ranged over the new graph's `2m` ordered
    /// pairs. This is the primitive behind topology fault injection
    /// ([`crate::faults`]) — the interaction sequence stays a single
    /// deterministic stream across graph changes.
    ///
    /// # Panics
    ///
    /// Panics if the new graph has no edges.
    pub fn set_graph(&mut self, graph: &'g Graph) {
        assert!(
            graph.num_edges() > 0,
            "scheduler requires a graph with at least one edge"
        );
        self.edges = graph.edges();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_graph::families;
    use std::collections::HashMap;

    #[test]
    fn pairs_are_adjacent() {
        let g = families::torus(4, 4);
        let mut s = EdgeScheduler::new(&g, 1);
        for _ in 0..1000 {
            let (u, v) = s.next_pair();
            assert!(g.has_edge(u, v), "sampled non-edge ({u}, {v})");
        }
        assert_eq!(s.steps(), 1000);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = families::clique(6);
        let mut a = EdgeScheduler::new(&g, 9);
        let mut b = EdgeScheduler::new(&g, 9);
        for _ in 0..100 {
            assert_eq!(a.next_pair(), b.next_pair());
        }
    }

    #[test]
    fn reset_reproduces_stream() {
        let g = families::cycle(5);
        let mut s = EdgeScheduler::new(&g, 3);
        let first: Vec<_> = (0..20).map(|_| s.next_pair()).collect();
        s.reset(3);
        assert_eq!(s.steps(), 0);
        let second: Vec<_> = (0..20).map(|_| s.next_pair()).collect();
        assert_eq!(first, second);
    }

    #[test]
    fn ordered_pairs_roughly_uniform() {
        // On a triangle there are 6 ordered pairs; each should get ~1/6 of
        // the samples.
        let g = families::cycle(3);
        let mut s = EdgeScheduler::new(&g, 7);
        let trials = 60_000;
        let mut counts: HashMap<(u32, u32), u32> = HashMap::new();
        for _ in 0..trials {
            *counts.entry(s.next_pair()).or_insert(0) += 1;
        }
        assert_eq!(counts.len(), 6);
        for (&pair, &c) in &counts {
            let freq = f64::from(c) / f64::from(trials);
            assert!(
                (freq - 1.0 / 6.0).abs() < 0.01,
                "pair {pair:?} frequency {freq}"
            );
        }
    }

    #[test]
    fn initiator_distribution_follows_degree() {
        // In the population model a node is chosen (in either role) with
        // probability deg(v)/m per step, and as initiator with
        // deg(v)/(2m). On a star the centre initiates half the steps.
        let g = families::star(9);
        let mut s = EdgeScheduler::new(&g, 11);
        let trials = 40_000;
        let mut centre_initiates = 0u32;
        for _ in 0..trials {
            if s.next_pair().0 == 0 {
                centre_initiates += 1;
            }
        }
        let freq = f64::from(centre_initiates) / f64::from(trials);
        assert!((freq - 0.5).abs() < 0.01, "centre initiator freq {freq}");
    }

    #[test]
    fn set_graph_preserves_rng_stream() {
        // Two schedulers consuming the same seed must agree on the raw
        // stream even when one is rebound to another graph mid-stream
        // (the raw draws only depend on the RNG and the edge count).
        let a = families::cycle(6);
        let b = families::clique(6);
        let mut s = EdgeScheduler::new(&a, 5);
        let mut t = EdgeScheduler::new(&a, 5);
        for _ in 0..10 {
            assert_eq!(s.next_pair(), t.next_pair());
        }
        s.set_graph(&b);
        t.set_graph(&b);
        assert_eq!(s.num_edges(), b.num_edges());
        for _ in 0..50 {
            let (u, v) = s.next_pair();
            assert!(b.has_edge(u, v));
            assert_eq!((u, v), t.next_pair());
        }
        assert_eq!(s.steps(), 60);
    }

    #[test]
    #[should_panic(expected = "at least one edge")]
    fn rejects_edgeless_graph() {
        let g = popele_graph::Graph::from_edges(2, &[]).unwrap();
        let _ = EdgeScheduler::new(&g, 0);
    }
}
