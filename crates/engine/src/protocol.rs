//! The protocol abstraction and stability oracles.

use popele_graph::NodeId;
use std::fmt::Debug;
use std::hash::Hash;

/// Output value of a node in a leader-election protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Role {
    /// The node currently outputs *leader*.
    Leader,
    /// The node currently outputs *follower*.
    Follower,
}

/// A population protocol `A = (Λ, Ξ, init, out)` for leader election.
///
/// The transition function receives the states of the *initiator* and the
/// *responder* of an interaction (the scheduler samples ordered pairs) and
/// returns their successor states. Protocols must be deterministic: all
/// randomness in the model comes from the scheduler.
///
/// `initial_state` receives the node id only so that protocols that take an
/// *input* (such as the candidate set of the 6-state token protocol of
/// Theorem 16) can be initialized non-uniformly; pure leader-election
/// protocols ignore the id, as required by the anonymous model.
pub trait Protocol: Sync {
    /// The local state type `Λ`.
    type State: Clone + Eq + Hash + Debug + Send + Sync;

    /// The incremental stability oracle for this protocol.
    type Oracle: StabilityOracle<Self> + Send;

    /// Initialization function `init` (usually constant across nodes).
    fn initial_state(&self, node: NodeId) -> Self::State;

    /// Transition function `Ξ(initiator, responder)`.
    fn transition(
        &self,
        initiator: &Self::State,
        responder: &Self::State,
    ) -> (Self::State, Self::State);

    /// Output function `out: Λ → {leader, follower}`.
    fn output(&self, state: &Self::State) -> Role;

    /// Creates a fresh oracle for an execution of this protocol.
    fn oracle(&self) -> Self::Oracle;

    /// Upper bound on `|Λ|`, the number of distinct states this
    /// instantiation can ever use, when known. Used for space-complexity
    /// reporting.
    fn state_space_bound(&self) -> Option<u64> {
        None
    }
}

/// Detects stabilization incrementally.
///
/// An oracle watches an execution (via [`StabilityOracle::recompute`] at
/// the start and [`StabilityOracle::apply`] after every interaction) and
/// reports whether the current configuration is **stable and correct**:
/// exactly one node outputs leader and no reachable configuration changes
/// any output.
///
/// Implementations encode a protocol-specific invariant equivalent to
/// stability; each implementation documents the invariant and is validated
/// against [`crate::exhaustive`] on small instances.
pub trait StabilityOracle<P: Protocol + ?Sized> {
    /// Rebuilds the oracle's counters from a full configuration.
    fn recompute(&mut self, protocol: &P, config: &[P::State]);

    /// Updates the counters after one interaction changed two nodes.
    fn apply(&mut self, protocol: &P, old: (&P::State, &P::State), new: (&P::State, &P::State));

    /// Whether the watched configuration is stable with a unique leader.
    fn is_stable(&self) -> bool;

    /// Rebuilds the oracle's counters from a **census** — one
    /// `(state, multiplicity)` entry per distinct state — instead of a
    /// full per-node configuration, returning whether the oracle
    /// supports census evaluation at all.
    ///
    /// The count-based batch engine stores only a count vector over the
    /// compiled states and can never materialize a `&[P::State]`
    /// configuration at `n = 10⁸`, so it checks stability through this
    /// entry point. The default returns `false` (leaving the oracle
    /// untouched), which marks the protocol as ineligible for the count
    /// engine; override it exactly when the oracle's invariant is a
    /// function of per-state multiplicities alone, and make the verdict
    /// identical to `recompute` over any configuration with that census.
    fn recompute_census(&mut self, protocol: &P, census: &[(P::State, u64)]) -> bool {
        let _ = (protocol, census);
        false
    }

    /// Summarizes a transition's effect on this oracle as one opaque
    /// word, or [`EFFECT_OPAQUE`] (the default) when no summary exists.
    ///
    /// The lazily-compiling engine caches the summary next to each
    /// memoized pair transition and consults
    /// [`StabilityOracle::effect_inert`] on every replay, skipping the
    /// typed [`StabilityOracle::apply`] — and the state-table reads
    /// feeding it — whenever the oracle vouches that the application
    /// would change nothing. The summary **must be a pure function of
    /// the four states** (it is computed once per distinct transition
    /// and reused across the whole execution, including after
    /// [`StabilityOracle::recompute`] resets), and any summary for
    /// which `effect_inert` can ever return true must describe a
    /// transition whose `apply` leaves the oracle's observable state
    /// exactly unchanged whenever that verdict is given.
    fn transition_effect(
        &self,
        protocol: &P,
        old: (&P::State, &P::State),
        new: (&P::State, &P::State),
    ) -> u64 {
        let _ = (protocol, old, new);
        EFFECT_OPAQUE
    }

    /// Whether applying a transition with the given
    /// [`StabilityOracle::transition_effect`] summary right now would
    /// leave this oracle bit-for-bit unchanged. May consult the
    /// oracle's current counters; the engine re-asks before every
    /// skipped application, so the verdict need not be monotone. The
    /// default never skips.
    fn effect_inert(&self, effect: u64) -> bool {
        let _ = effect;
        false
    }

    /// Whether this oracle's verdict is *exactly* "exactly one node
    /// outputs [`Role::Leader`]" — true for [`LeaderCountOracle`] and
    /// false (the default) for oracles tracking anything more.
    ///
    /// The compiled engine uses this to replace the typed
    /// [`StabilityOracle::apply`] calls in its hot loop with a
    /// precomputed per-table-entry leader-count delta; the substitution
    /// is behaviour-identical by the definition above. Only override
    /// this to return true if `recompute`/`apply`/`is_stable` are
    /// observationally equivalent to counting leader outputs.
    fn stable_iff_unique_leader(&self) -> bool {
        false
    }
}

/// Effect summary returned by [`StabilityOracle::transition_effect`]
/// when the oracle does not classify the transition: the engine must
/// fall back to a typed [`StabilityOracle::apply`]. The default
/// implementations return this value and never deem it inert, so
/// oracles that don't opt in keep exact behaviour.
pub const EFFECT_OPAQUE: u64 = u64::MAX;

/// Oracle for protocols in which **every reachable configuration with
/// exactly one leader output is stable**.
///
/// This holds for "monotone" protocols where (a) the number of
/// leader-output nodes can never increase from 0 or stay at risk of
/// regrowth — concretely, where a configuration with a single leader admits
/// no transition that demotes that leader or promotes a follower. The
/// 6-state token protocol (Theorem 16) and the trivial star protocol
/// satisfy this; see their module docs for proofs. Protocols with phases or
/// identifier generation do **not** and ship custom oracles.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LeaderCountOracle {
    leaders: usize,
}

impl LeaderCountOracle {
    /// Creates an oracle with no observed configuration.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Current number of leader-output nodes.
    #[must_use]
    pub fn leader_count(&self) -> usize {
        self.leaders
    }
}

impl<P: Protocol> StabilityOracle<P> for LeaderCountOracle {
    fn recompute(&mut self, protocol: &P, config: &[P::State]) {
        self.leaders = config
            .iter()
            .filter(|s| protocol.output(s) == Role::Leader)
            .count();
    }

    fn apply(&mut self, protocol: &P, old: (&P::State, &P::State), new: (&P::State, &P::State)) {
        for s in [old.0, old.1] {
            if protocol.output(s) == Role::Leader {
                self.leaders -= 1;
            }
        }
        for s in [new.0, new.1] {
            if protocol.output(s) == Role::Leader {
                self.leaders += 1;
            }
        }
    }

    fn recompute_census(&mut self, protocol: &P, census: &[(P::State, u64)]) -> bool {
        self.leaders = census
            .iter()
            .filter(|(s, _)| protocol.output(s) == Role::Leader)
            .map(|(_, count)| *count as usize)
            .sum();
        true
    }

    fn is_stable(&self) -> bool {
        self.leaders == 1
    }

    fn stable_iff_unique_leader(&self) -> bool {
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Minimal protocol for oracle unit tests: state = leader bit,
    /// initiator absorbs.
    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn leader_count_recompute() {
        let mut o = LeaderCountOracle::new();
        o.recompute(&Absorb, &[true, false, true]);
        assert_eq!(o.leader_count(), 2);
        assert!(!<LeaderCountOracle as StabilityOracle<Absorb>>::is_stable(
            &o
        ));
        o.recompute(&Absorb, &[false, true, false]);
        assert!(<LeaderCountOracle as StabilityOracle<Absorb>>::is_stable(
            &o
        ));
    }

    #[test]
    fn leader_count_incremental() {
        let mut o = LeaderCountOracle::new();
        o.recompute(&Absorb, &[true, true]);
        assert_eq!(o.leader_count(), 2);
        // Simulate the absorb transition (true, true) -> (true, false).
        o.apply(&Absorb, (&true, &true), (&true, &false));
        assert_eq!(o.leader_count(), 1);
        assert!(<LeaderCountOracle as StabilityOracle<Absorb>>::is_stable(
            &o
        ));
        // A no-op interaction keeps the count.
        o.apply(&Absorb, (&true, &false), (&true, &false));
        assert_eq!(o.leader_count(), 1);
    }

    #[test]
    fn role_is_hashable_and_copyable() {
        let mut set = std::collections::HashSet::new();
        set.insert(Role::Leader);
        set.insert(Role::Follower);
        set.insert(Role::Leader);
        assert_eq!(set.len(), 2);
    }
}
