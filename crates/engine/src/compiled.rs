//! The compiled dense-state simulation core.
//!
//! Every protocol the paper analyses has a tiny (constant or
//! `O(polylog n)`) reachable state space, which makes the following
//! architecture possible: enumerate the reachable states once, assign
//! them dense integer ids, precompute the full `|Λ|²` transition table
//! and the per-state output table, and drive executions over `u16` ids —
//! the per-interaction hot path becomes two array reads, one table
//! lookup and two array writes, with no cloning, hashing or per-step
//! transition evaluation.
//!
//! * [`CompiledProtocol::compile`] builds the tables by BFS closure over
//!   [`Protocol::transition`] starting from the initial states of every
//!   node. The closure is a sound over-approximation: it includes every
//!   state reachable under *any* schedule on *any* graph with the given
//!   node count (and possibly more), so the table covers every pair an
//!   execution can sample.
//! * [`DenseExecutor`] mirrors [`crate::Executor`] exactly: same
//!   scheduler, same seed handling, same [`crate::protocol::StabilityOracle`]
//!   semantics, same [`Outcome`]s. A differential test in the workspace
//!   pins the two engines to identical traces under identical seeds.
//!
//! # When compilation fails
//!
//! Ids are `u16`, so the enumeration aborts with
//! [`CompileError::StateSpaceTooLarge`] once it exceeds the requested
//! `max_states` cap (at most [`MAX_STATE_IDS`] = 2¹⁶). The cap matters
//! twice over: the transition table stores `|Λ|²` packed entries (4 bytes
//! each), so even before the id space overflows, large state spaces stop
//! paying — at the default cap of [`DEFAULT_MAX_COMPILED_STATES`] = 1024
//! the table occupies 4 MiB and stays cache-resident, while at the full
//! 2¹⁶ it would need 16 GiB. Protocols with polynomially many states
//! (e.g. the identifier protocol at realistic `k`) therefore fall back
//! to the generic [`crate::Executor`]; constant-state protocols (token,
//! star, majority) and small-parameter instances of the fast protocol
//! compile everywhere. [`crate::monte_carlo::run_trials_auto`] automates
//! exactly this decision.

use crate::executor::{NotStabilized, Outcome};
use crate::protocol::{Protocol, Role, StabilityOracle};
use crate::scheduler::EdgeScheduler;
use popele_graph::{Graph, NodeId};
use std::collections::HashMap;
use std::fmt;

/// Dense state identifier of a compiled protocol.
pub type StateId = u16;

/// Hard ceiling on the number of dense ids (`u16` space).
pub const MAX_STATE_IDS: usize = 1 << 16;

/// Default enumeration cap used by the auto-compiling entry points: the
/// resulting `|Λ|²` table of packed `u32` entries is at most 4 MiB.
pub const DEFAULT_MAX_COMPILED_STATES: usize = 1024;

/// Why a protocol could not be compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The BFS closure exceeded the requested state cap.
    StateSpaceTooLarge {
        /// The cap that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::StateSpaceTooLarge { limit } => {
                write!(f, "reachable state space exceeds {limit} states")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// A protocol lowered to dense ids with fully precomputed transition and
/// output tables. Shared (immutably) by every executor and Monte-Carlo
/// worker thread that runs it.
///
/// # Examples
///
/// ```
/// use popele_engine::{CompiledProtocol, DenseExecutor, Role};
/// # use popele_engine::{LeaderCountOracle, Protocol};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// // `Absorb` is a two-state protocol: the initiator absorbs the
/// // responder's leadership. Compilation enumerates both states and
/// // precomputes every transition.
/// let compiled = CompiledProtocol::compile(&Absorb, 20, 16).unwrap();
/// assert_eq!(compiled.num_states(), 2);
/// let leader = compiled.state_id(&true).unwrap();
/// let follower = compiled.state_id(&false).unwrap();
/// assert_eq!(compiled.successor(leader, leader), (leader, follower));
/// assert_eq!(compiled.role(leader), Role::Leader);
///
/// // The table drives a [`DenseExecutor`] over any 20-node graph.
/// let g = popele_graph::families::clique(20);
/// let outcome = DenseExecutor::new(&g, &compiled, 7)
///     .run_until_stable(1 << 22)
///     .unwrap();
/// assert_eq!(outcome.leader_count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProtocol<P: Protocol> {
    protocol: P,
    /// Id → typed state.
    states: Vec<P::State>,
    /// Typed state → id (kept for introspection and differential tests).
    ids: HashMap<P::State, StateId>,
    /// Node → id of its initial state; length `num_nodes`.
    initial: Vec<StateId>,
    /// Flat `k × k` successor table, entry `a·k + b` packing
    /// `(a' << 16) | b'`.
    table: Vec<u32>,
    /// Per table entry: net change in the number of leader-output nodes,
    /// `role(a') + role(b') − role(a) − role(b)` (each counted as 1 for
    /// leader). Lets executors with a unique-leader oracle maintain the
    /// leader count with one add instead of a typed oracle call.
    leader_delta: Vec<i8>,
    /// For `|Λ| ≤ 256` only: the successor pair *and* leader delta of
    /// entry `(a << 8) | b` packed into one word —
    /// `(delta + 2) << 16 | a' << 8 | b'` — padded to 256 columns so the
    /// index is a shift-or instead of a multiply. One load serves the
    /// whole hot-loop update for constant-state protocols.
    fused: Option<Vec<u32>>,
    /// Id → output role.
    roles: Vec<Role>,
    num_nodes: u32,
}

impl<P: Protocol + Clone> CompiledProtocol<P> {
    /// Enumerates the reachable state space of `protocol` for executions
    /// on `num_nodes` nodes and precomputes the transition/output tables.
    ///
    /// The enumeration starts from `initial_state(v)` for every node `v`
    /// and closes under `transition` on all ordered pairs, so it is
    /// graph-independent apart from the node count (which protocols may
    /// use for non-uniform inputs, e.g. candidate sets).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::StateSpaceTooLarge`] if more than
    /// `max_states` distinct states are discovered.
    ///
    /// # Panics
    ///
    /// Panics if `max_states` is `0` or exceeds [`MAX_STATE_IDS`].
    pub fn compile(protocol: &P, num_nodes: u32, max_states: usize) -> Result<Self, CompileError> {
        assert!(
            (1..=MAX_STATE_IDS).contains(&max_states),
            "max_states must be in 1..={MAX_STATE_IDS}"
        );
        let mut states: Vec<P::State> = Vec::new();
        let mut ids: HashMap<P::State, StateId> = HashMap::new();

        fn intern<S: Clone + Eq + std::hash::Hash>(
            s: &S,
            states: &mut Vec<S>,
            ids: &mut HashMap<S, StateId>,
            max_states: usize,
        ) -> Result<StateId, CompileError> {
            if let Some(&id) = ids.get(s) {
                return Ok(id);
            }
            if states.len() >= max_states {
                return Err(CompileError::StateSpaceTooLarge { limit: max_states });
            }
            let id = states.len() as StateId;
            states.push(s.clone());
            ids.insert(s.clone(), id);
            Ok(id)
        }

        let mut initial = Vec::with_capacity(num_nodes as usize);
        for v in 0..num_nodes {
            let s = protocol.initial_state(v);
            initial.push(intern(&s, &mut states, &mut ids, max_states)?);
        }

        // BFS closure: repeatedly expand every ordered pair involving at
        // least one state discovered since the last round.
        let mut closed_upto = 0usize;
        while closed_upto < states.len() {
            let frontier_end = states.len();
            for a in 0..frontier_end {
                for b in 0..frontier_end {
                    if a < closed_upto && b < closed_upto {
                        continue;
                    }
                    let (na, nb) = protocol.transition(&states[a], &states[b]);
                    intern(&na, &mut states, &mut ids, max_states)?;
                    intern(&nb, &mut states, &mut ids, max_states)?;
                }
            }
            closed_upto = frontier_end;
        }

        // The set is closed: every successor below is already interned.
        let k = states.len();
        let roles: Vec<Role> = states.iter().map(|s| protocol.output(s)).collect();
        let leader = |id: StateId| i8::from(roles[id as usize] == Role::Leader);
        let mut table = vec![0u32; k * k];
        let mut leader_delta = vec![0i8; k * k];
        for a in 0..k {
            for b in 0..k {
                let (na, nb) = protocol.transition(&states[a], &states[b]);
                let (na, nb) = (ids[&na], ids[&nb]);
                table[a * k + b] = (u32::from(na) << 16) | u32::from(nb);
                leader_delta[a * k + b] =
                    leader(na) + leader(nb) - leader(a as StateId) - leader(b as StateId);
            }
        }

        let fused = (k <= 256).then(|| {
            let mut fused = vec![0u32; k << 8];
            for a in 0..k {
                for b in 0..k {
                    let packed = table[a * k + b];
                    let (na, nb) = (packed >> 16, packed & 0xFFFF);
                    let delta = (i32::from(leader_delta[a * k + b]) + 2) as u32;
                    fused[(a << 8) | b] = (delta << 16) | (na << 8) | nb;
                }
            }
            fused
        });

        Ok(Self {
            protocol: protocol.clone(),
            states,
            ids,
            initial,
            table,
            leader_delta,
            fused,
            roles,
            num_nodes,
        })
    }

    /// Compiles with the [`DEFAULT_MAX_COMPILED_STATES`] cap.
    ///
    /// # Errors
    ///
    /// As [`CompiledProtocol::compile`].
    pub fn compile_default(protocol: &P, num_nodes: u32) -> Result<Self, CompileError> {
        Self::compile(protocol, num_nodes, DEFAULT_MAX_COMPILED_STATES)
    }
}

impl<P: Protocol> CompiledProtocol<P> {
    /// The compiled protocol instance.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of enumerated states `|Λ|`.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Node count the compilation was performed for.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// The enumerated states, indexed by id.
    #[must_use]
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The dense id of `state`, if it was enumerated.
    #[must_use]
    pub fn state_id(&self, state: &P::State) -> Option<StateId> {
        self.ids.get(state).copied()
    }

    /// Initial-state id of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn initial_id(&self, v: NodeId) -> StateId {
        self.initial[v as usize]
    }

    /// Precomputed successor pair of the ordered interaction `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    #[must_use]
    pub fn successor(&self, a: StateId, b: StateId) -> (StateId, StateId) {
        let packed = self.table[a as usize * self.states.len() + b as usize];
        ((packed >> 16) as StateId, packed as StateId)
    }

    /// Precomputed output role of state id `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[inline]
    #[must_use]
    pub fn role(&self, s: StateId) -> Role {
        self.roles[s as usize]
    }

    /// Size of the transition table in bytes (capacity planning aid).
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// Materializes the typed configuration corresponding to `ids`.
    fn typed_config(&self, ids: &[StateId]) -> Vec<P::State> {
        ids.iter()
            .map(|&id| self.states[id as usize].clone())
            .collect()
    }
}

/// Distinct-state census over dense ids (mirrors the generic executor's
/// `HashSet` census at O(1) per mark).
#[derive(Debug, Clone)]
struct DenseCensus {
    seen: Vec<bool>,
    count: usize,
}

impl DenseCensus {
    fn new(k: usize) -> Self {
        Self {
            seen: vec![false; k],
            count: 0,
        }
    }

    #[inline]
    fn mark(&mut self, id: StateId) {
        let slot = &mut self.seen[id as usize];
        if !*slot {
            *slot = true;
            self.count += 1;
        }
    }
}

/// Runs one execution of a [`CompiledProtocol`] on a [`Graph`].
///
/// Drop-in counterpart of [`crate::Executor`]: identical constructor
/// signature modulo the compiled table, identical scheduler and seed
/// semantics, identical oracle behaviour and [`Outcome`]s — only the
/// per-interaction cost differs. The stability oracle is the protocol's
/// own [`StabilityOracle`], driven with borrowed typed states from the
/// compiled id ↔ state mapping, and is skipped entirely for the (vastly
/// most common, late in a run) no-op interactions — valid because oracle
/// updates are pure count deltas, so an identity transition is always a
/// no-op on the oracle too.
pub struct DenseExecutor<'a, P: Protocol> {
    graph: &'a Graph,
    compiled: &'a CompiledProtocol<P>,
    scheduler: EdgeScheduler<'a>,
    ids: Vec<StateId>,
    oracle: P::Oracle,
    /// When the oracle declared
    /// [`StabilityOracle::stable_iff_unique_leader`], the engine tracks
    /// the leader count itself via the compiled per-pair deltas and the
    /// typed oracle is bypassed entirely (`leaders` is then
    /// authoritative; the substitution is behaviour-identical).
    linear: bool,
    leaders: i64,
    census: Option<DenseCensus>,
    /// Pairs pre-drawn from the scheduler in a tight batch (see
    /// [`DenseExecutor::refill`]); `pairs[cursor..filled]` are drawn but
    /// not yet applied. `applied` — not the scheduler's draw count — is
    /// the execution's step counter. Refills never draw past the step
    /// budget of the run call they serve, so bounded runs
    /// ([`DenseExecutor::run_steps`]) consume the scheduler stream
    /// exactly as far as the generic engine would — the property that
    /// lets [`crate::faults`] interleave graph changes with execution on
    /// both engines identically.
    pairs: Box<[(NodeId, NodeId)]>,
    raw: Box<[usize]>,
    cursor: usize,
    filled: usize,
    applied: u64,
    decoder: EdgeDecoder,
}

/// How the dense engine resolves a raw scheduler index `r` (edge index
/// `r >> 1` into the canonical sorted edge list, orientation `r & 1`)
/// into an ordered node pair. All variants produce exactly the pairs
/// [`EdgeScheduler`] would — only the memory traffic differs.
#[derive(Debug, Clone)]
enum EdgeDecoder {
    /// Complete graph: the canonical lexicographic edge index inverts
    /// arithmetically (triangular numbers). Instead of gathering from
    /// the `n(n−1)/2`-entry edge array — which falls out of cache and
    /// dominates the hot loop on large cliques — the row is read from a
    /// small bucket→row hint table (≤ 256 KiB, cache-resident) and
    /// corrected with exact integer arithmetic.
    Clique {
        /// Node count.
        n: u64,
        /// Bucket granularity: edges `e` share bucket `e >> shift`.
        shift: u32,
        /// Per bucket: `(row, first edge index of that row)` for the
        /// first edge of the bucket, so the decode needs no
        /// multiplications — only an add and a rare row advance.
        row_hint: Box<[(u32, u32)]>,
    },
    /// Edge list re-encoded as `(u << 16) | v` when every node id fits
    /// 16 bits: half the bytes of the scheduler's `(u32, u32)` list, so
    /// the gather covers half the cache footprint.
    Packed(Box<[u32]>),
    /// Non-clique graphs beyond the packed decoder's 16-bit node range:
    /// the canonical sorted edge list in CSR-style split form. The
    /// higher endpoint of edge `e` is a direct 4-byte gather from
    /// `col[e]`; the lower endpoint (the CSR row) is reconstructed as
    /// `row_hint[e >> shift] + row_delta[e]` — a lookup in a small,
    /// cache-resident bucket table plus a 1-byte gather — instead of
    /// being stored as a second 4-byte column. Per sampled edge that is
    /// 5 bytes of randomly-indexed memory traffic instead of the
    /// scheduler's 8, with no search loop and no data-dependent
    /// branches. `shift` is chosen at build time so that no bucket
    /// spans more than 255 rows (it always exists: at `shift = 0` every
    /// bucket holds one edge and every delta is 0).
    Csr {
        /// Bucket granularity: edges `e` share hint bucket `e >> shift`.
        shift: u32,
        /// Per bucket: row (lower endpoint) of the bucket's first edge.
        row_hint: Box<[u32]>,
        /// Per edge: its row minus its bucket's hint row (≤ 255 by
        /// choice of `shift`).
        row_delta: Box<[u8]>,
        /// Per edge: the higher endpoint.
        col: Box<[u32]>,
    },
    /// Degenerate fallback (edge count beyond `u32`): the scheduler's
    /// own batched gather.
    Scheduler,
}

impl EdgeDecoder {
    fn for_graph(graph: &Graph) -> Self {
        let n = u64::from(graph.num_nodes());
        let m = graph.num_edges() as u64;
        if n >= 2 && m == n * (n - 1) / 2 && m <= u64::from(u32::MAX) {
            // A simple graph with n(n−1)/2 edges is complete.
            let bits = 64 - m.leading_zeros();
            let shift = bits.saturating_sub(16);
            let buckets = (m >> shift) as usize + 1;
            let mut row_hint = vec![(0u32, 0u32); buckets];
            let mut u = 0u64;
            for (b, hint) in row_hint.iter_mut().enumerate() {
                let e = (b as u64) << shift;
                while u + 1 < n - 1 && clique_row_start(n, u + 1) <= e {
                    u += 1;
                }
                *hint = (u as u32, clique_row_start(n, u) as u32);
            }
            EdgeDecoder::Clique {
                n,
                shift,
                row_hint: row_hint.into_boxed_slice(),
            }
        } else if graph.num_nodes() <= 1 << 16 {
            EdgeDecoder::Packed(
                graph
                    .edges()
                    .iter()
                    .map(|&(u, v)| (u << 16) | v)
                    .collect::<Vec<u32>>()
                    .into_boxed_slice(),
            )
        } else if m <= u64::from(u32::MAX) {
            Self::csr(graph.edges())
        } else {
            EdgeDecoder::Scheduler
        }
    }

    /// Builds the [`EdgeDecoder::Csr`] form of a canonical sorted edge
    /// list: the widest bucket shift whose per-bucket row span fits the
    /// `u8` delta, then the hint/delta/column arrays.
    fn csr(edges: &[(NodeId, NodeId)]) -> Self {
        let m = edges.len();
        let bits = usize::BITS - m.leading_zeros();
        let mut shift = bits.saturating_sub(16);
        while shift > 0 {
            // Row span of bucket b: rows are nondecreasing within the
            // sorted edge list, so first/last edge suffice.
            let spans_fit = (0..(m >> shift) + 1).all(|b| {
                let lo = b << shift;
                let hi = (((b + 1) << shift) - 1).min(m - 1);
                lo >= m || edges[hi].0 - edges[lo].0 <= u32::from(u8::MAX)
            });
            if spans_fit {
                break;
            }
            shift -= 1;
        }
        let buckets = (m >> shift) + 1;
        let mut row_hint = vec![0u32; buckets];
        for (b, hint) in row_hint.iter_mut().enumerate() {
            let lo = b << shift;
            *hint = if lo < m { edges[lo].0 } else { 0 };
        }
        let mut row_delta = vec![0u8; m];
        let mut col = vec![0u32; m];
        for (e, &(u, v)) in edges.iter().enumerate() {
            row_delta[e] = u8::try_from(u - row_hint[e >> shift]).expect("span checked above");
            col[e] = v;
        }
        EdgeDecoder::Csr {
            shift,
            row_hint: row_hint.into_boxed_slice(),
            row_delta: row_delta.into_boxed_slice(),
            col: col.into_boxed_slice(),
        }
    }
}

/// Number of canonical lexicographic edges of `K_n` preceding row `u`
/// (row `u` lists the edges `(u, u+1) … (u, n−1)`).
#[inline]
fn clique_row_start(n: u64, u: u64) -> u64 {
    u * (2 * n - u - 1) / 2
}

/// Number of scheduler draws per batch. Large enough to expose
/// memory-level parallelism on the edge array, small enough to stay in
/// L1 (2 KiB).
const PAIR_BATCH: usize = 256;

impl<'a, P: Protocol> DenseExecutor<'a, P> {
    /// Creates an executor with every node in its initial state.
    ///
    /// The compiled node count may exceed the graph's: a compilation for
    /// `n + k` nodes serves any graph with at most `n + k` nodes, which
    /// is how fault plans with node churn ([`crate::faults`]) share one
    /// table across all epochs. (The state enumeration for more nodes is
    /// a superset, so the table still covers every reachable pair.)
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges or more nodes than the protocol
    /// was compiled for.
    #[must_use]
    pub fn new(graph: &'a Graph, compiled: &'a CompiledProtocol<P>, seed: u64) -> Self {
        assert!(
            graph.num_nodes() <= compiled.num_nodes(),
            "graph size does not match the compiled protocol"
        );
        let ids = compiled.initial[..graph.num_nodes() as usize].to_vec();
        let mut oracle = compiled.protocol.oracle();
        let linear = oracle.stable_iff_unique_leader();
        if !linear {
            // In linear mode the typed oracle is bypassed entirely
            // (`leaders` is authoritative), so skip the O(n) typed
            // materialization.
            oracle.recompute(&compiled.protocol, &compiled.typed_config(&ids));
        }
        let leaders = ids
            .iter()
            .filter(|&&id| compiled.roles[id as usize] == Role::Leader)
            .count() as i64;
        Self {
            graph,
            compiled,
            scheduler: EdgeScheduler::new(graph, seed),
            ids,
            oracle,
            linear,
            leaders,
            census: None,
            pairs: vec![(0, 0); PAIR_BATCH].into_boxed_slice(),
            raw: vec![0usize; PAIR_BATCH].into_boxed_slice(),
            cursor: 0,
            filled: 0,
            applied: 0,
            decoder: EdgeDecoder::for_graph(graph),
        }
    }

    /// Refills the pair buffer with one batch of up to `limit ≤
    /// PAIR_BATCH` scheduler draws.
    ///
    /// Pair sampling is independent of the configuration (the scheduler
    /// is an autonomous RNG stream), so the draws can be batched into a
    /// tight loop that touches only the RNG state and the edge array —
    /// giving the memory system a window of independent loads to overlap.
    /// The generic executor cannot do this: its per-step trait calls
    /// (transition + oracle) interleave with every draw. Batching never
    /// changes the interaction sequence, only when it is materialized;
    /// the `limit` keeps bounded runs from drawing past their budget.
    #[inline(never)]
    fn refill(&mut self, limit: usize) {
        let pairs = &mut self.pairs[..limit];
        match &self.decoder {
            EdgeDecoder::Clique { n, shift, row_hint } => {
                // One fused loop: the hint table is cache-resident, so
                // unlike the general gather there is no memory latency
                // to batch around — and with the RNG state as the only
                // loop-carried dependency, the decode arithmetic of one
                // iteration overlaps the RNG chain of the next.
                let n = *n as u32;
                self.scheduler.fill_raw_with(pairs, |r, slot| {
                    let e = (r >> 1) as u32;
                    let (mut u, mut start) = row_hint[(e as usize) >> shift];
                    // Almost always zero iterations: a bucket rarely
                    // crosses a row boundary. Row `u` holds the edges
                    // `start .. start + (n − 1 − u)`.
                    while e - start >= n - 1 - u {
                        start += n - 1 - u;
                        u += 1;
                    }
                    let v = u + 1 + (e - start);
                    let mask = (r as u32 & 1).wrapping_neg(); // 0 or all-ones
                    let x = u ^ v;
                    *slot = (u ^ (x & mask), v ^ (x & mask));
                });
            }
            EdgeDecoder::Packed(packed) => {
                self.scheduler.fill_raw(&mut self.raw[..limit]);
                for (slot, &r) in pairs.iter_mut().zip(self.raw.iter()) {
                    let e = packed[r >> 1];
                    let (u, v) = (e >> 16, e & 0xFFFF);
                    let mask = (r as u32 & 1).wrapping_neg(); // 0 or all-ones
                    let x = u ^ v;
                    *slot = (u ^ (x & mask), v ^ (x & mask));
                }
            }
            EdgeDecoder::Csr {
                shift,
                row_hint,
                row_delta,
                col,
            } => {
                // Two-phase like the packed decoder: the raw draws are
                // batched first, then the delta/column gathers run as
                // independent loads the memory system can overlap. The
                // hint table stays cache-resident, so reconstructing the
                // row costs one in-cache read and an add.
                self.scheduler.fill_raw(&mut self.raw[..limit]);
                for (slot, &r) in pairs.iter_mut().zip(self.raw.iter()) {
                    let e = r >> 1;
                    let u = row_hint[e >> *shift] + u32::from(row_delta[e]);
                    let v = col[e];
                    let mask = (r as u32 & 1).wrapping_neg(); // 0 or all-ones
                    let x = u ^ v;
                    *slot = (u ^ (x & mask), v ^ (x & mask));
                }
            }
            EdgeDecoder::Scheduler => self.scheduler.fill_pairs(pairs),
        }
        self.cursor = 0;
        self.filled = limit;
    }

    /// Enables the distinct-state census (O(1) per changed state).
    pub fn enable_state_census(&mut self) {
        let mut census = DenseCensus::new(self.compiled.num_states());
        for &id in &self.ids {
            census.mark(id);
        }
        self.census = Some(census);
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The compiled protocol driving this execution.
    #[must_use]
    pub fn compiled(&self) -> &CompiledProtocol<P> {
        self.compiled
    }

    /// Current configuration as dense ids.
    #[must_use]
    pub fn state_ids(&self) -> &[StateId] {
        &self.ids
    }

    /// Typed state of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn state_of(&self, v: NodeId) -> &P::State {
        &self.compiled.states[self.ids[v as usize] as usize]
    }

    /// Steps applied so far.
    ///
    /// The scheduler may have *drawn* up to one batch further ahead (the
    /// undrawn pairs are buffered and will be applied next), so this is
    /// the model's time step `t`, not the raw RNG draw count.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.applied
    }

    /// Applies the ordered interaction `(u, v)` to the configuration.
    #[inline]
    fn apply_pair(&mut self, u: NodeId, v: NodeId) {
        let (iu, iv) = (u as usize, v as usize);
        let a = self.ids[iu];
        let b = self.ids[iv];
        let k = self.compiled.states.len();
        let packed = self.compiled.table[a as usize * k + b as usize];
        let current = (u32::from(a) << 16) | u32::from(b);
        if packed != current {
            let na = (packed >> 16) as StateId;
            let nb = packed as StateId;
            if self.linear {
                self.leaders += i64::from(self.compiled.leader_delta[a as usize * k + b as usize]);
            } else {
                let states = &self.compiled.states;
                self.oracle.apply(
                    &self.compiled.protocol,
                    (&states[a as usize], &states[b as usize]),
                    (&states[na as usize], &states[nb as usize]),
                );
            }
            if let Some(census) = &mut self.census {
                census.mark(na);
                census.mark(nb);
            }
            self.ids[iu] = na;
            self.ids[iv] = nb;
        }
    }

    /// Applies one interaction and returns the sampled `(initiator,
    /// responder)` pair.
    #[inline]
    pub fn step(&mut self) -> (NodeId, NodeId) {
        if self.cursor == self.filled {
            self.refill(PAIR_BATCH);
        }
        let (u, v) = self.pairs[self.cursor];
        self.cursor += 1;
        self.applied += 1;
        self.apply_pair(u, v);
        (u, v)
    }

    /// Applies up to `budget` already-buffered interactions in one tight
    /// loop (the engine's hot path: two id reads, one table lookup, two
    /// id writes per interaction, with oracle/census work only on the
    /// rare state-changing pairs).
    ///
    /// When `stop_on_stable` is set, returns right after the state
    /// change that makes the oracle stable. The caller guarantees
    /// `budget ≤` the number of buffered pairs.
    fn apply_batch(&mut self, budget: usize, stop_on_stable: bool) {
        let compiled = self.compiled;
        let k = compiled.states.len();
        let table = &compiled.table;
        let states = &compiled.states;
        let end = self.cursor + budget;
        let mut i = self.cursor;
        while i < end {
            let (u, v) = self.pairs[i];
            i += 1;
            let (iu, iv) = (u as usize, v as usize);
            let a = self.ids[iu];
            let b = self.ids[iv];
            let idx = a as usize * k + b as usize;
            let packed = table[idx];
            if packed != ((u32::from(a) << 16) | u32::from(b)) {
                let na = (packed >> 16) as StateId;
                let nb = packed as StateId;
                if self.linear {
                    self.leaders += i64::from(compiled.leader_delta[idx]);
                } else {
                    self.oracle.apply(
                        &compiled.protocol,
                        (&states[a as usize], &states[b as usize]),
                        (&states[na as usize], &states[nb as usize]),
                    );
                }
                if let Some(census) = &mut self.census {
                    census.mark(na);
                    census.mark(nb);
                }
                self.ids[iu] = na;
                self.ids[iv] = nb;
                if stop_on_stable && self.stable_now() {
                    break;
                }
            }
        }
        self.applied += (i - self.cursor) as u64;
        self.cursor = i;
    }

    /// Fused runner for the computed-edge (clique) decoder: RNG draw,
    /// arithmetic decode and table apply in one loop, with no pair
    /// buffer in between. The RNG state and the configuration are
    /// independent dependency chains, so the processor overlaps them;
    /// this is the engine's fastest path. Requires the pair buffer to
    /// be drained and applies at most `budget` interactions, returning
    /// early (right after the causing change) when `stop_on_stable` and
    /// the oracle reports stability.
    fn run_fused_clique(&mut self, budget: u64, stop_on_stable: bool) {
        debug_assert_eq!(self.cursor, self.filled, "pair buffer must be drained");
        let EdgeDecoder::Clique { n, shift, row_hint } = &self.decoder else {
            unreachable!("fused path requires the clique decoder")
        };
        let n = *n as u32;
        let shift = *shift;
        let compiled = self.compiled;
        let k = compiled.states.len();
        let table = &compiled.table;
        let states = &compiled.states;
        let mut done = 0u64;
        if self.linear && self.census.is_none() && compiled.fused.is_some() {
            // Branchless variant: writing back unchanged ids and adding
            // a zero leader delta are no-ops, so the data-dependent
            // "did this pair change state?" branch — mispredicted
            // constantly mid-election — disappears entirely, and one
            // load of the fused table serves successors and delta alike.
            let fused = compiled.fused.as_deref().expect("checked above");
            while done < budget {
                let r = self.scheduler.next_raw();
                done += 1;
                let e = (r >> 1) as u32;
                let (mut u, mut start) = row_hint[(e as usize) >> shift];
                while e - start >= n - 1 - u {
                    start += n - 1 - u;
                    u += 1;
                }
                let v = u + 1 + (e - start);
                let mask = (r as u32 & 1).wrapping_neg(); // 0 or all-ones
                let x = u ^ v;
                let (iu, iv) = ((u ^ (x & mask)) as usize, (v ^ (x & mask)) as usize);
                let a = self.ids[iu];
                let b = self.ids[iv];
                let entry = fused[((a as usize) << 8) | b as usize];
                self.ids[iu] = ((entry >> 8) & 0xFF) as StateId;
                self.ids[iv] = (entry & 0xFF) as StateId;
                self.leaders += i64::from(entry >> 16) - 2;
                if stop_on_stable && self.leaders == 1 {
                    break;
                }
            }
        } else {
            while done < budget {
                let r = self.scheduler.next_raw();
                done += 1;
                let e = (r >> 1) as u32;
                let (mut u, mut start) = row_hint[(e as usize) >> shift];
                while e - start >= n - 1 - u {
                    start += n - 1 - u;
                    u += 1;
                }
                let v = u + 1 + (e - start);
                let mask = (r as u32 & 1).wrapping_neg(); // 0 or all-ones
                let x = u ^ v;
                let (iu, iv) = ((u ^ (x & mask)) as usize, (v ^ (x & mask)) as usize);
                let a = self.ids[iu];
                let b = self.ids[iv];
                let idx = a as usize * k + b as usize;
                let packed = table[idx];
                if packed != ((u32::from(a) << 16) | u32::from(b)) {
                    let na = (packed >> 16) as StateId;
                    let nb = packed as StateId;
                    if self.linear {
                        self.leaders += i64::from(compiled.leader_delta[idx]);
                    } else {
                        self.oracle.apply(
                            &compiled.protocol,
                            (&states[a as usize], &states[b as usize]),
                            (&states[na as usize], &states[nb as usize]),
                        );
                    }
                    if let Some(census) = &mut self.census {
                        census.mark(na);
                        census.mark(nb);
                    }
                    self.ids[iu] = na;
                    self.ids[iv] = nb;
                    if stop_on_stable && self.stable_now() {
                        break;
                    }
                }
            }
        }
        self.applied += done;
    }

    /// Applies up to `budget` interactions through buffered pairs (for
    /// already-drawn pairs and the gather decoders) or the fused path.
    fn run_budget(&mut self, budget: u64, stop_on_stable: bool) {
        if self.cursor < self.filled {
            let avail = (self.filled - self.cursor) as u64;
            self.apply_batch(avail.min(budget) as usize, stop_on_stable);
        } else if matches!(self.decoder, EdgeDecoder::Clique { .. }) {
            self.run_fused_clique(budget, stop_on_stable);
        } else {
            let limit = budget.min(PAIR_BATCH as u64) as usize;
            self.refill(limit);
            self.apply_batch(limit, stop_on_stable);
        }
    }

    /// Runs exactly `k` interactions, consuming the scheduler stream
    /// exactly `k` draws past the buffered pairs — never further — so
    /// after the buffer drains, the RNG position matches the generic
    /// engine's at the same step (the alignment [`crate::faults`] relies
    /// on to perturb both engines identically).
    pub fn run_steps(&mut self, k: u64) {
        let mut remaining = k;
        while remaining > 0 {
            let before = self.applied;
            self.run_budget(remaining, false);
            remaining -= self.applied - before;
        }
    }

    /// Runs until the oracle reports a stable, correct configuration or
    /// the step budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`NotStabilized`] if `max_steps` interactions pass without
    /// stabilization.
    pub fn run_until_stable(&mut self, max_steps: u64) -> Result<Outcome, NotStabilized> {
        while !self.stable_now() {
            if self.applied >= max_steps {
                return Err(NotStabilized { max_steps });
            }
            self.run_budget(max_steps - self.applied, true);
        }
        Ok(self.outcome())
    }

    #[inline]
    fn stable_now(&self) -> bool {
        if self.linear {
            self.leaders == 1
        } else {
            self.oracle.is_stable()
        }
    }

    /// Whether the oracle currently reports stability.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.stable_now()
    }

    /// Current number of leader-output nodes (O(n) scan of the role
    /// table).
    #[must_use]
    pub fn leader_count(&self) -> usize {
        self.ids
            .iter()
            .filter(|&&id| self.compiled.roles[id as usize] == Role::Leader)
            .count()
    }

    /// The unique leader if exactly one node outputs leader.
    #[must_use]
    pub fn leader(&self) -> Option<NodeId> {
        let mut found = None;
        for (v, &id) in self.ids.iter().enumerate() {
            if self.compiled.roles[id as usize] == Role::Leader {
                if found.is_some() {
                    return None;
                }
                found = Some(v as NodeId);
            }
        }
        found
    }

    /// Snapshot of the current outcome (regardless of stability).
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        Outcome {
            stabilization_step: self.steps(),
            leader_count: self.leader_count(),
            leader: self.leader(),
            distinct_states: self.census.as_ref().map(|c| c.count),
        }
    }

    /// Resets to the initial configuration with a new seed.
    ///
    /// Resets states, scheduler and counters only — the executor stays
    /// bound to whichever graph it currently borrows, so executors that
    /// ran a fault plan with topology changes should be rebuilt rather
    /// than reset (the Monte-Carlo harness does exactly that).
    pub fn reset(&mut self, seed: u64) {
        let n = self.graph.num_nodes() as usize;
        self.ids.clear();
        self.ids.extend_from_slice(&self.compiled.initial[..n]);
        self.scheduler.reset(seed);
        self.cursor = 0;
        self.filled = 0;
        self.applied = 0;
        self.leaders = self
            .ids
            .iter()
            .filter(|&&id| self.compiled.roles[id as usize] == Role::Leader)
            .count() as i64;
        if !self.linear {
            self.oracle.recompute(
                &self.compiled.protocol,
                &self.compiled.typed_config(&self.ids),
            );
        }
        if self.census.is_some() {
            self.census = None;
            self.enable_state_census();
        }
    }

    // ---- fault-injection primitives (see `crate::faults`) ------------
    //
    // Mirrors of the generic executor's primitives. Topology changes
    // invalidate the per-graph edge decoder, so every rebind rebuilds it
    // for the new graph; the scheduler keeps its RNG stream. Rebinds
    // require the pair buffer to be drained — which it always is after
    // a `run_steps` call, since bounded runs never draw past their
    // budget.

    /// Recomputes the derived leader/oracle state after a perturbation
    /// (corruption or churn) that edited `ids` outside a transition.
    fn resync_oracle(&mut self) {
        self.leaders = self
            .ids
            .iter()
            .filter(|&&id| self.compiled.roles[id as usize] == Role::Leader)
            .count() as i64;
        if !self.linear {
            self.oracle.recompute(
                &self.compiled.protocol,
                &self.compiled.typed_config(&self.ids),
            );
        }
    }

    /// Rebinds scheduler and decoder to `graph` (states untouched).
    fn rebind(&mut self, graph: &'a Graph) {
        assert_eq!(
            self.cursor, self.filled,
            "pair buffer must be drained before a graph change"
        );
        self.graph = graph;
        self.scheduler.set_graph(graph);
        self.decoder = EdgeDecoder::for_graph(graph);
    }

    /// Rebinds the execution to a graph with the **same node count**
    /// (edge additions/removals/rewirings), rebuilding the edge decoder.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ, the new graph has no edges, or
    /// the pair buffer still holds drawn-but-unapplied pairs.
    pub fn set_graph(&mut self, graph: &'a Graph) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.ids.len(),
            "set_graph requires an equal node count (use join_node/leave_node)"
        );
        self.rebind(graph);
    }

    /// Rebinds to a graph with **one more node**: the new node is `n`
    /// (the old node count) and starts in its initial state.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not have exactly one extra node or the
    /// protocol was compiled for fewer nodes than the new graph has.
    pub fn join_node(&mut self, graph: &'a Graph) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.ids.len() + 1,
            "join_node requires exactly one extra node"
        );
        assert!(
            graph.num_nodes() <= self.compiled.num_nodes(),
            "protocol was compiled for fewer nodes than the new graph has"
        );
        let id = self.compiled.initial[self.ids.len()];
        if let Some(census) = &mut self.census {
            census.mark(id);
        }
        self.ids.push(id);
        self.rebind(graph);
        self.resync_oracle();
    }

    /// Rebinds to a graph with **one less node**: node `removed` leaves
    /// and the last node (`n − 1`) is relabelled to `removed` — `graph`
    /// must already use that relabelling.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not have exactly one node less or
    /// `removed` is out of range.
    pub fn leave_node(&mut self, graph: &'a Graph, removed: NodeId) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.ids.len() - 1,
            "leave_node requires exactly one node less"
        );
        self.ids.swap_remove(removed as usize);
        self.rebind(graph);
        self.resync_oracle();
    }

    /// State corruption: resets node `v` to its initial state (a crash
    /// followed by a clean rejoin), leaving all other nodes untouched.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn corrupt_to_initial(&mut self, v: NodeId) {
        let id = self.compiled.initial[v as usize];
        if let Some(census) = &mut self.census {
            census.mark(id);
        }
        self.ids[v as usize] = id;
        self.resync_oracle();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Executor;
    use crate::protocol::LeaderCountOracle;
    use popele_graph::families;

    /// Initiator absorbs the responder's leadership (stabilizes on
    /// cliques).
    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    /// A protocol with an unbounded (counter) state space: compilation
    /// must bail out at the cap.
    #[derive(Debug, Clone, Copy)]
    struct Counter;

    impl Protocol for Counter {
        type State = u64;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> u64 {
            0
        }

        fn transition(&self, a: &u64, b: &u64) -> (u64, u64) {
            (a + 1, *b)
        }

        fn output(&self, _s: &u64) -> Role {
            Role::Follower
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn compile_enumerates_absorb() {
        let c = CompiledProtocol::compile(&Absorb, 8, 16).unwrap();
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_nodes(), 8);
        let t = c.state_id(&true).unwrap();
        let f = c.state_id(&false).unwrap();
        assert_eq!(c.successor(t, t), (t, f));
        assert_eq!(c.successor(t, f), (t, f));
        assert_eq!(c.role(t), Role::Leader);
        assert_eq!(c.role(f), Role::Follower);
        assert_eq!(c.initial_id(3), t);
        assert_eq!(c.table_bytes(), 16);
    }

    #[test]
    fn compile_caps_unbounded_spaces() {
        assert_eq!(
            CompiledProtocol::compile(&Counter, 4, 32).unwrap_err(),
            CompileError::StateSpaceTooLarge { limit: 32 }
        );
        let msg = format!("{}", CompileError::StateSpaceTooLarge { limit: 32 });
        assert!(msg.contains("32"));
    }

    #[test]
    fn dense_matches_generic_trace() {
        let g = families::clique(16);
        let compiled = CompiledProtocol::compile_default(&Absorb, 16).unwrap();
        let mut generic = Executor::new(&g, &Absorb, 99);
        let mut dense = DenseExecutor::new(&g, &compiled, 99);
        for _ in 0..2000 {
            assert_eq!(generic.step(), dense.step());
            for v in 0..16u32 {
                assert_eq!(generic.states()[v as usize], *dense.state_of(v));
            }
            assert_eq!(generic.is_stable(), dense.is_stable());
        }
    }

    #[test]
    fn dense_outcome_equals_generic() {
        for g in [families::clique(12), families::clique(30)] {
            let n = g.num_nodes();
            let compiled = CompiledProtocol::compile_default(&Absorb, n).unwrap();
            for seed in [1u64, 7, 42] {
                let a = Executor::new(&g, &Absorb, seed)
                    .run_until_stable(1 << 24)
                    .unwrap();
                let b = DenseExecutor::new(&g, &compiled, seed)
                    .run_until_stable(1 << 24)
                    .unwrap();
                assert_eq!(a, b, "seed {seed} on {g}");
            }
        }
    }

    #[test]
    fn clique_decoder_exact_for_many_sizes() {
        // The arithmetic clique decode must reproduce the scheduler's
        // edge-array pairs exactly for every size (row-boundary and
        // final-edge cases included).
        for n in [2u32, 3, 4, 5, 8, 13, 37, 100, 257] {
            let g = families::clique(n);
            let compiled = CompiledProtocol::compile_default(&Absorb, n).unwrap();
            let mut generic = Executor::new(&g, &Absorb, u64::from(n));
            let mut dense = DenseExecutor::new(&g, &compiled, u64::from(n));
            for _ in 0..1200 {
                assert_eq!(generic.step(), dense.step(), "clique({n})");
            }
        }
    }

    #[test]
    fn decoder_selection_by_graph_shape() {
        assert!(matches!(
            EdgeDecoder::for_graph(&families::clique(100)),
            EdgeDecoder::Clique { .. }
        ));
        assert!(matches!(
            EdgeDecoder::for_graph(&families::cycle(100)),
            EdgeDecoder::Packed(_)
        ));
        // Beyond the packed decoder's 16-bit node range, non-clique
        // graphs take the CSR path.
        assert!(matches!(
            EdgeDecoder::for_graph(&families::cycle(70_000)),
            EdgeDecoder::Csr { .. }
        ));
    }

    #[test]
    fn csr_decoder_matches_generic_trace_on_large_families() {
        // Star: every canonical edge sits in row 0 (all deltas zero);
        // cycle(300_000): m has 19 bits, so the bucket shift is 3 and
        // the per-edge deltas actually advance within buckets.
        for g in [
            families::cycle(70_000),
            families::star(70_000),
            families::cycle(300_000),
        ] {
            let n = g.num_nodes();
            let compiled = CompiledProtocol::compile_default(&Absorb, n).unwrap();
            let mut dense = DenseExecutor::new(&g, &compiled, 1234);
            assert!(matches!(dense.decoder, EdgeDecoder::Csr { .. }));
            let mut generic = Executor::new(&g, &Absorb, 1234);
            for _ in 0..3000 {
                assert_eq!(generic.step(), dense.step(), "{g}");
            }
        }
    }

    #[test]
    fn csr_builder_collapses_shift_on_row_jumps() {
        // Two edges whose rows are ~700k apart cannot share a bucket
        // within the u8 delta, so the builder must fall back to one
        // edge per bucket — and still decode exactly.
        let g = Graph::from_edges(700_000, &[(0, 1), (699_998, 699_999)]).unwrap();
        let decoder = EdgeDecoder::for_graph(&g);
        let EdgeDecoder::Csr { shift, .. } = &decoder else {
            panic!("expected CSR decoder, got {decoder:?}");
        };
        assert_eq!(*shift, 0);
        let compiled = CompiledProtocol::compile_default(&Absorb, 700_000).unwrap();
        let mut dense = DenseExecutor::new(&g, &compiled, 9);
        let mut generic = Executor::new(&g, &Absorb, 9);
        for _ in 0..500 {
            assert_eq!(generic.step(), dense.step());
        }
    }

    #[test]
    fn census_matches_generic() {
        let g = families::clique(8);
        let compiled = CompiledProtocol::compile_default(&Absorb, 8).unwrap();
        let mut generic = Executor::new(&g, &Absorb, 5);
        generic.enable_state_census();
        let mut dense = DenseExecutor::new(&g, &compiled, 5);
        dense.enable_state_census();
        let a = generic.run_until_stable(1 << 20).unwrap();
        let b = dense.run_until_stable(1 << 20).unwrap();
        assert_eq!(a.distinct_states, Some(2));
        assert_eq!(a, b);
    }

    #[test]
    fn reset_restores_initial_configuration() {
        let g = families::clique(8);
        let compiled = CompiledProtocol::compile_default(&Absorb, 8).unwrap();
        let mut exec = DenseExecutor::new(&g, &compiled, 1);
        exec.enable_state_census();
        exec.run_until_stable(1 << 20).unwrap();
        assert_eq!(exec.leader_count(), 1);
        exec.reset(2);
        assert_eq!(exec.steps(), 0);
        assert_eq!(exec.leader_count(), 8);
        assert_eq!(exec.outcome().distinct_states, Some(1));
        let out = exec.run_until_stable(1 << 20).unwrap();
        assert_eq!(out.leader_count, 1);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = families::clique(20);
        let compiled = CompiledProtocol::compile_default(&Absorb, 20).unwrap();
        let mut exec = DenseExecutor::new(&g, &compiled, 5);
        let err = exec.run_until_stable(1).unwrap_err();
        assert_eq!(err, NotStabilized { max_steps: 1 });
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn graph_larger_than_compilation_rejected() {
        let g = families::clique(6);
        let compiled = CompiledProtocol::compile_default(&Absorb, 5).unwrap();
        let _ = DenseExecutor::new(&g, &compiled, 0);
    }

    #[test]
    fn graph_smaller_than_compilation_accepted() {
        // A compilation for n + k nodes serves any graph with ≤ n + k
        // nodes (the churn path relies on this).
        let g = families::clique(4);
        let compiled = CompiledProtocol::compile_default(&Absorb, 7).unwrap();
        let mut exec = DenseExecutor::new(&g, &compiled, 3);
        assert_eq!(exec.state_ids().len(), 4);
        let out = exec.run_until_stable(1 << 20).unwrap();
        assert_eq!(out.leader_count, 1);
        exec.reset(4);
        assert_eq!(exec.state_ids().len(), 4);
        assert_eq!(exec.leader_count(), 4);
    }

    #[test]
    fn bounded_runs_consume_scheduler_exactly() {
        // run_steps must never draw past its budget: after any bounded
        // run the scheduler's draw count equals the applied step count
        // (for every decoder; the invariant fault injection rests on).
        for g in [families::clique(16), families::cycle(16)] {
            let n = g.num_nodes();
            let compiled = CompiledProtocol::compile_default(&Absorb, n).unwrap();
            let mut exec = DenseExecutor::new(&g, &compiled, 11);
            for k in [1u64, 7, 255, 256, 257, 1000] {
                exec.run_steps(k);
            }
            assert_eq!(exec.steps(), 1 + 7 + 255 + 256 + 257 + 1000);
            assert_eq!(exec.scheduler.steps(), exec.steps(), "{g}");
        }
    }

    #[test]
    fn corruption_matches_generic() {
        let g = families::clique(10);
        let compiled = CompiledProtocol::compile_default(&Absorb, 10).unwrap();
        let mut generic = Executor::new(&g, &Absorb, 21);
        let mut dense = DenseExecutor::new(&g, &compiled, 21);
        generic.run_steps(500);
        dense.run_steps(500);
        for v in [0u32, 3, 9] {
            generic.corrupt_to_initial(v);
            dense.corrupt_to_initial(v);
        }
        assert_eq!(generic.leader_count(), dense.leader_count());
        for _ in 0..2000 {
            assert_eq!(generic.step(), dense.step());
            assert_eq!(generic.is_stable(), dense.is_stable());
        }
        assert_eq!(generic.outcome(), dense.outcome());
    }
}
