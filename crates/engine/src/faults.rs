//! Fault injection and dynamic-graph scenarios.
//!
//! The paper's guarantees hold for a static graph and a clean initial
//! configuration. This module measures what happens *outside* those
//! assumptions — the regime of loosely-stabilizing and self-stabilizing
//! leader election (Kanaya et al. 2024, Yokota et al. 2020): states get
//! corrupted, nodes join and leave, edges are rewired, and the quantity
//! of interest becomes the **recovery time** after the last perturbation.
//!
//! # Model
//!
//! A [`FaultPlan`] is a deterministic schedule of [`FaultEvent`]s, each
//! an absolute interaction step plus a [`FaultKind`]. Before an
//! execution, the plan is [resolved](FaultPlan::resolve) against the
//! concrete initial graph with a dedicated fault RNG (seeded via
//! [`fault_seed`] from the trial seed, so fault randomness derives from
//! the same stable seed tree as everything else): every event becomes a
//! concrete action — the exact nodes to corrupt, or a fully materialized
//! successor [`Graph`] ("epoch"). [`run_with_faults`] then drives either
//! engine to each event step, applies the action between interactions,
//! and finally runs to stabilization, reporting [`Recovery`] metrics and
//! the leader-count [trajectory](FaultReport::trajectory).
//!
//! # Determinism contract
//!
//! Fault-injected runs keep every guarantee of fault-free ones:
//!
//! * an **empty plan is trace-identical** to a plain
//!   [`Executor::run_until_stable`] / [`DenseExecutor`] run (the session
//!   adds no RNG draws and no extra scheduler activity);
//! * the **generic, compiled and lazy engines produce identical
//!   results** under any plan: the scheduler's RNG stream continues
//!   across graph changes ([`crate::EdgeScheduler::set_graph`]), bounded
//!   runs never draw past an event step, and every engine applies the
//!   identical resolved actions at the identical steps (topology changes
//!   rebuild the dense engines' per-graph edge decoders);
//! * results are **independent of thread count** in the Monte-Carlo
//!   harness, because the fault seed of trial `i` derives from trial
//!   `i`'s seed alone.
//!
//! # What "stable" means under faults
//!
//! Stability oracles certify the *fault-free* stability condition. The
//! reported (re)stabilization step is the first step at which that
//! condition holds again — e.g. "a unique leader output exists" for
//! [`crate::LeaderCountOracle`] protocols. A fault can of course break
//! the condition again later; that is precisely what the next fault's
//! trajectory entry and the post-last-fault reconvergence time measure.
//! If the unique-leader condition is never reached again within the
//! budget and no leader output remains, the run records a permanently
//! [lost leader](Recovery::leader_lost) — the fate of, say, the token
//! protocol once churn removes every candidate.
//!
//! # Example
//!
//! Corrupt a third of the nodes mid-election and measure recovery:
//!
//! ```
//! use popele_engine::faults::{fault_seed, run_with_faults, FaultKind, FaultPlan};
//! use popele_engine::{Executor, LeaderCountOracle, Protocol, Role};
//! use popele_graph::families;
//!
//! #[derive(Clone, Copy)]
//! struct Absorb; // initiator absorbs the responder's leadership
//! impl Protocol for Absorb {
//!     type State = bool;
//!     type Oracle = LeaderCountOracle;
//!     fn initial_state(&self, _node: u32) -> bool { true }
//!     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
//!         if *a && *b { (true, false) } else { (*a, *b) }
//!     }
//!     fn output(&self, s: &bool) -> Role {
//!         if *s { Role::Leader } else { Role::Follower }
//!     }
//!     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
//! }
//!
//! let g = families::clique(24);
//! let plan = FaultPlan::at(2_000, FaultKind::CorruptNodes { count: 8 });
//! let resolved = plan.resolve(&g, fault_seed(7));
//! let mut exec = Executor::new(&g, &Absorb, 7);
//! let report = run_with_faults(&mut exec, &resolved, 1 << 22);
//! let outcome = report.result.expect("recovers within the budget");
//! assert_eq!(outcome.leader_count, 1);
//! assert_eq!(report.recovery.last_fault_step, 2_000);
//! // Corruption re-promoted 8 nodes; the trajectory records the spike.
//! assert!(report.trajectory[0].leaders > 1);
//! // Reconvergence is measured from the last fault.
//! assert_eq!(
//!     report.recovery.reconvergence_steps,
//!     Some(outcome.stabilization_step - 2_000),
//! );
//! ```

use crate::dense::{DenseExecutor, LazyDenseExecutor};
use crate::executor::{Executor, NotStabilized, Outcome};
use crate::protocol::Protocol;
use popele_graph::properties::is_connected;
use popele_graph::{Graph, NodeId};
use popele_math::rng::SeedSeq;
use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

/// One kind of perturbation, before resolution picks concrete targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Reset `count` distinct fault-RNG-chosen nodes to their initial
    /// states (a crash-and-clean-rejoin burst). Capped at the current
    /// node count.
    CorruptNodes {
        /// Number of nodes to reset.
        count: u32,
    },
    /// Insert one fault-RNG-chosen missing edge. Skipped (with the
    /// attempt recorded in [`ResolvedFaultPlan::skipped`]) when no
    /// missing edge is found — e.g. on a complete graph.
    AddEdge,
    /// Delete one fault-RNG-chosen edge whose removal keeps the graph
    /// connected. Skipped when no removable edge is found.
    RemoveEdge,
    /// Delete one removable edge and insert one missing edge elsewhere
    /// (never re-inserting the deleted edge). Skipped when either half
    /// is impossible.
    RewireEdge,
    /// Append one new node (id `n`, in its initial state) attached to
    /// `degree` distinct fault-RNG-chosen existing nodes.
    JoinNode {
        /// Number of attachment edges (at least 1, capped at `n`).
        degree: u32,
    },
    /// Remove one fault-RNG-chosen node whose departure keeps the graph
    /// connected; the last node is relabelled to fill the id gap.
    /// Skipped when no such node exists (or `n` would drop below 2).
    LeaveNode,
}

/// A scheduled perturbation: *when* (absolute interaction step) and
/// *what* ([`FaultKind`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultEvent {
    /// Interaction step the fault strikes at (it is applied after
    /// exactly this many interactions have run).
    pub step: u64,
    /// What happens.
    pub kind: FaultKind,
}

/// A deterministic, seed-derived schedule of fault events.
///
/// The plan itself holds no randomness — *which* nodes/edges an event
/// hits is decided at [resolution](FaultPlan::resolve) time by a fault
/// RNG, so the same plan yields an independent realization per trial
/// while staying fully reproducible. An empty plan (the
/// [`Default`]) is the fault-free baseline and is guaranteed to be
/// trace-identical to not using the fault machinery at all.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct FaultPlan {
    /// The scheduled events. Resolution sorts them by step (stably), so
    /// construction order only matters between events sharing a step.
    pub events: Vec<FaultEvent>,
}

impl FaultPlan {
    /// The empty (fault-free) plan.
    #[must_use]
    pub fn empty() -> Self {
        Self::default()
    }

    /// A single-event plan.
    #[must_use]
    pub fn at(step: u64, kind: FaultKind) -> Self {
        Self {
            events: vec![FaultEvent { step, kind }],
        }
    }

    /// Appends an event (builder style).
    #[must_use]
    pub fn and(mut self, step: u64, kind: FaultKind) -> Self {
        self.events.push(FaultEvent { step, kind });
        self
    }

    /// A rate-style schedule: `count` repetitions of `kind` at steps
    /// `first, first + interval, first + 2·interval, …`.
    ///
    /// # Panics
    ///
    /// Panics if `interval` is zero and `count > 1` (the schedule would
    /// not advance).
    #[must_use]
    pub fn periodic(kind: FaultKind, first: u64, interval: u64, count: u32) -> Self {
        assert!(
            interval > 0 || count <= 1,
            "a periodic plan needs a nonzero interval"
        );
        Self {
            events: (0..u64::from(count))
                .map(|i| FaultEvent {
                    step: first + i * interval,
                    kind,
                })
                .collect(),
        }
    }

    /// Whether the plan schedules nothing.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Upper bound on how many nodes the graph can *gain* under this
    /// plan (the number of [`FaultKind::JoinNode`] events) — what the
    /// compiled engine must size its tables for.
    #[must_use]
    pub fn max_joins(&self) -> u32 {
        self.events
            .iter()
            .filter(|e| matches!(e.kind, FaultKind::JoinNode { .. }))
            .count() as u32
    }

    /// Resolves the schedule against a concrete initial graph: picks
    /// every corrupted node and materializes every post-event graph
    /// ("epoch"), consuming the fault RNG in event order. The result is
    /// a pure function of `(self, initial, seed)`.
    ///
    /// Events whose kind is impossible on the current graph (no missing
    /// edge to add, no removable edge, no removable node) are dropped
    /// and counted in [`ResolvedFaultPlan::skipped`].
    #[must_use]
    pub fn resolve(&self, initial: &Graph, seed: u64) -> ResolvedFaultPlan {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut events = self.events.clone();
        events.sort_by_key(|e| e.step);
        let mut epochs: Vec<Graph> = Vec::new();
        let mut ops: Vec<ResolvedFault> = Vec::new();
        let mut skipped = 0usize;

        for event in &events {
            // The working graph is the latest epoch (the caller's
            // `initial` until the topology first diverges) — borrowed,
            // never cloned.
            let graph = epochs.last().unwrap_or(initial);
            match event.kind {
                FaultKind::CorruptNodes { count } => {
                    let nodes = sample_distinct(&mut rng, graph.num_nodes(), count);
                    if nodes.is_empty() {
                        skipped += 1;
                        continue;
                    }
                    ops.push(ResolvedFault {
                        step: event.step,
                        action: FaultAction::Corrupt(nodes),
                    });
                }
                FaultKind::AddEdge => match sample_missing_edge(&mut rng, graph, None) {
                    Some((u, v)) => {
                        let next = graph.with_edges(&[(u, v)]).expect("sampled a non-edge");
                        push_epoch(&mut epochs, &mut ops, event.step, next, None);
                    }
                    None => skipped += 1,
                },
                FaultKind::RemoveEdge => match sample_removable_edge(&mut rng, graph) {
                    Some(reduced) => {
                        push_epoch(&mut epochs, &mut ops, event.step, reduced, None);
                    }
                    None => skipped += 1,
                },
                FaultKind::RewireEdge => {
                    let Some(reduced) = sample_removable_edge(&mut rng, graph) else {
                        skipped += 1;
                        continue;
                    };
                    // Never re-insert what was just removed: the rewire
                    // must actually move an edge.
                    let removed = removed_edge(graph, &reduced);
                    match sample_missing_edge(&mut rng, &reduced, Some(removed)) {
                        Some((u, v)) => {
                            let next = reduced.with_edges(&[(u, v)]).expect("sampled a non-edge");
                            push_epoch(&mut epochs, &mut ops, event.step, next, None);
                        }
                        None => skipped += 1,
                    }
                }
                FaultKind::JoinNode { degree } => {
                    let n = graph.num_nodes();
                    let anchors = sample_distinct(&mut rng, n, degree.max(1));
                    let mut edges = graph.edges().to_vec();
                    edges.extend(anchors.iter().map(|&a| (a, n)));
                    let next =
                        Graph::from_edges(n + 1, &edges).expect("join keeps the graph valid");
                    push_epoch(&mut epochs, &mut ops, event.step, next, Some(Churn::Join));
                }
                FaultKind::LeaveNode => match sample_removable_node(&mut rng, graph) {
                    Some((next, removed)) => {
                        push_epoch(
                            &mut epochs,
                            &mut ops,
                            event.step,
                            next,
                            Some(Churn::Leave(removed)),
                        );
                    }
                    None => skipped += 1,
                },
            }
        }
        ResolvedFaultPlan {
            epochs,
            ops,
            skipped,
        }
    }
}

/// Internal tag for `push_epoch`: what node-count change accompanies a
/// topology epoch.
enum Churn {
    Join,
    Leave(NodeId),
}

/// Records a topology epoch and its op (the epoch list's tail is the
/// resolution loop's working graph).
fn push_epoch(
    epochs: &mut Vec<Graph>,
    ops: &mut Vec<ResolvedFault>,
    step: u64,
    next: Graph,
    churn: Option<Churn>,
) {
    let epoch = epochs.len();
    let action = match churn {
        None => FaultAction::Reshape { epoch },
        Some(Churn::Join) => FaultAction::Join { epoch },
        Some(Churn::Leave(removed)) => FaultAction::Leave { epoch, removed },
    };
    ops.push(ResolvedFault { step, action });
    epochs.push(next);
}

/// `count` distinct node ids sampled without replacement (partial
/// Fisher–Yates; deterministic in the RNG stream).
fn sample_distinct(rng: &mut SmallRng, n: u32, count: u32) -> Vec<NodeId> {
    let k = count.min(n) as usize;
    let mut pool: Vec<NodeId> = (0..n).collect();
    for i in 0..k {
        let j = rng.random_range(i..pool.len());
        pool.swap(i, j);
    }
    pool.truncate(k);
    pool
}

/// Rejection-samples a missing edge `(u, v)` with `u < v`, optionally
/// excluding one pair. Bounded tries keep resolution deterministic and
/// fast even on near-complete graphs.
fn sample_missing_edge(
    rng: &mut SmallRng,
    graph: &Graph,
    exclude: Option<(NodeId, NodeId)>,
) -> Option<(NodeId, NodeId)> {
    let n = graph.num_nodes();
    if n < 2 {
        return None;
    }
    for _ in 0..64 {
        let u = rng.random_range(0..n);
        let v = rng.random_range(0..n);
        let (u, v) = (u.min(v), u.max(v));
        if u != v && !graph.has_edge(u, v) && exclude != Some((u, v)) {
            return Some((u, v));
        }
    }
    None
}

/// Rejection-samples an edge whose removal keeps the graph connected
/// (and non-edgeless), returning the reduced graph.
fn sample_removable_edge(rng: &mut SmallRng, graph: &Graph) -> Option<Graph> {
    let m = graph.num_edges();
    if m < 2 {
        return None;
    }
    for _ in 0..16 {
        let e = rng.random_range(0..m);
        let edges: Vec<(NodeId, NodeId)> = graph
            .edges()
            .iter()
            .enumerate()
            .filter(|&(i, _)| i != e)
            .map(|(_, &uv)| uv)
            .collect();
        let candidate =
            Graph::from_edges(graph.num_nodes(), &edges).expect("subset of a valid edge list");
        if is_connected(&candidate) {
            return Some(candidate);
        }
    }
    None
}

/// The one edge present in `graph` but not in `reduced`.
fn removed_edge(graph: &Graph, reduced: &Graph) -> (NodeId, NodeId) {
    *graph
        .edges()
        .iter()
        .find(|&&(u, v)| !reduced.has_edge(u, v))
        .expect("reduced graph is missing exactly one edge")
}

/// Rejection-samples a node whose removal keeps the graph connected,
/// returning the reduced, relabelled graph (last node takes the removed
/// node's id) and the removed id.
fn sample_removable_node(rng: &mut SmallRng, graph: &Graph) -> Option<(Graph, NodeId)> {
    let n = graph.num_nodes();
    if n <= 2 {
        return None;
    }
    for _ in 0..16 {
        let v = rng.random_range(0..n);
        let last = n - 1;
        // Drop edges at `v`, relabel `last → v` everywhere else.
        let relabel = |w: NodeId| if w == last { v } else { w };
        let edges: Vec<(NodeId, NodeId)> = graph
            .edges()
            .iter()
            .filter(|&&(a, b)| a != v && b != v)
            .map(|&(a, b)| {
                let (a, b) = (relabel(a), relabel(b));
                (a.min(b), a.max(b))
            })
            .collect();
        if edges.is_empty() {
            continue;
        }
        let candidate = Graph::from_edges(n - 1, &edges).expect("relabelling keeps edges valid");
        if is_connected(&candidate) {
            return Some((candidate, v));
        }
    }
    None
}

/// A resolved action, ready to apply between two interactions.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FaultAction {
    /// Reset these nodes to their initial states.
    Corrupt(Vec<NodeId>),
    /// Switch to epoch graph `epoch` (same node count).
    Reshape {
        /// Index into [`ResolvedFaultPlan::epochs`].
        epoch: usize,
    },
    /// Switch to epoch graph `epoch`, which has one extra node (id `n`).
    Join {
        /// Index into [`ResolvedFaultPlan::epochs`].
        epoch: usize,
    },
    /// Switch to epoch graph `epoch`, which lacks node `removed` (the
    /// former last node is relabelled to `removed`).
    Leave {
        /// Index into [`ResolvedFaultPlan::epochs`].
        epoch: usize,
        /// The node that left.
        removed: NodeId,
    },
}

/// One resolved fault: step plus concrete action.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedFault {
    /// Interaction step the action is applied after.
    pub step: u64,
    /// The concrete action.
    pub action: FaultAction,
}

/// A [`FaultPlan`] resolved against a concrete graph and fault seed:
/// the materialized epoch graphs plus the step-ordered action list.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResolvedFaultPlan {
    /// Post-event graphs, in event order; actions reference them by
    /// index. Owned here so executors can borrow them for the whole run.
    pub epochs: Vec<Graph>,
    /// Step-ordered concrete actions.
    pub ops: Vec<ResolvedFault>,
    /// Events dropped because their kind was impossible on the graph at
    /// their step (e.g. [`FaultKind::AddEdge`] on a complete graph).
    pub skipped: usize,
}

/// The executor surface the fault session drives — implemented by
/// [`Executor`], [`DenseExecutor`] and [`LazyDenseExecutor`], which is
/// what makes fault injection engine-agnostic (and lets the differential
/// tests pin all engines to identical faulted runs).
pub trait FaultTarget<'g> {
    /// Steps applied so far.
    fn steps(&self) -> u64;
    /// Runs exactly `k` interactions (without drawing the scheduler
    /// stream past them).
    fn run_steps(&mut self, k: u64);
    /// Runs until the stability oracle reports a stable configuration
    /// or `max_steps` total interactions have been applied.
    ///
    /// # Errors
    ///
    /// Returns [`NotStabilized`] when the budget is exhausted first.
    fn run_until_stable(&mut self, max_steps: u64) -> Result<Outcome, NotStabilized>;
    /// Runs while the oracle keeps reporting stability, returning the
    /// step of the first violation (`None`: the budget passed with
    /// stability intact) — the holding-time loop of [`crate::stabilize`].
    fn run_while_stable(&mut self, max_steps: u64) -> Option<u64>;
    /// Snapshot of the current outcome.
    fn outcome(&self) -> Outcome;
    /// Current number of leader-output nodes.
    fn leader_count(&self) -> usize;
    /// Resets node `v` to its initial state.
    fn corrupt_to_initial(&mut self, v: NodeId);
    /// Rebinds to an equal-node-count graph.
    fn set_graph(&mut self, graph: &'g Graph);
    /// Rebinds to a graph with one extra node.
    fn join_node(&mut self, graph: &'g Graph);
    /// Rebinds to a graph with one node less (`removed` left; the last
    /// node was relabelled to its id).
    fn leave_node(&mut self, graph: &'g Graph, removed: NodeId);
}

/// Implements [`FaultTarget`] by delegating every method to the
/// executor's inherent method of the same name. The engines expose
/// identical fault-primitive surfaces by design; one definition serves
/// all three, and a new trait method fails to compile until every
/// engine grows the matching inherent counterpart.
macro_rules! impl_fault_target {
    ($($exec:ident),+ $(,)?) => {$(
        impl<'g, P: Protocol> FaultTarget<'g> for $exec<'g, P> {
            fn steps(&self) -> u64 {
                $exec::steps(self)
            }
            fn run_steps(&mut self, k: u64) {
                $exec::run_steps(self, k);
            }
            fn run_until_stable(&mut self, max_steps: u64) -> Result<Outcome, NotStabilized> {
                $exec::run_until_stable(self, max_steps)
            }
            fn run_while_stable(&mut self, max_steps: u64) -> Option<u64> {
                $exec::run_while_stable(self, max_steps)
            }
            fn outcome(&self) -> Outcome {
                $exec::outcome(self)
            }
            fn leader_count(&self) -> usize {
                $exec::leader_count(self)
            }
            fn corrupt_to_initial(&mut self, v: NodeId) {
                $exec::corrupt_to_initial(self, v);
            }
            fn set_graph(&mut self, graph: &'g Graph) {
                $exec::set_graph(self, graph);
            }
            fn join_node(&mut self, graph: &'g Graph) {
                $exec::join_node(self, graph);
            }
            fn leave_node(&mut self, graph: &'g Graph, removed: NodeId) {
                $exec::leave_node(self, graph, removed);
            }
        }
    )+};
}

impl_fault_target!(Executor, DenseExecutor, LazyDenseExecutor);

/// Leader count observed right after a fault was applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TrajectoryPoint {
    /// The fault's step.
    pub step: u64,
    /// Leader-output nodes immediately after the fault.
    pub leaders: usize,
}

/// Recovery-oriented summary of a faulted run (all `Copy`, so trial
/// records can carry it).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Recovery {
    /// Step of the last applied fault (0 when no fault applied).
    pub last_fault_step: u64,
    /// Number of faults actually applied (resolution skips impossible
    /// events; the budget can cut trailing ones).
    pub faults_applied: u32,
    /// Steps from the last fault to renewed oracle stability; `None`
    /// when the budget ran out first.
    pub reconvergence_steps: Option<u64>,
    /// Maximum leader count observed at fault boundaries and at the end
    /// — how far the *faults* knocked the system from the unique leader
    /// (the initial configuration, where e.g. every token-protocol node
    /// is a candidate, deliberately does not count).
    pub peak_leaders: u32,
    /// Leader count at the end of the run.
    pub final_leaders: u32,
    /// The run ended with **zero** leader outputs and no stability:
    /// under monotone protocols (token: no candidate left) the unique
    /// leader is permanently lost.
    pub leader_lost: bool,
}

/// What a faulted run did, in full.
#[derive(Debug, Clone)]
pub struct FaultReport {
    /// Final outcome: stabilized (with the stabilization step counted
    /// from step 0) or out of budget.
    pub result: Result<Outcome, NotStabilized>,
    /// Leader counts right after each applied fault, in step order.
    pub trajectory: Vec<TrajectoryPoint>,
    /// The summary metrics.
    pub recovery: Recovery,
}

/// The stream index (child of a trial seed) reserved for fault
/// resolution, so fault randomness never collides with the scheduler's.
const FAULT_STREAM: u64 = 0xFA17;

/// Derives the fault-resolution seed of a trial from the trial's seed —
/// the same stable-derivation discipline as trial seeds themselves, so
/// a trial's fault realization is independent of thread count, engine,
/// and grid composition.
#[must_use]
pub fn fault_seed(trial_seed: u64) -> u64 {
    SeedSeq::new(trial_seed).child(FAULT_STREAM)
}

/// Drives one execution through a resolved fault plan: run to each
/// fault's step, apply it, and after the last one run to stabilization
/// (or the `max_steps` budget, counted from step 0). Faults scheduled
/// beyond the budget are not applied.
///
/// With an empty plan this is exactly `exec.run_until_stable(max_steps)`
/// — no extra RNG draws, no behavioural difference (the differential
/// tests pin this).
///
/// Always pass a **finite** `max_steps`: faults can push a protocol
/// into configurations that never restabilize (e.g. corruption minting
/// surplus tokens whose whites demote every token-protocol candidate —
/// the [`Recovery::leader_lost`] outcome), and an unbounded budget
/// would then loop forever.
pub fn run_with_faults<'g, T: FaultTarget<'g>>(
    exec: &mut T,
    resolved: &'g ResolvedFaultPlan,
    max_steps: u64,
) -> FaultReport {
    let trace = drive_ops(exec, resolved, max_steps);
    let result = exec.run_until_stable(max_steps);
    let final_leaders = exec.leader_count();
    let peak = trace.peak.max(final_leaders);
    FaultReport {
        recovery: Recovery {
            last_fault_step: trace.last_fault_step,
            faults_applied: trace.faults_applied,
            reconvergence_steps: result
                .as_ref()
                .ok()
                .map(|o| o.stabilization_step - trace.last_fault_step),
            peak_leaders: peak as u32,
            final_leaders: final_leaders as u32,
            leader_lost: result.is_err() && final_leaders == 0,
        },
        result,
        trajectory: trace.trajectory,
    }
}

/// What driving an execution through a resolved plan's ops observed —
/// the shared first phase of [`run_with_faults`] and the holding-time
/// driver ([`crate::stabilize::run_to_hold_with_faults`]).
pub(crate) struct OpsTrace {
    /// Leader counts right after each applied fault, in step order.
    pub trajectory: Vec<TrajectoryPoint>,
    /// Step of the last applied fault (0 when none applied).
    pub last_fault_step: u64,
    /// Faults actually applied (the budget can cut trailing ones).
    pub faults_applied: u32,
    /// Maximum leader count observed at fault boundaries.
    pub peak: usize,
}

/// Runs `exec` to each in-budget op's step and applies it, recording
/// the leader-count trajectory. Leaves the execution right after the
/// last applied fault; the caller decides what to run to afterwards
/// (stabilization, or stabilization *plus* a holding phase).
pub(crate) fn drive_ops<'g, T: FaultTarget<'g>>(
    exec: &mut T,
    resolved: &'g ResolvedFaultPlan,
    max_steps: u64,
) -> OpsTrace {
    let mut trace = OpsTrace {
        trajectory: Vec::with_capacity(resolved.ops.len()),
        last_fault_step: 0,
        faults_applied: 0,
        peak: 0,
    };
    for op in &resolved.ops {
        if op.step > max_steps {
            break;
        }
        exec.run_steps(op.step - exec.steps());
        match &op.action {
            FaultAction::Corrupt(nodes) => {
                for &v in nodes {
                    exec.corrupt_to_initial(v);
                }
            }
            FaultAction::Reshape { epoch } => exec.set_graph(&resolved.epochs[*epoch]),
            FaultAction::Join { epoch } => exec.join_node(&resolved.epochs[*epoch]),
            FaultAction::Leave { epoch, removed } => {
                exec.leave_node(&resolved.epochs[*epoch], *removed);
            }
        }
        trace.last_fault_step = op.step;
        trace.faults_applied += 1;
        let leaders = exec.leader_count();
        trace.peak = trace.peak.max(leaders);
        trace.trajectory.push(TrajectoryPoint {
            step: op.step,
            leaders,
        });
    }
    trace
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::CompiledProtocol;
    use crate::protocol::{LeaderCountOracle, Role};
    use popele_graph::families;

    /// Initiator absorbs the responder's leadership (stabilizes on
    /// cliques).
    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn plan_builders() {
        let plan = FaultPlan::at(10, FaultKind::AddEdge).and(5, FaultKind::LeaveNode);
        assert_eq!(plan.events.len(), 2);
        assert!(!plan.is_empty());
        assert!(FaultPlan::empty().is_empty());
        let periodic = FaultPlan::periodic(FaultKind::RewireEdge, 100, 50, 3);
        assert_eq!(
            periodic.events.iter().map(|e| e.step).collect::<Vec<_>>(),
            vec![100, 150, 200]
        );
        assert_eq!(periodic.max_joins(), 0);
        assert_eq!(
            FaultPlan::periodic(FaultKind::JoinNode { degree: 2 }, 0, 10, 4).max_joins(),
            4
        );
    }

    #[test]
    fn resolution_is_deterministic_and_sorted() {
        let g = families::cycle(12);
        let plan = FaultPlan::at(500, FaultKind::CorruptNodes { count: 3 })
            .and(100, FaultKind::RewireEdge)
            .and(300, FaultKind::JoinNode { degree: 2 });
        let a = plan.resolve(&g, 9);
        let b = plan.resolve(&g, 9);
        assert_eq!(a, b);
        let steps: Vec<u64> = a.ops.iter().map(|o| o.step).collect();
        assert_eq!(steps, vec![100, 300, 500]);
        // A different fault seed picks different targets.
        let c = plan.resolve(&g, 10);
        assert_ne!(a, c);
    }

    #[test]
    fn add_edge_on_clique_is_skipped() {
        let g = families::clique(6);
        let resolved = FaultPlan::at(1, FaultKind::AddEdge).resolve(&g, 0);
        assert_eq!(resolved.ops.len(), 0);
        assert_eq!(resolved.skipped, 1);
    }

    #[test]
    fn remove_edge_keeps_connectivity() {
        let g = families::cycle(8); // every edge is a bridge-free cycle edge
        let resolved = FaultPlan::at(1, FaultKind::RemoveEdge).resolve(&g, 4);
        assert_eq!(resolved.epochs.len(), 1);
        assert!(is_connected(&resolved.epochs[0]));
        assert_eq!(resolved.epochs[0].num_edges(), 7);
        // A path graph's every edge is a bridge: removal impossible.
        let path = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let resolved = FaultPlan::at(1, FaultKind::RemoveEdge).resolve(&path, 4);
        assert_eq!(resolved.skipped, 1);
    }

    #[test]
    fn leave_node_never_disconnects_a_star() {
        // Only leaves are removable on a star — the centre would
        // disconnect it — so every resolution must remove a leaf.
        let g = families::star(8);
        for seed in 0..10 {
            let resolved = FaultPlan::at(1, FaultKind::LeaveNode).resolve(&g, seed);
            if let Some(ResolvedFault {
                action: FaultAction::Leave { epoch, removed },
                ..
            }) = resolved.ops.first()
            {
                assert_ne!(*removed, 0, "centre removed");
                assert!(is_connected(&resolved.epochs[*epoch]));
                assert_eq!(resolved.epochs[*epoch].num_nodes(), 7);
            } else {
                panic!("leave event skipped on a star with 7 leaves");
            }
        }
    }

    #[test]
    fn faulted_session_recovers_and_reports() {
        let g = families::clique(16);
        let plan = FaultPlan::at(1_000, FaultKind::CorruptNodes { count: 5 });
        let resolved = plan.resolve(&g, fault_seed(3));
        let mut exec = Executor::new(&g, &Absorb, 3);
        let report = run_with_faults(&mut exec, &resolved, 1 << 22);
        let outcome = report.result.expect("recovers");
        assert_eq!(outcome.leader_count, 1);
        assert_eq!(report.recovery.last_fault_step, 1_000);
        assert_eq!(report.recovery.faults_applied, 1);
        assert!(report.recovery.peak_leaders >= 5);
        assert_eq!(report.recovery.final_leaders, 1);
        assert!(!report.recovery.leader_lost);
        assert_eq!(report.trajectory.len(), 1);
        assert_eq!(
            report.recovery.reconvergence_steps,
            Some(outcome.stabilization_step - 1_000)
        );
    }

    #[test]
    fn faults_beyond_the_budget_are_not_applied() {
        let g = families::clique(8);
        let plan = FaultPlan::at(1_000_000_000, FaultKind::CorruptNodes { count: 8 });
        let resolved = plan.resolve(&g, fault_seed(1));
        let mut exec = Executor::new(&g, &Absorb, 1);
        let report = run_with_faults(&mut exec, &resolved, 1 << 22);
        assert_eq!(report.recovery.faults_applied, 0);
        assert_eq!(report.recovery.last_fault_step, 0);
        assert!(report.result.is_ok());
    }

    #[test]
    fn churned_session_matches_across_engines() {
        let g = families::cycle(20);
        let plan = FaultPlan::at(200, FaultKind::JoinNode { degree: 2 })
            .and(400, FaultKind::LeaveNode)
            .and(600, FaultKind::RewireEdge)
            .and(800, FaultKind::CorruptNodes { count: 4 });
        let resolved = plan.resolve(&g, fault_seed(11));
        assert!(resolved.ops.len() >= 3, "most events resolve on a cycle");

        // Absorb cannot stabilize on a cycle (non-adjacent leaders never
        // merge), so both engines must time out identically — which
        // exercises every churn path on both sides of the budget.
        let mut generic = Executor::new(&g, &Absorb, 11);
        let generic_report = run_with_faults(&mut generic, &resolved, 300_000);

        let compiled = CompiledProtocol::compile_default(&Absorb, 20 + plan.max_joins()).unwrap();
        let mut dense = DenseExecutor::new(&g, &compiled, 11);
        let dense_report = run_with_faults(&mut dense, &resolved, 300_000);

        let mut lazy = LazyDenseExecutor::new(&g, &Absorb, 11);
        let lazy_report = run_with_faults(&mut lazy, &resolved, 300_000);

        assert_eq!(generic_report.result, dense_report.result);
        assert_eq!(generic_report.trajectory, dense_report.trajectory);
        assert_eq!(generic_report.recovery, dense_report.recovery);
        assert_eq!(generic_report.result, lazy_report.result);
        assert_eq!(generic_report.trajectory, lazy_report.trajectory);
        assert_eq!(generic_report.recovery, lazy_report.recovery);
    }
}
