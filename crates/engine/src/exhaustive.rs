//! Brute-force stability checking by configuration-space search.
//!
//! The definition of stability (Section 2.2) quantifies over *all*
//! configurations reachable under any schedule: `x` is stable if every
//! configuration reachable from `x` has the same output vector. This module
//! implements that definition literally by BFS over the reachable
//! configuration space. It is exponential and intended only for validating
//! the incremental [`crate::StabilityOracle`]s on tiny instances (`n ≤ 6`,
//! small state spaces).

use crate::dense::{CompiledProtocol, StateId};
use crate::protocol::{Protocol, Role};
use popele_graph::Graph;
use std::collections::{HashSet, VecDeque};

/// Maximum number of configurations explored before giving up.
pub const DEFAULT_CONFIG_LIMIT: usize = 2_000_000;

/// Outcome of an exhaustive reachability check.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Verdict {
    /// Every reachable configuration has the same outputs as the start.
    Stable,
    /// Some reachable configuration changes some node's output.
    Unstable,
    /// The search exceeded the configuration limit.
    Inconclusive,
}

/// Checks, by exhaustive search, whether `config` is a *stable*
/// configuration of `protocol` on `graph`.
///
/// # Panics
///
/// Panics if `config.len() != graph.num_nodes()`.
#[must_use]
pub fn check_stability<P: Protocol>(
    protocol: &P,
    graph: &Graph,
    config: &[P::State],
    limit: usize,
) -> Verdict {
    assert_eq!(
        config.len(),
        graph.num_nodes() as usize,
        "configuration size must match graph"
    );
    let base_outputs: Vec<Role> = config.iter().map(|s| protocol.output(s)).collect();

    let mut seen: HashSet<Vec<P::State>> = HashSet::new();
    let mut queue: VecDeque<Vec<P::State>> = VecDeque::new();
    seen.insert(config.to_vec());
    queue.push_back(config.to_vec());

    while let Some(current) = queue.pop_front() {
        // Compare outputs of this configuration with the base.
        for (s, &expected) in current.iter().zip(&base_outputs) {
            if protocol.output(s) != expected {
                return Verdict::Unstable;
            }
        }
        // Expand: every ordered adjacent pair.
        for &(u, v) in graph.edges() {
            for (a, b) in [(u, v), (v, u)] {
                let (ia, ib) = (a as usize, b as usize);
                let (na, nb) = protocol.transition(&current[ia], &current[ib]);
                if na == current[ia] && nb == current[ib] {
                    continue;
                }
                let mut next = current.clone();
                next[ia] = na;
                next[ib] = nb;
                if seen.insert(next.clone()) {
                    if seen.len() > limit {
                        return Verdict::Inconclusive;
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    Verdict::Stable
}

/// Checks whether `config` is stable **and correct** (exactly one leader).
#[must_use]
pub fn check_stable_and_correct<P: Protocol>(
    protocol: &P,
    graph: &Graph,
    config: &[P::State],
    limit: usize,
) -> Verdict {
    let leaders = config
        .iter()
        .filter(|s| protocol.output(s) == Role::Leader)
        .count();
    if leaders != 1 {
        return Verdict::Unstable;
    }
    check_stability(protocol, graph, config, limit)
}

/// Exhaustively verifies that the protocol's own oracle agrees with the
/// definition of stability along one sampled execution.
///
/// Runs an execution for at most `max_steps` interactions, and at every
/// step compares the oracle's verdict with [`check_stable_and_correct`].
/// Returns the number of steps checked.
///
/// # Panics
///
/// Panics (with a descriptive message) on the first disagreement, or if
/// the exhaustive search is inconclusive.
pub fn validate_oracle_on_execution<P: Protocol>(
    protocol: &P,
    graph: &Graph,
    seed: u64,
    max_steps: u64,
    limit: usize,
) -> u64 {
    use crate::executor::Executor;

    let mut exec = Executor::new(graph, protocol, seed);
    for step in 0..=max_steps {
        let exhaustive = check_stable_and_correct(protocol, graph, exec.states(), limit);
        let oracle = exec.is_stable();
        match exhaustive {
            Verdict::Inconclusive => panic!("exhaustive search inconclusive at step {step}"),
            Verdict::Stable => assert!(
                oracle,
                "oracle says unstable but configuration is stable at step {step}: {:?}",
                exec.states()
            ),
            Verdict::Unstable => assert!(
                !oracle,
                "oracle says stable but configuration is not at step {step}: {:?}",
                exec.states()
            ),
        }
        if oracle {
            return step;
        }
        exec.step();
    }
    max_steps
}

/// Dense-id fast path of [`check_stability`]: identical search, but
/// configurations are `Vec<StateId>` (hashed as flat `u16`s) and
/// successors come from the precomputed table instead of re-evaluating
/// `transition` — typically an order of magnitude more configurations
/// per second, which widens the instance sizes the oracle-validation
/// machinery can afford.
///
/// # Panics
///
/// Panics if `config.len() != graph.num_nodes()` or an id is out of
/// range for the compiled table.
#[must_use]
pub fn check_stability_compiled<P: Protocol>(
    compiled: &CompiledProtocol<P>,
    graph: &Graph,
    config: &[StateId],
    limit: usize,
) -> Verdict {
    assert_eq!(
        config.len(),
        graph.num_nodes() as usize,
        "configuration size must match graph"
    );
    let base_outputs: Vec<Role> = config.iter().map(|&s| compiled.role(s)).collect();

    let mut seen: HashSet<Vec<StateId>> = HashSet::new();
    let mut queue: VecDeque<Vec<StateId>> = VecDeque::new();
    seen.insert(config.to_vec());
    queue.push_back(config.to_vec());

    while let Some(current) = queue.pop_front() {
        for (&s, &expected) in current.iter().zip(&base_outputs) {
            if compiled.role(s) != expected {
                return Verdict::Unstable;
            }
        }
        for &(u, v) in graph.edges() {
            for (a, b) in [(u, v), (v, u)] {
                let (ia, ib) = (a as usize, b as usize);
                let (na, nb) = compiled.successor(current[ia], current[ib]);
                if na == current[ia] && nb == current[ib] {
                    continue;
                }
                let mut next = current.clone();
                next[ia] = na;
                next[ib] = nb;
                if seen.insert(next.clone()) {
                    if seen.len() > limit {
                        return Verdict::Inconclusive;
                    }
                    queue.push_back(next);
                }
            }
        }
    }
    Verdict::Stable
}

/// Dense-id fast path of [`check_stable_and_correct`].
#[must_use]
pub fn check_stable_and_correct_compiled<P: Protocol>(
    compiled: &CompiledProtocol<P>,
    graph: &Graph,
    config: &[StateId],
    limit: usize,
) -> Verdict {
    let leaders = config
        .iter()
        .filter(|&&s| compiled.role(s) == Role::Leader)
        .count();
    if leaders != 1 {
        return Verdict::Unstable;
    }
    check_stability_compiled(compiled, graph, config, limit)
}

/// Dense-id fast path of [`validate_oracle_on_execution`]: drives a
/// [`crate::DenseExecutor`] and validates the protocol's oracle against
/// the compiled reachability search at every step. Returns the number of
/// steps checked.
///
/// # Panics
///
/// Panics (with a descriptive message) on the first disagreement, or if
/// the exhaustive search is inconclusive.
pub fn validate_oracle_on_execution_compiled<P: Protocol>(
    compiled: &CompiledProtocol<P>,
    graph: &Graph,
    seed: u64,
    max_steps: u64,
    limit: usize,
) -> u64 {
    use crate::dense::DenseExecutor;

    let mut exec = DenseExecutor::new(graph, compiled, seed);
    for step in 0..=max_steps {
        let exhaustive =
            check_stable_and_correct_compiled(compiled, graph, exec.state_ids(), limit);
        let oracle = exec.is_stable();
        match exhaustive {
            Verdict::Inconclusive => panic!("exhaustive search inconclusive at step {step}"),
            Verdict::Stable => assert!(
                oracle,
                "oracle says unstable but configuration is stable at step {step}: {:?}",
                exec.state_ids()
            ),
            Verdict::Unstable => assert!(
                !oracle,
                "oracle says stable but configuration is not at step {step}: {:?}",
                exec.state_ids()
            ),
        }
        if oracle {
            return step;
        }
        exec.step();
    }
    max_steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LeaderCountOracle;
    use popele_graph::families;
    use popele_graph::NodeId;

    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    /// A deliberately broken protocol: a lone leader can be *revived* by a
    /// follower-follower interaction, so one-leader configurations are NOT
    /// stable.
    #[derive(Clone, Copy)]
    struct Flicker;

    impl Protocol for Flicker {
        type State = u8; // 0 follower, 1 leader, 2 armed follower
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> u8 {
            1
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            match (a, b) {
                (1, 1) => (1, 2),
                (2, 2) => (1, 0), // revives a leader
                (x, y) => (*x, *y),
            }
        }

        fn output(&self, s: &u8) -> Role {
            if *s == 1 {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn all_leaders_is_unstable() {
        let g = families::clique(3);
        let config = vec![true, true, true];
        assert_eq!(
            check_stability(&Absorb, &g, &config, DEFAULT_CONFIG_LIMIT),
            Verdict::Unstable
        );
    }

    #[test]
    fn one_leader_is_stable_for_absorb() {
        let g = families::clique(3);
        let config = vec![true, false, false];
        assert_eq!(
            check_stable_and_correct(&Absorb, &g, &config, DEFAULT_CONFIG_LIMIT),
            Verdict::Stable
        );
    }

    #[test]
    fn zero_leaders_is_incorrect() {
        let g = families::clique(3);
        let config = vec![false, false, false];
        assert_eq!(
            check_stable_and_correct(&Absorb, &g, &config, DEFAULT_CONFIG_LIMIT),
            Verdict::Unstable
        );
    }

    #[test]
    fn absorb_oracle_validated() {
        let g = families::cycle(4);
        let steps = validate_oracle_on_execution(&Absorb, &g, 11, 500, DEFAULT_CONFIG_LIMIT);
        assert!(steps < 500, "should have stabilized quickly");
    }

    #[test]
    #[should_panic(expected = "oracle says stable")]
    fn broken_protocol_detected() {
        // Flicker with LeaderCountOracle wrongly reports stability when a
        // single leader coexists with armed followers; the validator must
        // catch this. Start from a configuration that exposes the bug.
        let g = families::clique(3);
        let config = vec![1u8, 2, 2];
        let verdict = check_stable_and_correct(&Flicker, &g, &config, DEFAULT_CONFIG_LIMIT);
        assert_eq!(verdict, Verdict::Unstable);
        // Oracle disagrees → validator panics somewhere along an execution
        // passing through such a configuration.
        let _ = validate_oracle_on_execution(&Flicker, &g, 1, 2000, DEFAULT_CONFIG_LIMIT);
    }

    #[test]
    fn limit_yields_inconclusive() {
        let g = families::clique(5);
        let config = vec![true; 5];
        assert_eq!(
            check_stability(&Absorb, &g, &config, 2),
            Verdict::Inconclusive
        );
    }

    #[test]
    fn compiled_search_agrees_with_typed_search() {
        let g = families::clique(3);
        let compiled = CompiledProtocol::compile_default(&Absorb, 3).unwrap();
        let t = compiled.state_id(&true).unwrap();
        let f = compiled.state_id(&false).unwrap();
        for (typed, dense) in [
            (vec![true, true, true], vec![t, t, t]),
            (vec![true, false, false], vec![t, f, f]),
            (vec![false, false, false], vec![f, f, f]),
        ] {
            assert_eq!(
                check_stable_and_correct(&Absorb, &g, &typed, DEFAULT_CONFIG_LIMIT),
                check_stable_and_correct_compiled(&compiled, &g, &dense, DEFAULT_CONFIG_LIMIT),
                "configs {typed:?}"
            );
            assert_eq!(
                check_stability(&Absorb, &g, &typed, DEFAULT_CONFIG_LIMIT),
                check_stability_compiled(&compiled, &g, &dense, DEFAULT_CONFIG_LIMIT),
            );
        }
    }

    #[test]
    fn compiled_validator_matches_typed_validator() {
        let g = families::cycle(4);
        let compiled = CompiledProtocol::compile_default(&Absorb, 4).unwrap();
        let typed = validate_oracle_on_execution(&Absorb, &g, 11, 500, DEFAULT_CONFIG_LIMIT);
        let dense =
            validate_oracle_on_execution_compiled(&compiled, &g, 11, 500, DEFAULT_CONFIG_LIMIT);
        assert_eq!(typed, dense, "both engines must stabilize at the same step");
        assert!(dense < 500);
    }

    #[test]
    fn compiled_limit_yields_inconclusive() {
        let g = families::clique(5);
        let compiled = CompiledProtocol::compile_default(&Absorb, 5).unwrap();
        let t = compiled.state_id(&true).unwrap();
        assert_eq!(
            check_stability_compiled(&compiled, &g, &[t; 5], 2),
            Verdict::Inconclusive
        );
    }
}
