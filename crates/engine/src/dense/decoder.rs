//! Edge decoders: how the dense engines resolve raw scheduler draws
//! into ordered node pairs.
//!
//! Both dense engines ([`crate::DenseExecutor`] and
//! [`crate::LazyDenseExecutor`]) pre-draw scheduler indices in tight
//! batches and resolve them through an `EdgeDecoder` chosen per graph
//! shape. Every decoder produces exactly the pairs
//! [`crate::EdgeScheduler::next_pair`] would for the same RNG stream —
//! only the memory traffic differs — so the engines stay trace-identical
//! to the generic [`crate::Executor`] regardless of which decoder runs.
//!
//! The selection thresholds are named constants with the rationale
//! attached ([`PACKED_MAX_NODES`], [`DECODER_MAX_EDGES`]); the pure
//! classification [`DecoderKind::select`] is unit-tested at the exact
//! boundaries, including edge counts far beyond what a test could
//! materialize as a real graph.

use crate::scheduler::EdgeScheduler;
use popele_graph::{Graph, NodeId};

/// Largest node count the `EdgeDecoder::Packed` re-encoding supports:
/// both endpoints of an edge must fit 16 bits to pack into one `u32`
/// (half the bytes of the scheduler's `(u32, u32)` edge list, so the
/// random gather covers half the cache footprint).
pub const PACKED_MAX_NODES: u32 = 1 << 16;

/// Largest edge count the indexed decoders (clique arithmetic and CSR
/// split form) support: edge indices and CSR columns are stored as
/// `u32`, so a graph with more than `u32::MAX` edges (≈ a clique on
/// 93 000 nodes) falls back to `EdgeDecoder::Scheduler`.
pub const DECODER_MAX_EDGES: u64 = u32::MAX as u64;

/// Number of scheduler draws per batch. Large enough to expose
/// memory-level parallelism on the edge array, small enough to stay in
/// L1 (2 KiB).
pub const PAIR_BATCH: usize = 256;

/// The decoder family `EdgeDecoder::for_graph` picks for a given graph
/// shape — the pure classification, separated from the table-building so
/// the thresholds can be unit-tested at boundaries no test could afford
/// to materialize (a graph with `u32::MAX + 1` edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecoderKind {
    /// Complete graph within [`DECODER_MAX_EDGES`]: arithmetic decode.
    Clique,
    /// `n ≤` [`PACKED_MAX_NODES`]: 32-bit packed edge list.
    Packed,
    /// Larger node counts with `m ≤` [`DECODER_MAX_EDGES`]: CSR split.
    Csr,
    /// Beyond every indexed bound: the scheduler's own gather.
    Scheduler,
}

impl DecoderKind {
    /// Classifies a graph shape `(n, m)` into its decoder family.
    ///
    /// A simple graph with `n(n−1)/2` edges is complete, which unlocks
    /// the arithmetic decode; otherwise the packed form is preferred
    /// while node ids fit 16 bits, then the CSR split while edge indices
    /// fit 32 bits.
    #[must_use]
    pub fn select(n: u64, m: u64) -> Self {
        if n >= 2 && m == n * (n - 1) / 2 && m <= DECODER_MAX_EDGES {
            DecoderKind::Clique
        } else if n <= u64::from(PACKED_MAX_NODES) {
            DecoderKind::Packed
        } else if m <= DECODER_MAX_EDGES {
            DecoderKind::Csr
        } else {
            DecoderKind::Scheduler
        }
    }
}

/// How a dense engine resolves a raw scheduler index `r` (edge index
/// `r >> 1` into the canonical sorted edge list, orientation `r & 1`)
/// into an ordered node pair. All variants produce exactly the pairs
/// [`EdgeScheduler`] would — only the memory traffic differs.
#[derive(Debug, Clone)]
pub(crate) enum EdgeDecoder {
    /// Complete graph: the canonical lexicographic edge index inverts
    /// arithmetically (triangular numbers). Instead of gathering from
    /// the `n(n−1)/2`-entry edge array — which falls out of cache and
    /// dominates the hot loop on large cliques — the row is read from a
    /// small bucket→row hint table (≤ 256 KiB, cache-resident) and
    /// corrected with exact integer arithmetic.
    Clique {
        /// Node count.
        n: u64,
        /// Bucket granularity: edges `e` share bucket `e >> shift`.
        shift: u32,
        /// Per bucket: `(row, first edge index of that row)` for the
        /// first edge of the bucket, so the decode needs no
        /// multiplications — only an add and a rare row advance.
        row_hint: Box<[(u32, u32)]>,
    },
    /// Edge list re-encoded as `(u << 16) | v` when every node id fits
    /// 16 bits ([`PACKED_MAX_NODES`]): half the bytes of the scheduler's
    /// `(u32, u32)` list, so the gather covers half the cache footprint.
    Packed(Box<[u32]>),
    /// Non-clique graphs beyond the packed decoder's 16-bit node range:
    /// the canonical sorted edge list in CSR-style split form. The
    /// higher endpoint of edge `e` is a direct 4-byte gather from
    /// `col[e]`; the lower endpoint (the CSR row) is reconstructed as
    /// `row_hint[e >> shift] + row_delta[e]` — a lookup in a small,
    /// cache-resident bucket table plus a 1-byte gather — instead of
    /// being stored as a second 4-byte column. Per sampled edge that is
    /// 5 bytes of randomly-indexed memory traffic instead of the
    /// scheduler's 8, with no search loop and no data-dependent
    /// branches. `shift` is chosen at build time so that no bucket
    /// spans more than 255 rows (it always exists: at `shift = 0` every
    /// bucket holds one edge and every delta is 0).
    Csr {
        /// Bucket granularity: edges `e` share hint bucket `e >> shift`.
        shift: u32,
        /// Per bucket: row (lower endpoint) of the bucket's first edge.
        row_hint: Box<[u32]>,
        /// Per edge: its row minus its bucket's hint row (≤ 255 by
        /// choice of `shift`).
        row_delta: Box<[u8]>,
        /// Per edge: the higher endpoint.
        col: Box<[u32]>,
    },
    /// Degenerate fallback (edge count beyond [`DECODER_MAX_EDGES`]):
    /// the scheduler's own batched gather.
    Scheduler,
}

impl EdgeDecoder {
    pub(crate) fn for_graph(graph: &Graph) -> Self {
        let n = u64::from(graph.num_nodes());
        let m = graph.num_edges() as u64;
        match DecoderKind::select(n, m) {
            DecoderKind::Clique => {
                let bits = 64 - m.leading_zeros();
                let shift = bits.saturating_sub(16);
                let buckets = (m >> shift) as usize + 1;
                let mut row_hint = vec![(0u32, 0u32); buckets];
                let mut u = 0u64;
                for (b, hint) in row_hint.iter_mut().enumerate() {
                    let e = (b as u64) << shift;
                    while u + 1 < n - 1 && clique_row_start(n, u + 1) <= e {
                        u += 1;
                    }
                    *hint = (u as u32, clique_row_start(n, u) as u32);
                }
                EdgeDecoder::Clique {
                    n,
                    shift,
                    row_hint: row_hint.into_boxed_slice(),
                }
            }
            DecoderKind::Packed => EdgeDecoder::Packed(
                graph
                    .edges()
                    .iter()
                    .map(|&(u, v)| (u << 16) | v)
                    .collect::<Vec<u32>>()
                    .into_boxed_slice(),
            ),
            DecoderKind::Csr => Self::csr(graph.edges()),
            DecoderKind::Scheduler => EdgeDecoder::Scheduler,
        }
    }

    /// Builds the [`EdgeDecoder::Csr`] form of a canonical sorted edge
    /// list: the widest bucket shift whose per-bucket row span fits the
    /// `u8` delta, then the hint/delta/column arrays.
    fn csr(edges: &[(NodeId, NodeId)]) -> Self {
        let m = edges.len();
        let bits = usize::BITS - m.leading_zeros();
        let mut shift = bits.saturating_sub(16);
        while shift > 0 {
            // Row span of bucket b: rows are nondecreasing within the
            // sorted edge list, so first/last edge suffice.
            let spans_fit = (0..(m >> shift) + 1).all(|b| {
                let lo = b << shift;
                let hi = (((b + 1) << shift) - 1).min(m - 1);
                lo >= m || edges[hi].0 - edges[lo].0 <= u32::from(u8::MAX)
            });
            if spans_fit {
                break;
            }
            shift -= 1;
        }
        let buckets = (m >> shift) + 1;
        let mut row_hint = vec![0u32; buckets];
        for (b, hint) in row_hint.iter_mut().enumerate() {
            let lo = b << shift;
            *hint = if lo < m { edges[lo].0 } else { 0 };
        }
        let mut row_delta = vec![0u8; m];
        let mut col = vec![0u32; m];
        for (e, &(u, v)) in edges.iter().enumerate() {
            row_delta[e] = u8::try_from(u - row_hint[e >> shift]).expect("span checked above");
            col[e] = v;
        }
        EdgeDecoder::Csr {
            shift,
            row_hint: row_hint.into_boxed_slice(),
            row_delta: row_delta.into_boxed_slice(),
            col: col.into_boxed_slice(),
        }
    }

    /// The [`DecoderKind`] this decoder belongs to.
    #[cfg(test)]
    pub(crate) fn kind(&self) -> DecoderKind {
        match self {
            EdgeDecoder::Clique { .. } => DecoderKind::Clique,
            EdgeDecoder::Packed(_) => DecoderKind::Packed,
            EdgeDecoder::Csr { .. } => DecoderKind::Csr,
            EdgeDecoder::Scheduler => DecoderKind::Scheduler,
        }
    }

    /// Fills `pairs` with one batch of scheduler draws resolved through
    /// this decoder (`raw` is caller-provided scratch of at least the
    /// same length). Consumes the scheduler's RNG stream exactly as
    /// `pairs.len()` calls of [`EdgeScheduler::next_pair`] would — the
    /// invariant that keeps every engine on the identical interaction
    /// sequence. Shared by both dense engines' refill paths.
    ///
    /// Pair sampling is independent of the configuration (the scheduler
    /// is an autonomous RNG stream), so the draws can be batched into a
    /// tight loop that touches only the RNG state and the decode arrays —
    /// giving the memory system a window of independent loads to overlap.
    /// The generic executor cannot do this: its per-step trait calls
    /// (transition + oracle) interleave with every draw.
    #[inline(never)]
    pub(crate) fn fill_batch(
        &self,
        scheduler: &mut EdgeScheduler<'_>,
        pairs: &mut [(NodeId, NodeId)],
        raw: &mut [usize],
    ) {
        match self {
            EdgeDecoder::Clique { n, shift, row_hint } => {
                // One fused loop: the hint table is cache-resident, so
                // unlike the general gather there is no memory latency
                // to batch around — and with the RNG state as the only
                // loop-carried dependency, the decode arithmetic of one
                // iteration overlaps the RNG chain of the next.
                let n = *n as u32;
                scheduler.fill_raw_with(pairs, |r, slot| {
                    let e = (r >> 1) as u32;
                    let (u, v) = clique_decode(e, n, *shift, row_hint);
                    *slot = orient(u, v, r);
                });
            }
            EdgeDecoder::Packed(_) | EdgeDecoder::Csr { .. } => {
                // Two-phase: the raw draws are batched first, then the
                // gathers run as independent loads the memory system can
                // overlap.
                let raw = &mut raw[..pairs.len()];
                scheduler.fill_raw(raw);
                self.gather(&[], raw, pairs);
            }
            EdgeDecoder::Scheduler => scheduler.fill_pairs(pairs),
        }
    }

    /// Resolves pre-drawn raw scheduler indices into ordered pairs — the
    /// gather half of [`Self::fill_batch`], for callers that draw the
    /// raw stream themselves (the lane engine interleaves its draws
    /// across trials before gathering per lane). Produces exactly the
    /// pairs [`EdgeScheduler::next_pair`] would for the same raws.
    /// `edges` is the graph's canonical edge list, consulted only by the
    /// [`EdgeDecoder::Scheduler`] fallback (the indexed decoders own
    /// their tables).
    pub(crate) fn gather(
        &self,
        edges: &[(NodeId, NodeId)],
        raw: &[usize],
        pairs: &mut [(NodeId, NodeId)],
    ) {
        debug_assert_eq!(raw.len(), pairs.len());
        match self {
            EdgeDecoder::Clique { n, shift, row_hint } => {
                let n = *n as u32;
                for (slot, &r) in pairs.iter_mut().zip(raw.iter()) {
                    let (u, v) = clique_decode((r >> 1) as u32, n, *shift, row_hint);
                    *slot = orient(u, v, r);
                }
            }
            EdgeDecoder::Packed(packed) => {
                for (slot, &r) in pairs.iter_mut().zip(raw.iter()) {
                    let e = packed[r >> 1];
                    *slot = orient(e >> 16, e & 0xFFFF, r);
                }
            }
            EdgeDecoder::Csr {
                shift,
                row_hint,
                row_delta,
                col,
            } => {
                // The hint table stays cache-resident, so reconstructing
                // the row costs one in-cache read and an add.
                for (slot, &r) in pairs.iter_mut().zip(raw.iter()) {
                    let e = r >> 1;
                    let u = row_hint[e >> *shift] + u32::from(row_delta[e]);
                    let v = col[e];
                    *slot = orient(u, v, r);
                }
            }
            EdgeDecoder::Scheduler => {
                for (slot, &r) in pairs.iter_mut().zip(raw.iter()) {
                    let (u, v) = edges[r >> 1];
                    *slot = orient(u, v, r);
                }
            }
        }
    }
}

/// Branchless orientation select: raw index bit 0 decides whether the
/// canonical `(u, v)` or the swapped `(v, u)` is the (initiator,
/// responder) pair. A 50/50 data-dependent branch would mispredict
/// constantly; the xor-mask form never branches.
#[inline]
pub(crate) fn orient(u: u32, v: u32, r: usize) -> (NodeId, NodeId) {
    let mask = (r as u32 & 1).wrapping_neg(); // 0 or all-ones
    let x = u ^ v;
    (u ^ (x & mask), v ^ (x & mask))
}

/// Arithmetic inverse of the canonical lexicographic clique edge index:
/// bucket hint plus a (rarely-entered) row advance. Row `u` holds the
/// edges `start .. start + (n − 1 − u)`.
#[inline]
pub(crate) fn clique_decode(e: u32, n: u32, shift: u32, row_hint: &[(u32, u32)]) -> (u32, u32) {
    let (mut u, mut start) = row_hint[(e as usize) >> shift];
    // Almost always zero iterations: a bucket rarely crosses a row
    // boundary.
    while e - start >= n - 1 - u {
        start += n - 1 - u;
        u += 1;
    }
    (u, u + 1 + (e - start))
}

/// Number of canonical lexicographic edges of `K_n` preceding row `u`
/// (row `u` lists the edges `(u, u+1) … (u, n−1)`).
#[inline]
pub(crate) fn clique_row_start(n: u64, u: u64) -> u64 {
    u * (2 * n - u - 1) / 2
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_graph::families;

    #[test]
    fn decoder_selection_by_graph_shape() {
        assert_eq!(
            EdgeDecoder::for_graph(&families::clique(100)).kind(),
            DecoderKind::Clique
        );
        assert_eq!(
            EdgeDecoder::for_graph(&families::cycle(100)).kind(),
            DecoderKind::Packed
        );
        // Beyond the packed decoder's 16-bit node range, non-clique
        // graphs take the CSR path.
        assert_eq!(
            EdgeDecoder::for_graph(&families::cycle(70_000)).kind(),
            DecoderKind::Csr
        );
    }

    #[test]
    fn packed_bound_is_exact_at_the_node_boundary() {
        // n = PACKED_MAX_NODES is the last size whose ids fit 16 bits;
        // one more node pushes the cycle onto the CSR decoder. Real
        // graphs at the exact boundary keep the constant honest.
        let at = families::cycle(PACKED_MAX_NODES);
        assert_eq!(EdgeDecoder::for_graph(&at).kind(), DecoderKind::Packed);
        let over = families::cycle(PACKED_MAX_NODES + 1);
        assert_eq!(EdgeDecoder::for_graph(&over).kind(), DecoderKind::Csr);
    }

    #[test]
    fn select_boundaries_for_edge_counts() {
        let n = u64::from(PACKED_MAX_NODES);
        // Clique classification requires exactly n(n−1)/2 edges…
        assert_eq!(DecoderKind::select(100, 100 * 99 / 2), DecoderKind::Clique);
        assert_eq!(
            DecoderKind::select(100, 100 * 99 / 2 - 1),
            DecoderKind::Packed
        );
        // …and a clique whose triangular count exceeds DECODER_MAX_EDGES
        // (n ≥ 92 683) can only use the scheduler fallback: neither the
        // arithmetic decode nor CSR can index its edges in u32.
        let huge = 3_000_000u64;
        assert_eq!(
            DecoderKind::select(huge, huge * (huge - 1) / 2),
            DecoderKind::Scheduler
        );
        // Node boundary between Packed and Csr.
        assert_eq!(DecoderKind::select(n, n), DecoderKind::Packed);
        assert_eq!(DecoderKind::select(n + 1, n + 1), DecoderKind::Csr);
        // Edge boundary between Csr and the Scheduler fallback — far
        // beyond what a test could materialize as a real graph, which
        // is exactly why the classification is a pure function.
        assert_eq!(
            DecoderKind::select(n + 1, DECODER_MAX_EDGES),
            DecoderKind::Csr
        );
        assert_eq!(
            DecoderKind::select(n + 1, DECODER_MAX_EDGES + 1),
            DecoderKind::Scheduler
        );
    }

    #[test]
    fn clique_decode_inverts_row_starts() {
        for n in [2u32, 3, 5, 37, 256] {
            let g = families::clique(n);
            let decoder = EdgeDecoder::for_graph(&g);
            let EdgeDecoder::Clique {
                shift, row_hint, ..
            } = &decoder
            else {
                panic!("clique graph must select the clique decoder");
            };
            for (e, &(u, v)) in g.edges().iter().enumerate() {
                assert_eq!(
                    clique_decode(e as u32, n, *shift, row_hint),
                    (u, v),
                    "clique({n}) edge {e}"
                );
            }
        }
    }

    #[test]
    fn csr_builder_collapses_shift_on_row_jumps() {
        // Two edges whose rows are ~700k apart cannot share a bucket
        // within the u8 delta, so the builder must fall back to one
        // edge per bucket.
        let g = Graph::from_edges(700_000, &[(0, 1), (699_998, 699_999)]).unwrap();
        let decoder = EdgeDecoder::for_graph(&g);
        let EdgeDecoder::Csr { shift, .. } = &decoder else {
            panic!("expected CSR decoder, got {decoder:?}");
        };
        assert_eq!(*shift, 0);
    }
}
