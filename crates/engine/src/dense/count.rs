//! Count-based batch engine for clique populations.
//!
//! On a clique the uniform ordered-pair scheduler is exchangeable over
//! agents, so a configuration is fully described by a **count vector**
//! over the `|Λ|` compiled states and interactions can be drawn in
//! collision-free *batches* instead of one at a time. An epoch works on
//! counts alone:
//!
//! 1. **Horizon.** Sample the first step `T` whose pair touches an agent
//!    already used this epoch. The hazard of step `i` is
//!    `h(i) = 1 − (n−2(i−1))(n−2(i−1)−1)/(n(n−1))`, increasing in `i`;
//!    `T` is drawn exactly by geometric thinning over doubling blocks
//!    (propose with the block's maximal hazard, accept with ratio
//!    `h(i)/h_max`), capped at `ℓ_max ≈ √n` so epochs stay O(√n).
//! 2. **Batch.** The `ℓ = min(T−1, ℓ_max)` collision-free steps involve
//!    `2ℓ` *distinct* delegates — a uniform without-replacement sample.
//!    Draw the initiator multiset by a chained conditional
//!    [`Hypergeometric`] over the state counts, the responder multiset
//!    from the residue, and the pairing by a further hypergeometric
//!    split per initiator state; by exchangeability every marginal is
//!    exact. Apply the `|Λ|²` transition and leader-delta tables once
//!    per `(state-pair, batch-count)`.
//! 3. **Collision.** If `T ≤ ℓ_max`, step `T` is a single interaction
//!    conditioned on touching the delegate set `U` (`|U| = 2ℓ`): choose
//!    among the cases *both in `U`*, *initiator only*, *responder only*
//!    with exact ordered-pair weights `2ℓ(2ℓ−1)`, `2ℓ(n−2ℓ)`,
//!    `(n−2ℓ)2ℓ`, then draw the states from the delegates'
//!    post-transition census and/or the untouched counts.
//!
//! Stability is checked at epoch boundaries only. Because the oracles
//! certify *stability* (no reachable configuration changes any output),
//! their verdict is monotone along a trajectory, so a transient
//! mid-batch "stable" is impossible; when an epoch ends stable, the
//! batch is inverted, materialized, shuffled (uniform order of an
//! exchangeable batch — exact), and replayed one interaction at a time
//! to pin the exact first stable step. The engine is therefore
//! **exact in distribution** with respect to the sequential scheduler —
//! trace identity is impossible by construction (the random stream is
//! consumed batch-wise), which is why correctness is pinned by
//! distribution-level differential tests instead.
//!
//! Eligibility: the protocol's oracle must either be *linear*
//! ([`StabilityOracle::stable_iff_unique_leader`], served by the
//! precomputed leader-delta table) or *census-capable*
//! ([`StabilityOracle::recompute_census`]). Protocols whose oracle
//! needs per-node identity (e.g. the identifier protocol) are not
//! eligible, and neither is any non-clique graph.

use super::table::{CompileError, CompiledProtocol, StateId};
use crate::executor::{NotStabilized, Outcome};
use crate::protocol::{Protocol, Role, StabilityOracle};
use popele_math::dist::{Geometric, Hypergeometric};
use popele_math::rng::small_rng;
use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;
use std::cmp::Reverse;

/// State-count cap for count-engine compilation. Higher than
/// [`super::table::DEFAULT_MAX_COMPILED_STATES`] because the count
/// engine's memory is `O(|Λ|²)` table entries with **no** per-agent
/// storage, so a few thousand states cost megabytes, not gigabytes.
pub const COUNT_MAX_COMPILED_STATES: usize = 4096;

/// Smallest population for which the sweep layer's clique-cell routing
/// prefers the count engine. Below this a clique's edge list is still
/// materializable (`2^15` nodes ≈ `5·10⁸` ordered pairs) and the
/// sequential dense engines win on per-step constants.
pub const COUNT_MIN_AGENTS: u64 = 1 << 15;

/// How many node ids are probed from each end of `0..num_agents` when
/// compiling for the count engine (see [`compile_for_count`]).
const INITIAL_PROBES: u64 = 256;

/// Whether a protocol's stability oracle can be evaluated from a state
/// census alone, which is what the count engine requires.
///
/// True when the oracle is linear
/// ([`StabilityOracle::stable_iff_unique_leader`]) or census-capable
/// ([`StabilityOracle::recompute_census`]).
#[must_use]
pub fn count_supported<P: Protocol>(protocol: &P) -> bool {
    let mut oracle = protocol.oracle();
    oracle.stable_iff_unique_leader() || oracle.recompute_census(protocol, &[])
}

/// Compiles a protocol for the count engine.
///
/// The compiled `initial` vector is per-node, so compiling at the real
/// population (`n = 10⁹` ⇒ gigabytes) is out of the question; instead
/// the table is compiled at a small representative node count and the
/// enumeration is seeded with the initial states probed at the first and
/// last `INITIAL_PROBES` (256) node ids of the *real* range, which covers
/// every prefix/suffix-describable initialization in the workspace
/// (uniform starts, `v < split` majority inputs, small candidate sets).
///
/// # Errors
///
/// [`CompileError::StateSpaceTooLarge`] if the closure exceeds
/// [`COUNT_MAX_COMPILED_STATES`].
///
/// # Panics
///
/// Panics if `num_agents < 2` or `num_agents > u32::MAX` (node ids are
/// 32-bit).
pub fn compile_for_count<P: Protocol + Clone>(
    protocol: &P,
    num_agents: u64,
) -> Result<CompiledProtocol<P>, CompileError> {
    assert!(num_agents >= 2, "count engine requires at least two agents");
    assert!(
        num_agents <= u64::from(u32::MAX),
        "count engine node ids are 32-bit; got {num_agents} agents"
    );
    let mut seeds = Vec::new();
    for v in 0..num_agents.min(INITIAL_PROBES) {
        seeds.push(protocol.initial_state(v as u32));
    }
    for v in num_agents.saturating_sub(INITIAL_PROBES)..num_agents {
        seeds.push(protocol.initial_state(v as u32));
    }
    let num_nodes = num_agents.min(INITIAL_PROBES) as u32;
    CompiledProtocol::compile_with_seeds(protocol, num_nodes, COUNT_MAX_COMPILED_STATES, &seeds)
}

/// The count-based batch executor (see the [module docs](self)).
///
/// Mirrors [`super::DenseExecutor`]'s surface (`reset`,
/// `run_until_stable`, [`Outcome`]) but holds no per-agent state at
/// all: memory is `O(|Λ|)` counters over a borrowed compiled table.
pub struct CountEngine<'c, P: Protocol> {
    compiled: &'c CompiledProtocol<P>,
    num_agents: u64,
    num_states: usize,
    /// Initial count vector, cached so `reset` is `O(|Λ|)` rather than
    /// a rescan of all `n` initial states.
    initial_counts: Vec<u64>,
    counts: Vec<u64>,
    /// Ids with (possibly) nonzero count, compacted and sorted by
    /// descending count at each epoch so the hypergeometric chains
    /// terminate after the few large state classes.
    active: Vec<StateId>,
    is_active: Vec<bool>,
    seen: Vec<bool>,
    seen_count: usize,
    /// Oracle mode: linear oracles are served by the leader-delta
    /// table (`leaders` below), census-capable ones by
    /// [`StabilityOracle::recompute_census`].
    linear: bool,
    leaders: i64,
    oracle: P::Oracle,
    rng: SmallRng,
    steps: u64,
    epoch_cap: u64,
    // Scratch buffers, reused across epochs.
    initiators: Vec<(StateId, u64)>,
    responders: Vec<(StateId, u64)>,
    pairs: Vec<(StateId, StateId, u64)>,
    used: Vec<u64>,
    used_touched: Vec<StateId>,
    census: Vec<(P::State, u64)>,
    replay: Vec<(StateId, StateId)>,
}

impl<'c, P: Protocol> CountEngine<'c, P> {
    /// Creates a count engine over `num_agents` clique agents.
    ///
    /// Scans `initial_state(v)` for every `v` once (with an
    /// equal-to-previous fast path, so uniform initializations cost one
    /// state comparison per agent) and caches the resulting count
    /// vector for [`CountEngine::reset`].
    ///
    /// # Panics
    ///
    /// Panics if `num_agents < 2` or exceeds `u32::MAX`, if the
    /// protocol's oracle is neither linear nor census-capable (see
    /// [`count_supported`]), or if some agent's initial state is
    /// outside the compiled closure (compile via [`compile_for_count`]).
    #[must_use]
    pub fn new(compiled: &'c CompiledProtocol<P>, num_agents: u64, seed: u64) -> Self {
        assert!(num_agents >= 2, "count engine requires at least two agents");
        assert!(
            num_agents <= u64::from(u32::MAX),
            "count engine node ids are 32-bit; got {num_agents} agents"
        );
        let protocol = compiled.protocol();
        let mut oracle = protocol.oracle();
        let linear = oracle.stable_iff_unique_leader();
        assert!(
            linear || oracle.recompute_census(protocol, &[]),
            "count engine requires a linear or census-capable stability oracle"
        );
        let k = compiled.num_states();
        let mut initial_counts = vec![0u64; k];
        let mut prev: Option<(P::State, usize)> = None;
        for v in 0..num_agents {
            let s = protocol.initial_state(v as u32);
            match &prev {
                Some((ps, idx)) if *ps == s => initial_counts[*idx] += 1,
                _ => {
                    let idx = compiled.state_id(&s).unwrap_or_else(|| {
                        panic!(
                            "initial state of agent {v} is outside the compiled closure; \
                             compile with seeds covering every initial state"
                        )
                    }) as usize;
                    initial_counts[idx] += 1;
                    prev = Some((s, idx));
                }
            }
        }
        // √n epochs balance the collision-free horizon (birthday bound)
        // against per-epoch overhead; 2·cap ≤ n keeps the delegate set
        // drawable without replacement.
        let epoch_cap =
            ((num_agents as f64).sqrt().ceil() as u64).clamp(1, (num_agents / 2).max(1));
        let mut engine = Self {
            compiled,
            num_agents,
            num_states: k,
            initial_counts,
            counts: vec![0; k],
            active: Vec::new(),
            is_active: vec![false; k],
            seen: vec![false; k],
            seen_count: 0,
            linear,
            leaders: 0,
            oracle,
            rng: small_rng(seed),
            steps: 0,
            epoch_cap,
            initiators: Vec::new(),
            responders: Vec::new(),
            pairs: Vec::new(),
            used: vec![0; k],
            used_touched: Vec::new(),
            census: Vec::new(),
            replay: Vec::new(),
        };
        engine.reset(seed);
        engine
    }

    /// Restores the initial configuration and reseeds the RNG, reusing
    /// the cached initial count vector (`O(|Λ|)`, not `O(n)`).
    pub fn reset(&mut self, seed: u64) {
        self.counts.copy_from_slice(&self.initial_counts);
        self.rng = small_rng(seed);
        self.steps = 0;
        self.is_active.fill(false);
        self.seen.fill(false);
        self.seen_count = 0;
        self.active.clear();
        self.leaders = 0;
        for idx in 0..self.num_states {
            if self.counts[idx] > 0 {
                self.activate(idx as StateId);
                if self.compiled.role(idx as StateId) == Role::Leader {
                    self.leaders += self.counts[idx] as i64;
                }
            }
        }
    }

    /// Number of agents.
    #[must_use]
    pub fn num_agents(&self) -> u64 {
        self.num_agents
    }

    /// Interactions applied since the last reset.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// The current count vector, indexed by compiled [`StateId`].
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Number of states that have held a nonzero count since the last
    /// reset (the count-space analogue of the state census).
    #[must_use]
    pub fn distinct_states(&self) -> usize {
        self.seen_count
    }

    /// Current number of leader-output agents.
    #[must_use]
    pub fn leader_count(&self) -> usize {
        if self.linear {
            self.leaders as usize
        } else {
            self.active
                .iter()
                .filter(|&&id| self.compiled.role(id) == Role::Leader)
                .map(|&id| self.counts[id as usize])
                .sum::<u64>() as usize
        }
    }

    /// Whether the current configuration is stable with a unique leader.
    pub fn stable_now(&mut self) -> bool {
        if self.linear {
            return self.leaders == 1;
        }
        self.census.clear();
        for i in 0..self.active.len() {
            let id = self.active[i] as usize;
            let c = self.counts[id];
            if c > 0 {
                self.census.push((self.compiled.states()[id].clone(), c));
            }
        }
        let supported = self
            .oracle
            .recompute_census(self.compiled.protocol(), &self.census);
        debug_assert!(supported, "oracle lost census support mid-run");
        self.oracle.is_stable()
    }

    /// Runs until the oracle reports stability or `max_steps`
    /// interactions have been applied, whichever is first.
    ///
    /// The reported [`Outcome::stabilization_step`] is the exact first
    /// stable step (batches are replayed in a uniform shuffle to locate
    /// it); [`Outcome::leader`] is always `None` — agents have no
    /// identity here — and [`Outcome::distinct_states`] counts states
    /// that ever held a nonzero count.
    ///
    /// # Errors
    ///
    /// [`NotStabilized`] if the budget is exhausted first.
    pub fn run_until_stable(&mut self, max_steps: u64) -> Result<Outcome, NotStabilized> {
        if self.stable_now() {
            return Ok(self.outcome());
        }
        while self.steps < max_steps {
            if self.epoch(max_steps, true) {
                return Ok(self.outcome());
            }
        }
        Err(NotStabilized { max_steps })
    }

    /// Applies exactly `steps` further interactions, ignoring
    /// stability. Used for throughput measurement.
    pub fn run_steps(&mut self, steps: u64) {
        let target = self.steps + steps;
        while self.steps < target {
            self.epoch(target, false);
        }
    }

    fn outcome(&self) -> Outcome {
        Outcome {
            stabilization_step: self.steps,
            leader_count: self.leader_count(),
            leader: None,
            distinct_states: Some(self.seen_count),
        }
    }

    fn activate(&mut self, id: StateId) {
        let idx = id as usize;
        if !self.is_active[idx] {
            self.is_active[idx] = true;
            self.active.push(id);
            if !self.seen[idx] {
                self.seen[idx] = true;
                self.seen_count += 1;
            }
        }
    }

    /// Drops drained states and sorts by descending count.
    fn compact_active(&mut self) {
        let counts = &self.counts;
        let is_active = &mut self.is_active;
        self.active.retain(|&id| {
            if counts[id as usize] > 0 {
                true
            } else {
                is_active[id as usize] = false;
                false
            }
        });
        self.active
            .sort_unstable_by_key(|&id| Reverse(counts[id as usize]));
    }

    /// Runs one epoch; returns true iff the run became stable (only
    /// checked when `check` is set). Applies at least one interaction
    /// provided `self.steps < max_steps`.
    fn epoch(&mut self, max_steps: u64, check: bool) -> bool {
        let budget = max_steps - self.steps;
        debug_assert!(budget > 0);
        self.compact_active();
        let (mut l, mut collide) = match self.sample_first_collision() {
            Some(t) => (t - 1, true),
            None => (self.epoch_cap, false),
        };
        if l >= budget {
            // Truncating at the budget keeps an exact process prefix;
            // the collision step (step l+1) no longer fits.
            l = budget;
            collide = false;
        }
        if l > 0 {
            self.draw_batch(l);
            self.apply_batch();
            self.steps += l;
            if check && self.stable_now() {
                self.locate_first_stable_step(l);
                return true;
            }
        }
        if collide {
            self.collision_step(l);
            self.steps += 1;
            if check && self.stable_now() {
                return true;
            }
        }
        false
    }

    /// Samples the first epoch step whose pair touches an earlier
    /// delegate, or `None` if none occurs within `epoch_cap` steps.
    /// Exact: geometric thinning against each doubling block's maximal
    /// hazard (the hazard is increasing).
    fn sample_first_collision(&mut self) -> Option<u64> {
        let n = self.num_agents as f64;
        let denom = n * (n - 1.0);
        let cap = self.epoch_cap;
        let hazard = |i: u64| -> f64 {
            let free = n - 2.0 * ((i - 1) as f64);
            (1.0 - free * (free - 1.0) / denom).clamp(0.0, 1.0)
        };
        // hazard(1) = 0: the first step cannot collide.
        let mut lo = 2u64;
        while lo <= cap {
            let hi = (lo * 2).min(cap);
            let p_max = hazard(hi);
            if p_max <= 0.0 {
                lo = hi + 1;
                continue;
            }
            let geo = Geometric::new(p_max);
            let mut pos = lo - 1;
            loop {
                pos = pos.saturating_add(geo.sample(&mut self.rng));
                if pos > hi {
                    break;
                }
                if self.rng.random::<f64>() * p_max < hazard(pos) {
                    return Some(pos);
                }
            }
            lo = hi + 1;
        }
        None
    }

    /// Draws the `l` collision-free pairs into `self.pairs` and removes
    /// the `2l` delegates from `self.counts`.
    fn draw_batch(&mut self, l: u64) {
        // Initiator multiset: l of n agents without replacement.
        self.initiators.clear();
        let mut pool = self.num_agents;
        let mut need = l;
        for i in 0..self.active.len() {
            if need == 0 {
                break;
            }
            let id = self.active[i];
            let avail = self.counts[id as usize];
            if avail == 0 {
                continue;
            }
            let k = if avail >= pool {
                need
            } else {
                Hypergeometric::new(pool, avail, need).sample(&mut self.rng)
            };
            pool -= avail;
            if k > 0 {
                self.initiators.push((id, k));
                need -= k;
            }
        }
        debug_assert_eq!(need, 0, "initiator draw under-allocated");
        for i in 0..self.initiators.len() {
            let (id, k) = self.initiators[i];
            self.counts[id as usize] -= k;
        }
        // Responder multiset: l of the remaining n−l agents.
        self.responders.clear();
        let mut pool = self.num_agents - l;
        let mut need = l;
        for i in 0..self.active.len() {
            if need == 0 {
                break;
            }
            let id = self.active[i];
            let avail = self.counts[id as usize];
            if avail == 0 {
                continue;
            }
            let k = if avail >= pool {
                need
            } else {
                Hypergeometric::new(pool, avail, need).sample(&mut self.rng)
            };
            pool -= avail;
            if k > 0 {
                self.responders.push((id, k));
                need -= k;
            }
        }
        debug_assert_eq!(need, 0, "responder draw under-allocated");
        for i in 0..self.responders.len() {
            let (id, k) = self.responders[i];
            self.counts[id as usize] -= k;
        }
        // Uniform pairing: each initiator class's partners are a
        // multivariate hypergeometric draw from the remaining
        // responders (exact, by exchangeability of the matching).
        self.pairs.clear();
        let mut resp_total = l;
        for ii in 0..self.initiators.len() {
            let (a, ia) = self.initiators[ii];
            let mut need = ia;
            let mut pool = resp_total;
            for ri in 0..self.responders.len() {
                if need == 0 {
                    break;
                }
                let (b, rb) = self.responders[ri];
                if rb == 0 {
                    continue;
                }
                let k = if rb >= pool {
                    need
                } else {
                    Hypergeometric::new(pool, rb, need).sample(&mut self.rng)
                };
                pool -= rb;
                if k > 0 {
                    self.responders[ri].1 -= k;
                    need -= k;
                    self.pairs.push((a, b, k));
                }
            }
            debug_assert_eq!(need, 0, "pairing under-allocated");
            resp_total -= ia;
        }
    }

    /// Applies `self.pairs` to the counts (delegates were already
    /// removed by [`Self::draw_batch`]) and records the delegates'
    /// post-transition census in `self.used` for the collision step.
    fn apply_batch(&mut self) {
        for i in 0..self.used_touched.len() {
            let id = self.used_touched[i];
            self.used[id as usize] = 0;
        }
        self.used_touched.clear();
        for pi in 0..self.pairs.len() {
            let (a, b, k) = self.pairs[pi];
            let (a2, b2) = self.compiled.successor(a, b);
            self.counts[a2 as usize] += k;
            self.counts[b2 as usize] += k;
            self.activate(a2);
            self.activate(b2);
            for post in [a2, b2] {
                if self.used[post as usize] == 0 {
                    self.used_touched.push(post);
                }
                self.used[post as usize] += k;
            }
            if self.linear {
                self.leaders += i64::from(self.delta(a, b)) * k as i64;
            }
        }
    }

    fn delta(&self, a: StateId, b: StateId) -> i8 {
        self.compiled.leader_delta[a as usize * self.num_states + b as usize]
    }

    /// Applies one interaction `(a, b)` directly to the counts.
    fn apply_single(&mut self, a: StateId, b: StateId) {
        let (a2, b2) = self.compiled.successor(a, b);
        self.counts[a as usize] -= 1;
        self.counts[b as usize] -= 1;
        self.counts[a2 as usize] += 1;
        self.counts[b2 as usize] += 1;
        self.activate(a2);
        self.activate(b2);
        if self.linear {
            self.leaders += i64::from(self.delta(a, b));
        }
    }

    /// The collision step: one interaction conditioned on touching the
    /// delegate set `U` (`|U| = 2l`, post-transition census in
    /// `self.used`), with exact ordered-pair case weights.
    fn collision_step(&mut self, l: u64) {
        let two_l = 2 * l;
        let rest = self.num_agents - two_l;
        // Integer weights below 2^53 (l ≤ √n, n ≤ 2^32), exact in f64.
        let w_uu = (two_l * (two_l - 1)) as f64;
        let w_un = (two_l * rest) as f64;
        let total = w_uu + 2.0 * w_un;
        let r = self.rng.random::<f64>() * total;
        let (a, b) = if r < w_uu {
            let a = self.pick_used(two_l, None);
            let b = self.pick_used(two_l - 1, Some(a));
            (a, b)
        } else if r < w_uu + w_un {
            (self.pick_used(two_l, None), self.pick_rest(rest))
        } else {
            (self.pick_rest(rest), self.pick_used(two_l, None))
        };
        self.apply_single(a, b);
    }

    /// Uniform delegate, weighted by the post-transition census, with
    /// optionally one agent of state `exclude` removed.
    fn pick_used(&mut self, total: u64, exclude: Option<StateId>) -> StateId {
        debug_assert!(total > 0);
        let mut target = (self.rng.random::<f64>() * total as f64) as u64;
        let mut last = None;
        for i in 0..self.used_touched.len() {
            let id = self.used_touched[i];
            let mut w = self.used[id as usize];
            if exclude == Some(id) {
                w -= 1;
            }
            if w == 0 {
                continue;
            }
            last = Some(id);
            if target < w {
                return id;
            }
            target -= w;
        }
        // Floating-point leftover: fall back to the last populated id.
        last.expect("delegate census is nonempty")
    }

    /// Uniform non-delegate agent: weighted by current counts minus the
    /// delegate census.
    fn pick_rest(&mut self, total: u64) -> StateId {
        debug_assert!(total > 0);
        let mut target = (self.rng.random::<f64>() * total as f64) as u64;
        let mut last = None;
        for i in 0..self.active.len() {
            let id = self.active[i];
            let w = self.counts[id as usize] - self.used[id as usize];
            if w == 0 {
                continue;
            }
            last = Some(id);
            if target < w {
                return id;
            }
            target -= w;
        }
        last.expect("non-delegate population is nonempty")
    }

    /// The epoch's batch left the run stable: invert it, shuffle the
    /// `l` interactions (a uniform order of an exchangeable batch is
    /// exact), and replay to pin the first stable step. Stability
    /// certificates are monotone along a trajectory, so a stable prefix
    /// point exists and later steps cannot unstabilize it.
    fn locate_first_stable_step(&mut self, l: u64) {
        for pi in 0..self.pairs.len() {
            let (a, b, k) = self.pairs[pi];
            let (a2, b2) = self.compiled.successor(a, b);
            self.counts[a2 as usize] -= k;
            self.counts[b2 as usize] -= k;
            self.counts[a as usize] += k;
            self.counts[b as usize] += k;
            if self.linear {
                self.leaders -= i64::from(self.delta(a, b)) * k as i64;
            }
        }
        self.steps -= l;
        self.replay.clear();
        for pi in 0..self.pairs.len() {
            let (a, b, k) = self.pairs[pi];
            for _ in 0..k {
                self.replay.push((a, b));
            }
        }
        let mut replay = std::mem::take(&mut self.replay);
        replay.shuffle(&mut self.rng);
        for &(a, b) in &replay {
            self.apply_single(a, b);
            self.steps += 1;
            if self.stable_now() {
                break;
            }
        }
        self.replay = replay;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LeaderCountOracle;
    use popele_graph::NodeId;

    /// Initiator absorbs the responder's leadership; the first
    /// `candidates` agents start as leaders. Stabilizes on cliques.
    #[derive(Clone, Copy)]
    struct Absorb {
        candidates: u64,
    }

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, node: NodeId) -> bool {
            u64::from(node) < self.candidates
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    /// Same protocol through the census-capable (non-linear) oracle
    /// path, to exercise `recompute_census` stability detection.
    #[derive(Clone, Copy)]
    struct CensusAbsorb {
        candidates: u64,
    }

    #[derive(Default)]
    struct CensusOracle {
        leaders: u64,
    }

    impl StabilityOracle<CensusAbsorb> for CensusOracle {
        fn recompute(&mut self, _p: &CensusAbsorb, config: &[bool]) {
            self.leaders = config.iter().filter(|s| **s).count() as u64;
        }

        fn apply(&mut self, _p: &CensusAbsorb, old: (&bool, &bool), new: (&bool, &bool)) {
            self.leaders -= u64::from(*old.0) + u64::from(*old.1);
            self.leaders += u64::from(*new.0) + u64::from(*new.1);
        }

        fn is_stable(&self) -> bool {
            self.leaders == 1
        }

        fn recompute_census(&mut self, _p: &CensusAbsorb, census: &[(bool, u64)]) -> bool {
            self.leaders = census.iter().filter(|(s, _)| *s).map(|(_, c)| *c).sum();
            true
        }
    }

    impl Protocol for CensusAbsorb {
        type State = bool;
        type Oracle = CensusOracle;

        fn initial_state(&self, node: NodeId) -> bool {
            u64::from(node) < self.candidates
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> CensusOracle {
            CensusOracle::default()
        }
    }

    fn absorb_outcome(n: u64, candidates: u64, seed: u64) -> Outcome {
        let protocol = Absorb { candidates };
        let compiled = compile_for_count(&protocol, n).expect("absorb compiles");
        let mut engine = CountEngine::new(&compiled, n, seed);
        engine.run_until_stable(u64::MAX).expect("stabilizes")
    }

    #[test]
    fn single_candidate_is_immediately_stable() {
        let outcome = absorb_outcome(64, 1, 7);
        assert_eq!(outcome.stabilization_step, 0);
        assert_eq!(outcome.leader_count, 1);
        assert_eq!(outcome.leader, None);
    }

    #[test]
    fn elects_exactly_one_leader() {
        for seed in 0..5 {
            let outcome = absorb_outcome(200, 200, seed);
            assert_eq!(outcome.leader_count, 1);
            assert!(outcome.stabilization_step > 0);
        }
    }

    #[test]
    fn census_oracle_path_elects_exactly_one_leader() {
        let protocol = CensusAbsorb { candidates: 300 };
        assert!(count_supported(&protocol));
        let compiled = compile_for_count(&protocol, 300).expect("compiles");
        let mut engine = CountEngine::new(&compiled, 300, 5);
        let outcome = engine.run_until_stable(u64::MAX).expect("stabilizes");
        assert_eq!(outcome.leader_count, 1);
        assert!(outcome.stabilization_step > 0);
    }

    #[test]
    fn population_is_conserved() {
        let protocol = Absorb { candidates: 500 };
        let compiled = compile_for_count(&protocol, 500).expect("compiles");
        let mut engine = CountEngine::new(&compiled, 500, 42);
        for _ in 0..20 {
            engine.run_steps(1000);
            assert_eq!(engine.counts().iter().sum::<u64>(), 500);
        }
    }

    #[test]
    fn leader_count_is_monotone() {
        let protocol = Absorb { candidates: 300 };
        let compiled = compile_for_count(&protocol, 300).expect("compiles");
        let mut engine = CountEngine::new(&compiled, 300, 9);
        let mut prev = engine.leader_count();
        for _ in 0..50 {
            engine.run_steps(20);
            let now = engine.leader_count();
            assert!(now <= prev, "leader count grew: {prev} -> {now}");
            prev = now;
        }
    }

    #[test]
    fn reset_restores_the_initial_configuration() {
        let protocol = Absorb { candidates: 100 };
        let compiled = compile_for_count(&protocol, 100).expect("compiles");
        let mut engine = CountEngine::new(&compiled, 100, 1);
        let initial = engine.counts().to_vec();
        engine.run_steps(5000);
        assert_ne!(engine.counts(), initial.as_slice());
        engine.reset(2);
        assert_eq!(engine.counts(), initial.as_slice());
        assert_eq!(engine.steps(), 0);
        assert_eq!(engine.leader_count(), 100);
    }

    #[test]
    fn deterministic_across_identical_seeds() {
        let a = absorb_outcome(400, 400, 1234);
        let b = absorb_outcome(400, 400, 1234);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_the_step_budget() {
        let protocol = Absorb {
            candidates: 1_000_000,
        };
        let compiled = compile_for_count(&protocol, 1_000_000).expect("compiles");
        let mut engine = CountEngine::new(&compiled, 1_000_000, 3);
        let err = engine.run_until_stable(50).expect_err("cannot elect in 50");
        assert_eq!(err.max_steps, 50);
        assert!(engine.steps() <= 50);
    }

    #[test]
    fn large_population_initialization_is_cheap_and_exact() {
        // 10⁷ agents, non-uniform initial split: counts must reflect
        // the exact prefix/suffix structure without per-agent storage.
        let protocol = Absorb { candidates: 3 };
        let compiled = compile_for_count(&protocol, 10_000_000).expect("compiles");
        let engine = CountEngine::new(&compiled, 10_000_000, 0);
        assert_eq!(engine.counts().iter().sum::<u64>(), 10_000_000);
        assert_eq!(engine.leader_count(), 3);
    }
}
