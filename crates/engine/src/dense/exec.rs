//! The two dense executors: ahead-of-time compiled and lazily compiled.
//!
//! Both mirror [`crate::Executor`] exactly — same scheduler, same seed
//! handling, same oracle semantics, same [`Outcome`]s — and share the
//! batched draw machinery of [`super::decoder`]; they differ only in
//! where successor pairs come from (a precomputed `|Λ|²` table vs the
//! on-demand [`LazyTable`] cache). Differential tests in the workspace
//! pin both to identical traces with the generic engine.

use super::decoder::{clique_decode, orient, EdgeDecoder, PAIR_BATCH};
use super::lazy::{LazyId, LazyTable};
use super::table::{CompiledProtocol, StateId};
use crate::executor::{NotStabilized, Outcome};
use crate::protocol::{Protocol, Role, StabilityOracle};
use crate::scheduler::EdgeScheduler;
use popele_graph::{Graph, NodeId};

/// When a batched run loop should stop early (beyond its step budget).
/// `Stable` serves `run_until_stable`, `Unstable` the holding-time loop
/// `run_while_stable`; both only need re-checking after a state-changing
/// interaction, which is what keeps the no-op fast path branch-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Stop {
    Never,
    Stable,
    Unstable,
}

/// Distinct-state census over dense ids (mirrors the generic executor's
/// `HashSet` census at O(1) per mark). Growable, because the lazy engine
/// interns new ids mid-run.
#[derive(Debug, Clone)]
struct DenseCensus {
    seen: Vec<bool>,
    count: usize,
}

impl DenseCensus {
    fn new(k: usize) -> Self {
        Self {
            seen: vec![false; k],
            count: 0,
        }
    }

    #[inline]
    fn mark(&mut self, id: u32) {
        let idx = id as usize;
        if idx >= self.seen.len() {
            self.seen.resize(idx + 1, false);
        }
        let slot = &mut self.seen[idx];
        if !*slot {
            *slot = true;
            self.count += 1;
        }
    }
}

/// Runs one execution of a [`CompiledProtocol`] on a [`Graph`].
///
/// Drop-in counterpart of [`crate::Executor`]: identical constructor
/// signature modulo the compiled table, identical scheduler and seed
/// semantics, identical oracle behaviour and [`Outcome`]s — only the
/// per-interaction cost differs. The stability oracle is the protocol's
/// own [`StabilityOracle`], driven with borrowed typed states from the
/// compiled id ↔ state mapping, and is skipped entirely for the (vastly
/// most common, late in a run) no-op interactions — valid because oracle
/// updates are pure count deltas, so an identity transition is always a
/// no-op on the oracle too.
pub struct DenseExecutor<'a, P: Protocol> {
    graph: &'a Graph,
    compiled: &'a CompiledProtocol<P>,
    scheduler: EdgeScheduler<'a>,
    ids: Vec<StateId>,
    oracle: P::Oracle,
    /// When the oracle declared
    /// [`StabilityOracle::stable_iff_unique_leader`], the engine tracks
    /// the leader count itself via the compiled per-pair deltas and the
    /// typed oracle is bypassed entirely (`leaders` is then
    /// authoritative; the substitution is behaviour-identical).
    linear: bool,
    leaders: i64,
    census: Option<DenseCensus>,
    /// Pairs pre-drawn from the scheduler in a tight batch (see
    /// [`EdgeDecoder::fill_batch`]); `pairs[cursor..filled]` are drawn
    /// but not yet applied. `applied` — not the scheduler's draw count —
    /// is the execution's step counter. Refills never draw past the step
    /// budget of the run call they serve, so bounded runs
    /// ([`DenseExecutor::run_steps`]) consume the scheduler stream
    /// exactly as far as the generic engine would — the property that
    /// lets [`crate::faults`] interleave graph changes with execution on
    /// both engines identically.
    pairs: Box<[(NodeId, NodeId)]>,
    raw: Box<[usize]>,
    cursor: usize,
    filled: usize,
    applied: u64,
    decoder: EdgeDecoder,
}

impl<'a, P: Protocol> DenseExecutor<'a, P> {
    /// Creates an executor with every node in its initial state.
    ///
    /// The compiled node count may exceed the graph's: a compilation for
    /// `n + k` nodes serves any graph with at most `n + k` nodes, which
    /// is how fault plans with node churn ([`crate::faults`]) share one
    /// table across all epochs. (The state enumeration for more nodes is
    /// a superset, so the table still covers every reachable pair.)
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges or more nodes than the protocol
    /// was compiled for.
    #[must_use]
    pub fn new(graph: &'a Graph, compiled: &'a CompiledProtocol<P>, seed: u64) -> Self {
        assert!(
            graph.num_nodes() <= compiled.num_nodes(),
            "graph size does not match the compiled protocol"
        );
        let ids = compiled.initial[..graph.num_nodes() as usize].to_vec();
        let mut oracle = compiled.protocol.oracle();
        let linear = oracle.stable_iff_unique_leader();
        if !linear {
            // In linear mode the typed oracle is bypassed entirely
            // (`leaders` is authoritative), so skip the O(n) typed
            // materialization.
            oracle.recompute(&compiled.protocol, &compiled.typed_config(&ids));
        }
        let leaders = ids
            .iter()
            .filter(|&&id| compiled.roles[id as usize] == Role::Leader)
            .count() as i64;
        Self {
            graph,
            compiled,
            scheduler: EdgeScheduler::new(graph, seed),
            ids,
            oracle,
            linear,
            leaders,
            census: None,
            pairs: vec![(0, 0); PAIR_BATCH].into_boxed_slice(),
            raw: vec![0usize; PAIR_BATCH].into_boxed_slice(),
            cursor: 0,
            filled: 0,
            applied: 0,
            decoder: EdgeDecoder::for_graph(graph),
        }
    }

    /// Refills the pair buffer with one batch of up to `limit ≤
    /// PAIR_BATCH` scheduler draws through the decoder.
    fn refill(&mut self, limit: usize) {
        self.decoder
            .fill_batch(&mut self.scheduler, &mut self.pairs[..limit], &mut self.raw);
        self.cursor = 0;
        self.filled = limit;
    }

    /// Enables the distinct-state census (O(1) per changed state).
    pub fn enable_state_census(&mut self) {
        let mut census = DenseCensus::new(self.compiled.num_states());
        for &id in &self.ids {
            census.mark(u32::from(id));
        }
        self.census = Some(census);
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The compiled protocol driving this execution.
    #[must_use]
    pub fn compiled(&self) -> &CompiledProtocol<P> {
        self.compiled
    }

    /// Current configuration as dense ids.
    #[must_use]
    pub fn state_ids(&self) -> &[StateId] {
        &self.ids
    }

    /// Typed state of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn state_of(&self, v: NodeId) -> &P::State {
        &self.compiled.states[self.ids[v as usize] as usize]
    }

    /// Steps applied so far.
    ///
    /// The scheduler may have *drawn* up to one batch further ahead (the
    /// undrawn pairs are buffered and will be applied next), so this is
    /// the model's time step `t`, not the raw RNG draw count.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.applied
    }

    /// Applies the ordered interaction `(u, v)` to the configuration.
    #[inline]
    fn apply_pair(&mut self, u: NodeId, v: NodeId) {
        let (iu, iv) = (u as usize, v as usize);
        let a = self.ids[iu];
        let b = self.ids[iv];
        let k = self.compiled.states.len();
        let packed = self.compiled.table[a as usize * k + b as usize];
        let current = (u32::from(a) << 16) | u32::from(b);
        if packed != current {
            let na = (packed >> 16) as StateId;
            let nb = packed as StateId;
            if self.linear {
                self.leaders += i64::from(self.compiled.leader_delta[a as usize * k + b as usize]);
            } else {
                let states = &self.compiled.states;
                self.oracle.apply(
                    &self.compiled.protocol,
                    (&states[a as usize], &states[b as usize]),
                    (&states[na as usize], &states[nb as usize]),
                );
            }
            if let Some(census) = &mut self.census {
                census.mark(u32::from(na));
                census.mark(u32::from(nb));
            }
            self.ids[iu] = na;
            self.ids[iv] = nb;
        }
    }

    /// Applies one interaction and returns the sampled `(initiator,
    /// responder)` pair.
    #[inline]
    pub fn step(&mut self) -> (NodeId, NodeId) {
        if self.cursor == self.filled {
            self.refill(PAIR_BATCH);
        }
        let (u, v) = self.pairs[self.cursor];
        self.cursor += 1;
        self.applied += 1;
        self.apply_pair(u, v);
        (u, v)
    }

    /// Applies up to `budget` already-buffered interactions in one tight
    /// loop (the engine's hot path: two id reads, one table lookup, two
    /// id writes per interaction, with oracle/census work only on the
    /// rare state-changing pairs).
    ///
    /// Returns right after the state change that satisfies `stop`. The
    /// caller guarantees `budget ≤` the number of buffered pairs.
    fn apply_batch(&mut self, budget: usize, stop: Stop) {
        let compiled = self.compiled;
        let k = compiled.states.len();
        let table = &compiled.table;
        let states = &compiled.states;
        let end = self.cursor + budget;
        let mut i = self.cursor;
        while i < end {
            let (u, v) = self.pairs[i];
            i += 1;
            let (iu, iv) = (u as usize, v as usize);
            let a = self.ids[iu];
            let b = self.ids[iv];
            let idx = a as usize * k + b as usize;
            let packed = table[idx];
            if packed != ((u32::from(a) << 16) | u32::from(b)) {
                let na = (packed >> 16) as StateId;
                let nb = packed as StateId;
                if self.linear {
                    self.leaders += i64::from(compiled.leader_delta[idx]);
                } else {
                    self.oracle.apply(
                        &compiled.protocol,
                        (&states[a as usize], &states[b as usize]),
                        (&states[na as usize], &states[nb as usize]),
                    );
                }
                if let Some(census) = &mut self.census {
                    census.mark(u32::from(na));
                    census.mark(u32::from(nb));
                }
                self.ids[iu] = na;
                self.ids[iv] = nb;
                if self.stop_now(stop) {
                    break;
                }
            }
        }
        self.applied += (i - self.cursor) as u64;
        self.cursor = i;
    }

    /// Fused runner for the computed-edge (clique) decoder: RNG draw,
    /// arithmetic decode and table apply in one loop, with no pair
    /// buffer in between. The RNG state and the configuration are
    /// independent dependency chains, so the processor overlaps them;
    /// this is the engine's fastest path. Requires the pair buffer to
    /// be drained and applies at most `budget` interactions, returning
    /// early (right after the causing change) once the oracle satisfies
    /// `stop`.
    fn run_fused_clique(&mut self, budget: u64, stop: Stop) {
        debug_assert_eq!(self.cursor, self.filled, "pair buffer must be drained");
        let EdgeDecoder::Clique { n, shift, row_hint } = &self.decoder else {
            unreachable!("fused path requires the clique decoder")
        };
        let n = *n as u32;
        let shift = *shift;
        let compiled = self.compiled;
        let k = compiled.states.len();
        let table = &compiled.table;
        let states = &compiled.states;
        let mut done = 0u64;
        if self.linear && self.census.is_none() && compiled.fused.is_some() {
            // Branchless variant: writing back unchanged ids and adding
            // a zero leader delta are no-ops, so the data-dependent
            // "did this pair change state?" branch — mispredicted
            // constantly mid-election — disappears entirely, and one
            // load of the fused table serves successors and delta alike.
            let fused = compiled.fused.as_deref().expect("checked above");
            while done < budget {
                let r = self.scheduler.next_raw();
                done += 1;
                let (u, v) = clique_decode((r >> 1) as u32, n, shift, row_hint);
                let (iu, iv) = orient(u, v, r);
                let (iu, iv) = (iu as usize, iv as usize);
                let a = self.ids[iu];
                let b = self.ids[iv];
                let entry = fused[((a as usize) << 8) | b as usize];
                self.ids[iu] = ((entry >> 8) & 0xFF) as StateId;
                self.ids[iv] = (entry & 0xFF) as StateId;
                self.leaders += i64::from(entry >> 16) - 2;
                match stop {
                    Stop::Stable if self.leaders == 1 => break,
                    Stop::Unstable if self.leaders != 1 => break,
                    _ => {}
                }
            }
        } else {
            while done < budget {
                let r = self.scheduler.next_raw();
                done += 1;
                let (u, v) = clique_decode((r >> 1) as u32, n, shift, row_hint);
                let (iu, iv) = orient(u, v, r);
                let (iu, iv) = (iu as usize, iv as usize);
                let a = self.ids[iu];
                let b = self.ids[iv];
                let idx = a as usize * k + b as usize;
                let packed = table[idx];
                if packed != ((u32::from(a) << 16) | u32::from(b)) {
                    let na = (packed >> 16) as StateId;
                    let nb = packed as StateId;
                    if self.linear {
                        self.leaders += i64::from(compiled.leader_delta[idx]);
                    } else {
                        self.oracle.apply(
                            &compiled.protocol,
                            (&states[a as usize], &states[b as usize]),
                            (&states[na as usize], &states[nb as usize]),
                        );
                    }
                    if let Some(census) = &mut self.census {
                        census.mark(u32::from(na));
                        census.mark(u32::from(nb));
                    }
                    self.ids[iu] = na;
                    self.ids[iv] = nb;
                    if self.stop_now(stop) {
                        break;
                    }
                }
            }
        }
        self.applied += done;
    }

    /// Applies up to `budget` interactions through buffered pairs (for
    /// already-drawn pairs and the gather decoders) or the fused path.
    fn run_budget(&mut self, budget: u64, stop: Stop) {
        if self.cursor < self.filled {
            let avail = (self.filled - self.cursor) as u64;
            self.apply_batch(avail.min(budget) as usize, stop);
        } else if matches!(self.decoder, EdgeDecoder::Clique { .. }) {
            self.run_fused_clique(budget, stop);
        } else {
            let limit = budget.min(PAIR_BATCH as u64) as usize;
            self.refill(limit);
            self.apply_batch(limit, stop);
        }
    }

    /// Runs exactly `k` interactions, consuming the scheduler stream
    /// exactly `k` draws past the buffered pairs — never further — so
    /// after the buffer drains, the RNG position matches the generic
    /// engine's at the same step (the alignment [`crate::faults`] relies
    /// on to perturb both engines identically).
    pub fn run_steps(&mut self, k: u64) {
        let mut remaining = k;
        while remaining > 0 {
            let before = self.applied;
            self.run_budget(remaining, Stop::Never);
            remaining -= self.applied - before;
        }
    }

    /// Runs until the oracle reports a stable, correct configuration or
    /// the step budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`NotStabilized`] if `max_steps` interactions pass without
    /// stabilization.
    pub fn run_until_stable(&mut self, max_steps: u64) -> Result<Outcome, NotStabilized> {
        while !self.stable_now() {
            if self.applied >= max_steps {
                return Err(NotStabilized { max_steps });
            }
            self.run_budget(max_steps - self.applied, Stop::Stable);
        }
        Ok(self.outcome())
    }

    /// Runs while the oracle keeps reporting stability, stopping right
    /// after the first interaction that breaks it (same contract as
    /// [`crate::Executor::run_while_stable`], and trace-identical to
    /// it). Returns the violation step, or `None` if `max_steps` total
    /// interactions passed with stability intact.
    pub fn run_while_stable(&mut self, max_steps: u64) -> Option<u64> {
        while self.stable_now() {
            if self.applied >= max_steps {
                return None;
            }
            self.run_budget(max_steps - self.applied, Stop::Unstable);
        }
        Some(self.applied)
    }

    #[inline]
    fn stable_now(&self) -> bool {
        if self.linear {
            self.leaders == 1
        } else {
            self.oracle.is_stable()
        }
    }

    /// Whether the `stop` condition holds right now (checked only after
    /// state-changing interactions).
    #[inline]
    fn stop_now(&self, stop: Stop) -> bool {
        match stop {
            Stop::Never => false,
            Stop::Stable => self.stable_now(),
            Stop::Unstable => !self.stable_now(),
        }
    }

    /// Whether the oracle currently reports stability.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.stable_now()
    }

    /// Current number of leader-output nodes (O(n) scan of the role
    /// table).
    #[must_use]
    pub fn leader_count(&self) -> usize {
        self.ids
            .iter()
            .filter(|&&id| self.compiled.roles[id as usize] == Role::Leader)
            .count()
    }

    /// The unique leader if exactly one node outputs leader.
    #[must_use]
    pub fn leader(&self) -> Option<NodeId> {
        let mut found = None;
        for (v, &id) in self.ids.iter().enumerate() {
            if self.compiled.roles[id as usize] == Role::Leader {
                if found.is_some() {
                    return None;
                }
                found = Some(v as NodeId);
            }
        }
        found
    }

    /// Snapshot of the current outcome (regardless of stability).
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        Outcome {
            stabilization_step: self.steps(),
            leader_count: self.leader_count(),
            leader: self.leader(),
            distinct_states: self.census.as_ref().map(|c| c.count),
        }
    }

    /// Resets to the initial configuration with a new seed.
    ///
    /// Resets states, scheduler and counters only — the executor stays
    /// bound to whichever graph it currently borrows, so executors that
    /// ran a fault plan with topology changes should be rebuilt rather
    /// than reset (the Monte-Carlo harness does exactly that).
    pub fn reset(&mut self, seed: u64) {
        let n = self.graph.num_nodes() as usize;
        self.ids.clear();
        self.ids.extend_from_slice(&self.compiled.initial[..n]);
        self.scheduler.reset(seed);
        self.cursor = 0;
        self.filled = 0;
        self.applied = 0;
        self.leaders = self
            .ids
            .iter()
            .filter(|&&id| self.compiled.roles[id as usize] == Role::Leader)
            .count() as i64;
        if !self.linear {
            self.oracle.recompute(
                &self.compiled.protocol,
                &self.compiled.typed_config(&self.ids),
            );
        }
        if self.census.is_some() {
            self.census = None;
            self.enable_state_census();
        }
    }

    // ---- fault-injection primitives (see `crate::faults`) ------------
    //
    // Mirrors of the generic executor's primitives. Topology changes
    // invalidate the per-graph edge decoder, so every rebind rebuilds it
    // for the new graph; the scheduler keeps its RNG stream. Rebinds
    // require the pair buffer to be drained — which it always is after
    // a `run_steps` call, since bounded runs never draw past their
    // budget.

    /// Recomputes the derived leader/oracle state after a perturbation
    /// (corruption or churn) that edited `ids` outside a transition.
    fn resync_oracle(&mut self) {
        self.leaders = self
            .ids
            .iter()
            .filter(|&&id| self.compiled.roles[id as usize] == Role::Leader)
            .count() as i64;
        if !self.linear {
            self.oracle.recompute(
                &self.compiled.protocol,
                &self.compiled.typed_config(&self.ids),
            );
        }
    }

    /// Rebinds scheduler and decoder to `graph` (states untouched).
    fn rebind(&mut self, graph: &'a Graph) {
        assert_eq!(
            self.cursor, self.filled,
            "pair buffer must be drained before a graph change"
        );
        self.graph = graph;
        self.scheduler.set_graph(graph);
        self.decoder = EdgeDecoder::for_graph(graph);
    }

    /// Rebinds the execution to a graph with the **same node count**
    /// (edge additions/removals/rewirings), rebuilding the edge decoder.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ, the new graph has no edges, or
    /// the pair buffer still holds drawn-but-unapplied pairs.
    pub fn set_graph(&mut self, graph: &'a Graph) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.ids.len(),
            "set_graph requires an equal node count (use join_node/leave_node)"
        );
        self.rebind(graph);
    }

    /// Rebinds to a graph with **one more node**: the new node is `n`
    /// (the old node count) and starts in its initial state.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not have exactly one extra node or the
    /// protocol was compiled for fewer nodes than the new graph has.
    pub fn join_node(&mut self, graph: &'a Graph) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.ids.len() + 1,
            "join_node requires exactly one extra node"
        );
        assert!(
            graph.num_nodes() <= self.compiled.num_nodes(),
            "protocol was compiled for fewer nodes than the new graph has"
        );
        let id = self.compiled.initial[self.ids.len()];
        if let Some(census) = &mut self.census {
            census.mark(u32::from(id));
        }
        self.ids.push(id);
        self.rebind(graph);
        self.resync_oracle();
    }

    /// Rebinds to a graph with **one less node**: node `removed` leaves
    /// and the last node (`n − 1`) is relabelled to `removed` — `graph`
    /// must already use that relabelling.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not have exactly one node less or
    /// `removed` is out of range.
    pub fn leave_node(&mut self, graph: &'a Graph, removed: NodeId) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.ids.len() - 1,
            "leave_node requires exactly one node less"
        );
        self.ids.swap_remove(removed as usize);
        self.rebind(graph);
        self.resync_oracle();
    }

    /// State corruption: resets node `v` to its initial state (a crash
    /// followed by a clean rejoin), leaving all other nodes untouched.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn corrupt_to_initial(&mut self, v: NodeId) {
        let id = self.compiled.initial[v as usize];
        if let Some(census) = &mut self.census {
            census.mark(u32::from(id));
        }
        self.ids[v as usize] = id;
        self.resync_oracle();
    }

    /// Overwrites the whole configuration (an *arbitrary* start, in the
    /// self-stabilization sense — see [`crate::stabilize`]); mirrors
    /// [`crate::Executor::set_configuration`]. The scheduler's RNG
    /// stream is untouched.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count, or if any
    /// state is not in the compiled table — arbitrary-start tables must
    /// be built with [`CompiledProtocol::compile_with_seeds`] over the
    /// sampler's support.
    pub fn set_configuration(&mut self, states: &[P::State]) {
        assert_eq!(
            states.len(),
            self.ids.len(),
            "configuration length must equal the node count"
        );
        for (slot, s) in self.ids.iter_mut().zip(states) {
            let id = self
                .compiled
                .state_id(s)
                .expect("arbitrary start state missing from the compiled table (compile_with_seeds over the sampler's support)");
            *slot = id;
        }
        if let Some(census) = &mut self.census {
            for &id in &self.ids {
                census.mark(u32::from(id));
            }
        }
        self.resync_oracle();
    }

    #[cfg(test)]
    pub(crate) fn scheduler_steps(&self) -> u64 {
        self.scheduler.steps()
    }

    #[cfg(test)]
    pub(crate) fn decoder(&self) -> &EdgeDecoder {
        &self.decoder
    }
}

/// Runs one execution of a protocol through a [`LazyTable`] — the
/// lazily-compiling dense engine.
///
/// Drop-in counterpart of [`crate::Executor`] and [`DenseExecutor`]:
/// identical scheduler and seed semantics, identical oracle behaviour
/// and [`Outcome`]s. Instead of requiring the full reachable state space
/// up front, it interns states on first sight into `u32` ids and
/// memoizes pair successors on demand, so protocols whose state spaces
/// overflow the ahead-of-time cap — the identifier protocol at realistic
/// `k`, full-scale fast-protocol instances — still run on a dense-id hot
/// loop. See [`super::lazy`] for the caching machinery and
/// [`crate::monte_carlo::run_trials_auto`] for the three-way engine
/// selection.
///
/// Unlike [`DenseExecutor`] the table is owned (the cache mutates during
/// the run), so executors are per-thread; [`LazyDenseExecutor::reset`]
/// deliberately keeps the warm cache, which is how Monte-Carlo workers
/// amortize it across trials.
///
/// # Examples
///
/// ```
/// use popele_engine::{Executor, LazyDenseExecutor, LeaderCountOracle, Protocol, Role};
/// use popele_graph::families;
///
/// // A protocol whose per-node grain counters give it far too many
/// // reachable states for ahead-of-time compilation at realistic
/// // parameters — the shape of the paper's identifier protocol. The
/// // lazy engine runs it on dense ids anyway, trace-identical to the
/// // generic reference.
/// #[derive(Clone, Copy)]
/// struct GrainAbsorb;
/// impl Protocol for GrainAbsorb {
///     type State = (bool, u32); // (leader bit, interaction counter)
///     type Oracle = LeaderCountOracle;
///     fn initial_state(&self, _node: u32) -> (bool, u32) { (true, 0) }
///     fn transition(&self, a: &(bool, u32), b: &(bool, u32)) -> ((bool, u32), (bool, u32)) {
///         ((a.0, (a.1 + 1).min(1_000_000)), (b.0 && !a.0, b.1))
///     }
///     fn output(&self, s: &(bool, u32)) -> Role {
///         if s.0 { Role::Leader } else { Role::Follower }
///     }
///     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// }
///
/// let g = families::clique(16);
/// let generic = Executor::new(&g, &GrainAbsorb, 7).run_until_stable(1 << 22).unwrap();
/// let lazy = LazyDenseExecutor::new(&g, &GrainAbsorb, 7).run_until_stable(1 << 22).unwrap();
/// assert_eq!(generic, lazy);
/// ```
pub struct LazyDenseExecutor<'a, P: Protocol> {
    graph: &'a Graph,
    table: LazyTable<P>,
    scheduler: EdgeScheduler<'a>,
    ids: Vec<LazyId>,
    oracle: P::Oracle,
    /// Same linear-oracle substitution as [`DenseExecutor`]: when the
    /// oracle is exactly a unique-leader count, the engine maintains it
    /// through the cached per-pair deltas.
    linear: bool,
    leaders: i64,
    census: Option<DenseCensus>,
    /// Batched draws, with the same never-past-the-budget discipline as
    /// [`DenseExecutor`] (see its field docs) — the property that lets
    /// [`crate::faults`] perturb all engines identically.
    pairs: Box<[(NodeId, NodeId)]>,
    raw: Box<[usize]>,
    cursor: usize,
    filled: usize,
    applied: u64,
    decoder: EdgeDecoder,
    /// Reset snapshot: the initial configuration is seed-independent,
    /// so the dense ids, the typed states feeding the oracle's
    /// `recompute`, and the initial leader count are captured once and
    /// replayed by [`Self::reset`] instead of re-interned per reset
    /// (`initial_typed` stays empty for linear oracles, which need no
    /// recompute). Rebuilt lazily if node churn changed the population.
    initial_ids: Vec<LazyId>,
    initial_typed: Vec<P::State>,
    initial_leaders: i64,
}

impl<'a, P: Protocol + Clone> LazyDenseExecutor<'a, P> {
    /// Creates an executor with every node in its initial state.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    #[must_use]
    pub fn new(graph: &'a Graph, protocol: &P, seed: u64) -> Self {
        let mut table = LazyTable::new(protocol, graph.num_nodes());
        let ids: Vec<LazyId> = (0..graph.num_nodes())
            .map(|v| table.initial_id(v))
            .collect();
        let mut oracle = protocol.oracle();
        let linear = oracle.stable_iff_unique_leader();
        let typed: Vec<P::State> = if linear {
            Vec::new()
        } else {
            ids.iter().map(|&id| table.state(id).clone()).collect()
        };
        if !linear {
            oracle.recompute(protocol, &typed);
        }
        let leaders = ids
            .iter()
            .filter(|&&id| table.role(id) == Role::Leader)
            .count() as i64;
        Self {
            graph,
            table,
            scheduler: EdgeScheduler::new(graph, seed),
            initial_ids: ids.clone(),
            initial_typed: typed,
            initial_leaders: leaders,
            ids,
            oracle,
            linear,
            leaders,
            census: None,
            pairs: vec![(0, 0); PAIR_BATCH].into_boxed_slice(),
            raw: vec![0usize; PAIR_BATCH].into_boxed_slice(),
            cursor: 0,
            filled: 0,
            applied: 0,
            decoder: EdgeDecoder::for_graph(graph),
        }
    }
}

impl<'a, P: Protocol> LazyDenseExecutor<'a, P> {
    fn refill(&mut self, limit: usize) {
        self.decoder
            .fill_batch(&mut self.scheduler, &mut self.pairs[..limit], &mut self.raw);
        self.cursor = 0;
        self.filled = limit;
    }

    /// Enables the distinct-state census (O(1) per changed state).
    pub fn enable_state_census(&mut self) {
        let mut census = DenseCensus::new(self.table.num_states());
        for &id in &self.ids {
            census.mark(id);
        }
        self.census = Some(census);
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// The lazily-built table (interner + pair cache) driving this
    /// execution — exposed for capacity reporting and tests.
    #[must_use]
    pub fn table(&self) -> &LazyTable<P> {
        &self.table
    }

    /// Current configuration as dense ids.
    #[must_use]
    pub fn state_ids(&self) -> &[LazyId] {
        &self.ids
    }

    /// Typed state of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn state_of(&self, v: NodeId) -> &P::State {
        self.table.state(self.ids[v as usize])
    }

    /// Steps applied so far (the model's time step `t`; the scheduler
    /// may have drawn up to one buffered batch further ahead).
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.applied
    }

    /// Looks up (or on first sight evaluates) the successor of the id
    /// pair `(a, b)` together with the cache slot of the memoized effect
    /// summary (fetched on demand via [`LazyTable::cached_effect`] only
    /// when the pair changes state), splitting the borrows so the
    /// table's miss path can consult the oracle.
    #[inline]
    fn successor(&mut self, a: LazyId, b: LazyId) -> (LazyId, LazyId, i8, usize) {
        let oracle = &self.oracle;
        self.table
            .successor_tracked(a, b, |protocol, sa, sb, sna, snb| {
                oracle.transition_effect(protocol, (sa, sb), (sna, snb))
            })
    }

    /// Applies the ordered interaction `(u, v)` to the configuration.
    #[inline]
    fn apply_pair(&mut self, u: NodeId, v: NodeId) {
        let (iu, iv) = (u as usize, v as usize);
        let a = self.ids[iu];
        let b = self.ids[iv];
        let (na, nb, delta, slot) = self.successor(a, b);
        if (na, nb) != (a, b) {
            if self.linear {
                self.leaders += i64::from(delta);
            } else if !self.oracle.effect_inert(self.table.cached_effect(slot)) {
                let states = &self.table.states;
                self.oracle.apply(
                    &self.table.protocol,
                    (&states[a as usize], &states[b as usize]),
                    (&states[na as usize], &states[nb as usize]),
                );
            }
            if let Some(census) = &mut self.census {
                census.mark(na);
                census.mark(nb);
            }
            self.ids[iu] = na;
            self.ids[iv] = nb;
        }
    }

    /// Applies one interaction and returns the sampled `(initiator,
    /// responder)` pair.
    #[inline]
    pub fn step(&mut self) -> (NodeId, NodeId) {
        if self.cursor == self.filled {
            self.refill(PAIR_BATCH);
        }
        let (u, v) = self.pairs[self.cursor];
        self.cursor += 1;
        self.applied += 1;
        self.apply_pair(u, v);
        (u, v)
    }

    /// Applies up to `budget` already-buffered interactions in one tight
    /// loop — after warm-up: two id reads, one (almost always one-probe)
    /// cache lookup, two id writes per interaction, with oracle/census
    /// work only on the rare state-changing pairs. For non-linear
    /// oracles, the memoized effect summary skips the typed
    /// [`StabilityOracle::apply`] — and the interner reads feeding it —
    /// on changes the oracle vouches are inert: an inert application
    /// changes no counter, so stability cannot flip and the stop check
    /// is skipped along with it.
    fn apply_batch(&mut self, budget: usize, stop: Stop) {
        let start = self.cursor;
        let end = start + budget;
        // Split the borrows up front: iterating the drawn pairs as a
        // slice (no per-step bounds check) with the table, oracle and
        // ids borrowed disjointly keeps the loop invariants (`linear`,
        // the slice bounds) in registers across the hot loop.
        let Self {
            table,
            oracle,
            ids,
            census,
            pairs,
            leaders,
            linear,
            ..
        } = self;
        let linear = *linear;
        let mut done = 0usize;
        for &(u, v) in &pairs[start..end] {
            done += 1;
            let (iu, iv) = (u as usize, v as usize);
            let a = ids[iu];
            let b = ids[iv];
            let (na, nb, delta, slot) =
                table.successor_tracked(a, b, |protocol, sa, sb, sna, snb| {
                    oracle.transition_effect(protocol, (sa, sb), (sna, snb))
                });
            if (na, nb) != (a, b) {
                let mut check_stop = true;
                if linear {
                    *leaders += i64::from(delta);
                } else if oracle.effect_inert(table.cached_effect(slot)) {
                    check_stop = false;
                } else {
                    let states = &table.states;
                    oracle.apply(
                        &table.protocol,
                        (&states[a as usize], &states[b as usize]),
                        (&states[na as usize], &states[nb as usize]),
                    );
                }
                if let Some(census) = census.as_mut() {
                    census.mark(na);
                    census.mark(nb);
                }
                ids[iu] = na;
                ids[iv] = nb;
                if check_stop && !matches!(stop, Stop::Never) {
                    let stable = if linear {
                        *leaders == 1
                    } else {
                        oracle.is_stable()
                    };
                    if matches!(stop, Stop::Stable) == stable {
                        break;
                    }
                }
            }
        }
        self.applied += done as u64;
        self.cursor = start + done;
    }

    /// Applies up to `budget` interactions through buffered pairs,
    /// refilling in decoder batches.
    fn run_budget(&mut self, budget: u64, stop: Stop) {
        if self.cursor < self.filled {
            let avail = (self.filled - self.cursor) as u64;
            self.apply_batch(avail.min(budget) as usize, stop);
        } else {
            let limit = budget.min(PAIR_BATCH as u64) as usize;
            self.refill(limit);
            self.apply_batch(limit, stop);
        }
    }

    /// Runs exactly `k` interactions without drawing the scheduler
    /// stream past them (same contract as [`DenseExecutor::run_steps`]).
    pub fn run_steps(&mut self, k: u64) {
        let mut remaining = k;
        while remaining > 0 {
            let before = self.applied;
            self.run_budget(remaining, Stop::Never);
            remaining -= self.applied - before;
        }
    }

    /// Runs until the oracle reports a stable, correct configuration or
    /// the step budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`NotStabilized`] if `max_steps` interactions pass without
    /// stabilization.
    pub fn run_until_stable(&mut self, max_steps: u64) -> Result<Outcome, NotStabilized> {
        while !self.stable_now() {
            if self.applied >= max_steps {
                return Err(NotStabilized { max_steps });
            }
            self.run_budget(max_steps - self.applied, Stop::Stable);
        }
        Ok(self.outcome())
    }

    /// Runs while the oracle keeps reporting stability, stopping right
    /// after the first interaction that breaks it (same contract as
    /// [`crate::Executor::run_while_stable`], and trace-identical to
    /// it). Returns the violation step, or `None` if `max_steps` total
    /// interactions passed with stability intact.
    pub fn run_while_stable(&mut self, max_steps: u64) -> Option<u64> {
        while self.stable_now() {
            if self.applied >= max_steps {
                return None;
            }
            self.run_budget(max_steps - self.applied, Stop::Unstable);
        }
        Some(self.applied)
    }

    #[inline]
    fn stable_now(&self) -> bool {
        if self.linear {
            self.leaders == 1
        } else {
            self.oracle.is_stable()
        }
    }

    /// Whether the oracle currently reports stability.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.stable_now()
    }

    /// Current number of leader-output nodes (O(n) scan of the role
    /// memo).
    #[must_use]
    pub fn leader_count(&self) -> usize {
        self.ids
            .iter()
            .filter(|&&id| self.table.role(id) == Role::Leader)
            .count()
    }

    /// The unique leader if exactly one node outputs leader.
    #[must_use]
    pub fn leader(&self) -> Option<NodeId> {
        let mut found = None;
        for (v, &id) in self.ids.iter().enumerate() {
            if self.table.role(id) == Role::Leader {
                if found.is_some() {
                    return None;
                }
                found = Some(v as NodeId);
            }
        }
        found
    }

    /// Snapshot of the current outcome (regardless of stability).
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        Outcome {
            stabilization_step: self.steps(),
            leader_count: self.leader_count(),
            leader: self.leader(),
            distinct_states: self.census.as_ref().map(|c| c.count),
        }
    }

    /// Resets to the initial configuration with a new seed, **keeping**
    /// the interner and pair cache warm — a reset is behaviourally
    /// equivalent to fresh construction (the cache only changes speed,
    /// never the trace), and cache reuse across trials is where the lazy
    /// engine's Monte-Carlo throughput comes from.
    ///
    /// As with [`DenseExecutor::reset`], the executor stays bound to its
    /// current graph; fault-plan runs with topology changes rebuild
    /// executors instead.
    pub fn reset(&mut self, seed: u64) {
        let n = self.graph.num_nodes();
        if self.initial_ids.len() != n as usize {
            // Node churn changed the population since the snapshot was
            // taken; rebuild it for the current node count.
            self.initial_ids.clear();
            for v in 0..n {
                let id = self.table.initial_id(v);
                self.initial_ids.push(id);
            }
            if !self.linear {
                self.initial_typed = self
                    .initial_ids
                    .iter()
                    .map(|&id| self.table.state(id).clone())
                    .collect();
            }
            self.initial_leaders = self
                .initial_ids
                .iter()
                .filter(|&&id| self.table.role(id) == Role::Leader)
                .count() as i64;
        }
        self.ids.clone_from(&self.initial_ids);
        self.leaders = self.initial_leaders;
        if !self.linear {
            self.oracle
                .recompute(&self.table.protocol, &self.initial_typed);
        }
        self.scheduler.reset(seed);
        self.cursor = 0;
        self.filled = 0;
        self.applied = 0;
        if self.census.is_some() {
            self.census = None;
            self.enable_state_census();
        }
    }

    // ---- fault-injection primitives (see `crate::faults`) ------------
    //
    // Mirrors of the dense executor's primitives; the lazy engine needs
    // no compiled-size guard on joins — the new node's initial state is
    // interned on demand.

    /// Recomputes the derived leader/oracle state after a perturbation
    /// (corruption or churn) that edited `ids` outside a transition.
    fn resync_oracle(&mut self) {
        self.leaders = self
            .ids
            .iter()
            .filter(|&&id| self.table.role(id) == Role::Leader)
            .count() as i64;
        if !self.linear {
            let typed: Vec<P::State> = self
                .ids
                .iter()
                .map(|&id| self.table.state(id).clone())
                .collect();
            self.oracle.recompute(&self.table.protocol, &typed);
        }
    }

    /// Rebinds scheduler and decoder to `graph` (states untouched).
    fn rebind(&mut self, graph: &'a Graph) {
        assert_eq!(
            self.cursor, self.filled,
            "pair buffer must be drained before a graph change"
        );
        self.graph = graph;
        self.scheduler.set_graph(graph);
        self.decoder = EdgeDecoder::for_graph(graph);
    }

    /// Rebinds the execution to a graph with the **same node count**
    /// (edge additions/removals/rewirings), rebuilding the edge decoder.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ, the new graph has no edges, or
    /// the pair buffer still holds drawn-but-unapplied pairs.
    pub fn set_graph(&mut self, graph: &'a Graph) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.ids.len(),
            "set_graph requires an equal node count (use join_node/leave_node)"
        );
        self.rebind(graph);
    }

    /// Rebinds to a graph with **one more node**: the new node is `n`
    /// (the old node count) and starts in its initial state (interned on
    /// demand — no pre-sized table to outgrow).
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not have exactly one extra node.
    pub fn join_node(&mut self, graph: &'a Graph) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.ids.len() + 1,
            "join_node requires exactly one extra node"
        );
        let id = self.table.initial_id(self.ids.len() as u32);
        if let Some(census) = &mut self.census {
            census.mark(id);
        }
        self.ids.push(id);
        self.rebind(graph);
        self.resync_oracle();
    }

    /// Rebinds to a graph with **one less node**: node `removed` leaves
    /// and the last node (`n − 1`) is relabelled to `removed` — `graph`
    /// must already use that relabelling.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not have exactly one node less or
    /// `removed` is out of range.
    pub fn leave_node(&mut self, graph: &'a Graph, removed: NodeId) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.ids.len() - 1,
            "leave_node requires exactly one node less"
        );
        self.ids.swap_remove(removed as usize);
        self.rebind(graph);
        self.resync_oracle();
    }

    /// State corruption: resets node `v` to its initial state (a crash
    /// followed by a clean rejoin), leaving all other nodes untouched.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn corrupt_to_initial(&mut self, v: NodeId) {
        let id = self.table.initial_id(v);
        if let Some(census) = &mut self.census {
            census.mark(id);
        }
        self.ids[v as usize] = id;
        self.resync_oracle();
    }

    /// Overwrites the whole configuration (an *arbitrary* start, in the
    /// self-stabilization sense — see [`crate::stabilize`]); mirrors
    /// [`crate::Executor::set_configuration`]. Never-seen states are
    /// interned on the spot — the lazy engine needs no pre-computed
    /// closure over the sampler's support. The scheduler's RNG stream is
    /// untouched.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count.
    pub fn set_configuration(&mut self, states: &[P::State]) {
        assert_eq!(
            states.len(),
            self.ids.len(),
            "configuration length must equal the node count"
        );
        for (v, s) in states.iter().enumerate() {
            let id = self.table.intern(s);
            if let Some(census) = &mut self.census {
                census.mark(id);
            }
            self.ids[v] = id;
        }
        self.resync_oracle();
    }

    #[cfg(test)]
    pub(crate) fn scheduler_steps(&self) -> u64 {
        self.scheduler.steps()
    }
}

#[cfg(test)]
mod tests {
    use super::super::decoder::DecoderKind;
    use super::*;
    use crate::executor::Executor;
    use crate::protocol::LeaderCountOracle;
    use popele_graph::families;

    /// Initiator absorbs the responder's leadership (stabilizes on
    /// cliques).
    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn dense_matches_generic_trace() {
        let g = families::clique(16);
        let compiled = CompiledProtocol::compile_default(&Absorb, 16).unwrap();
        let mut generic = Executor::new(&g, &Absorb, 99);
        let mut dense = DenseExecutor::new(&g, &compiled, 99);
        let mut lazy = LazyDenseExecutor::new(&g, &Absorb, 99);
        for _ in 0..2000 {
            let step = generic.step();
            assert_eq!(step, dense.step());
            assert_eq!(step, lazy.step());
            for v in 0..16u32 {
                assert_eq!(generic.states()[v as usize], *dense.state_of(v));
                assert_eq!(generic.states()[v as usize], *lazy.state_of(v));
            }
            assert_eq!(generic.is_stable(), dense.is_stable());
            assert_eq!(generic.is_stable(), lazy.is_stable());
        }
    }

    #[test]
    fn dense_outcome_equals_generic() {
        for g in [families::clique(12), families::clique(30)] {
            let n = g.num_nodes();
            let compiled = CompiledProtocol::compile_default(&Absorb, n).unwrap();
            for seed in [1u64, 7, 42] {
                let a = Executor::new(&g, &Absorb, seed)
                    .run_until_stable(1 << 24)
                    .unwrap();
                let b = DenseExecutor::new(&g, &compiled, seed)
                    .run_until_stable(1 << 24)
                    .unwrap();
                let c = LazyDenseExecutor::new(&g, &Absorb, seed)
                    .run_until_stable(1 << 24)
                    .unwrap();
                assert_eq!(a, b, "seed {seed} on {g}");
                assert_eq!(a, c, "seed {seed} on {g} (lazy)");
            }
        }
    }

    #[test]
    fn clique_decoder_exact_for_many_sizes() {
        // The arithmetic clique decode must reproduce the scheduler's
        // edge-array pairs exactly for every size (row-boundary and
        // final-edge cases included).
        for n in [2u32, 3, 4, 5, 8, 13, 37, 100, 257] {
            let g = families::clique(n);
            let compiled = CompiledProtocol::compile_default(&Absorb, n).unwrap();
            let mut generic = Executor::new(&g, &Absorb, u64::from(n));
            let mut dense = DenseExecutor::new(&g, &compiled, u64::from(n));
            for _ in 0..1200 {
                assert_eq!(generic.step(), dense.step(), "clique({n})");
            }
        }
    }

    #[test]
    fn csr_decoder_matches_generic_trace_on_large_families() {
        // Star: every canonical edge sits in row 0 (all deltas zero);
        // cycle(300_000): m has 19 bits, so the bucket shift is 3 and
        // the per-edge deltas actually advance within buckets.
        for g in [
            families::cycle(70_000),
            families::star(70_000),
            families::cycle(300_000),
        ] {
            let n = g.num_nodes();
            let compiled = CompiledProtocol::compile_default(&Absorb, n).unwrap();
            let mut dense = DenseExecutor::new(&g, &compiled, 1234);
            assert_eq!(dense.decoder().kind(), DecoderKind::Csr);
            let mut generic = Executor::new(&g, &Absorb, 1234);
            for _ in 0..3000 {
                assert_eq!(generic.step(), dense.step(), "{g}");
            }
        }
    }

    #[test]
    fn csr_decoder_decodes_collapsed_buckets_exactly() {
        // Two edges whose rows are ~700k apart force the one-edge-per-
        // bucket fallback (see the decoder unit test); the executor must
        // still decode exactly.
        let g = Graph::from_edges(700_000, &[(0, 1), (699_998, 699_999)]).unwrap();
        let compiled = CompiledProtocol::compile_default(&Absorb, 700_000).unwrap();
        let mut dense = DenseExecutor::new(&g, &compiled, 9);
        let mut generic = Executor::new(&g, &Absorb, 9);
        for _ in 0..500 {
            assert_eq!(generic.step(), dense.step());
        }
    }

    #[test]
    fn census_matches_generic() {
        let g = families::clique(8);
        let compiled = CompiledProtocol::compile_default(&Absorb, 8).unwrap();
        let mut generic = Executor::new(&g, &Absorb, 5);
        generic.enable_state_census();
        let mut dense = DenseExecutor::new(&g, &compiled, 5);
        dense.enable_state_census();
        let mut lazy = LazyDenseExecutor::new(&g, &Absorb, 5);
        lazy.enable_state_census();
        let a = generic.run_until_stable(1 << 20).unwrap();
        let b = dense.run_until_stable(1 << 20).unwrap();
        let c = lazy.run_until_stable(1 << 20).unwrap();
        assert_eq!(a.distinct_states, Some(2));
        assert_eq!(a, b);
        assert_eq!(a, c);
    }

    #[test]
    fn reset_restores_initial_configuration() {
        let g = families::clique(8);
        let compiled = CompiledProtocol::compile_default(&Absorb, 8).unwrap();
        let mut exec = DenseExecutor::new(&g, &compiled, 1);
        exec.enable_state_census();
        exec.run_until_stable(1 << 20).unwrap();
        assert_eq!(exec.leader_count(), 1);
        exec.reset(2);
        assert_eq!(exec.steps(), 0);
        assert_eq!(exec.leader_count(), 8);
        assert_eq!(exec.outcome().distinct_states, Some(1));
        let out = exec.run_until_stable(1 << 20).unwrap();
        assert_eq!(out.leader_count, 1);
    }

    #[test]
    fn lazy_reset_keeps_cache_and_reproduces_fresh_runs() {
        let g = families::clique(10);
        let mut warm = LazyDenseExecutor::new(&g, &Absorb, 1);
        warm.run_until_stable(1 << 20).unwrap();
        let cached = warm.table().num_cached_pairs();
        assert!(cached > 0);
        warm.reset(2);
        assert_eq!(warm.steps(), 0);
        assert_eq!(warm.leader_count(), 10);
        // The cache survived the reset…
        assert_eq!(warm.table().num_cached_pairs(), cached);
        // …and the warm run is bit-identical to a cold one.
        let warm_out = warm.run_until_stable(1 << 20).unwrap();
        let cold_out = LazyDenseExecutor::new(&g, &Absorb, 2)
            .run_until_stable(1 << 20)
            .unwrap();
        assert_eq!(warm_out, cold_out);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = families::clique(20);
        let compiled = CompiledProtocol::compile_default(&Absorb, 20).unwrap();
        let mut exec = DenseExecutor::new(&g, &compiled, 5);
        let err = exec.run_until_stable(1).unwrap_err();
        assert_eq!(err, NotStabilized { max_steps: 1 });
        let mut lazy = LazyDenseExecutor::new(&g, &Absorb, 5);
        assert_eq!(lazy.run_until_stable(1).unwrap_err(), err);
    }

    #[test]
    #[should_panic(expected = "does not match")]
    fn graph_larger_than_compilation_rejected() {
        let g = families::clique(6);
        let compiled = CompiledProtocol::compile_default(&Absorb, 5).unwrap();
        let _ = DenseExecutor::new(&g, &compiled, 0);
    }

    #[test]
    fn graph_smaller_than_compilation_accepted() {
        // A compilation for n + k nodes serves any graph with ≤ n + k
        // nodes (the churn path relies on this).
        let g = families::clique(4);
        let compiled = CompiledProtocol::compile_default(&Absorb, 7).unwrap();
        let mut exec = DenseExecutor::new(&g, &compiled, 3);
        assert_eq!(exec.state_ids().len(), 4);
        let out = exec.run_until_stable(1 << 20).unwrap();
        assert_eq!(out.leader_count, 1);
        exec.reset(4);
        assert_eq!(exec.state_ids().len(), 4);
        assert_eq!(exec.leader_count(), 4);
    }

    #[test]
    fn bounded_runs_consume_scheduler_exactly() {
        // run_steps must never draw past its budget: after any bounded
        // run the scheduler's draw count equals the applied step count
        // (for every decoder; the invariant fault injection rests on).
        for g in [families::clique(16), families::cycle(16)] {
            let n = g.num_nodes();
            let compiled = CompiledProtocol::compile_default(&Absorb, n).unwrap();
            let mut exec = DenseExecutor::new(&g, &compiled, 11);
            let mut lazy = LazyDenseExecutor::new(&g, &Absorb, 11);
            for k in [1u64, 7, 255, 256, 257, 1000] {
                exec.run_steps(k);
                lazy.run_steps(k);
            }
            assert_eq!(exec.steps(), 1 + 7 + 255 + 256 + 257 + 1000);
            assert_eq!(exec.scheduler_steps(), exec.steps(), "{g}");
            assert_eq!(lazy.steps(), exec.steps());
            assert_eq!(lazy.scheduler_steps(), lazy.steps(), "{g} (lazy)");
        }
    }

    #[test]
    fn corruption_matches_generic() {
        let g = families::clique(10);
        let compiled = CompiledProtocol::compile_default(&Absorb, 10).unwrap();
        let mut generic = Executor::new(&g, &Absorb, 21);
        let mut dense = DenseExecutor::new(&g, &compiled, 21);
        let mut lazy = LazyDenseExecutor::new(&g, &Absorb, 21);
        generic.run_steps(500);
        dense.run_steps(500);
        lazy.run_steps(500);
        for v in [0u32, 3, 9] {
            generic.corrupt_to_initial(v);
            dense.corrupt_to_initial(v);
            lazy.corrupt_to_initial(v);
        }
        assert_eq!(generic.leader_count(), dense.leader_count());
        assert_eq!(generic.leader_count(), lazy.leader_count());
        for _ in 0..2000 {
            let step = generic.step();
            assert_eq!(step, dense.step());
            assert_eq!(step, lazy.step());
            assert_eq!(generic.is_stable(), dense.is_stable());
            assert_eq!(generic.is_stable(), lazy.is_stable());
        }
        assert_eq!(generic.outcome(), dense.outcome());
        assert_eq!(generic.outcome(), lazy.outcome());
    }
}
