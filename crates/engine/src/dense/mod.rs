//! The dense-state simulation core: compiled protocols over integer ids.
//!
//! Every protocol the paper analyses runs far faster when its typed
//! states are lowered to dense integer ids and its transition function
//! to table/cache lookups — the per-interaction hot path becomes two
//! array reads, one lookup and two array writes, with no cloning,
//! hashing of typed states, or per-step transition evaluation. This
//! module family implements that lowering twice, for two regimes:
//!
//! * [`table`] — **ahead-of-time** compilation ([`CompiledProtocol`]):
//!   the reachable state space is enumerated up front into `u16` ids and
//!   the full `|Λ|²` transition table precomputed. Fastest, shareable
//!   across threads, but only possible while the closure fits
//!   [`DEFAULT_MAX_COMPILED_STATES`].
//! * [`lazy`] — **lazy** compilation ([`LazyTable`]): states interned
//!   into `u32` ids on first sight, pair successors memoized in a
//!   growable open-addressed cache on first use. Covers the protocols
//!   whose state spaces overflow the ahead-of-time cap — the identifier
//!   protocol at realistic `k` (Theorem 21), full-scale fast-protocol
//!   instances (Theorem 24) — at a hot-loop cost of one extra hash.
//! * [`decoder`] — the edge decoders and batched draw machinery both
//!   engines share: raw scheduler indices are resolved into node pairs
//!   through shape-specialized decoders (arithmetic clique decode,
//!   16-bit packed lists, CSR split form) without ever deviating from
//!   the scheduler's interaction sequence.
//! * [`exec`] — the executors ([`DenseExecutor`], [`LazyDenseExecutor`])
//!   mirroring [`crate::Executor`] exactly: same scheduler, same seed
//!   handling, same oracle semantics, same [`crate::Outcome`]s.
//! * [`lanes`] — the **lane-parallel** executor
//!   ([`LaneDenseExecutor`]): 8–16 trials of one compiled cell stepped
//!   in lockstep over structure-of-arrays state, one RNG stream per
//!   lane, so independent per-trial dependency chains overlap in the
//!   pipeline. Per trial it is trace-identical to [`DenseExecutor`] —
//!   each lane consumes exactly the scheduler stream its seed would
//!   produce scalar.
//! * [`count`] — the **count-based batch engine** ([`CountEngine`]):
//!   clique-only, stores a `u64` count per compiled state instead of a
//!   per-agent configuration and draws interactions in collision-free
//!   `O(√n)` batches from the counts alone, reaching populations
//!   (`10⁷–10⁹`) no per-agent engine can represent. Exact in
//!   distribution rather than trace-identical — see its module docs.
//!
//! # Three engines, one contract
//!
//! For the same (protocol, graph, seed) all three engines — generic,
//! AOT-dense, lazy-dense — produce the identical interaction sequence
//! and outcome; differential tests across the workspace pin this, and
//! [`crate::monte_carlo::run_trials_auto`] exploits it to pick the
//! fastest applicable engine per workload without ever changing results.

pub mod count;
pub mod decoder;
pub mod exec;
pub mod lanes;
pub mod lazy;
pub mod table;

pub use count::{
    compile_for_count, count_supported, CountEngine, COUNT_MAX_COMPILED_STATES, COUNT_MIN_AGENTS,
};
pub use decoder::{DecoderKind, DECODER_MAX_EDGES, PACKED_MAX_NODES};
pub use exec::{DenseExecutor, LazyDenseExecutor};
pub use lanes::{LaneDenseExecutor, LaneOutcome, LANE_BLOCK, MAX_LANES};
pub use lazy::{LazyId, LazyTable};
pub use table::{
    probe_state_space, CompileError, CompiledProtocol, SpaceProbe, StateId,
    DEFAULT_MAX_COMPILED_STATES, MAX_STATE_IDS, PROBE_EVAL_BUDGET,
};
