//! Lazy compilation: states interned on first sight, transitions cached
//! on first use.
//!
//! The ahead-of-time table of [`crate::CompiledProtocol`] needs the
//! *entire* reachable state space up front — which the paper's flagship
//! identifier protocol (Theorem 21, `O(n⁴)` states) and full-scale
//! instances of the fast protocol (Theorem 24) overflow by orders of
//! magnitude. But a single *execution* only ever visits a tiny, highly
//! repetitive slice of that space: the identifier protocol touches
//! `O(n·k)` distinct states while generating and collapses to a handful
//! of surviving instances afterwards. [`LazyTable`] exploits exactly
//! that gap:
//!
//! * states are interned into dense [`LazyId`]s (`u32`) the first time
//!   an execution produces them, with their output role memoized;
//! * the successor of an ordered id pair is computed through
//!   [`Protocol::transition`] **once**, then memoized in a growable
//!   open-addressed hash table (`PairCache`) keyed by the packed pair.
//!
//! After warm-up the hot loop is the same two-id-reads / one-lookup /
//! two-id-writes shape as the ahead-of-time engine — the lookup is one
//! multiplicative hash plus (almost always) one probe into a
//! cache-resident table — and the cache keeps paying across trials: the
//! Monte-Carlo harness reuses one executor (and thus one warm cache) per
//! worker thread.

use crate::protocol::{Protocol, Role, EFFECT_OPAQUE};
use std::collections::HashMap;
use std::hash::{BuildHasherDefault, Hasher};

/// Dense state identifier of a lazily-compiled protocol. `u32` rather
/// than the ahead-of-time engine's `u16`: per-run state counts scale
/// with `n·polylog(n)` for the polynomial-state protocols. Ids are
/// capped at [`MAX_LAZY_STATES`] so a pair key (and a successor pair
/// plus leader delta) packs into a single `u64` each.
pub type LazyId = u32;

/// Hard ceiling on lazily-interned states (`2³⁰`): two ids and a 3-bit
/// leader delta must pack into one 64-bit cache word. Memory exhausts
/// long before a run interns a billion distinct states.
pub const MAX_LAZY_STATES: usize = 1 << 30;

/// Empty-slot sentinel of the pair cache. No valid key collides with it:
/// keys are `(a << 30) | b < 2⁶⁰` by the [`MAX_LAZY_STATES`] cap.
const EMPTY: u64 = u64::MAX;

/// One pair-cache slot: the packed pair key and the packed successor
/// word — exactly 16 bytes, so entries never straddle a cache line (a
/// 24-byte entry would, for every third slot, and election-scale caches
/// outgrow L2, where the extra line per probe is the dominant cost).
/// The oracle's effect summaries live in the parallel [`PairCache::effs`]
/// array that the hot no-op path never touches.
#[derive(Debug, Clone, Copy)]
struct Entry {
    key: u64,
    /// `(delta + 2) << 60 | a' << 30 | b'`.
    val: u64,
}

/// Open-addressed pair → successor cache: keys are packed ordered id
/// pairs, values pack the successor pair and the leader-count delta of
/// the transition into one word. Linear probing with a multiplicative
/// (Fibonacci) hash; grown at ~⅞ load so hits stay a one-probe affair.
#[derive(Debug, Clone)]
struct PairCache {
    entries: Box<[Entry]>,
    /// [`crate::StabilityOracle::transition_effect`] summaries, slot-
    /// parallel to `entries` ([`EFFECT_OPAQUE`] where the oracle doesn't
    /// classify, or where the pair was cached through the summary-less
    /// [`LazyTable::successor`]). Split out so the 50–90% of hits that
    /// are no-ops (or feed a linear oracle) read one 16-byte entry and
    /// nothing else; state-changing hits fetch the summary on demand.
    effs: Box<[u64]>,
    len: usize,
    mask: usize,
}

/// Packs an ordered id pair into a cache key.
#[inline]
fn pair_key(a: LazyId, b: LazyId) -> u64 {
    (u64::from(a) << 30) | u64::from(b)
}

/// Unpacks a cache value into `(a', b', delta)`.
#[inline]
fn unpack_val(val: u64) -> (LazyId, LazyId, i8) {
    const ID_MASK: u64 = (1 << 30) - 1;
    (
        ((val >> 30) & ID_MASK) as LazyId,
        (val & ID_MASK) as LazyId,
        (val >> 60) as i8 - 2,
    )
}

impl PairCache {
    const INITIAL_CAPACITY: usize = 1 << 10;

    fn new() -> Self {
        Self {
            entries: vec![Entry { key: EMPTY, val: 0 }; Self::INITIAL_CAPACITY].into_boxed_slice(),
            effs: vec![EFFECT_OPAQUE; Self::INITIAL_CAPACITY].into_boxed_slice(),
            len: 0,
            mask: Self::INITIAL_CAPACITY - 1,
        }
    }

    /// Fibonacci multiplicative hash into the table's index range.
    #[inline]
    fn slot(&self, key: u64) -> usize {
        // The multiplier is ⌊2⁶⁴/φ⌋ (odd), which spreads consecutive
        // packed pairs across the table; the shift keeps the high bits.
        let h = key.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        (h >> 32) as usize & self.mask
    }

    /// Looks `key` up, returning the packed successor word and the slot
    /// index holding it (for an on-demand [`PairCache::effs`] read).
    #[inline]
    fn get(&self, key: u64) -> Option<(u64, usize)> {
        let m = self.mask;
        // Reslicing to exactly `mask + 1` entries lets the compiler see
        // that every masked index is in bounds, eliding the per-probe
        // bounds check in the engines' hottest loop.
        let entries = &self.entries[..=m];
        let mut i = self.slot(key);
        loop {
            let e = entries[i & m];
            if e.key == key {
                return Some((e.val, i & m));
            }
            if e.key == EMPTY {
                return None;
            }
            i = (i + 1) & m;
        }
    }

    /// Inserts a key known to be absent, growing first if the load
    /// factor would exceed ~⅞. Returns the slot the entry landed in.
    fn insert(&mut self, key: u64, val: u64, eff: u64) -> usize {
        if (self.len + 1) * 8 > self.entries.len() * 7 {
            self.grow();
        }
        let mut i = self.slot(key);
        while self.entries[i].key != EMPTY {
            debug_assert_ne!(self.entries[i].key, key, "pair inserted twice");
            i = (i + 1) & self.mask;
        }
        self.entries[i] = Entry { key, val };
        self.effs[i] = eff;
        self.len += 1;
        i
    }

    fn grow(&mut self) {
        let new_cap = self.entries.len() * 2;
        let old_entries = std::mem::replace(
            &mut self.entries,
            vec![Entry { key: EMPTY, val: 0 }; new_cap].into_boxed_slice(),
        );
        let old_effs = std::mem::replace(
            &mut self.effs,
            vec![EFFECT_OPAQUE; new_cap].into_boxed_slice(),
        );
        self.mask = new_cap - 1;
        for (e, &eff) in old_entries.iter().zip(&old_effs) {
            if e.key == EMPTY {
                continue;
            }
            let mut j = self.slot(e.key);
            while self.entries[j].key != EMPTY {
                j = (j + 1) & self.mask;
            }
            self.entries[j] = *e;
            self.effs[j] = eff;
        }
    }

    /// Bytes currently held by the cache arrays.
    fn bytes(&self) -> usize {
        self.entries.len() * (std::mem::size_of::<Entry>() + std::mem::size_of::<u64>())
    }
}

/// Multiply-fold hasher for the state interner (an FxHash-style
/// construction): each written word is xor-folded into the accumulator
/// and diffused with one odd-constant multiply. Interning sits on the
/// lazy engine's *miss* path — two lookups per novel pair — where the
/// standard SipHash costs more than the transition evaluation it
/// serves; protocol states are plain `#[derive(Hash)]` data, so a
/// non-cryptographic hash is sound (no untrusted-key DoS surface).
#[derive(Debug, Default, Clone, Copy)]
pub struct FoldHasher {
    hash: u64,
}

impl Hasher for FoldHasher {
    #[inline]
    fn finish(&self) -> u64 {
        // One final diffusion so low-entropy accumulators still spread
        // across the HashMap's bucket bits (std uses the high bits).
        self.hash.wrapping_mul(0x9E37_79B9_7F4A_7C15)
    }

    #[inline]
    fn write(&mut self, bytes: &[u8]) {
        let mut chunks = bytes.chunks_exact(8);
        for c in chunks.by_ref() {
            self.write_u64(u64::from_le_bytes(c.try_into().expect("8-byte chunk")));
        }
        let mut tail = 0u64;
        for (i, &b) in chunks.remainder().iter().enumerate() {
            tail |= u64::from(b) << (8 * i);
        }
        if !chunks.remainder().is_empty() {
            self.write_u64(tail);
        }
    }

    #[inline]
    fn write_u64(&mut self, v: u64) {
        self.hash = (self.hash.rotate_left(26) ^ v).wrapping_mul(0xA24B_AED4_963E_E407);
    }

    #[inline]
    fn write_u32(&mut self, v: u32) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u16(&mut self, v: u16) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_u8(&mut self, v: u8) {
        self.write_u64(u64::from(v));
    }

    #[inline]
    fn write_usize(&mut self, v: usize) {
        self.write_u64(v as u64);
    }
}

/// The interner's hash state: [`FoldHasher`] per lookup.
pub type FoldHashBuilder = BuildHasherDefault<FoldHasher>;

/// The lazily-built counterpart of [`crate::CompiledProtocol`]: an
/// interner assigning dense [`LazyId`]s to states on first sight plus a
/// `PairCache` memoizing transitions on first use. Owned (mutably) by
/// one [`crate::LazyDenseExecutor`] — unlike the ahead-of-time table it
/// is not shared across threads, but it *is* kept warm across trials.
#[derive(Debug, Clone)]
pub struct LazyTable<P: Protocol> {
    pub(crate) protocol: P,
    /// Id → typed state.
    pub(crate) states: Vec<P::State>,
    /// Typed state → id.
    ids: HashMap<P::State, LazyId, FoldHashBuilder>,
    /// Id → output role (memoized at intern time so the hot loop never
    /// calls [`Protocol::output`]).
    roles: Vec<Role>,
    /// Node → id of its initial state, filled on demand up to the
    /// largest node index seen (node churn can grow it mid-run).
    initial: Vec<LazyId>,
    cache: PairCache,
}

impl<P: Protocol + Clone> LazyTable<P> {
    /// Creates an empty table for `protocol` with the initial states of
    /// nodes `0..num_nodes` pre-interned (cheap: one intern per
    /// *distinct* initial state).
    pub fn new(protocol: &P, num_nodes: u32) -> Self {
        let mut table = Self {
            protocol: protocol.clone(),
            states: Vec::new(),
            ids: HashMap::default(),
            roles: Vec::new(),
            initial: Vec::new(),
            cache: PairCache::new(),
        };
        table.ensure_initial(num_nodes as usize);
        table
    }
}

impl<P: Protocol> LazyTable<P> {
    /// Interns `state`, returning its dense id (a fresh id with the role
    /// memoized on first sight, the existing id afterwards). Public
    /// because arbitrary-initialization runs
    /// ([`crate::LazyDenseExecutor::set_configuration`]) load whole
    /// configurations of possibly never-seen states.
    ///
    /// # Panics
    ///
    /// Panics if interning would exceed [`MAX_LAZY_STATES`].
    pub fn intern(&mut self, state: &P::State) -> LazyId {
        if let Some(&id) = self.ids.get(state) {
            return id;
        }
        assert!(
            self.states.len() < MAX_LAZY_STATES,
            "lazy state space exceeded {MAX_LAZY_STATES} states"
        );
        let id = self.states.len() as LazyId;
        self.states.push(state.clone());
        self.roles.push(self.protocol.output(state));
        self.ids.insert(state.clone(), id);
        id
    }

    /// Extends the initial-id cache through node `count − 1`.
    fn ensure_initial(&mut self, count: usize) {
        while self.initial.len() < count {
            let v = self.initial.len() as u32;
            let s = self.protocol.initial_state(v);
            let id = self.intern(&s);
            self.initial.push(id);
        }
    }

    /// Initial-state id of node `v` (interning it on first sight).
    pub fn initial_id(&mut self, v: u32) -> LazyId {
        self.ensure_initial(v as usize + 1);
        self.initial[v as usize]
    }

    /// Memoized output role of state id `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` was never interned.
    #[inline]
    #[must_use]
    pub fn role(&self, s: LazyId) -> Role {
        self.roles[s as usize]
    }

    /// Typed state of id `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` was never interned.
    #[must_use]
    pub fn state(&self, s: LazyId) -> &P::State {
        &self.states[s as usize]
    }

    /// The dense id of `state`, if it has been interned.
    #[must_use]
    pub fn state_id(&self, state: &P::State) -> Option<LazyId> {
        self.ids.get(state).copied()
    }

    /// Number of states interned so far.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Number of ordered pairs cached so far.
    #[must_use]
    pub fn num_cached_pairs(&self) -> usize {
        self.cache.len
    }

    /// Approximate bytes held by the pair cache (capacity planning aid;
    /// excludes the interned typed states).
    #[must_use]
    pub fn cache_bytes(&self) -> usize {
        self.cache.bytes()
    }

    /// Successor pair and leader-count delta of the ordered interaction
    /// `(a, b)` — a one-probe, one-cache-line hit after the first
    /// evaluation. Memoizes an [`EFFECT_OPAQUE`] effect summary; callers
    /// that use summaries go through [`Self::successor_tracked`] instead.
    #[inline]
    pub fn successor(&mut self, a: LazyId, b: LazyId) -> (LazyId, LazyId, i8) {
        let (na, nb, delta, _) = self.successor_tracked(a, b, |_, _, _, _, _| EFFECT_OPAQUE);
        (na, nb, delta)
    }

    /// Like [`Self::successor`], but also returns the cache slot holding
    /// the transition's memoized oracle effect summary, for an on-demand
    /// fetch through [`Self::cached_effect`]. Splitting the fetch off
    /// keeps the hot no-op path to a single 16-byte entry read; only the
    /// rarer state-changing hits pay for the summary line. `eff_of`
    /// computes the summary (from the protocol, the old state pair, and
    /// the new state pair) the first time the pair is evaluated.
    ///
    /// The returned slot is invalidated by the next cache miss (an
    /// insert can grow and rehash the table): read it before the next
    /// `successor*` call.
    #[inline]
    pub fn successor_tracked(
        &mut self,
        a: LazyId,
        b: LazyId,
        eff_of: impl FnOnce(&P, &P::State, &P::State, &P::State, &P::State) -> u64,
    ) -> (LazyId, LazyId, i8, usize) {
        let key = pair_key(a, b);
        if let Some((val, slot)) = self.cache.get(key) {
            let (na, nb, delta) = unpack_val(val);
            (na, nb, delta, slot)
        } else {
            self.fill(a, b, key, eff_of)
        }
    }

    /// The memoized effect summary in `slot`, as returned by the last
    /// [`Self::successor_tracked`] call.
    #[inline]
    #[must_use]
    pub fn cached_effect(&self, slot: usize) -> u64 {
        self.cache.effs[slot]
    }

    /// Cache-miss path: evaluate the typed transition, intern the
    /// successors, memoize. Out of line so the hit path stays small
    /// enough to inline into the hot loop.
    #[cold]
    fn fill(
        &mut self,
        a: LazyId,
        b: LazyId,
        key: u64,
        eff_of: impl FnOnce(&P, &P::State, &P::State, &P::State, &P::State) -> u64,
    ) -> (LazyId, LazyId, i8, usize) {
        let (sa, sb) = self
            .protocol
            .transition(&self.states[a as usize], &self.states[b as usize]);
        let eff = eff_of(
            &self.protocol,
            &self.states[a as usize],
            &self.states[b as usize],
            &sa,
            &sb,
        );
        let na = self.intern(&sa);
        let nb = self.intern(&sb);
        let leader = |r: &Self, id: LazyId| i8::from(r.roles[id as usize] == Role::Leader);
        let delta = leader(self, na) + leader(self, nb) - leader(self, a) - leader(self, b);
        let val = (u64::from((delta + 2) as u8) << 60) | pair_key(na, nb);
        let slot = self.cache.insert(key, val, eff);
        (na, nb, delta, slot)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LeaderCountOracle;
    use popele_graph::NodeId;

    /// Initiator absorbs the responder's leadership.
    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn successors_match_the_typed_transition_and_memoize() {
        let mut t = LazyTable::new(&Absorb, 4);
        assert_eq!(t.num_states(), 1);
        let leader = t.initial_id(0);
        let (na, nb, delta) = t.successor(leader, leader);
        assert_eq!(na, leader);
        assert_eq!(t.state(nb), &false);
        assert_eq!(delta, -1);
        assert_eq!(t.num_states(), 2);
        assert_eq!(t.num_cached_pairs(), 1);
        // The second lookup hits the cache (count unchanged).
        assert_eq!(t.successor(leader, leader), (na, nb, -1));
        assert_eq!(t.num_cached_pairs(), 1);
        // A no-op transition has delta 0 and identical successors.
        assert_eq!(t.successor(na, nb), (na, nb, 0));
        assert_eq!(t.roles.len(), t.states.len());
        assert_eq!(t.role(leader), Role::Leader);
        assert_eq!(t.role(nb), Role::Follower);
        assert_eq!(t.state_id(&false), Some(nb));
        assert!(t.cache_bytes() > 0);
    }

    #[test]
    fn pair_cache_survives_growth() {
        // Force many inserts through one table so the cache rehashes at
        // least twice, then verify every memoized entry again.
        #[derive(Clone, Copy)]
        struct Add;
        impl Protocol for Add {
            type State = u16;
            type Oracle = LeaderCountOracle;
            fn initial_state(&self, _v: NodeId) -> u16 {
                0
            }
            fn transition(&self, a: &u16, b: &u16) -> (u16, u16) {
                // Full-period 16-bit LCG: 5000 iterations visit 5000
                // distinct states, forcing several cache rehashes.
                (a.wrapping_mul(25173).wrapping_add(13849), *b)
            }
            fn output(&self, s: &u16) -> Role {
                if s.is_multiple_of(3) {
                    Role::Leader
                } else {
                    Role::Follower
                }
            }
            fn oracle(&self) -> LeaderCountOracle {
                LeaderCountOracle::new()
            }
        }
        let mut t = LazyTable::new(&Add, 1);
        let mut observed = Vec::new();
        let mut a = t.initial_id(0);
        for _ in 0..5000 {
            let (na, nb, d) = t.successor(a, a);
            observed.push((a, na, nb, d));
            a = na;
        }
        assert!(t.num_cached_pairs() >= 4000);
        for (a, na, nb, d) in observed {
            assert_eq!(t.successor(a, a), (na, nb, d), "entry for ({a}, {a})");
        }
    }
}
