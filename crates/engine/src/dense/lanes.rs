//! Lane-parallel dense execution: many trials of one sweep cell stepped
//! in lockstep.
//!
//! A Monte-Carlo cell runs the *same* `(protocol, graph)` pair over many
//! independent seeds, so every trial shares the compiled transition
//! table, the edge decoder and the graph — only the per-trial RNG stream
//! and configuration differ. The scalar [`crate::DenseExecutor`] walks
//! one serial dependency chain per trial (id read → table lookup → id
//! write); [`LaneDenseExecutor`] holds 2–[`MAX_LANES`] such chains in a
//! structure-of-arrays layout and interleaves them step by step, so the
//! processor overlaps the table-lookup latency of one lane with the
//! others' — the same independent-chain trick the batched draw machinery
//! of [`super::decoder`] plays inside a single trial.
//!
//! **Trace identity is the contract.** Each lane owns a private
//! [`EdgeScheduler`] reset to exactly the seed its trial would receive
//! scalar; the pack interleaves the lanes' draws step-major (each lane's
//! own draw order stays sequential — only the order *between* lanes is
//! interleaved, which the streams cannot observe) and resolves them
//! through the shared edge decoder, so lane `l` consumes, draw for
//! draw, the RNG stream of a scalar [`crate::DenseExecutor`] run with
//! the same seed. The apply loops mirror the scalar hot paths statement
//! for statement (fused branchless update for linear oracles with a
//! fused table, packed compare-and-apply otherwise), which makes every
//! per-trial outcome — stabilization step, elected leader, final
//! configuration — byte-equal to the scalar engine's. The workspace's
//! `lanes_vs_trait` differential suite pins this invariant.
//!
//! Finished trials do not stall the pack: a lane that stabilizes (or
//! exhausts its budget) mid-block retires into the finished queue and
//! frees its slot, and the Monte-Carlo harness
//! ([`crate::monte_carlo::run_trials_lanes`]) immediately reloads it
//! with the next `first_trial` offset. Ragged trial lengths therefore
//! cost idle *lane-steps* only within the current block, never a whole
//! pack barrier.

use super::decoder::{clique_decode, orient, EdgeDecoder, PAIR_BATCH};
use super::table::{CompiledProtocol, StateId};
use crate::protocol::{Protocol, Role, StabilityOracle};
use crate::scheduler::EdgeScheduler;
use popele_graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Hard cap on the lane count: slot occupancy is tracked in a `u32`
/// bitmask, and past a few dozen interleaved chains the id tables stop
/// fitting in L1/L2 anyway. The Monte-Carlo harness uses 8–16.
pub const MAX_LANES: usize = 32;

/// Scheduler draws per lane per [`LaneDenseExecutor::run_block`] call
/// on the scalar-interleave paths — the same batch size as the scalar
/// engines' pair buffer ([`PAIR_BATCH`]), so a 16-lane pack buffers at
/// most 4096 pending pairs (32 KiB).
pub const LANE_BLOCK: usize = PAIR_BATCH;

/// Scheduler draws per lane per block on the SIMD path — the settle
/// granularity, matching [`LANE_BLOCK`]'s 256 so every engine tier
/// checks budgets and retires lanes at the same cadence.
const SIMD_BLOCK: usize = PAIR_BATCH;

/// Steps per draw/kernel alternation inside one SIMD block. The raws
/// slab is sized by this, not by the block: at 128 steps it is 4 KiB,
/// small enough to survive in L1 between the draw pass that fills it
/// and the kernel pass that consumes it, yet long enough to amortize
/// the per-call constant setup and pipeline refill of the two kernels.
/// Measured on the fast-protocol clique cell: 32-step alternations run
/// ~15% slower (call overheads, store-to-load forwarding stalls on the
/// just-written slab), 256-step ones within noise of 128 — so the
/// middle of the flat region it is.
const SIMD_SUB: usize = 128;

/// Outcome of one retired lane, in the vocabulary of
/// [`crate::monte_carlo::TrialResult`]: `stabilization_step` is `None`
/// exactly when the trial exhausted its step budget (and then no leader
/// is reported, mirroring the scalar timeout path).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LaneOutcome {
    /// Global trial index the lane was loaded with.
    pub trial: usize,
    /// Stabilization step, or `None` if the budget was exhausted.
    pub stabilization_step: Option<u64>,
    /// Elected leader (when stabilized and unique).
    pub leader: Option<NodeId>,
}

/// Steps up to [`MAX_LANES`] independent trials of one compiled cell in
/// lockstep (structure-of-arrays state, per-lane RNG streams, shared
/// transition table). See the [module docs](self) for the layout and the
/// trace-identity contract.
///
/// # Examples
///
/// ```
/// use popele_engine::{CompiledProtocol, DenseExecutor, LaneDenseExecutor};
/// # use popele_engine::{LeaderCountOracle, Protocol, Role};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// let g = popele_graph::families::clique(16);
/// let compiled = CompiledProtocol::compile_default(&Absorb, 16).unwrap();
/// let mut lanes = LaneDenseExecutor::new(&g, &compiled, 4);
/// for trial in 0..4 {
///     lanes.load(trial, 1000 + trial as u64);
/// }
/// while lanes.num_active() > 0 {
///     lanes.run_block(1 << 22);
/// }
/// while let Some(done) = lanes.take_finished() {
///     // Each lane's outcome is byte-identical to a scalar run with the
///     // same seed.
///     let scalar = DenseExecutor::new(&g, &compiled, 1000 + done.trial as u64)
///         .run_until_stable(1 << 22)
///         .unwrap();
///     assert_eq!(done.stabilization_step, Some(scalar.stabilization_step));
///     assert_eq!(done.leader, scalar.leader);
/// }
/// ```
pub struct LaneDenseExecutor<'a, P: Protocol> {
    graph: &'a Graph,
    compiled: &'a CompiledProtocol<P>,
    num_lanes: usize,
    /// Node count of the bound graph (may be below the compiled count).
    n: usize,
    /// Lane-major configuration: node `v` of lane `l` is
    /// `ids[l * n + v]`, so one lane's row is a contiguous mirror of the
    /// scalar engine's id vector. Stored widened to `u32` (values stay
    /// within [`StateId`]) because the AVX-512 lane kernel updates rows
    /// with 32-bit gathers and scatters — there is no 16-bit scatter.
    ids: Vec<u32>,
    /// One scheduler per lane — each consumes exactly the RNG stream its
    /// trial seed would produce on the scalar engine.
    schedulers: Vec<EdgeScheduler<'a>>,
    /// One typed oracle per lane (consulted only when the protocol's
    /// oracle is not the linear unique-leader count).
    oracles: Vec<P::Oracle>,
    /// Same linear-oracle substitution as the scalar engines: when the
    /// oracle declared [`StabilityOracle::stable_iff_unique_leader`],
    /// per-lane leader counts driven by the compiled deltas are
    /// authoritative and the typed oracles are bypassed.
    linear: bool,
    leaders: Vec<i64>,
    applied: Vec<u64>,
    trial: Vec<usize>,
    /// Bitmask of occupied (loaded, unfinished) lane slots.
    active: u32,
    /// Lane-major pending draws: lane `l` owns
    /// `pairs[l * LANE_BLOCK ..][.. chunk]` per block.
    pairs: Vec<(NodeId, NodeId)>,
    /// Lane-major raw scheduler indices, filled step-major (the draw
    /// interleave that overlaps the lanes' independent RNG chains):
    /// lane `l` owns `raw[l * LANE_BLOCK ..][.. chunk]` per block.
    raw: Box<[usize]>,
    /// Whether the AVX-512 fused clique kernel is usable for this pack:
    /// `avx512f` + `avx512vl` detected at construction, and the node
    /// count within the kernel's in-vector sqrt decode's f32-exactness
    /// bound (`n <= 2048`; see [`simd::fused_chunk`]). When false the
    /// pack falls back to the scalar-interleave chunk runners.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    simd: bool,
    /// Step-major raw scheduler draws for the SIMD kernel: one
    /// [`SIMD_SUB`]-step slab, step `i` at `simd_raws[i * 8 ..][.. 8]`,
    /// one raw per lane position. Groups alternate draw and kernel
    /// passes through this single slab sequentially, so it is sized to
    /// stay L1-resident (see [`SIMD_SUB`]); the kernel decodes raws to
    /// clique pairs in-vector, so the draw pass stores one bare word per
    /// lane-step and stays pinned to the RNG chains' throughput floor.
    #[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
    simd_raws: Vec<u32>,
    decoder: EdgeDecoder,
    finished: VecDeque<LaneOutcome>,
}

impl<'a, P: Protocol> LaneDenseExecutor<'a, P> {
    /// Creates a pack of `num_lanes` empty lane slots over one compiled
    /// table. Slots are loaded per trial with [`Self::load`].
    ///
    /// # Panics
    ///
    /// Panics if `num_lanes` is outside `2..=`[`MAX_LANES`], the graph
    /// has no edges, or it has more nodes than the protocol was compiled
    /// for.
    #[must_use]
    pub fn new(graph: &'a Graph, compiled: &'a CompiledProtocol<P>, num_lanes: usize) -> Self {
        assert!(
            (2..=MAX_LANES).contains(&num_lanes),
            "lane count must be within 2..={MAX_LANES}, got {num_lanes}"
        );
        assert!(
            graph.num_nodes() <= compiled.num_nodes(),
            "graph size does not match the compiled protocol"
        );
        let n = graph.num_nodes() as usize;
        let linear = compiled.protocol.oracle().stable_iff_unique_leader();
        Self {
            graph,
            compiled,
            num_lanes,
            n,
            ids: vec![0; num_lanes * n],
            schedulers: (0..num_lanes)
                .map(|_| EdgeScheduler::new(graph, 0))
                .collect(),
            oracles: (0..num_lanes).map(|_| compiled.protocol.oracle()).collect(),
            linear,
            leaders: vec![0; num_lanes],
            applied: vec![0; num_lanes],
            trial: vec![0; num_lanes],
            active: 0,
            pairs: vec![(0, 0); num_lanes * LANE_BLOCK],
            raw: vec![0usize; num_lanes * LANE_BLOCK].into_boxed_slice(),
            // The kernel's in-vector sqrt decode is exact only while
            // `(2n - 1)^2` fits f32's 24-bit mantissa; larger cliques
            // take the scalar fused runner.
            simd: simd_available() && n <= 2048,
            simd_raws: vec![0; 8 * SIMD_SUB],
            decoder: EdgeDecoder::for_graph(graph),
            finished: VecDeque::new(),
        }
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Number of lane slots in the pack.
    #[must_use]
    pub fn num_lanes(&self) -> usize {
        self.num_lanes
    }

    /// Number of currently loaded, unfinished lanes.
    #[must_use]
    pub fn num_active(&self) -> usize {
        self.active.count_ones() as usize
    }

    /// Whether at least one lane slot is free for [`Self::load`].
    #[must_use]
    pub fn has_free_lane(&self) -> bool {
        self.num_active() < self.num_lanes
    }

    /// Global trial index loaded in `slot`, or `None` if the slot is
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn lane_trial(&self, slot: usize) -> Option<usize> {
        assert!(slot < self.num_lanes, "lane slot out of range");
        (self.active & (1 << slot) != 0).then(|| self.trial[slot])
    }

    /// Steps applied so far by the lane in `slot` (the model's time step
    /// `t` of that trial; the lane's scheduler may have drawn up to one
    /// block further ahead, exactly like the scalar engines' pair
    /// buffer).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn lane_steps(&self, slot: usize) -> u64 {
        assert!(slot < self.num_lanes, "lane slot out of range");
        self.applied[slot]
    }

    /// Current configuration of the lane in `slot` as dense ids — the
    /// lane-major row mirroring [`crate::DenseExecutor::state_ids`]
    /// (narrowed back from the pack's internal `u32` storage; the values
    /// are always within [`StateId`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn lane_state_ids(&self, slot: usize) -> Vec<StateId> {
        assert!(slot < self.num_lanes, "lane slot out of range");
        self.ids[slot * self.n..(slot + 1) * self.n]
            .iter()
            .map(|&id| id as StateId)
            .collect()
    }

    /// Current number of leader-output nodes in `slot` (O(n) scan of the
    /// role table, mirroring [`crate::DenseExecutor::leader_count`]).
    ///
    /// # Panics
    ///
    /// Panics if `slot` is out of range.
    #[must_use]
    pub fn lane_leader_count(&self, slot: usize) -> usize {
        assert!(slot < self.num_lanes, "lane slot out of range");
        self.ids[slot * self.n..(slot + 1) * self.n]
            .iter()
            .filter(|&&id| self.compiled.roles[id as usize] == Role::Leader)
            .count()
    }

    /// Loads `trial` (seeded `seed`) into a free lane slot and returns
    /// the slot index: the lane's row is reset to the initial
    /// configuration, its scheduler reseeded, its counters zeroed —
    /// exactly a scalar [`crate::DenseExecutor::reset`], confined to one
    /// row.
    ///
    /// A trial that is already stable in the initial configuration
    /// retires immediately with stabilization step 0 (the scalar engine
    /// checks stability before spending budget) and leaves the slot
    /// free.
    ///
    /// # Panics
    ///
    /// Panics if no lane slot is free.
    pub fn load(&mut self, trial: usize, seed: u64) -> usize {
        let free = !self.active & (u32::MAX >> (32 - self.num_lanes));
        assert!(free != 0, "no free lane slot");
        let slot = free.trailing_zeros() as usize;
        let n = self.n;
        let base = slot * n;
        for (dst, &src) in self.ids[base..base + n]
            .iter_mut()
            .zip(&self.compiled.initial[..n])
        {
            *dst = u32::from(src);
        }
        self.schedulers[slot].reset(seed);
        self.applied[slot] = 0;
        self.trial[slot] = trial;
        let row = &self.ids[base..base + n];
        let leaders = row
            .iter()
            .filter(|&&id| self.compiled.roles[id as usize] == Role::Leader)
            .count() as i64;
        self.leaders[slot] = leaders;
        let stable = if self.linear {
            leaders == 1
        } else {
            let row16: Vec<StateId> = row.iter().map(|&id| id as StateId).collect();
            let oracle = &mut self.oracles[slot];
            oracle.recompute(&self.compiled.protocol, &self.compiled.typed_config(&row16));
            oracle.is_stable()
        };
        if stable {
            self.finished.push_back(LaneOutcome {
                trial,
                stabilization_step: Some(0),
                leader: unique_leader(&self.compiled.roles, &self.ids[base..base + n]),
            });
        } else {
            self.active |= 1 << slot;
        }
        slot
    }

    /// Pops one retired trial's outcome, in retirement order.
    pub fn take_finished(&mut self) -> Option<LaneOutcome> {
        self.finished.pop_front()
    }

    /// Advances every active lane by up to one block of interactions
    /// ([`LANE_BLOCK`] steps, or `SIMD_BLOCK` on the vector-kernel
    /// path) against the shared per-trial budget `max_steps` (callers
    /// pass the same budget every call; it is the `max_steps` a scalar
    /// `run_until_stable` would receive).
    ///
    /// The block runs one lockstep *chunk* — the block length,
    /// shortened to the tightest remaining budget among the live lanes
    /// so no lane can overrun `max_steps`. On clique cells with a
    /// linear oracle and a fused table the chunk runs as a single
    /// step-major fused loop (draw, decode, branchless apply — every
    /// lane once per step index), the pack's fastest path; other cells
    /// interleave the raw draws step-major, then gather and apply per
    /// lane. Either way each lane consumes exactly its scalar RNG
    /// stream. A lane that stabilizes retires at exactly the causing
    /// step (remaining drawn raws are discarded — the outcome is fixed,
    /// and the slot is reseeded wholesale on the next [`Self::load`]); a
    /// lane reaching `max_steps` unstabilized retires as a timeout.
    pub fn run_block(&mut self, max_steps: u64) {
        // Collect the lanes consuming this block and the lockstep chunk
        // length.
        // The clique fast paths (vector kernel or scalar fused loop,
        // neither buffering per-lane pairs) take the longer SIMD block;
        // the buffered gather path sticks to its buffers' LANE_BLOCK.
        let clique_fast = self.linear
            && self.compiled.fused.is_some()
            && matches!(self.decoder, EdgeDecoder::Clique { .. });
        let cap = if clique_fast && self.simd {
            SIMD_BLOCK
        } else {
            LANE_BLOCK
        };
        let mut live = [0u8; MAX_LANES];
        let mut live_n = 0usize;
        let mut chunk = cap as u64;
        for slot in 0..self.num_lanes {
            if self.active & (1 << slot) == 0 {
                continue;
            }
            let budget = max_steps.saturating_sub(self.applied[slot]);
            if budget == 0 {
                // Loaded under an already-exhausted budget (max_steps
                // 0): the scalar engine reports a timeout without
                // drawing; so does the lane.
                self.finished.push_back(LaneOutcome {
                    trial: self.trial[slot],
                    stabilization_step: None,
                    leader: None,
                });
                self.active &= !(1 << slot);
                continue;
            }
            chunk = chunk.min(budget);
            live[live_n] = slot as u8;
            live_n += 1;
        }
        if live_n == 0 {
            return;
        }
        let live = &live[..live_n];
        let chunk = chunk as usize;
        if clique_fast {
            // The vector kernel pays a fixed per-group cost each step
            // (the gathers and scatters run for all 8 vector lanes, live
            // or not), which beats the scalar interleave only from ~4
            // live lanes up: a pack draining toward empty — the ragged
            // wind-down of a trial pool — degrades to the scalar fused
            // runner instead of dragging dead vector lanes along.
            #[cfg(target_arch = "x86_64")]
            if self.simd && live.len() >= 4 {
                self.run_chunk_simd(live, chunk, max_steps);
                return;
            }
            self.run_chunk_fused(live, chunk, max_steps);
        } else {
            self.run_chunk_gather(live, chunk, max_steps);
        }
    }

    /// The vectorized clique fast path: each 8-lane group alternates a
    /// draw pass ([`simd::draw_chunk`] — the lanes' eight xoshiro256++
    /// streams stepped in vector qword lanes, each reproducing its
    /// scalar stream bit for bit, stored step-major in the shared
    /// [`SIMD_SUB`]-step slab) with the fused kernel
    /// ([`simd::fused_chunk`]) consuming that slab — per step an
    /// in-vector sqrt edge decode, two masked row gathers, one
    /// fused-table gather, two masked row scatters and a vectorized
    /// leader-count update. The short alternation keeps the slab
    /// L1-resident against the kernel's id-row traffic (see
    /// [`SIMD_SUB`]). Each lane's draw order stays sequential — only
    /// the order between lanes changes, which the streams cannot
    /// observe — so trace identity holds by the same argument as the
    /// scalar chunk runners; a stabilizing lane is recorded at its
    /// exact causing step and masked out of the rest of the chunk, its
    /// row and counters frozen, while the other lanes in the group run
    /// on — the draws its stream keeps producing until the group
    /// settles are discarded, just like the scalar engine's buffered
    /// drawn-ahead pairs at retirement.
    #[cfg(target_arch = "x86_64")]
    fn run_chunk_simd(&mut self, live: &[u8], chunk: usize, max_steps: u64) {
        let n = self.n;
        let cn = n as u32;
        let limit = 2 * self.graph.edges().len() as u64;
        let compiled = self.compiled;
        let fused = compiled
            .fused
            .as_deref()
            .expect("simd chunk requires the fused table");
        let roles = &compiled.roles;
        let Self {
            ids,
            schedulers,
            leaders,
            applied,
            trial,
            active,
            finished,
            simd_raws,
            ..
        } = self;
        // Groups are independent sets of independent trials — their
        // relative order is unobservable.
        for group in live.chunks(8) {
            let mut mask: u8 = if group.len() == 8 {
                0xFF
            } else {
                (1u8 << group.len()) - 1
            };
            let occ = mask;
            let mut lvec = [0i32; 8];
            let mut bases = [0i32; 8];
            // The group's RNG states, transposed word-major for the
            // vector draw pass; unoccupied positions keep zeros (their
            // draws land masked-off in the kernel, and the bounded
            // sampler keeps even a degenerate stream's raws in range).
            let mut st = [[0u64; 8]; 4];
            for (pos, &slot) in group.iter().enumerate() {
                // Lossless: a clique cell's leader count is at most `n`,
                // and the decoder caps clique sizes far below `i32::MAX`.
                lvec[pos] = i32::try_from(leaders[slot as usize])
                    .expect("leader count exceeds i32 on a clique cell");
                bases[pos] = (slot as usize * n) as i32;
                let s = schedulers[slot as usize].rng_mut().state();
                for (w, &word) in s.iter().enumerate() {
                    st[w][pos] = word;
                }
            }
            let mut events = [0u32; 8];
            let mut done = 0usize;
            while done < chunk && mask != 0 {
                let sub = SIMD_SUB.min(chunk - done);
                let out = &mut simd_raws[..sub * 8];
                // SAFETY (both kernels): the constructor verified
                // `avx512f` + `avx512vl` at runtime and capped `n` at
                // 2048 (`self.simd` gates this call), so the fused
                // kernel's f32 decode is exact. The draw kernel writes
                // exactly `sub * 8` raws into `out` and bounds each by
                // `limit = 2m`, so the decode yields nodes below `n`
                // and every masked-on gather/scatter index
                // `bases[pos] + node` stays within `ids`; row ids stay
                // below 256 (fused-table invariant), bounding the fused
                // gather index below `fused.len()`.
                unsafe {
                    simd::draw_chunk(&mut st, limit, occ, out);
                    simd::fused_chunk(
                        ids,
                        fused,
                        out,
                        sub,
                        cn,
                        &bases,
                        &mut mask,
                        &mut lvec,
                        &mut events,
                        done as u32,
                    );
                }
                done += sub;
            }
            // Hand each advanced stream back to its scheduler — the
            // state a scalar run would hold after the same draws — and
            // account them, so a later degradation to the scalar-
            // interleave runners (or any scheduler-side inspection)
            // continues the identical stream.
            for (pos, &slot) in group.iter().enumerate() {
                let scheduler = &mut schedulers[slot as usize];
                let s = [st[0][pos], st[1][pos], st[2][pos], st[3][pos]];
                scheduler.rng_mut().set_state(s);
                scheduler.add_steps(done as u64);
            }
            for (pos, &slot) in group.iter().enumerate() {
                let slot = slot as usize;
                leaders[slot] = i64::from(lvec[pos]);
                if events[pos] != 0 {
                    applied[slot] += u64::from(events[pos]);
                    let base = slot * n;
                    finished.push_back(LaneOutcome {
                        trial: trial[slot],
                        stabilization_step: Some(applied[slot]),
                        leader: unique_leader(roles, &ids[base..base + n]),
                    });
                    *active &= !(1 << slot);
                } else {
                    applied[slot] += chunk as u64;
                    if applied[slot] == max_steps {
                        finished.push_back(LaneOutcome {
                            trial: trial[slot],
                            stabilization_step: None,
                            leader: None,
                        });
                        *active &= !(1 << slot);
                    }
                }
            }
        }
    }

    /// The clique fast path: RNG draw, arithmetic edge decode and
    /// branchless fused-table apply in one step-major loop over the live
    /// lanes — the lane-parallel mirror of the scalar engine's fused
    /// clique runner. Per step index every live lane advances once, so
    /// the lanes' serial RNG chains and table-walk chains overlap in the
    /// pipeline: that interleave is where the pack earns its aggregate
    /// speedup over running the same trials back to back. A stabilizing
    /// lane cuts the chunk at exactly the causing lane-step (retirement
    /// is once per trial, so the abandoned tail is noise) and the
    /// survivors' step counts are settled from the interleave position.
    fn run_chunk_fused(&mut self, live: &[u8], chunk: usize, max_steps: u64) {
        let n = self.n;
        let compiled = self.compiled;
        let fused = compiled
            .fused
            .as_deref()
            .expect("fused chunk requires the fused table");
        let roles = &compiled.roles;
        let Self {
            ids,
            schedulers,
            leaders,
            applied,
            trial,
            active,
            finished,
            decoder,
            ..
        } = self;
        let EdgeDecoder::Clique {
            n: cn,
            shift,
            row_hint,
        } = decoder
        else {
            unreachable!("fused chunk requires the clique decoder")
        };
        let cn = *cn as u32;
        let shift = *shift;
        // `(step, live-index)` of the stability event that cut the chunk
        // short, if any.
        let mut stopped = None;
        'block: for i in 0..chunk {
            for (j, &slot) in live.iter().enumerate() {
                let slot = slot as usize;
                let r = schedulers[slot].next_raw();
                let (u, v) = clique_decode((r >> 1) as u32, cn, shift, row_hint);
                let (u, v) = orient(u, v, r);
                let base = slot * n;
                let (iu, iv) = (base + u as usize, base + v as usize);
                let a = ids[iu];
                let b = ids[iv];
                let entry = fused[((a as usize) << 8) | b as usize];
                ids[iu] = (entry >> 8) & 0xFF;
                ids[iv] = entry & 0xFF;
                leaders[slot] += i64::from(entry >> 16) - 2;
                if leaders[slot] == 1 {
                    stopped = Some((i, j));
                    break 'block;
                }
            }
        }
        // Settle the applied counts from the interleave position: on an
        // early stop at `(i, sj)` the lanes up to and including `sj`
        // executed step `i`, the rest stopped one step short.
        for (j, &slot) in live.iter().enumerate() {
            let slot = slot as usize;
            applied[slot] += match stopped {
                Some((i, sj)) => i as u64 + u64::from(j <= sj),
                None => chunk as u64,
            };
        }
        if let Some((_, sj)) = stopped {
            let slot = live[sj] as usize;
            let base = slot * n;
            finished.push_back(LaneOutcome {
                trial: trial[slot],
                stabilization_step: Some(applied[slot]),
                leader: unique_leader(roles, &ids[base..base + n]),
            });
            *active &= !(1 << slot);
        }
        // Budget exhaustion: the chunk was cut to the tightest budget,
        // so a lane can reach `max_steps` only at the chunk boundary
        // (stability above wins ties, as in the scalar engine).
        for &slot in live {
            let slot = slot as usize;
            if *active & (1 << slot) != 0 && applied[slot] == max_steps {
                finished.push_back(LaneOutcome {
                    trial: trial[slot],
                    stabilization_step: None,
                    leader: None,
                });
                *active &= !(1 << slot);
            }
        }
    }

    /// The general path: raw draws interleaved step-major across lanes
    /// (overlapping the independent per-lane RNG chains, the serial
    /// bottleneck of a scalar run), then per-lane decoder gathers and a
    /// tight scalar-mirror apply loop per lane. Lanes are independent
    /// here: one lane stabilizing mid-chunk stops only its own applies,
    /// and its drawn-ahead raws are discarded exactly like the scalar
    /// engine's buffered pairs at stabilization.
    fn run_chunk_gather(&mut self, live: &[u8], chunk: usize, max_steps: u64) {
        // Phase 1: step-major interleaved draws, lane-major storage.
        {
            let raw = &mut self.raw;
            for i in 0..chunk {
                for &slot in live {
                    let slot = slot as usize;
                    raw[slot * LANE_BLOCK + i] = self.schedulers[slot].next_raw();
                }
            }
        }
        // Phase 2: per-lane gathers through the shared decoder — the
        // same raw-to-pair resolution the scalar refill performs.
        let edges = self.graph.edges();
        for &slot in live {
            let base = (slot as usize) * LANE_BLOCK;
            self.decoder.gather(
                edges,
                &self.raw[base..base + chunk],
                &mut self.pairs[base..base + chunk],
            );
        }
        // Phase 3: per-lane applies, each a statement-for-statement
        // mirror of the scalar batch hot loop (branchless fused update
        // for linear oracles with a fused table, packed compare-and-
        // apply otherwise; stability is checked after every fused step
        // but only after a state change on the compare path — a no-op
        // can never flip stability).
        let n = self.n;
        let compiled = self.compiled;
        let k = compiled.states.len();
        let table = &compiled.table;
        let delta = &compiled.leader_delta;
        let states = &compiled.states;
        let roles = &compiled.roles;
        let linear = self.linear;
        let fused = if linear {
            compiled.fused.as_deref()
        } else {
            None
        };
        let Self {
            ids,
            oracles,
            leaders,
            applied,
            trial,
            active,
            pairs,
            finished,
            ..
        } = self;
        for &slot in live {
            let slot = slot as usize;
            let base = slot * n;
            let row = &mut ids[base..base + n];
            let lane_pairs = &pairs[slot * LANE_BLOCK..slot * LANE_BLOCK + chunk];
            let mut done = 0u64;
            let mut stable = false;
            if let Some(fused) = fused {
                for &(u, v) in lane_pairs {
                    let (iu, iv) = (u as usize, v as usize);
                    let a = row[iu];
                    let b = row[iv];
                    done += 1;
                    let entry = fused[((a as usize) << 8) | b as usize];
                    row[iu] = (entry >> 8) & 0xFF;
                    row[iv] = entry & 0xFF;
                    leaders[slot] += i64::from(entry >> 16) - 2;
                    if leaders[slot] == 1 {
                        stable = true;
                        break;
                    }
                }
            } else {
                for &(u, v) in lane_pairs {
                    let (iu, iv) = (u as usize, v as usize);
                    let a = row[iu];
                    let b = row[iv];
                    done += 1;
                    let idx = a as usize * k + b as usize;
                    let packed = table[idx];
                    if packed != ((a << 16) | b) {
                        let na = packed >> 16;
                        let nb = packed & 0xFFFF;
                        if linear {
                            leaders[slot] += i64::from(delta[idx]);
                            stable = leaders[slot] == 1;
                        } else {
                            oracles[slot].apply(
                                &compiled.protocol,
                                (&states[a as usize], &states[b as usize]),
                                (&states[na as usize], &states[nb as usize]),
                            );
                            stable = oracles[slot].is_stable();
                        }
                        row[iu] = na;
                        row[iv] = nb;
                        if stable {
                            break;
                        }
                    }
                }
            }
            applied[slot] += done;
            if stable {
                finished.push_back(LaneOutcome {
                    trial: trial[slot],
                    stabilization_step: Some(applied[slot]),
                    leader: unique_leader(roles, row),
                });
                *active &= !(1 << slot);
            } else if applied[slot] == max_steps {
                finished.push_back(LaneOutcome {
                    trial: trial[slot],
                    stabilization_step: None,
                    leader: None,
                });
                *active &= !(1 << slot);
            }
        }
    }
}

/// Down-bias applied to the SIMD kernel's f32 row root before
/// truncation: larger than the computation's rounding error (under
/// `2^-12` at the `n <= 2048` gate, so the candidate row never lands
/// high even when the root rounds up) yet far below 1 (so it lands at
/// most one row low, which the kernel's single masked step up settles).
/// Shared with the exhaustive decode-replica test.
#[cfg_attr(not(target_arch = "x86_64"), allow(dead_code))]
const ROW_BIAS: f32 = 1.0 / 512.0;

/// Runtime check for the AVX-512 lane kernel: `avx512f` (foundation) for
/// the masked gathers/scatters plus `avx512vl` for their 256-bit forms.
/// Checked once per pack construction; everywhere else the cached
/// `simd` flag gates the `unsafe` kernel call.
fn simd_available() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        is_x86_feature_detected!("avx512f") && is_x86_feature_detected!("avx512vl")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The AVX-512 fused clique kernel: one 8-lane group advanced a whole
/// chunk, each vector lane an independent trial. This is the only
/// `unsafe` in the workspace — it is confined to this module, entered
/// solely through the runtime-feature-gated call in
/// [`LaneDenseExecutor::run_block`]'s SIMD chunk runner, and touches
/// memory only through bounds-explained masked gathers and scatters.
#[cfg(target_arch = "x86_64")]
mod simd {
    use std::arch::x86_64::{
        __m256i, __mmask8, _mm256_add_epi32, _mm256_and_si256, _mm256_cmpge_epu32_mask,
        _mm256_cvtepi32_ps, _mm256_cvttps_epi32, _mm256_loadu_si256, _mm256_mask_add_epi32,
        _mm256_mask_cmpeq_epi32_mask, _mm256_mask_i32scatter_epi32, _mm256_mmask_i32gather_epi32,
        _mm256_mul_ps, _mm256_mullo_epi32, _mm256_or_si256, _mm256_set1_epi32, _mm256_set1_ps,
        _mm256_setzero_si256, _mm256_slli_epi32, _mm256_sqrt_ps, _mm256_srli_epi32,
        _mm256_storeu_si256, _mm256_sub_epi32, _mm256_sub_ps, _mm256_xor_si256, _mm512_add_epi64,
        _mm512_and_si512, _mm512_cvtepi64_epi32, _mm512_loadu_epi64, _mm512_mask_cmplt_epu64_mask,
        _mm512_mul_epu32, _mm512_or_si512, _mm512_rol_epi64, _mm512_set1_epi64, _mm512_slli_epi64,
        _mm512_srli_epi64, _mm512_storeu_epi64, _mm512_xor_si512,
    };

    /// Advances one 8-lane group `chunk` lockstep steps through the
    /// fused transition table: per step, the raw draws decode to edge
    /// endpoints with vector arithmetic (see below), masked gathers load
    /// the two row ids and the fused entry of every live vector lane,
    /// masked scatters write the successor ids back, and the packed
    /// leader deltas update a leader-count vector whose compare-mask
    /// detects stabilization — the statement-for-statement vector mirror
    /// of the scalar fused clique loop. The caller alternates short
    /// draw passes with calls to this kernel over one L1-resident slab,
    /// threading `mask` and the running step offset `base` through the
    /// alternation.
    ///
    /// The decode replaces the scalar path's hint-table walk
    /// ([`super::clique_decode`]) with the closed form: the row of edge
    /// `e` is the largest `u` with `start(u) <= e` where
    /// `start(u) = u * (2n - 1 - u) / 2`, and the real root
    /// `x = (A - sqrt(A^2 - 8e)) / 2` with `A = 2n - 1` satisfies
    /// `x in [u, u + 1)`. Computed in f32 every intermediate is below
    /// `2^24` for `n <= 2048` — exact but for the correctly-rounded sqrt
    /// (error under `2^-12` here) — so truncating `x` biased down by
    /// `2^-9` (far above the rounding error, far below the gap to
    /// `u + 1`) yields `u` or `u - 1`, never more and never high; one
    /// masked step up (the row starts move by exactly the row length —
    /// no re-multiplication) settles `u` precisely. The biased decode
    /// agrees bit for bit with the scalar walk on every edge index,
    /// which keeps the kernel's trace identical to the scalar engine's
    /// (`decode_replica_matches_hint_walk_exhaustively` checks that by
    /// exhaustion at the gate boundary).
    ///
    /// `raws` holds the step-major raw scheduler words
    /// (`raws[step * 8 + pos]`, low bit the orientation, rest the edge
    /// index), `cn` the clique's node count, `bases` each vector lane's
    /// row offset into `ids`, `mask` the live vector lanes on entry —
    /// updated in place for the caller's next alternation. A lane whose
    /// leader count hits 1 records `base` plus its 1-based chunk step in
    /// `events[pos]` and is cleared from the mask, so its row and leader
    /// count freeze at exactly the causing step while the rest of the
    /// group continues; the kernel returns early once the mask empties.
    /// `leaders` is updated in place to each lane's final count.
    ///
    /// # Safety
    ///
    /// Callers must ensure `avx512f` and `avx512vl` are available, that
    /// `cn <= 2048` (the f32-exactness bound above) with every entry of
    /// `raws` below `2m = cn * (cn - 1)` (so the decoded endpoints
    /// stay below `cn`; stale entries at masked-off positions are
    /// decoded too — harmlessly, their gathers and scatters being masked
    /// off — and must respect the same bound), that `raws` holds at
    /// least `chunk * 8` entries with `bases[pos] + node` indexing
    /// within `ids` for every `node < cn`, and that every id stored in
    /// `ids` stays below 256 with `fused` holding the full `256 * 256`
    /// entry fused table (so the gathered fused index is in bounds).
    #[target_feature(enable = "avx512f,avx512vl")]
    #[allow(clippy::too_many_arguments)]
    pub(super) unsafe fn fused_chunk(
        ids: &mut [u32],
        fused: &[u32],
        raws: &[u32],
        chunk: usize,
        cn: u32,
        bases: &[i32; 8],
        mask: &mut __mmask8,
        leaders: &mut [i32; 8],
        events: &mut [u32; 8],
        base: u32,
    ) {
        debug_assert!(raws.len() >= chunk * 8);
        debug_assert!(cn <= 2048, "sqrt decode is f32-exact only up to n = 2048");
        let idp: *mut i32 = ids.as_mut_ptr().cast();
        let fp: *const i32 = fused.as_ptr().cast();
        let zero = _mm256_setzero_si256();
        let one = _mm256_set1_epi32(1);
        let two = _mm256_set1_epi32(2);
        let lo8 = _mm256_set1_epi32(0xFF);
        let a_i = 2 * cn as i32 - 1;
        let av = _mm256_set1_epi32(a_i);
        let cn1 = _mm256_set1_epi32(cn as i32 - 1);
        let a_f = _mm256_set1_ps(a_i as f32);
        let a2_f = _mm256_set1_ps((a_i as f32) * (a_i as f32));
        let half_f = _mm256_set1_ps(0.5);
        let eight_f = _mm256_set1_ps(8.0);
        let bias_f = _mm256_set1_ps(super::ROW_BIAS);
        let bv = _mm256_loadu_si256(bases.as_ptr().cast::<__m256i>());
        let mut lv = _mm256_loadu_si256(leaders.as_ptr().cast::<__m256i>());
        let mut m: __mmask8 = *mask;
        for i in 0..chunk {
            let rv = _mm256_loadu_si256(raws.as_ptr().add(i * 8).cast::<__m256i>());
            let e = _mm256_srli_epi32(rv, 1);
            // Candidate row from the down-biased f32 closed form: `u` or
            // `u - 1`, never high (see the type docs).
            let ef = _mm256_cvtepi32_ps(e);
            let s = _mm256_sqrt_ps(_mm256_sub_ps(a2_f, _mm256_mul_ps(eight_f, ef)));
            let uf = _mm256_sub_ps(_mm256_mul_ps(_mm256_sub_ps(a_f, s), half_f), bias_f);
            let mut u = _mm256_cvttps_epi32(uf);
            let mut start = _mm256_srli_epi32(_mm256_mullo_epi32(u, _mm256_sub_epi32(av, u)), 1);
            // Settle: one masked step up, by the candidate row's length
            // `n - 1 - u` (exactly `start(u + 1) - start(u)`).
            let rowlen = _mm256_sub_epi32(cn1, u);
            let over = _mm256_cmpge_epu32_mask(_mm256_sub_epi32(e, start), rowlen);
            start = _mm256_mask_add_epi32(start, over, start, rowlen);
            u = _mm256_mask_add_epi32(u, over, u, one);
            let v = _mm256_add_epi32(u, _mm256_add_epi32(one, _mm256_sub_epi32(e, start)));
            // Branchless orientation swap by the draw's low bit — the
            // vector mirror of `decoder::orient`.
            let sw = _mm256_sub_epi32(zero, _mm256_and_si256(rv, one));
            let x = _mm256_and_si256(_mm256_xor_si256(u, v), sw);
            let iuv = _mm256_add_epi32(bv, _mm256_xor_si256(u, x));
            let ivv = _mm256_add_epi32(bv, _mm256_xor_si256(v, x));
            let a = _mm256_mmask_i32gather_epi32(zero, m, iuv, idp, 4);
            let b = _mm256_mmask_i32gather_epi32(zero, m, ivv, idp, 4);
            let fidx = _mm256_or_si256(_mm256_slli_epi32(a, 8), b);
            let entry = _mm256_mmask_i32gather_epi32(zero, m, fidx, fp, 4);
            let na = _mm256_and_si256(_mm256_srli_epi32(entry, 8), lo8);
            let nb = _mm256_and_si256(entry, lo8);
            // In-lane the two scatter targets differ (`u != v` on a
            // simple graph) and across lanes the rows are disjoint, so
            // the two scatters never collide. (Suppressing no-op writes
            // behind a changed-mask compare was measured slower: the
            // compare joins the gather→scatter dependency chain, and
            // the scatters' port pressure is not the bottleneck.)
            _mm256_mask_i32scatter_epi32(idp, m, iuv, na, 4);
            _mm256_mask_i32scatter_epi32(idp, m, ivv, nb, 4);
            let delta = _mm256_sub_epi32(_mm256_srli_epi32(entry, 16), two);
            lv = _mm256_mask_add_epi32(lv, m, lv, delta);
            let em = _mm256_mask_cmpeq_epi32_mask(m, lv, one);
            if em != 0 {
                let mut e = em;
                while e != 0 {
                    let pos = e.trailing_zeros() as usize;
                    events[pos] = base + (i + 1) as u32;
                    e &= e - 1;
                }
                m &= !em;
                if m == 0 {
                    break;
                }
            }
        }
        _mm256_storeu_si256(leaders.as_mut_ptr().cast::<__m256i>(), lv);
        *mask = m;
    }

    /// Steps eight xoshiro256++ streams one vector qword lane each for
    /// `out.len() / 8` draws, bounding every draw into `0..limit` with
    /// the vendored `rand` crate's exact Lemire multiply-shift
    /// algorithm, and stores the raws step-major into `out`
    /// (`out[step * 8 + pos]`). The generator update, the multiply-
    /// shift and the rejection test all vectorize (the 64×64→128
    /// product of a `limit < 2^32` splits into two `vpmuludq` halves);
    /// the rejection *retry* — probability `limit / 2^64` per draw,
    /// never yet observed at this workspace's `limit < 2^22` — spills
    /// to [`lemire_reject`], which replays the scalar retry loop on the
    /// affected stream so the draw sequence stays bit-identical to the
    /// scalar scheduler's. `st` holds the streams' state words
    /// transposed (`st[word][pos]`), advanced in place; `occ` flags the
    /// positions holding real lanes — unoccupied positions may carry
    /// any state (even the degenerate all-zero one) and are excluded
    /// from rejection handling, while the multiply-shift still bounds
    /// their stored raws below `limit`.
    ///
    /// # Safety
    ///
    /// Callers must ensure `avx512f` is available and
    /// `0 < limit < 2^32` (the split-product bound; the engine's
    /// `2m < 2^23` is far inside it). `out.len()` must be a multiple
    /// of 8.
    #[target_feature(enable = "avx512f")]
    pub(super) unsafe fn draw_chunk(
        st: &mut [[u64; 8]; 4],
        limit: u64,
        occ: __mmask8,
        out: &mut [u32],
    ) {
        debug_assert!(out.len().is_multiple_of(8));
        debug_assert!(limit > 0 && limit < (1 << 32));
        let np = _mm512_set1_epi64(limit as i64);
        let lo32 = _mm512_set1_epi64(0xFFFF_FFFF);
        let mut s0 = _mm512_loadu_epi64(st[0].as_ptr().cast());
        let mut s1 = _mm512_loadu_epi64(st[1].as_ptr().cast());
        let mut s2 = _mm512_loadu_epi64(st[2].as_ptr().cast());
        let mut s3 = _mm512_loadu_epi64(st[3].as_ptr().cast());
        for i in 0..out.len() / 8 {
            // xoshiro256++ next_u64, eight states side by side.
            let x = _mm512_add_epi64(_mm512_rol_epi64::<23>(_mm512_add_epi64(s0, s3)), s0);
            let t = _mm512_slli_epi64::<17>(s1);
            s2 = _mm512_xor_si512(s2, s0);
            s3 = _mm512_xor_si512(s3, s1);
            s1 = _mm512_xor_si512(s1, s2);
            s0 = _mm512_xor_si512(s0, s3);
            s2 = _mm512_xor_si512(s2, t);
            s3 = _mm512_rol_epi64::<45>(s3);
            // The 128-bit product `x * limit` of Lemire's method, split
            // on 32-bit halves: with `b = lo32(x) * limit` and
            // `a = hi32(x) * limit`, the draw (the product's high
            // 64 bits) is `(a + (b >> 32)) >> 32` and the rejection
            // word (its low 64 bits) `((a + (b >> 32)) << 32) | lo32(b)`.
            let b = _mm512_mul_epu32(x, np);
            let a = _mm512_mul_epu32(_mm512_srli_epi64::<32>(x), np);
            let s = _mm512_add_epi64(a, _mm512_srli_epi64::<32>(b));
            let idx = _mm512_srli_epi64::<32>(s);
            _mm256_storeu_si256(
                out.as_mut_ptr().add(i * 8).cast::<__m256i>(),
                _mm512_cvtepi64_epi32(idx),
            );
            let lo = _mm512_or_si512(_mm512_slli_epi64::<32>(s), _mm512_and_si512(b, lo32));
            let rej = _mm512_mask_cmplt_epu64_mask(occ, lo, np);
            if rej != 0 {
                // A real lane entered the scalar sampler's retry zone:
                // spill the states, replay its exact retry loop, reload.
                _mm512_storeu_epi64(st[0].as_mut_ptr().cast(), s0);
                _mm512_storeu_epi64(st[1].as_mut_ptr().cast(), s1);
                _mm512_storeu_epi64(st[2].as_mut_ptr().cast(), s2);
                _mm512_storeu_epi64(st[3].as_mut_ptr().cast(), s3);
                let mut lo_arr = [0u64; 8];
                _mm512_storeu_epi64(lo_arr.as_mut_ptr().cast(), lo);
                let mut r = rej;
                while r != 0 {
                    let pos = r.trailing_zeros() as usize;
                    let slot = &mut out[i * 8 + pos];
                    *slot = lemire_reject(st, pos, limit, lo_arr[pos], *slot);
                    r &= r - 1;
                }
                s0 = _mm512_loadu_epi64(st[0].as_ptr().cast());
                s1 = _mm512_loadu_epi64(st[1].as_ptr().cast());
                s2 = _mm512_loadu_epi64(st[2].as_ptr().cast());
                s3 = _mm512_loadu_epi64(st[3].as_ptr().cast());
            }
        }
        _mm512_storeu_epi64(st[0].as_mut_ptr().cast(), s0);
        _mm512_storeu_epi64(st[1].as_mut_ptr().cast(), s1);
        _mm512_storeu_epi64(st[2].as_mut_ptr().cast(), s2);
        _mm512_storeu_epi64(st[3].as_mut_ptr().cast(), s3);
    }

    /// The scalar tail of the vendored `rand` crate's bounded sampler,
    /// replayed for one stream of [`draw_chunk`] whose draw fell into
    /// the retry zone (`lo < limit`): compute the retry threshold and
    /// redraw — advancing that stream alone, exactly as the scalar
    /// scheduler would — until the rejection word clears it. Returns
    /// the accepted draw (`idx0` unchanged when the zone test passes
    /// immediately, mirroring the vendored `bounded_u64`).
    #[cold]
    fn lemire_reject(st: &mut [[u64; 8]; 4], pos: usize, limit: u64, lo0: u64, idx0: u32) -> u32 {
        let threshold = limit.wrapping_neg() % limit;
        let mut lo = lo0;
        let mut idx = u64::from(idx0);
        while lo < threshold {
            let s0 = st[0][pos];
            let x = s0.wrapping_add(st[3][pos]).rotate_left(23).wrapping_add(s0);
            let t = st[1][pos] << 17;
            st[2][pos] ^= st[0][pos];
            st[3][pos] ^= st[1][pos];
            st[1][pos] ^= st[2][pos];
            st[0][pos] ^= st[3][pos];
            st[2][pos] ^= t;
            st[3][pos] = st[3][pos].rotate_left(45);
            let m = u128::from(x) * u128::from(limit);
            lo = m as u64;
            idx = (m >> 64) as u64;
        }
        idx as u32
    }
}

/// The unique leader of a lane row, if exactly one node outputs leader
/// (mirrors [`crate::DenseExecutor::leader`]).
fn unique_leader(roles: &[Role], row: &[u32]) -> Option<NodeId> {
    let mut found = None;
    for (v, &id) in row.iter().enumerate() {
        if roles[id as usize] == Role::Leader {
            if found.is_some() {
                return None;
            }
            found = Some(v as NodeId);
        }
    }
    found
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dense::DenseExecutor;
    use crate::protocol::LeaderCountOracle;
    use popele_graph::families;

    /// Initiator absorbs the responder's leadership (stabilizes on
    /// cliques).
    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    fn scalar_outcome(
        g: &Graph,
        compiled: &CompiledProtocol<Absorb>,
        seed: u64,
        max_steps: u64,
    ) -> (Option<u64>, Option<NodeId>) {
        let mut exec = DenseExecutor::new(g, compiled, seed);
        match exec.run_until_stable(max_steps) {
            Ok(out) => (Some(out.stabilization_step), out.leader),
            Err(_) => (None, None),
        }
    }

    #[test]
    fn lanes_match_scalar_outcomes_with_retire_and_refill() {
        // 11 trials through 4 lanes: ragged retirement and refills, and
        // a final partial pack. Every outcome must equal the scalar
        // engine's for the same seed.
        let g = families::clique(16);
        let compiled = CompiledProtocol::compile_default(&Absorb, 16).unwrap();
        let max_steps = 1u64 << 22;
        let mut lanes = LaneDenseExecutor::new(&g, &compiled, 4);
        let mut next = 0usize;
        let mut done = Vec::new();
        loop {
            while lanes.has_free_lane() && next < 11 {
                lanes.load(next, 9000 + next as u64);
                next += 1;
            }
            while let Some(out) = lanes.take_finished() {
                done.push(out);
            }
            if lanes.num_active() == 0 && next == 11 {
                break;
            }
            lanes.run_block(max_steps);
        }
        assert_eq!(done.len(), 11);
        for out in done {
            let (steps, leader) = scalar_outcome(&g, &compiled, 9000 + out.trial as u64, max_steps);
            assert_eq!(out.stabilization_step, steps, "trial {}", out.trial);
            assert_eq!(out.leader, leader, "trial {}", out.trial);
        }
    }

    #[test]
    fn lane_rows_track_scalar_configurations_blockwise() {
        // Non-clique graph (packed decoder, no fused path): after every
        // block each still-active lane's row must equal the scalar
        // configuration at the same step count.
        let g = families::cycle(12);
        let compiled = CompiledProtocol::compile_default(&Absorb, 12).unwrap();
        let mut lanes = LaneDenseExecutor::new(&g, &compiled, 3);
        let seeds = [5u64, 6, 7];
        let mut scalars: Vec<_> = seeds
            .iter()
            .map(|&s| DenseExecutor::new(&g, &compiled, s))
            .collect();
        for (t, &s) in seeds.iter().enumerate() {
            lanes.load(t, s);
        }
        for _ in 0..8 {
            lanes.run_block(u64::MAX);
            for slot in 0..3 {
                let Some(trial) = lanes.lane_trial(slot) else {
                    continue;
                };
                let scalar = &mut scalars[trial];
                let target = lanes.lane_steps(slot);
                scalar.run_steps(target - scalar.steps());
                assert_eq!(lanes.lane_state_ids(slot), scalar.state_ids());
                assert_eq!(lanes.lane_leader_count(slot), scalar.leader_count());
            }
        }
    }

    #[test]
    fn decode_replica_matches_hint_walk_exhaustively() {
        // Scalar f32 replica of the SIMD kernel's row decode — the same
        // IEEE operations, step for step (i32-to-f32 convert, exact
        // mul/sub below 2^24, correctly-rounded sqrt, truncating
        // convert) — checked against the reference triangular walk by
        // exhaustion over every edge index, at sizes including the
        // `n <= 2048` f32-exactness gate boundary.
        for n in [2u32, 3, 5, 16, 1000, 2047, 2048] {
            let a = 2 * n - 1;
            let a_f = a as f32;
            let a2_f = a_f * a_f;
            let m = n * (n - 1) / 2;
            let mut u_ref = 0u32;
            let mut start_ref = 0u32;
            for e in 0..m {
                while e - start_ref >= n - 1 - u_ref {
                    start_ref += n - 1 - u_ref;
                    u_ref += 1;
                }
                let v_ref = u_ref + 1 + (e - start_ref);
                let s = (a2_f - 8.0 * e as f32).sqrt();
                let mut u = ((a_f - s) * 0.5 - ROW_BIAS) as i32 as u32;
                let mut start = (u * (a - u)) >> 1;
                // The down-biased candidate is never above the true row,
                // so its start is never above `e` and one step up
                // settles it.
                assert!(start <= e, "candidate row overshoots: n {n} e {e}");
                let rowlen = n - 1 - u;
                if e - start >= rowlen {
                    start += rowlen;
                    u += 1;
                }
                let v = u + 1 + (e - start);
                assert_eq!((u, v), (u_ref, v_ref), "n {n} e {e}");
            }
        }
    }

    #[test]
    fn budget_exhaustion_retires_as_timeout() {
        let g = families::clique(20);
        let compiled = CompiledProtocol::compile_default(&Absorb, 20).unwrap();
        let mut lanes = LaneDenseExecutor::new(&g, &compiled, 2);
        lanes.load(0, 5);
        lanes.load(1, 6);
        // 3 steps cannot merge 20 leaders into one.
        while lanes.num_active() > 0 {
            lanes.run_block(3);
        }
        let mut timeouts = 0;
        while let Some(out) = lanes.take_finished() {
            assert_eq!(out.stabilization_step, None);
            assert_eq!(out.leader, None);
            timeouts += 1;
        }
        assert_eq!(timeouts, 2);
    }

    #[test]
    fn step_zero_stability_retires_without_activating() {
        // A 1-leader initial configuration is stable before any draw.
        let g = families::clique(2);
        // Absorb starts all-leaders; use a star protocol shape instead:
        // n = 2 clique with one absorb step is not step-0 stable, so
        // emulate with a single-node-leader initial via StarLike.
        #[derive(Clone, Copy)]
        struct StarLike;
        impl Protocol for StarLike {
            type State = bool;
            type Oracle = LeaderCountOracle;
            fn initial_state(&self, node: NodeId) -> bool {
                node == 0
            }
            fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
                (*a, *b)
            }
            fn output(&self, s: &bool) -> Role {
                if *s {
                    Role::Leader
                } else {
                    Role::Follower
                }
            }
            fn oracle(&self) -> LeaderCountOracle {
                LeaderCountOracle::new()
            }
        }
        let compiled = CompiledProtocol::compile_default(&StarLike, 2).unwrap();
        let mut lanes = LaneDenseExecutor::new(&g, &compiled, 2);
        let slot = lanes.load(7, 99);
        assert_eq!(lanes.lane_trial(slot), None, "slot must stay free");
        let out = lanes.take_finished().expect("retired at load");
        assert_eq!(out.trial, 7);
        assert_eq!(out.stabilization_step, Some(0));
        assert_eq!(out.leader, Some(0));
    }
}
