//! Ahead-of-time compilation: the reachable state space enumerated into
//! dense `u16` ids with the full `|Λ|²` transition table precomputed.
//!
//! * [`CompiledProtocol::compile`] builds the tables by BFS closure over
//!   [`Protocol::transition`] starting from the initial states of every
//!   node. The closure is a sound over-approximation: it includes every
//!   state reachable under *any* schedule on *any* graph with the given
//!   node count (and possibly more), so the table covers every pair an
//!   execution can sample.
//! * [`probe_state_space`] answers "would compilation fit the cap?"
//!   with a bounded amount of work — the fast-rejection path that keeps
//!   engine selection cheap for protocols (like the identifier protocol
//!   at realistic `k`) whose closure overflows the cap only after many
//!   transition evaluations.
//!
//! # When compilation fails
//!
//! Ids are `u16`, so the enumeration aborts with
//! [`CompileError::StateSpaceTooLarge`] once it exceeds the requested
//! `max_states` cap (at most [`MAX_STATE_IDS`] = 2¹⁶). The cap matters
//! twice over: the transition table stores `|Λ|²` packed entries (4 bytes
//! each), so even before the id space overflows, large state spaces stop
//! paying — at the default cap of [`DEFAULT_MAX_COMPILED_STATES`] = 1024
//! the table occupies 4 MiB and stays cache-resident, while at the full
//! 2¹⁶ it would need 16 GiB. Protocols with polynomially many states
//! (e.g. the identifier protocol at realistic `k`) therefore run on the
//! lazily-compiling [`crate::LazyDenseExecutor`] instead; constant-state
//! protocols (token, star, majority) and small-parameter instances of
//! the fast protocol compile everywhere.
//! [`crate::monte_carlo::run_trials_auto`] automates exactly this
//! decision.

use crate::protocol::{Protocol, Role};
use popele_graph::NodeId;
use std::collections::HashMap;
use std::fmt;

/// Dense state identifier of a compiled protocol.
pub type StateId = u16;

/// Hard ceiling on the number of dense ids (`u16` space).
pub const MAX_STATE_IDS: usize = 1 << 16;

/// Default enumeration cap used by the auto-compiling entry points: the
/// resulting `|Λ|²` table of packed `u32` entries is at most 4 MiB.
pub const DEFAULT_MAX_COMPILED_STATES: usize = 1024;

/// Why a protocol could not be compiled.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CompileError {
    /// The BFS closure exceeded the requested state cap.
    StateSpaceTooLarge {
        /// The cap that was exceeded.
        limit: usize,
    },
}

impl fmt::Display for CompileError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CompileError::StateSpaceTooLarge { limit } => {
                write!(f, "reachable state space exceeds {limit} states")
            }
        }
    }
}

impl std::error::Error for CompileError {}

/// The reachable-state enumeration shared by [`CompiledProtocol::compile`]
/// and [`probe_state_space`]: a BFS closure under `transition` over all
/// ordered pairs, starting from the per-node initial states (plus any
/// extra seed states, for arbitrary-initialization runs).
struct Enumeration<S> {
    states: Vec<S>,
    ids: HashMap<S, StateId>,
    initial: Vec<StateId>,
}

/// Why [`enumerate`] stopped before closing the state set.
enum EnumerateStop {
    /// More than `max_states` distinct states exist (exact verdict).
    CapExceeded,
    /// The transition-evaluation budget ran out first (no verdict).
    BudgetExhausted,
}

/// Runs the BFS closure with a state cap and a transition-evaluation
/// budget. `Ok` means the set closed within both limits; the eval budget
/// is what makes the probe's bounded-frontier rejection cheap (a closure
/// on `k ≤ max_states` states needs at most `k²` evaluations, so
/// `usize::MAX` makes the budget vacuous for full compilation).
fn enumerate<P: Protocol>(
    protocol: &P,
    num_nodes: u32,
    max_states: usize,
    mut eval_budget: usize,
    extra_seeds: &[P::State],
) -> Result<Enumeration<P::State>, EnumerateStop> {
    assert!(
        (1..=MAX_STATE_IDS).contains(&max_states),
        "max_states must be in 1..={MAX_STATE_IDS}"
    );
    let mut states: Vec<P::State> = Vec::new();
    let mut ids: HashMap<P::State, StateId> = HashMap::new();

    fn intern<S: Clone + Eq + std::hash::Hash>(
        s: &S,
        states: &mut Vec<S>,
        ids: &mut HashMap<S, StateId>,
        max_states: usize,
    ) -> Result<StateId, EnumerateStop> {
        if let Some(&id) = ids.get(s) {
            return Ok(id);
        }
        if states.len() >= max_states {
            return Err(EnumerateStop::CapExceeded);
        }
        let id = states.len() as StateId;
        states.push(s.clone());
        ids.insert(s.clone(), id);
        Ok(id)
    }

    let mut initial = Vec::with_capacity(num_nodes as usize);
    for v in 0..num_nodes {
        let s = protocol.initial_state(v);
        initial.push(intern(&s, &mut states, &mut ids, max_states)?);
    }
    for s in extra_seeds {
        intern(s, &mut states, &mut ids, max_states)?;
    }

    // BFS closure: repeatedly expand every ordered pair involving at
    // least one state discovered since the last round.
    let mut closed_upto = 0usize;
    while closed_upto < states.len() {
        let frontier_end = states.len();
        for a in 0..frontier_end {
            for b in 0..frontier_end {
                if a < closed_upto && b < closed_upto {
                    continue;
                }
                if eval_budget == 0 {
                    return Err(EnumerateStop::BudgetExhausted);
                }
                eval_budget -= 1;
                let (na, nb) = protocol.transition(&states[a], &states[b]);
                intern(&na, &mut states, &mut ids, max_states)?;
                intern(&nb, &mut states, &mut ids, max_states)?;
            }
        }
        closed_upto = frontier_end;
    }
    Ok(Enumeration {
        states,
        ids,
        initial,
    })
}

/// Default transition-evaluation budget of the engine-selection probe
/// (see [`probe_state_space`]): enough for the bounded-frontier walk to
/// certify a cap overflow for every progress-counter-driven protocol in
/// the workspace (the identifier protocol mints two fresh states per
/// self-pair evaluation, so overflowing the default cap needs ~2·cap of
/// the ~3·cap walk evaluations) and for the small closures to complete
/// (a `k`-state protocol closes within `k²` evaluations), while bounding
/// the probe's worst case around a hundred microseconds — versus the
/// ~10 ms a full quadratic closure-until-overflow costs.
pub const PROBE_EVAL_BUDGET: usize = 16 * DEFAULT_MAX_COMPILED_STATES;

/// Verdict of [`probe_state_space`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpaceProbe {
    /// The closure completed: exactly this many reachable states, all
    /// within the cap — compilation is guaranteed to succeed.
    Fits(usize),
    /// More than `max_states` reachable states exist (exact verdict —
    /// compilation is guaranteed to fail).
    TooLarge,
    /// The evaluation budget ran out before either verdict. Callers
    /// that need an exact answer fall through to a full
    /// [`CompiledProtocol::compile`]; callers that only need speed may
    /// treat this as "do not compile ahead of time".
    Inconclusive,
}

/// Bounded-frontier probe of the reachable state space: answers "would
/// [`CompiledProtocol::compile`] fit `max_states`?" within `eval_budget`
/// transition evaluations, in two phases.
///
/// **Phase 1 — overflow walk.** Discovering `max_states + 1` distinct
/// states is enough to certify [`SpaceProbe::TooLarge`], and it does not
/// require the full quadratic pair closure: the walk expands, per
/// discovered state `s`, only the bounded pair frontier `(s, s)`,
/// `(s, s₀)`, `(s₀, s)` (with `s₀` the first initial state) — linear in
/// the states discovered. For the state spaces that actually overflow
/// the cap — identifier generation (Theorem 21), clock/level counters of
/// full-scale fast instances, and the related space-optimal
/// constructions with the same "progress counter" shape — self-pairs
/// mint fresh states on almost every evaluation, so the verdict arrives
/// within a few thousand evaluations: **microseconds**, versus the
/// ~10 ms the quadratic closure needs to overflow the same cap. That
/// difference is the point: sweep campaigns re-select the engine for
/// every shard.
///
/// **Phase 2 — budgeted closure.** If the walk exhausts its frontier
/// below the cap (it explores a subset of reachable pairs, so it cannot
/// certify completeness), the remaining budget runs the same BFS closure
/// as compilation. Small state spaces (every constant-state protocol)
/// close here almost immediately, yielding an exact
/// [`SpaceProbe::Fits`]; spaces that are large but not
/// walk-discoverable return [`SpaceProbe::Inconclusive`] and the caller
/// decides whether exactness is worth a full compile attempt.
///
/// Every state either phase discovers is genuinely reachable (everything
/// derives from initial states by `transition`), so `TooLarge` is never
/// a false positive; `Fits` comes only from a completed closure, so it
/// is exact too.
///
/// # Panics
///
/// Panics if `max_states` is `0` or exceeds [`MAX_STATE_IDS`].
#[must_use]
pub fn probe_state_space<P: Protocol>(
    protocol: &P,
    num_nodes: u32,
    max_states: usize,
    eval_budget: usize,
) -> SpaceProbe {
    let (verdict, used) = overflow_walk(protocol, num_nodes, max_states, eval_budget);
    match verdict {
        WalkVerdict::Exceeds => SpaceProbe::TooLarge,
        WalkVerdict::Budget => SpaceProbe::Inconclusive,
        // Phase 2: budgeted closure (the walk's pair subset proves
        // nothing about completeness). Restarting from the initial
        // states is exactly `enumerate`; the walk's states are all
        // rediscovered within its first rounds.
        WalkVerdict::Exhausted => {
            match enumerate(protocol, num_nodes, max_states, eval_budget - used, &[]) {
                Ok(e) => SpaceProbe::Fits(e.states.len()),
                Err(EnumerateStop::CapExceeded) => SpaceProbe::TooLarge,
                Err(EnumerateStop::BudgetExhausted) => SpaceProbe::Inconclusive,
            }
        }
    }
}

/// Outcome of the phase-1 overflow walk ([`overflow_walk`]).
pub(crate) enum WalkVerdict {
    /// More than `max_states` distinct states were discovered (exact:
    /// everything the walk visits is reachable).
    Exceeds,
    /// The walk's bounded pair frontier closed below the cap — no
    /// verdict about the full closure.
    Exhausted,
    /// The budget ran out while fresh states kept appearing.
    Budget,
}

/// Phase-1 overflow walk, shared by [`probe_state_space`] and the
/// engine-selection fast path (which, on anything but `Exceeds`, goes
/// straight to a single [`CompiledProtocol::compile`] instead of paying
/// the probe's closure *and* the compile's). Returns the verdict and the
/// number of transition evaluations consumed.
///
/// # Panics
///
/// Panics if `max_states` is `0` or exceeds [`MAX_STATE_IDS`].
pub(crate) fn overflow_walk<P: Protocol>(
    protocol: &P,
    num_nodes: u32,
    max_states: usize,
    eval_budget: usize,
) -> (WalkVerdict, usize) {
    assert!(
        (1..=MAX_STATE_IDS).contains(&max_states),
        "max_states must be in 1..={MAX_STATE_IDS}"
    );
    let mut states: Vec<P::State> = Vec::new();
    let mut ids: HashMap<P::State, StateId> = HashMap::new();
    let mut budget = eval_budget;

    // Local intern without the cap bail: the walk *wants* to exceed the
    // cap (that is the verdict), it only stops at `max_states + 1`.
    let mut intern = |s: &P::State, states: &mut Vec<P::State>| {
        if let Some(&id) = ids.get(s) {
            return id;
        }
        let id = states.len() as StateId;
        states.push(s.clone());
        ids.insert(s.clone(), id);
        id
    };

    for v in 0..num_nodes {
        let s = protocol.initial_state(v);
        intern(&s, &mut states);
        if states.len() > max_states {
            return (WalkVerdict::Exceeds, eval_budget - budget);
        }
    }

    let mut i = 0usize;
    while i < states.len() && budget >= 3 {
        let pairs = [(i, i), (i, 0), (0, i)];
        for (a, b) in pairs {
            budget -= 1;
            let (na, nb) = protocol.transition(&states[a], &states[b]);
            intern(&na, &mut states);
            intern(&nb, &mut states);
            if states.len() > max_states {
                return (WalkVerdict::Exceeds, eval_budget - budget);
            }
        }
        i += 1;
    }
    let verdict = if i < states.len() {
        WalkVerdict::Budget
    } else {
        WalkVerdict::Exhausted
    };
    (verdict, eval_budget - budget)
}

/// A protocol lowered to dense ids with fully precomputed transition and
/// output tables. Shared (immutably) by every executor and Monte-Carlo
/// worker thread that runs it.
///
/// # Examples
///
/// ```
/// use popele_engine::{CompiledProtocol, DenseExecutor, Role};
/// # use popele_engine::{LeaderCountOracle, Protocol};
/// # #[derive(Clone, Copy)]
/// # struct Absorb;
/// # impl Protocol for Absorb {
/// #     type State = bool;
/// #     type Oracle = LeaderCountOracle;
/// #     fn initial_state(&self, _node: u32) -> bool { true }
/// #     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
/// #         if *a && *b { (true, false) } else { (*a, *b) }
/// #     }
/// #     fn output(&self, s: &bool) -> Role {
/// #         if *s { Role::Leader } else { Role::Follower }
/// #     }
/// #     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
/// # }
///
/// // `Absorb` is a two-state protocol: the initiator absorbs the
/// // responder's leadership. Compilation enumerates both states and
/// // precomputes every transition.
/// let compiled = CompiledProtocol::compile(&Absorb, 20, 16).unwrap();
/// assert_eq!(compiled.num_states(), 2);
/// let leader = compiled.state_id(&true).unwrap();
/// let follower = compiled.state_id(&false).unwrap();
/// assert_eq!(compiled.successor(leader, leader), (leader, follower));
/// assert_eq!(compiled.role(leader), Role::Leader);
///
/// // The table drives a [`DenseExecutor`] over any 20-node graph.
/// let g = popele_graph::families::clique(20);
/// let outcome = DenseExecutor::new(&g, &compiled, 7)
///     .run_until_stable(1 << 22)
///     .unwrap();
/// assert_eq!(outcome.leader_count, 1);
/// ```
#[derive(Debug, Clone)]
pub struct CompiledProtocol<P: Protocol> {
    pub(crate) protocol: P,
    /// Id → typed state.
    pub(crate) states: Vec<P::State>,
    /// Typed state → id (kept for introspection and differential tests).
    ids: HashMap<P::State, StateId>,
    /// Node → id of its initial state; length `num_nodes`.
    pub(crate) initial: Vec<StateId>,
    /// Flat `k × k` successor table, entry `a·k + b` packing
    /// `(a' << 16) | b'`.
    pub(crate) table: Vec<u32>,
    /// Per table entry: net change in the number of leader-output nodes,
    /// `role(a') + role(b') − role(a) − role(b)` (each counted as 1 for
    /// leader). Lets executors with a unique-leader oracle maintain the
    /// leader count with one add instead of a typed oracle call.
    pub(crate) leader_delta: Vec<i8>,
    /// For `|Λ| ≤ 256` only: the successor pair *and* leader delta of
    /// entry `(a << 8) | b` packed into one word —
    /// `(delta + 2) << 16 | a' << 8 | b'` — padded to 256 columns so the
    /// index is a shift-or instead of a multiply. One load serves the
    /// whole hot-loop update for constant-state protocols.
    pub(crate) fused: Option<Vec<u32>>,
    /// Id → output role.
    pub(crate) roles: Vec<Role>,
    num_nodes: u32,
}

impl<P: Protocol + Clone> CompiledProtocol<P> {
    /// Enumerates the reachable state space of `protocol` for executions
    /// on `num_nodes` nodes and precomputes the transition/output tables.
    ///
    /// The enumeration starts from `initial_state(v)` for every node `v`
    /// and closes under `transition` on all ordered pairs, so it is
    /// graph-independent apart from the node count (which protocols may
    /// use for non-uniform inputs, e.g. candidate sets).
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::StateSpaceTooLarge`] if more than
    /// `max_states` distinct states are discovered.
    ///
    /// # Panics
    ///
    /// Panics if `max_states` is `0` or exceeds [`MAX_STATE_IDS`].
    pub fn compile(protocol: &P, num_nodes: u32, max_states: usize) -> Result<Self, CompileError> {
        Self::compile_with_seeds(protocol, num_nodes, max_states, &[])
    }

    /// Like [`CompiledProtocol::compile`], but additionally closes the
    /// enumeration over `extra_seeds` — states that are not reachable
    /// from the clean initial configuration but can occur as *starting*
    /// states (the support of an
    /// [`crate::stabilize::ArbitraryInit`] sampler). The resulting table
    /// covers every pair an arbitrarily-initialized execution can
    /// sample, which is what lets
    /// [`crate::stabilize::run_trials_stabilize_dense`] run
    /// self-stabilization workloads on the ahead-of-time engine.
    ///
    /// # Errors
    ///
    /// Returns [`CompileError::StateSpaceTooLarge`] if more than
    /// `max_states` distinct states are discovered (seed states count).
    ///
    /// # Panics
    ///
    /// Panics if `max_states` is `0` or exceeds [`MAX_STATE_IDS`].
    pub fn compile_with_seeds(
        protocol: &P,
        num_nodes: u32,
        max_states: usize,
        extra_seeds: &[P::State],
    ) -> Result<Self, CompileError> {
        // A set of k ≤ max_states states closes within k² ≤ max_states²
        // evaluations, so the budget below never fires: compilation
        // stops only at the cap, exactly as before the probe existed.
        let Enumeration {
            states,
            ids,
            initial,
        } = enumerate(protocol, num_nodes, max_states, usize::MAX, extra_seeds)
            .map_err(|_| CompileError::StateSpaceTooLarge { limit: max_states })?;

        // The set is closed: every successor below is already interned.
        let k = states.len();
        let roles: Vec<Role> = states.iter().map(|s| protocol.output(s)).collect();
        let leader = |id: StateId| i8::from(roles[id as usize] == Role::Leader);
        let mut table = vec![0u32; k * k];
        let mut leader_delta = vec![0i8; k * k];
        for a in 0..k {
            for b in 0..k {
                let (na, nb) = protocol.transition(&states[a], &states[b]);
                let (na, nb) = (ids[&na], ids[&nb]);
                table[a * k + b] = (u32::from(na) << 16) | u32::from(nb);
                leader_delta[a * k + b] =
                    leader(na) + leader(nb) - leader(a as StateId) - leader(b as StateId);
            }
        }

        let fused = (k <= 256).then(|| {
            let mut fused = vec![0u32; k << 8];
            for a in 0..k {
                for b in 0..k {
                    let packed = table[a * k + b];
                    let (na, nb) = (packed >> 16, packed & 0xFFFF);
                    let delta = (i32::from(leader_delta[a * k + b]) + 2) as u32;
                    fused[(a << 8) | b] = (delta << 16) | (na << 8) | nb;
                }
            }
            fused
        });

        Ok(Self {
            protocol: protocol.clone(),
            states,
            ids,
            initial,
            table,
            leader_delta,
            fused,
            roles,
            num_nodes,
        })
    }

    /// Compiles with the [`DEFAULT_MAX_COMPILED_STATES`] cap.
    ///
    /// # Errors
    ///
    /// As [`CompiledProtocol::compile`].
    pub fn compile_default(protocol: &P, num_nodes: u32) -> Result<Self, CompileError> {
        Self::compile(protocol, num_nodes, DEFAULT_MAX_COMPILED_STATES)
    }
}

impl<P: Protocol> CompiledProtocol<P> {
    /// The compiled protocol instance.
    #[must_use]
    pub fn protocol(&self) -> &P {
        &self.protocol
    }

    /// Number of enumerated states `|Λ|`.
    #[must_use]
    pub fn num_states(&self) -> usize {
        self.states.len()
    }

    /// Node count the compilation was performed for.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// The enumerated states, indexed by id.
    #[must_use]
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// The dense id of `state`, if it was enumerated.
    #[must_use]
    pub fn state_id(&self, state: &P::State) -> Option<StateId> {
        self.ids.get(state).copied()
    }

    /// Initial-state id of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn initial_id(&self, v: NodeId) -> StateId {
        self.initial[v as usize]
    }

    /// Precomputed successor pair of the ordered interaction `(a, b)`.
    ///
    /// # Panics
    ///
    /// Panics if either id is out of range.
    #[inline]
    #[must_use]
    pub fn successor(&self, a: StateId, b: StateId) -> (StateId, StateId) {
        let packed = self.table[a as usize * self.states.len() + b as usize];
        ((packed >> 16) as StateId, packed as StateId)
    }

    /// Precomputed output role of state id `s`.
    ///
    /// # Panics
    ///
    /// Panics if `s` is out of range.
    #[inline]
    #[must_use]
    pub fn role(&self, s: StateId) -> Role {
        self.roles[s as usize]
    }

    /// Size of the transition table in bytes (capacity planning aid).
    #[must_use]
    pub fn table_bytes(&self) -> usize {
        self.table.len() * std::mem::size_of::<u32>()
    }

    /// Materializes the typed configuration corresponding to `ids`.
    pub(crate) fn typed_config(&self, ids: &[StateId]) -> Vec<P::State> {
        ids.iter()
            .map(|&id| self.states[id as usize].clone())
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LeaderCountOracle;

    /// Initiator absorbs the responder's leadership.
    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    /// A protocol with an unbounded (counter) state space: compilation
    /// must bail out at the cap.
    #[derive(Debug, Clone, Copy)]
    struct Counter;

    impl Protocol for Counter {
        type State = u64;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> u64 {
            0
        }

        fn transition(&self, a: &u64, b: &u64) -> (u64, u64) {
            (a + 1, *b)
        }

        fn output(&self, _s: &u64) -> Role {
            Role::Follower
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn compile_enumerates_absorb() {
        let c = CompiledProtocol::compile(&Absorb, 8, 16).unwrap();
        assert_eq!(c.num_states(), 2);
        assert_eq!(c.num_nodes(), 8);
        let t = c.state_id(&true).unwrap();
        let f = c.state_id(&false).unwrap();
        assert_eq!(c.successor(t, t), (t, f));
        assert_eq!(c.successor(t, f), (t, f));
        assert_eq!(c.role(t), Role::Leader);
        assert_eq!(c.role(f), Role::Follower);
        assert_eq!(c.initial_id(3), t);
        assert_eq!(c.table_bytes(), 16);
    }

    /// Clamps every state to `{0, 1}`: state `2` is unreachable from the
    /// all-zero initial configuration but decays into the closure.
    #[derive(Clone, Copy)]
    struct Clamp;

    impl Protocol for Clamp {
        type State = u8;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> u8 {
            0
        }

        fn transition(&self, a: &u8, b: &u8) -> (u8, u8) {
            ((*a).min(1), (*b).min(1))
        }

        fn output(&self, _s: &u8) -> Role {
            Role::Follower
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }
    }

    #[test]
    fn compile_with_seeds_covers_unreachable_start_states() {
        // The clean closure never sees 1 or 2…
        let plain = CompiledProtocol::compile(&Clamp, 4, 16).unwrap();
        assert_eq!(plain.num_states(), 1);
        assert_eq!(plain.state_id(&2), None);
        // …but seeding the enumeration with the arbitrary-start support
        // interns them and closes over their successors.
        let seeded = CompiledProtocol::compile_with_seeds(&Clamp, 4, 16, &[2]).unwrap();
        assert_eq!(seeded.num_states(), 3);
        let two = seeded.state_id(&2).unwrap();
        let one = seeded.state_id(&1).unwrap();
        assert_eq!(seeded.successor(two, two), (one, one));
        // Seed states count against the cap.
        assert!(CompiledProtocol::compile_with_seeds(&Clamp, 4, 2, &[2]).is_err());
    }

    #[test]
    fn compile_caps_unbounded_spaces() {
        assert_eq!(
            CompiledProtocol::compile(&Counter, 4, 32).unwrap_err(),
            CompileError::StateSpaceTooLarge { limit: 32 }
        );
        let msg = format!("{}", CompileError::StateSpaceTooLarge { limit: 32 });
        assert!(msg.contains("32"));
    }

    #[test]
    fn probe_fits_matches_compile() {
        assert_eq!(
            probe_state_space(&Absorb, 8, 16, PROBE_EVAL_BUDGET),
            SpaceProbe::Fits(2)
        );
    }

    #[test]
    fn probe_rejects_unbounded_spaces_within_budget() {
        // The counter protocol mints a fresh state on every pair, so the
        // probe reaches its exact TooLarge verdict long before the
        // budget: overflowing a cap of 32 takes ≈ 32 evaluations.
        assert_eq!(
            probe_state_space(&Counter, 4, 32, PROBE_EVAL_BUDGET),
            SpaceProbe::TooLarge
        );
    }

    #[test]
    fn probe_reports_inconclusive_on_budget_exhaustion() {
        // With a 1-evaluation budget even the 2-state protocol cannot
        // close its pair set.
        assert_eq!(
            probe_state_space(&Absorb, 8, 16, 1),
            SpaceProbe::Inconclusive
        );
    }
}
