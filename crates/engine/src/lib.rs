//! Stochastic population-protocol execution engine.
//!
//! Implements the model of Section 2.2 of *Near-Optimal Leader Election in
//! Population Protocols on Graphs* (PODC 2022): a scheduler samples, in
//! every discrete step, an ordered pair of adjacent nodes uniformly at
//! random among all `2m` ordered pairs of a connected interaction graph;
//! the two nodes interact through a state-transition function.
//!
//! * [`Protocol`] — the protocol abstraction (states, transition function,
//!   output map) together with a per-protocol [`StabilityOracle`] that
//!   detects — in O(1) per interaction — the exact step at which the
//!   configuration becomes stable and correct;
//! * [`EdgeScheduler`] — the uniform ordered-pair scheduler;
//! * [`Executor`] — applies a protocol under a scheduler and reports the
//!   stabilization step, the elected leader, and (optionally) a census of
//!   distinct states for space-complexity measurements;
//! * [`CompiledProtocol`] / [`DenseExecutor`] — the ahead-of-time
//!   compiled dense-state core: the reachable state space is enumerated
//!   once into `u16` ids and the full `|Λ|²` transition table
//!   precomputed, so the hot loop is two array reads, one table lookup
//!   and two array writes;
//! * [`LazyDenseExecutor`] — the lazily-compiling dense engine: states
//!   interned into `u32` ids on first sight, pair successors memoized on
//!   first use, which brings protocols whose state spaces overflow the
//!   ahead-of-time cap (the identifier protocol at realistic `k`,
//!   full-scale fast-protocol instances) onto the same dense hot loop;
//! * [`LaneDenseExecutor`] — the opt-in lane-parallel dense engine:
//!   8–16 Monte-Carlo trials of one compiled cell stepped in lockstep
//!   over structure-of-arrays state, per-trial trace-identical to
//!   [`DenseExecutor`] (see [`dense::lanes`] and
//!   [`monte_carlo::run_trials_lanes`]);
//! * [`exhaustive`] — a brute-force reachability checker implementing the
//!   *definition* of stability (every reachable configuration has the same
//!   output) on tiny instances, used to validate the incremental oracles
//!   (with a dense-id fast path for compiled protocols);
//! * [`monte_carlo`] — a multi-threaded harness running many independent
//!   seeded trials, with [`monte_carlo::run_trials_auto`] picking per
//!   workload among the three engines (AOT-compiled → lazy-compiled →
//!   generic) and recording the choice in each trial result;
//! * [`faults`] — fault injection and dynamic graphs: deterministic
//!   [`FaultPlan`] schedules (state corruption, node churn, edge
//!   rewiring) applied identically by both engines, with
//!   recovery-oriented metrics ([`faults::Recovery`]);
//! * [`stabilize`] — self-stabilization workloads: arbitrary start
//!   configurations ([`stabilize::ArbitraryInit`]) sampled per trial,
//!   and elect-then-hold measurement ([`stabilize::HoldingTime`]) that
//!   keeps running past first stabilization to time how long the
//!   unique-leader configuration holds.
//!
//! # Three engines, one contract
//!
//! [`Executor`] is the *reference* implementation: it evaluates
//! [`Protocol::transition`] on typed states every step and works for any
//! protocol, including ones whose state space cannot be enumerated.
//! [`DenseExecutor`] is the *ahead-of-time compiled* implementation used
//! for paper-scale runs (`n` up to 10⁶, billions of steps): it requires
//! a successful [`CompiledProtocol::compile`] — which fails once the BFS
//! closure over the reachable states exceeds the `u16` id space or the
//! requested cap (see [`dense::table`] for when that happens).
//! [`LazyDenseExecutor`] covers the gap between the two: it needs no
//! up-front enumeration (states and transitions are interned/memoized as
//! the execution discovers them), so the protocols the AOT cap excludes
//! still run on dense ids. All three are guaranteed to produce
//! bit-identical traces and [`Outcome`]s for the same protocol, graph
//! and seed. That guarantee is enforced by differential tests; if you
//! add a protocol whose oracle `apply` is not a pure function of the
//! `(old, new)` state pairs, the dense engines' no-op skipping would
//! break it, and the differential test is what will catch it.
//!
//! # Examples
//!
//! A two-state protocol where the initiator absorbs the responder's
//! leadership (stabilizes on cliques, where all leaders stay adjacent):
//!
//! ```
//! use popele_engine::{Executor, LeaderCountOracle, Protocol, Role};
//! use popele_graph::families;
//!
//! #[derive(Clone, Copy)]
//! struct Absorb;
//!
//! impl Protocol for Absorb {
//!     type State = bool; // true = leader
//!     type Oracle = LeaderCountOracle;
//!
//!     fn initial_state(&self, _node: u32) -> bool { true }
//!     fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
//!         if *a && *b { (true, false) } else { (*a, *b) }
//!     }
//!     fn output(&self, s: &bool) -> Role {
//!         if *s { Role::Leader } else { Role::Follower }
//!     }
//!     fn oracle(&self) -> LeaderCountOracle { LeaderCountOracle::new() }
//! }
//!
//! let g = families::clique(20);
//! let mut exec = Executor::new(&g, &Absorb, 7);
//! let outcome = exec.run_until_stable(1_000_000).unwrap();
//! assert_eq!(outcome.leader_count, 1);
//! ```

#![warn(missing_docs)]

mod executor;
mod protocol;
mod scheduler;

pub mod dense;
pub mod exhaustive;
pub mod faults;
pub mod monte_carlo;
pub mod stabilize;

pub use dense::{
    compile_for_count, count_supported, CompileError, CompiledProtocol, CountEngine, DenseExecutor,
    LaneDenseExecutor, LaneOutcome, LazyDenseExecutor, LazyTable, StateId,
    COUNT_MAX_COMPILED_STATES, COUNT_MIN_AGENTS, DEFAULT_MAX_COMPILED_STATES,
};
pub use executor::{Executor, NotStabilized, Outcome};
pub use faults::{FaultEvent, FaultKind, FaultPlan, ResolvedFaultPlan};
pub use monte_carlo::{Engine, EngineSelection};
pub use protocol::{LeaderCountOracle, Protocol, Role, StabilityOracle, EFFECT_OPAQUE};
pub use scheduler::EdgeScheduler;
pub use stabilize::{ArbitraryInit, HoldingTime};
