//! Protocol executor: applies a protocol under the uniform edge scheduler
//! and detects stabilization via the protocol's oracle.

use crate::protocol::{Protocol, Role, StabilityOracle};
use crate::scheduler::EdgeScheduler;
use popele_graph::{Graph, NodeId};
use std::collections::HashSet;
use std::fmt;

/// Result of a stabilized execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Outcome {
    /// The first step `t` at which the configuration was stable and
    /// correct (`0` if the initial configuration already is).
    pub stabilization_step: u64,
    /// Number of leader-output nodes at stabilization (always 1 when the
    /// oracle is correct; reported for auditability).
    pub leader_count: usize,
    /// The elected leader.
    pub leader: Option<NodeId>,
    /// Number of distinct states observed over the whole execution, if the
    /// state census was enabled.
    pub distinct_states: Option<usize>,
}

/// Error: the execution did not stabilize within the step budget.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotStabilized {
    /// The step budget that was exhausted.
    pub max_steps: u64,
}

impl fmt::Display for NotStabilized {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "execution did not stabilize within {} steps",
            self.max_steps
        )
    }
}

impl std::error::Error for NotStabilized {}

/// Runs one execution of a [`Protocol`] on a [`Graph`].
///
/// The executor owns the configuration (`Vec<State>`), the scheduler, and
/// the protocol's stability oracle. See the crate-level docs for an
/// example.
pub struct Executor<'a, P: Protocol> {
    graph: &'a Graph,
    protocol: &'a P,
    scheduler: EdgeScheduler<'a>,
    states: Vec<P::State>,
    oracle: P::Oracle,
    census: Option<HashSet<P::State>>,
}

impl<'a, P: Protocol> Executor<'a, P> {
    /// Creates an executor with every node in its initial state.
    ///
    /// # Panics
    ///
    /// Panics if the graph has no edges.
    #[must_use]
    pub fn new(graph: &'a Graph, protocol: &'a P, seed: u64) -> Self {
        let states: Vec<P::State> = graph.nodes().map(|v| protocol.initial_state(v)).collect();
        let mut oracle = protocol.oracle();
        oracle.recompute(protocol, &states);
        Self {
            graph,
            protocol,
            scheduler: EdgeScheduler::new(graph, seed),
            states,
            oracle,
            census: None,
        }
    }

    /// Enables the distinct-state census (costs one hash per changed state
    /// per step; off by default).
    pub fn enable_state_census(&mut self) {
        let mut set = HashSet::new();
        for s in &self.states {
            set.insert(s.clone());
        }
        self.census = Some(set);
    }

    /// The underlying graph.
    #[must_use]
    pub fn graph(&self) -> &Graph {
        self.graph
    }

    /// Current configuration.
    #[must_use]
    pub fn states(&self) -> &[P::State] {
        &self.states
    }

    /// Steps executed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.scheduler.steps()
    }

    /// Applies one interaction and returns the sampled `(initiator,
    /// responder)` pair.
    pub fn step(&mut self) -> (NodeId, NodeId) {
        let (u, v) = self.scheduler.next_pair();
        let (iu, iv) = (u as usize, v as usize);
        let (new_u, new_v) = self.protocol.transition(&self.states[iu], &self.states[iv]);
        self.oracle.apply(
            self.protocol,
            (&self.states[iu], &self.states[iv]),
            (&new_u, &new_v),
        );
        if let Some(census) = &mut self.census {
            census.insert(new_u.clone());
            census.insert(new_v.clone());
        }
        self.states[iu] = new_u;
        self.states[iv] = new_v;
        (u, v)
    }

    /// Runs exactly `k` interactions.
    pub fn run_steps(&mut self, k: u64) {
        for _ in 0..k {
            self.step();
        }
    }

    /// Runs until the oracle reports a stable, correct configuration or
    /// the step budget is exhausted.
    ///
    /// # Errors
    ///
    /// Returns [`NotStabilized`] if `max_steps` interactions pass without
    /// stabilization.
    pub fn run_until_stable(&mut self, max_steps: u64) -> Result<Outcome, NotStabilized> {
        while !self.oracle.is_stable() {
            if self.steps() >= max_steps {
                return Err(NotStabilized { max_steps });
            }
            self.step();
        }
        Ok(self.outcome())
    }

    /// Runs while the oracle keeps reporting stability, stopping right
    /// after the first interaction that breaks it — the measurement loop
    /// behind holding times of loosely-stabilizing protocols (see
    /// [`crate::stabilize`]). Returns the step at which instability was
    /// first observed (immediately, without stepping, if the current
    /// configuration is already unstable), or `None` if `max_steps`
    /// total interactions passed with stability intact.
    pub fn run_while_stable(&mut self, max_steps: u64) -> Option<u64> {
        while self.oracle.is_stable() {
            if self.steps() >= max_steps {
                return None;
            }
            self.step();
        }
        Some(self.steps())
    }

    /// Whether the oracle currently reports stability.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.oracle.is_stable()
    }

    /// Immutable access to the oracle.
    #[must_use]
    pub fn oracle(&self) -> &P::Oracle {
        &self.oracle
    }

    /// Current number of leader-output nodes (O(n) scan).
    #[must_use]
    pub fn leader_count(&self) -> usize {
        self.states
            .iter()
            .filter(|s| self.protocol.output(s) == Role::Leader)
            .count()
    }

    /// The unique leader if exactly one node outputs leader.
    #[must_use]
    pub fn leader(&self) -> Option<NodeId> {
        let mut found = None;
        for (v, s) in self.states.iter().enumerate() {
            if self.protocol.output(s) == Role::Leader {
                if found.is_some() {
                    return None;
                }
                found = Some(v as NodeId);
            }
        }
        found
    }

    /// Snapshot of the current outcome (regardless of stability).
    #[must_use]
    pub fn outcome(&self) -> Outcome {
        Outcome {
            stabilization_step: self.steps(),
            leader_count: self.leader_count(),
            leader: self.leader(),
            distinct_states: self.census.as_ref().map(HashSet::len),
        }
    }

    /// Resets to the initial configuration with a new seed.
    pub fn reset(&mut self, seed: u64) {
        for (v, s) in self.states.iter_mut().enumerate() {
            *s = self.protocol.initial_state(v as NodeId);
        }
        self.scheduler.reset(seed);
        self.oracle.recompute(self.protocol, &self.states);
        if self.census.is_some() {
            let mut set = HashSet::new();
            for s in &self.states {
                set.insert(s.clone());
            }
            self.census = Some(set);
        }
    }

    /// Overwrites the whole configuration (an *arbitrary* start, in the
    /// self-stabilization sense — see [`crate::stabilize`]): node `v`
    /// takes `states[v]`, the oracle is recomputed, and the census (when
    /// enabled) absorbs the new states. The scheduler's RNG stream is
    /// untouched, so loading the same configuration into every engine at
    /// the same step keeps them trace-identical.
    ///
    /// # Panics
    ///
    /// Panics if `states.len()` differs from the node count.
    pub fn set_configuration(&mut self, states: &[P::State]) {
        assert_eq!(
            states.len(),
            self.states.len(),
            "configuration length must equal the node count"
        );
        self.states.clone_from_slice(states);
        self.oracle.recompute(self.protocol, &self.states);
        if let Some(census) = &mut self.census {
            for s in states {
                census.insert(s.clone());
            }
        }
    }

    // ---- fault-injection primitives (see `crate::faults`) ------------
    //
    // Each primitive perturbs the execution *between* steps: the
    // scheduler's RNG stream continues uninterrupted, so a perturbed run
    // is still one deterministic interaction sequence, and the compiled
    // engine applies the identical perturbation at the identical step.

    /// Rebinds the execution to a graph with the **same node count**
    /// (edge additions/removals/rewirings). States are untouched; the
    /// scheduler keeps its RNG stream and re-ranges over the new edges.
    ///
    /// # Panics
    ///
    /// Panics if the node counts differ or the new graph has no edges.
    pub fn set_graph(&mut self, graph: &'a Graph) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.states.len(),
            "set_graph requires an equal node count (use join_node/leave_node)"
        );
        self.graph = graph;
        self.scheduler.set_graph(graph);
    }

    /// Rebinds to a graph with **one more node**: the new node is
    /// `n` (the old node count) and starts in its initial state.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not have exactly one extra node.
    pub fn join_node(&mut self, graph: &'a Graph) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.states.len() + 1,
            "join_node requires exactly one extra node"
        );
        let s = self.protocol.initial_state(self.states.len() as NodeId);
        if let Some(census) = &mut self.census {
            census.insert(s.clone());
        }
        self.states.push(s);
        self.graph = graph;
        self.scheduler.set_graph(graph);
        self.oracle.recompute(self.protocol, &self.states);
    }

    /// Rebinds to a graph with **one less node**: node `removed` leaves
    /// and the last node (`n − 1`) is relabelled to `removed` to keep
    /// ids dense — `graph` must already use that relabelling.
    ///
    /// # Panics
    ///
    /// Panics if `graph` does not have exactly one node less or
    /// `removed` is out of range.
    pub fn leave_node(&mut self, graph: &'a Graph, removed: NodeId) {
        assert_eq!(
            graph.num_nodes() as usize,
            self.states.len() - 1,
            "leave_node requires exactly one node less"
        );
        self.states.swap_remove(removed as usize);
        self.graph = graph;
        self.scheduler.set_graph(graph);
        self.oracle.recompute(self.protocol, &self.states);
    }

    /// State corruption: resets node `v` to its initial state (a crash
    /// followed by a clean rejoin), leaving all other nodes untouched.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    pub fn corrupt_to_initial(&mut self, v: NodeId) {
        let s = self.protocol.initial_state(v);
        if let Some(census) = &mut self.census {
            census.insert(s.clone());
        }
        self.states[v as usize] = s;
        self.oracle.recompute(self.protocol, &self.states);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::LeaderCountOracle;
    use popele_graph::families;

    /// Initiator absorbs the responder's leadership.
    #[derive(Clone, Copy)]
    struct Absorb;

    impl Protocol for Absorb {
        type State = bool;
        type Oracle = LeaderCountOracle;

        fn initial_state(&self, _node: NodeId) -> bool {
            true
        }

        fn transition(&self, a: &bool, b: &bool) -> (bool, bool) {
            if *a && *b {
                (true, false)
            } else {
                (*a, *b)
            }
        }

        fn output(&self, s: &bool) -> Role {
            if *s {
                Role::Leader
            } else {
                Role::Follower
            }
        }

        fn oracle(&self) -> LeaderCountOracle {
            LeaderCountOracle::new()
        }

        fn state_space_bound(&self) -> Option<u64> {
            Some(2)
        }
    }

    #[test]
    fn absorb_stabilizes_on_clique() {
        let g = families::clique(16);
        let mut exec = Executor::new(&g, &Absorb, 5);
        let out = exec.run_until_stable(1_000_000).unwrap();
        assert_eq!(out.leader_count, 1);
        assert!(out.leader.is_some());
        assert!(out.stabilization_step > 0);
        assert!(exec.is_stable());
    }

    #[test]
    fn absorb_stabilizes_on_larger_clique() {
        // Absorb only merges *adjacent* leaders, so it stabilizes on
        // cliques (where all pairs are adjacent) but can deadlock on
        // sparse graphs — hence clique-only engine tests.
        let g = families::clique(40);
        let mut exec = Executor::new(&g, &Absorb, 6);
        let out = exec.run_until_stable(10_000_000).unwrap();
        assert_eq!(out.leader_count, 1);
    }

    #[test]
    fn budget_exhaustion_reported() {
        let g = families::clique(30);
        let mut exec = Executor::new(&g, &Absorb, 5);
        let err = exec.run_until_stable(1).unwrap_err();
        assert_eq!(err, NotStabilized { max_steps: 1 });
        assert!(format!("{err}").contains("did not stabilize"));
    }

    #[test]
    fn deterministic_outcome_per_seed() {
        let g = families::clique(16);
        let out1 = Executor::new(&g, &Absorb, 77)
            .run_until_stable(1 << 24)
            .unwrap();
        let out2 = Executor::new(&g, &Absorb, 77)
            .run_until_stable(1 << 24)
            .unwrap();
        assert_eq!(out1, out2);
    }

    #[test]
    fn census_counts_states() {
        let g = families::clique(8);
        let mut exec = Executor::new(&g, &Absorb, 1);
        exec.enable_state_census();
        let out = exec.run_until_stable(1 << 20).unwrap();
        assert_eq!(out.distinct_states, Some(2));
    }

    #[test]
    fn reset_restores_initial_configuration() {
        let g = families::clique(8);
        let mut exec = Executor::new(&g, &Absorb, 1);
        exec.run_until_stable(1 << 20).unwrap();
        assert_eq!(exec.leader_count(), 1);
        exec.reset(2);
        assert_eq!(exec.steps(), 0);
        assert_eq!(exec.leader_count(), 8);
        let out = exec.run_until_stable(1 << 20).unwrap();
        assert_eq!(out.leader_count, 1);
    }

    #[test]
    fn leader_helper_finds_unique() {
        let g = families::clique(4);
        let mut exec = Executor::new(&g, &Absorb, 3);
        assert_eq!(exec.leader(), None); // four leaders initially
        exec.run_until_stable(1 << 20).unwrap();
        let leader = exec.leader().unwrap();
        assert!(exec.states()[leader as usize]);
    }

    #[test]
    fn single_node_with_edgeless_graph_panics() {
        // Executor requires at least one edge (the scheduler cannot run).
        let g = popele_graph::Graph::from_edges(1, &[]).unwrap();
        let result = std::panic::catch_unwind(|| Executor::new(&g, &Absorb, 0));
        assert!(result.is_err());
    }

    #[test]
    fn step_returns_sampled_pair() {
        let g = families::cycle(5);
        let mut exec = Executor::new(&g, &Absorb, 9);
        for _ in 0..100 {
            let (u, v) = exec.step();
            assert!(g.has_edge(u, v));
        }
        assert_eq!(exec.steps(), 100);
    }
}
