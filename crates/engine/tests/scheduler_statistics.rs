//! Statistical validation of the scheduler against the model's exact
//! predictions (Section 2.2 of the paper).

use popele_engine::EdgeScheduler;
use popele_graph::{families, random};
use popele_math::rng::SeedSeq;
use popele_math::stats::Welford;

/// Per-node interaction rate is `deg(v)/m` per step: on a star, the
/// centre is in every interaction and each leaf in `1/m` of them.
#[test]
fn interaction_rate_proportional_to_degree() {
    let g = families::star(21); // centre degree 20, m = 20
    let mut sched = EdgeScheduler::new(&g, 5);
    let steps = 100_000u32;
    let mut hits = [0u32; 21];
    for _ in 0..steps {
        let (u, v) = sched.next_pair();
        hits[u as usize] += 1;
        hits[v as usize] += 1;
    }
    assert_eq!(hits[0], steps, "the centre participates in every step");
    for (leaf, &h) in hits.iter().enumerate().skip(1) {
        let rate = f64::from(h) / f64::from(steps);
        assert!(
            (rate - 0.05).abs() < 0.01,
            "leaf {leaf} rate {rate}, expected deg/m = 1/20"
        );
    }
}

/// Each participant is initiator in exactly half of its interactions.
#[test]
fn roles_are_fair_coin_flips() {
    let g = random::erdos_renyi_connected(30, 0.3, 7, 100);
    let mut sched = EdgeScheduler::new(&g, 9);
    let mut initiated = [0u32; 30];
    let mut participated = [0u32; 30];
    for _ in 0..200_000 {
        let (u, v) = sched.next_pair();
        initiated[u as usize] += 1;
        participated[u as usize] += 1;
        participated[v as usize] += 1;
    }
    for v in 0..30 {
        let frac = f64::from(initiated[v]) / f64::from(participated[v]);
        assert!(
            (frac - 0.5).abs() < 0.02,
            "node {v} initiator fraction {frac}"
        );
    }
}

/// Lemma 5: the expected number of steps until a fixed sequence of `k`
/// edges is sampled *in order* is exactly `k·m`.
#[test]
fn edge_sequence_expectation_is_km() {
    let g = families::cycle(12); // m = 12
    let seq = SeedSeq::new(11);
    // The path 0-1-2-3 as an ordered edge sequence of length 3.
    let rho = [(0u32, 1u32), (1, 2), (2, 3)];
    let trials = 3000;
    let mut w = Welford::new();
    for t in 0..trials {
        let mut sched = EdgeScheduler::new(&g, seq.child(t));
        let mut next = 0usize;
        loop {
            let (u, v) = sched.next_pair();
            let (a, b) = (u.min(v), u.max(v));
            if (a, b) == rho[next] {
                next += 1;
                if next == rho.len() {
                    break;
                }
            }
            assert!(sched.steps() < 1_000_000, "runaway sampling");
        }
        w.push(sched.steps() as f64);
    }
    let expected = 3.0 * 12.0;
    assert!(
        (w.mean() - expected).abs() < 0.05 * expected,
        "E[X(ρ)] measured {} vs k·m = {expected}",
        w.mean()
    );
}

/// Waiting time for a *specific ordered pair* is geometric with mean 2m.
#[test]
fn ordered_pair_waiting_time() {
    let g = families::clique(6); // m = 15, 30 ordered pairs
    let seq = SeedSeq::new(13);
    let trials = 4000;
    let mut w = Welford::new();
    for t in 0..trials {
        let mut sched = EdgeScheduler::new(&g, seq.child(t));
        loop {
            if sched.next_pair() == (2, 4) {
                break;
            }
        }
        w.push(sched.steps() as f64);
    }
    assert!(
        (w.mean() - 30.0).abs() < 1.5,
        "mean waiting time {} vs 2m = 30",
        w.mean()
    );
}

/// Different seeds give (near-)independent schedules: the first 32 pairs
/// of two seeds differ somewhere.
#[test]
fn seeds_decorrelate_schedules() {
    let g = families::torus(5, 5);
    let collect = |seed: u64| -> Vec<(u32, u32)> {
        let mut s = EdgeScheduler::new(&g, seed);
        (0..32).map(|_| s.next_pair()).collect()
    };
    let a = collect(1);
    for seed in 2..12 {
        assert_ne!(a, collect(seed), "seed {seed} collided with seed 1");
    }
}
