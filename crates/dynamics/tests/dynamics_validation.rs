//! Cross-validation of the dynamics implementations against exact
//! values, brute-force re-implementations, and the paper's asymptotic
//! claims at small scale.

use popele_dynamics::broadcast::{
    broadcast_time_from, estimate_broadcast_time, BroadcastConfig, SourceStrategy,
};
use popele_dynamics::influence::InfluenceTracker;
use popele_dynamics::walks::{
    classic_hitting_times, population_hitting_times, simulate_population_hitting,
};
use popele_engine::EdgeScheduler;
use popele_graph::{families, random};
use popele_math::rng::SeedSeq;
use popele_math::stats::Welford;
use std::collections::HashSet;

/// On a single edge (K2) broadcast completes at the first interaction.
#[test]
fn broadcast_on_single_edge_is_one_step() {
    let g = families::clique(2);
    for seed in 0..20 {
        assert_eq!(broadcast_time_from(&g, 0, seed), 1);
    }
}

/// Broadcast from a star centre is a coupon collector over the leaves:
/// E[T] = m·H_{n−1} exactly (each step informs a uniform leaf).
#[test]
fn star_centre_broadcast_is_coupon_collector() {
    let n = 20u32;
    let g = families::star(n);
    let m = g.num_edges() as f64;
    let seq = SeedSeq::new(3);
    let mut w = Welford::new();
    for t in 0..2000 {
        w.push(broadcast_time_from(&g, 0, seq.child(t)) as f64);
    }
    let harmonic: f64 = (1..n as u64).map(|i| 1.0 / i as f64).sum();
    let expected = m * harmonic;
    assert!(
        (w.mean() - expected).abs() < 0.05 * expected,
        "measured {} vs m·H_{{n−1}} = {expected}",
        w.mean()
    );
}

/// The influence tracker agrees with a brute-force set implementation on
/// a shared schedule.
#[test]
fn influence_tracker_matches_naive_sets() {
    let g = random::erdos_renyi_connected(24, 0.3, 5, 100);
    let mut sched = EdgeScheduler::new(&g, 7);
    let n = g.num_nodes() as usize;
    let mut tracker = InfluenceTracker::new(g.num_nodes());
    let mut naive: Vec<HashSet<u32>> = (0..n as u32).map(|v| HashSet::from([v])).collect();
    for _ in 0..600 {
        let (u, v) = sched.next_pair();
        tracker.interact(u, v);
        let union: HashSet<u32> = naive[u as usize]
            .union(&naive[v as usize])
            .copied()
            .collect();
        naive[u as usize] = union.clone();
        naive[v as usize] = union;
        for w in 0..n as u32 {
            assert_eq!(
                tracker.influence_size(w) as usize,
                naive[w as usize].len(),
                "size mismatch at node {w}"
            );
            for x in 0..n as u32 {
                assert_eq!(
                    tracker.is_influencer(x, w),
                    naive[w as usize].contains(&x),
                    "membership mismatch ({x} in I({w}))"
                );
            }
        }
    }
}

/// Simulated population hitting times agree with the exact linear solve
/// on an irregular graph (where the classic and population walks differ
/// by more than a constant factor).
#[test]
fn simulated_hitting_matches_exact_on_lollipop() {
    let g = families::lollipop(5, 4);
    let exact = population_hitting_times(&g, 8); // tip of the path
    let seq = SeedSeq::new(17);
    let mut w = Welford::new();
    for t in 0..800 {
        w.push(simulate_population_hitting(&g, 0, 8, seq.child(t)) as f64);
    }
    let e = exact[0];
    assert!(
        (w.mean() - e).abs() < 0.1 * e,
        "simulated {} vs exact {e}",
        w.mean()
    );
}

/// Population hitting times dominate classic hitting times node-by-node
/// (the population walk only moves when its edge is drawn).
#[test]
fn population_slower_than_classic_everywhere() {
    for g in [
        families::cycle(12),
        families::star(12),
        families::lollipop(6, 6),
        random::erdos_renyi_connected(16, 0.4, 9, 100),
    ] {
        let classic = classic_hitting_times(&g, 0);
        let population = population_hitting_times(&g, 0);
        for v in 1..g.num_nodes() {
            assert!(
                population[v as usize] >= classic[v as usize],
                "node {v} on {g}"
            );
        }
    }
}

/// Lemma 11: on dense G(n, ½), B(G) is O(n log n) — the ratio stays
/// bounded across a size sweep.
#[test]
fn dense_gnp_broadcast_quasilinear() {
    let seq = SeedSeq::new(23);
    let mut ratios = Vec::new();
    for (i, n) in [32u32, 64, 128].into_iter().enumerate() {
        let g = random::erdos_renyi_connected(n, 0.5, seq.child(i as u64), 100);
        let est = estimate_broadcast_time(
            &g,
            seq.child(100 + i as u64),
            &BroadcastConfig {
                sources: SourceStrategy::Heuristic(2),
                trials_per_source: 6,
                threads: 1,
            },
        );
        ratios.push(est.b_estimate / (f64::from(n) * f64::from(n).ln()));
    }
    for r in &ratios {
        assert!(*r < 4.0, "B/(n ln n) = {r} too large for dense G(n,p)");
        assert!(*r > 0.2, "B/(n ln n) = {r} implausibly small");
    }
}

/// Monotonicity: broadcast time from the worst source upper-bounds the
/// per-source means reported by the estimator.
#[test]
fn estimator_max_is_max_of_sources() {
    let g = families::lollipop(8, 8);
    let est = estimate_broadcast_time(
        &g,
        3,
        &BroadcastConfig {
            sources: SourceStrategy::All,
            trials_per_source: 4,
            threads: 2,
        },
    );
    let max_mean = est
        .per_source
        .iter()
        .map(|(_, s)| s.mean())
        .fold(0.0f64, f64::max);
    assert_eq!(est.b_estimate, max_mean);
    assert!(est
        .per_source
        .iter()
        .any(|&(src, _)| src == est.worst_source));
}
