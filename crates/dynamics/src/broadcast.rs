//! One-way epidemics: broadcast and propagation times (Section 3.2).
//!
//! The infection process: a source node holds a message; whenever the
//! scheduler samples a pair with exactly one informed endpoint, the other
//! endpoint becomes informed. `T(v)` is the step at which all nodes are
//! informed, and `B(G) = max_v E[T(v)]` is the worst-case expected
//! broadcast time — the quantity parameterizing the paper's upper bounds.

use popele_engine::EdgeScheduler;
use popele_graph::traversal::bfs_distances;
use popele_graph::{Graph, NodeId};
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Simulates one epidemic from `source` and returns `T(source)` for the
/// sampled schedule: the number of steps until all nodes are informed.
///
/// # Panics
///
/// Panics if the graph is disconnected (the epidemic would never finish)
/// or `source` is out of range.
#[must_use]
pub fn broadcast_time_from(g: &Graph, source: NodeId, seed: u64) -> u64 {
    assert!(source < g.num_nodes(), "source out of range");
    let n = g.num_nodes() as usize;
    let mut informed = vec![false; n];
    informed[source as usize] = true;
    let mut count = 1usize;
    let mut sched = EdgeScheduler::new(g, seed);
    // Disconnection guard: the expected completion time is far below
    // n·m·(1 + ln n); bail out at a generous multiple.
    let guard =
        1000 * (g.num_edges() as u64) * (n as u64 + 64) * (1 + (n as f64).ln().ceil() as u64);
    while count < n {
        let (u, v) = sched.next_pair();
        let (iu, iv) = (u as usize, v as usize);
        if informed[iu] != informed[iv] {
            informed[iu] = true;
            informed[iv] = true;
            count += 1;
        }
        assert!(
            sched.steps() < guard,
            "epidemic did not finish; is the graph connected?"
        );
    }
    sched.steps()
}

/// Simulates one epidemic from `source` and returns the first step at
/// which a node at BFS distance exactly `k` from `source` is informed
/// (the distance-`k` propagation time `T_k(source)` of Section 3.2).
///
/// Returns `None` if no node is at distance `k`.
///
/// # Panics
///
/// Panics if `source` is out of range or the graph is disconnected.
#[must_use]
pub fn propagation_time(g: &Graph, source: NodeId, k: u32, seed: u64) -> Option<u64> {
    assert!(source < g.num_nodes(), "source out of range");
    let dist = bfs_distances(g, source);
    if !dist.contains(&k) {
        return None;
    }
    if k == 0 {
        return Some(0);
    }
    let n = g.num_nodes() as usize;
    let mut informed = vec![false; n];
    informed[source as usize] = true;
    let mut sched = EdgeScheduler::new(g, seed);
    let guard =
        1000 * (g.num_edges() as u64) * (n as u64 + 64) * (1 + (n as f64).ln().ceil() as u64);
    loop {
        let (u, v) = sched.next_pair();
        let (iu, iv) = (u as usize, v as usize);
        if informed[iu] != informed[iv] {
            let newly = if informed[iu] { iv } else { iu };
            informed[iu] = true;
            informed[iv] = true;
            if dist[newly] == k {
                return Some(sched.steps());
            }
        }
        assert!(
            sched.steps() < guard,
            "propagation did not reach distance {k}; is the graph connected?"
        );
    }
}

/// How sources are chosen when estimating `B(G)`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SourceStrategy {
    /// Use every node as a source (exact maximization; `O(n)` sources).
    All,
    /// Use the listed nodes.
    Explicit(Vec<NodeId>),
    /// Use extremal-degree nodes plus evenly spaced ids, up to the count.
    ///
    /// In the population model low-degree nodes interact rarely, so the
    /// worst-case source is typically a minimum-degree node; including a
    /// spread of ids guards against asymmetric graphs.
    Heuristic(usize),
}

/// Options for [`estimate_broadcast_time`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BroadcastConfig {
    /// Source-selection strategy.
    pub sources: SourceStrategy,
    /// Epidemics simulated per source.
    pub trials_per_source: usize,
    /// Worker threads; `0` = one per core.
    pub threads: usize,
}

impl Default for BroadcastConfig {
    fn default() -> Self {
        Self {
            sources: SourceStrategy::Heuristic(8),
            trials_per_source: 8,
            threads: 0,
        }
    }
}

/// Monte-Carlo estimate of the worst-case expected broadcast time `B(G)`.
#[derive(Debug, Clone, PartialEq)]
pub struct BroadcastEstimate {
    /// `max_v mean(T(v))` over the evaluated sources — the `B(G)` estimate.
    pub b_estimate: f64,
    /// The source attaining the maximum.
    pub worst_source: NodeId,
    /// Per-source summaries `(source, summary of T(source))`.
    pub per_source: Vec<(NodeId, Summary)>,
}

/// Estimates `B(G) = max_v E[T(v)]` by simulating epidemics from a set of
/// sources.
///
/// # Panics
///
/// Panics if the graph is disconnected, a source is out of range, or
/// `trials_per_source == 0`.
#[must_use]
pub fn estimate_broadcast_time(
    g: &Graph,
    master_seed: u64,
    config: &BroadcastConfig,
) -> BroadcastEstimate {
    assert!(config.trials_per_source > 0, "need at least one trial");
    let sources: Vec<NodeId> = match &config.sources {
        SourceStrategy::All => g.nodes().collect(),
        SourceStrategy::Explicit(list) => {
            assert!(!list.is_empty(), "explicit source list must be nonempty");
            list.clone()
        }
        SourceStrategy::Heuristic(count) => heuristic_sources(g, *count),
    };
    let seq = SeedSeq::new(master_seed);

    let threads = if config.threads == 0 {
        std::thread::available_parallelism().map_or(1, usize::from)
    } else {
        config.threads
    };
    let threads = threads.min(sources.len());

    let evaluate = |idx: usize| -> (NodeId, Summary) {
        let src = sources[idx];
        let child = SeedSeq::new(seq.child(idx as u64));
        let summary: Summary = (0..config.trials_per_source)
            .map(|t| broadcast_time_from(g, src, child.child(t as u64)) as f64)
            .collect();
        (src, summary)
    };

    let per_source: Vec<(NodeId, Summary)> = if threads <= 1 {
        (0..sources.len()).map(evaluate).collect()
    } else {
        let next = AtomicUsize::new(0);
        let results: Vec<Mutex<Option<(NodeId, Summary)>>> =
            (0..sources.len()).map(|_| Mutex::new(None)).collect();
        std::thread::scope(|scope| {
            for _ in 0..threads {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, Ordering::Relaxed);
                    if idx >= sources.len() {
                        break;
                    }
                    let r = evaluate(idx);
                    *results[idx].lock().expect("result slot poisoned") = Some(r);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("result slot poisoned")
                    .expect("all sources evaluated")
            })
            .collect()
    };

    let (worst_source, best) = per_source
        .iter()
        .map(|(src, s)| (*src, s.mean()))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("no NaN"))
        .expect("at least one source");
    BroadcastEstimate {
        b_estimate: best,
        worst_source,
        per_source: per_source.clone(),
    }
}

fn heuristic_sources(g: &Graph, count: usize) -> Vec<NodeId> {
    let count = count.clamp(1, g.num_nodes() as usize);
    let mut sources = Vec::with_capacity(count + 2);
    let min_deg_node = g
        .nodes()
        .min_by_key(|&v| g.degree(v))
        .expect("nonempty graph");
    let max_deg_node = g
        .nodes()
        .max_by_key(|&v| g.degree(v))
        .expect("nonempty graph");
    sources.push(min_deg_node);
    sources.push(max_deg_node);
    let n = g.num_nodes();
    for i in 0..count {
        sources.push(((i as u64 * u64::from(n)) / count as u64) as NodeId);
    }
    sources.sort_unstable();
    sources.dedup();
    sources
}

/// Lemma 8 upper bound: `B(G) ≤ m·max(6 ln n, D) + 2`.
#[must_use]
pub fn upper_bound_diameter(m: usize, n: u32, diameter: u32) -> f64 {
    let ln_n = f64::from(n).ln();
    m as f64 * (6.0 * ln_n).max(f64::from(diameter)) + 2.0
}

/// Lemma 10 upper bound: `B(G) ≤ 2·λ₀·m·log n / β + 2` with the smallest
/// admissible constant `λ₀ = 2`.
///
/// # Panics
///
/// Panics if `beta <= 0`.
#[must_use]
pub fn upper_bound_expansion(m: usize, n: u32, beta: f64) -> f64 {
    assert!(beta > 0.0, "edge expansion must be positive");
    let lambda0 = 2.0;
    2.0 * lambda0 * m as f64 * f64::from(n).ln() / beta + 2.0
}

/// Theorem 6 combined upper bound:
/// `B(G) ∈ O(m·min(log n / β, log n + D))`, evaluated with the explicit
/// constants of Lemmas 8 and 10.
#[must_use]
pub fn upper_bound_theorem6(m: usize, n: u32, diameter: u32, beta: f64) -> f64 {
    let by_diameter = upper_bound_diameter(m, n, diameter);
    if beta > 0.0 {
        by_diameter.min(upper_bound_expansion(m, n, beta))
    } else {
        by_diameter
    }
}

/// Lemma 12 lower bound: `B(G) ≥ (m/Δ)·ln(n−1)`.
///
/// # Panics
///
/// Panics if `max_degree == 0` or `n < 2`.
#[must_use]
pub fn lower_bound_degree(m: usize, n: u32, max_degree: u32) -> f64 {
    assert!(max_degree > 0 && n >= 2);
    m as f64 / f64::from(max_degree) * f64::from(n - 1).ln()
}

/// Lemma 14 threshold: with probability ≥ 1 − 1/n, propagation to distance
/// `k ≥ ln n` takes at least `k·m/(Δ·e³)` steps.
#[must_use]
pub fn lemma14_threshold(k: u32, m: usize, max_degree: u32) -> f64 {
    f64::from(k) * m as f64 / (f64::from(max_degree) * std::f64::consts::E.powi(3))
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_graph::families;
    use popele_graph::properties::diameter;

    #[test]
    fn broadcast_reaches_everyone() {
        let g = families::cycle(16);
        let t = broadcast_time_from(&g, 0, 1);
        // Information must traverse at least ⌈n/2⌉ hops; each hop needs
        // ≥ 1 step, and every node interacts.
        assert!(t >= 15);
    }

    #[test]
    fn broadcast_deterministic_per_seed() {
        let g = families::torus(4, 4);
        assert_eq!(broadcast_time_from(&g, 3, 9), broadcast_time_from(&g, 3, 9));
    }

    #[test]
    #[should_panic(expected = "connected")]
    fn broadcast_detects_disconnected() {
        let g = popele_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let _ = broadcast_time_from(&g, 0, 0);
    }

    #[test]
    fn propagation_time_monotone_in_k() {
        let g = families::path(20);
        let t5 = propagation_time(&g, 0, 5, 7).unwrap();
        let t15 = propagation_time(&g, 0, 15, 7).unwrap();
        assert!(t5 <= t15, "t5={t5} t15={t15}");
        assert_eq!(propagation_time(&g, 0, 0, 7), Some(0));
        assert_eq!(propagation_time(&g, 0, 25, 7), None);
    }

    #[test]
    fn estimate_on_clique_matches_coupon_collector_scale() {
        // On K_n broadcast is Θ(n log n); for n = 24, roughly
        // n·H_{n-1} ≈ 24·3.7 ≈ 90 steps. Check the estimate is in a broad
        // envelope around that.
        let g = families::clique(24);
        let est = estimate_broadcast_time(
            &g,
            5,
            &BroadcastConfig {
                sources: SourceStrategy::Explicit(vec![0]),
                trials_per_source: 40,
                threads: 1,
            },
        );
        assert!(est.b_estimate > 40.0, "estimate {}", est.b_estimate);
        assert!(est.b_estimate < 300.0, "estimate {}", est.b_estimate);
    }

    #[test]
    fn estimate_respects_bounds_on_cycle() {
        let g = families::cycle(32);
        let est = estimate_broadcast_time(
            &g,
            11,
            &BroadcastConfig {
                sources: SourceStrategy::Heuristic(4),
                trials_per_source: 10,
                threads: 2,
            },
        );
        let d = diameter(&g);
        let upper = upper_bound_diameter(g.num_edges(), g.num_nodes(), d);
        let lower = lower_bound_degree(g.num_edges(), g.num_nodes(), g.max_degree());
        assert!(est.b_estimate <= upper, "{} > {}", est.b_estimate, upper);
        assert!(
            est.b_estimate >= lower * 0.5,
            "{} < {}",
            est.b_estimate,
            lower
        );
    }

    #[test]
    fn estimate_parallel_matches_sequential() {
        let g = families::clique(12);
        let cfg = |threads| BroadcastConfig {
            sources: SourceStrategy::Explicit(vec![0, 5]),
            trials_per_source: 4,
            threads,
        };
        let a = estimate_broadcast_time(&g, 3, &cfg(1));
        let b = estimate_broadcast_time(&g, 3, &cfg(4));
        assert_eq!(a, b);
    }

    #[test]
    fn heuristic_sources_include_extremes() {
        let g = families::star(20);
        let sources = heuristic_sources(&g, 4);
        assert!(sources.contains(&0), "max-degree centre included");
        assert!(sources.len() >= 2);
        assert!(sources.iter().all(|&s| s < 20));
    }

    #[test]
    fn theorem6_picks_smaller_bound() {
        // Clique: expansion bound wins by far.
        let both = upper_bound_theorem6(435, 30, 1, 15.0);
        assert!(both <= upper_bound_diameter(435, 30, 1));
        assert!(both <= upper_bound_expansion(435, 30, 15.0));
        // β = 0 falls back to the diameter bound.
        assert_eq!(
            upper_bound_theorem6(10, 5, 2, 0.0),
            upper_bound_diameter(10, 5, 2)
        );
    }

    #[test]
    fn lemma14_threshold_scales_linearly_in_k() {
        let a = lemma14_threshold(10, 100, 2);
        let b = lemma14_threshold(20, 100, 2);
        assert!((b / a - 2.0).abs() < 1e-12);
    }
}
