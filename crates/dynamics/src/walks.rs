//! Random walks: classic and population-model variants (Section 4.1).
//!
//! In the **classic** random walk, the walk at node `u` moves to a uniform
//! neighbour each step. In the **population-model** walk, the scheduler
//! samples an edge each step and the walk moves only if the sampled edge is
//! incident to its position — so a walk at a degree-`d` node moves with
//! probability `d/m` per step.
//!
//! Both walks have hitting times that solve a linear system; we compute
//! them exactly with Gaussian elimination for small graphs, and by
//! simulation for large ones. The token-based protocol of Theorem 16
//! stabilizes in `O(H(G)·n·log n)` steps where `H(G)` is the classic
//! worst-case hitting time; Lemma 17 relates the two models via
//! `H_P(G) ≤ 27·n·H(G)`.

use popele_engine::EdgeScheduler;
use popele_graph::{Graph, NodeId};
use popele_math::linalg::Matrix;
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;
use rand::Rng;

/// Exact expected hitting times `H(u, target)` of the **classic** random
/// walk, for every start `u`, by solving `(I − P_{-target}) h = 1`.
///
/// # Panics
///
/// Panics if the graph is disconnected, `target` out of range, or
/// `n > 500` (dense solve would be slow).
#[must_use]
pub fn classic_hitting_times(g: &Graph, target: NodeId) -> Vec<f64> {
    hitting_times_impl(g, target, WalkModel::Classic)
}

/// Exact expected hitting times of the **population-model** walk.
///
/// The walk at `u` stays put with probability `1 − deg(u)/m` and moves to
/// each neighbour with probability `1/m`; eliminating the self-loop gives
/// `h(u) = m/deg(u) + mean_{w ∈ N(u)} h(w)`.
///
/// # Panics
///
/// As [`classic_hitting_times`].
#[must_use]
pub fn population_hitting_times(g: &Graph, target: NodeId) -> Vec<f64> {
    hitting_times_impl(g, target, WalkModel::Population)
}

/// Which random-walk dynamics to use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WalkModel {
    /// Move to a uniform neighbour each step.
    Classic,
    /// Move only when the scheduler samples an incident edge.
    Population,
}

fn hitting_times_impl(g: &Graph, target: NodeId, model: WalkModel) -> Vec<f64> {
    assert!(target < g.num_nodes(), "target out of range");
    let n = g.num_nodes() as usize;
    assert!(n <= 500, "exact hitting times limited to n ≤ 500");
    assert!(
        popele_graph::properties::is_connected(g),
        "hitting times need a connected graph"
    );
    if n == 1 {
        return vec![0.0];
    }
    // Unknowns: h(u) for u != target, indexed by skipping target.
    let index = |u: usize| -> usize {
        if u < target as usize {
            u
        } else {
            u - 1
        }
    };
    let mut a = Matrix::zeros(n - 1, n - 1);
    let mut b = vec![0.0; n - 1];
    let m = g.num_edges() as f64;
    for u in 0..n {
        if u == target as usize {
            continue;
        }
        let row = index(u);
        let deg = f64::from(g.degree(u as NodeId));
        a[(row, row)] = 1.0;
        // h(u) = c_u + (1/deg) Σ_{w ∈ N(u)} h(w), with h(target) = 0.
        b[row] = match model {
            WalkModel::Classic => 1.0,
            WalkModel::Population => m / deg,
        };
        for &w in g.neighbors(u as NodeId) {
            if w == target {
                continue;
            }
            a[(row, index(w as usize))] -= 1.0 / deg;
        }
    }
    let h = a.solve(&b).expect("hitting-time system is nonsingular");
    // Re-insert the target with hitting time 0.
    let mut out = Vec::with_capacity(n);
    for u in 0..n {
        if u == target as usize {
            out.push(0.0);
        } else {
            out.push(h[index(u)]);
        }
    }
    out
}

/// Worst-case expected hitting time `H(G) = max_{u,v} H(u, v)` of the
/// classic walk (`n` linear solves).
///
/// # Panics
///
/// As [`classic_hitting_times`].
#[must_use]
pub fn classic_worst_hitting(g: &Graph) -> f64 {
    worst_hitting(g, WalkModel::Classic)
}

/// Worst-case expected hitting time `H_P(G)` of the population-model walk.
///
/// # Panics
///
/// As [`classic_hitting_times`].
#[must_use]
pub fn population_worst_hitting(g: &Graph) -> f64 {
    worst_hitting(g, WalkModel::Population)
}

fn worst_hitting(g: &Graph, model: WalkModel) -> f64 {
    let mut worst = 0.0f64;
    for target in g.nodes() {
        let h = hitting_times_impl(g, target, model);
        for v in h {
            worst = worst.max(v);
        }
    }
    worst
}

/// Simulates the population-model walk from `start` until it first reaches
/// `target`; returns the number of scheduler steps.
///
/// # Panics
///
/// Panics if endpoints are out of range or the walk runs `10⁹` steps
/// without hitting (disconnected graph).
#[must_use]
pub fn simulate_population_hitting(g: &Graph, start: NodeId, target: NodeId, seed: u64) -> u64 {
    assert!(start < g.num_nodes() && target < g.num_nodes());
    if start == target {
        return 0;
    }
    let mut sched = EdgeScheduler::new(g, seed);
    let mut pos = start;
    loop {
        let (u, v) = sched.next_pair();
        if u == pos {
            pos = v;
        } else if v == pos {
            pos = u;
        }
        if pos == target {
            return sched.steps();
        }
        assert!(sched.steps() < 1_000_000_000, "walk did not hit target");
    }
}

/// Simulates the classic random walk from `start` until it reaches
/// `target`; returns the number of walk steps.
///
/// # Panics
///
/// As [`simulate_population_hitting`].
#[must_use]
pub fn simulate_classic_hitting(g: &Graph, start: NodeId, target: NodeId, seed: u64) -> u64 {
    assert!(start < g.num_nodes() && target < g.num_nodes());
    if start == target {
        return 0;
    }
    let mut rng = popele_math::rng::small_rng(seed);
    let mut pos = start;
    let mut steps = 0u64;
    loop {
        let nbrs = g.neighbors(pos);
        assert!(!nbrs.is_empty(), "walk stuck at isolated node");
        pos = nbrs[rng.random_range(0..nbrs.len())];
        steps += 1;
        if pos == target {
            return steps;
        }
        assert!(steps < 1_000_000_000, "walk did not hit target");
    }
}

/// Simulates two population-model walks started at `a` and `b` until they
/// **meet**: the scheduler samples the edge whose endpoints are exactly
/// their current positions (the meeting notion of Section 4.1). Returns
/// the meeting step.
///
/// # Panics
///
/// Panics if endpoints are out of range, equal, or no meeting occurs in
/// `10⁹` steps.
#[must_use]
pub fn simulate_meeting_time(g: &Graph, a: NodeId, b: NodeId, seed: u64) -> u64 {
    assert!(a < g.num_nodes() && b < g.num_nodes());
    assert_ne!(a, b, "meeting time needs distinct walks");
    let mut sched = EdgeScheduler::new(g, seed);
    let (mut pa, mut pb) = (a, b);
    loop {
        let (u, v) = sched.next_pair();
        // Meeting: sampled edge connects the two walks' positions.
        if (u == pa && v == pb) || (u == pb && v == pa) {
            return sched.steps();
        }
        // Both tokens sitting on a sampled endpoint move (they swap along
        // the edge); a single token on one endpoint walks across.
        let (na, nb) = (walk_step(pa, u, v), walk_step(pb, u, v));
        pa = na;
        pb = nb;
    }
}

#[inline]
fn walk_step(pos: NodeId, u: NodeId, v: NodeId) -> NodeId {
    if pos == u {
        v
    } else if pos == v {
        u
    } else {
        pos
    }
}

/// Simulates the **classic** random walk from `start` until it has
/// visited every node; returns the number of walk steps (one sample of
/// the cover time `C(G)`, referenced by Section 1.3's refinement of the
/// constant-state protocol's bound).
///
/// # Panics
///
/// Panics if the graph is disconnected or `start` out of range.
#[must_use]
pub fn simulate_classic_cover(g: &Graph, start: NodeId, seed: u64) -> u64 {
    assert!(start < g.num_nodes());
    let n = g.num_nodes() as usize;
    let mut visited = vec![false; n];
    visited[start as usize] = true;
    let mut remaining = n - 1;
    let mut pos = start;
    let mut rng = popele_math::rng::small_rng(seed);
    let mut steps = 0u64;
    while remaining > 0 {
        let nbrs = g.neighbors(pos);
        assert!(!nbrs.is_empty(), "walk stuck at isolated node");
        pos = nbrs[rng.random_range(0..nbrs.len())];
        steps += 1;
        if !visited[pos as usize] {
            visited[pos as usize] = true;
            remaining -= 1;
        }
        assert!(steps < 10_000_000_000, "cover walk ran away; disconnected?");
    }
    steps
}

/// Simulates the **population-model** walk from `start` until it has
/// visited every node; returns the number of scheduler steps.
///
/// # Panics
///
/// As [`simulate_classic_cover`].
#[must_use]
pub fn simulate_population_cover(g: &Graph, start: NodeId, seed: u64) -> u64 {
    assert!(start < g.num_nodes());
    let n = g.num_nodes() as usize;
    let mut visited = vec![false; n];
    visited[start as usize] = true;
    let mut remaining = n - 1;
    let mut pos = start;
    let mut sched = EdgeScheduler::new(g, seed);
    while remaining > 0 {
        let (u, v) = sched.next_pair();
        pos = walk_step(pos, u, v);
        if !visited[pos as usize] {
            visited[pos as usize] = true;
            remaining -= 1;
        }
        assert!(
            sched.steps() < 10_000_000_000,
            "cover walk ran away; disconnected?"
        );
    }
    sched.steps()
}

/// Monte-Carlo summary of population-model hitting times from `start` to
/// `target`.
#[must_use]
pub fn population_hitting_summary(
    g: &Graph,
    start: NodeId,
    target: NodeId,
    trials: usize,
    master_seed: u64,
) -> Summary {
    let seq = SeedSeq::new(master_seed);
    (0..trials)
        .map(|i| simulate_population_hitting(g, start, target, seq.child(i as u64)) as f64)
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_graph::families;

    #[test]
    fn classic_hitting_on_path_matches_theory() {
        // On the path 0–1–2, hitting time from 0 to 2 is 4 (= (n-1)² for
        // endpoint-to-endpoint on a path with n = 3).
        let g = families::path(3);
        let h = classic_hitting_times(&g, 2);
        assert!((h[0] - 4.0).abs() < 1e-9, "h(0→2) = {}", h[0]);
        assert!((h[1] - 3.0).abs() < 1e-9, "h(1→2) = {}", h[1]);
        assert_eq!(h[2], 0.0);
    }

    #[test]
    fn classic_hitting_on_clique() {
        // On K_n hitting time between distinct nodes is n − 1.
        let g = families::clique(7);
        let h = classic_hitting_times(&g, 0);
        for (v, &hv) in h.iter().enumerate().skip(1) {
            assert!((hv - 6.0).abs() < 1e-9, "h({v}→0) = {hv}");
        }
    }

    #[test]
    fn classic_worst_hitting_cycle() {
        // H(C_n) = max_k k(n−k) = ⌊n²/4⌋ for the cycle.
        let g = families::cycle(8);
        let h = classic_worst_hitting(&g);
        assert!((h - 16.0).abs() < 1e-9, "H(C_8) = {h}");
    }

    #[test]
    fn population_hitting_scales_with_m_over_deg() {
        // On a regular graph the population walk is the classic walk slowed
        // down by a factor m/d: H_P = (m/d)·H.
        let g = families::cycle(8);
        let classic = classic_hitting_times(&g, 0);
        let pop = population_hitting_times(&g, 0);
        let factor = g.num_edges() as f64 / 2.0;
        for v in 1..8 {
            assert!(
                (pop[v] - factor * classic[v]).abs() < 1e-6,
                "v={v}: {} vs {}",
                pop[v],
                factor * classic[v]
            );
        }
    }

    #[test]
    fn lemma17_bound_holds_exactly() {
        // Lemma 17: H_P(G) ≤ 27·n·H(G). Verify on several families.
        for g in [
            families::clique(10),
            families::cycle(12),
            families::star(10),
            families::lollipop(6, 6),
        ] {
            let hp = population_worst_hitting(&g);
            let h = classic_worst_hitting(&g);
            let n = f64::from(g.num_nodes());
            assert!(
                hp <= 27.0 * n * h + 1e-6,
                "H_P = {hp}, 27nH = {}",
                27.0 * n * h
            );
        }
    }

    #[test]
    fn simulated_hitting_matches_exact_population() {
        let g = families::cycle(6);
        let exact = population_hitting_times(&g, 3)[0];
        let summary = population_hitting_summary(&g, 0, 3, 400, 13);
        let mean = summary.mean();
        assert!(
            (mean - exact).abs() / exact < 0.2,
            "simulated {mean} vs exact {exact}"
        );
    }

    #[test]
    fn simulated_classic_matches_exact() {
        let g = families::path(4);
        let exact = classic_hitting_times(&g, 3)[0]; // = 9
        let seq = SeedSeq::new(17);
        let mean: f64 = (0..400)
            .map(|i| simulate_classic_hitting(&g, 0, 3, seq.child(i)) as f64)
            .sum::<f64>()
            / 400.0;
        assert!(
            (mean - exact).abs() / exact < 0.2,
            "simulated {mean} vs exact {exact}"
        );
    }

    #[test]
    fn meeting_time_bounded_by_lemma18() {
        // Lemma 18: M(u, v) ≤ 2·H_P(G). Check the empirical mean respects
        // a generous version of the bound.
        let g = families::cycle(6);
        let hp = population_worst_hitting(&g);
        let seq = SeedSeq::new(23);
        let mean: f64 = (0..300)
            .map(|i| simulate_meeting_time(&g, 0, 3, seq.child(i)) as f64)
            .sum::<f64>()
            / 300.0;
        assert!(
            mean <= 2.0 * hp * 1.3,
            "mean meeting {mean} vs 2·H_P = {}",
            2.0 * hp
        );
    }

    #[test]
    fn hitting_zero_for_same_node() {
        let g = families::clique(4);
        assert_eq!(simulate_population_hitting(&g, 2, 2, 0), 0);
        assert_eq!(simulate_classic_hitting(&g, 1, 1, 0), 0);
    }

    #[test]
    fn star_hitting_asymmetry() {
        // Star: leaf→centre takes 1 classic step; centre→specific-leaf
        // takes n−1 expected steps; leaf→leaf takes 2(n−1)… verify
        // centre/leaf asymmetry qualitatively.
        let g = families::star(10);
        let to_centre = classic_hitting_times(&g, 0);
        let to_leaf = classic_hitting_times(&g, 1);
        assert!((to_centre[5] - 1.0).abs() < 1e-9);
        assert!(to_leaf[0] > 5.0);
        assert!(to_leaf[5] > to_leaf[0]);
    }

    #[test]
    fn single_node_trivial() {
        let g = popele_graph::Graph::from_edges(1, &[]).unwrap();
        assert_eq!(classic_hitting_times(&g, 0), vec![0.0]);
    }

    #[test]
    fn classic_cover_time_on_clique_is_coupon_collector() {
        // C(K_n) from any start = (n−1)·H_{n−1} exactly (each step is a
        // uniform draw among the other n−1 nodes).
        let n = 12u32;
        let g = families::clique(n);
        let seq = SeedSeq::new(31);
        let mean: f64 = (0..1500)
            .map(|i| simulate_classic_cover(&g, 0, seq.child(i)) as f64)
            .sum::<f64>()
            / 1500.0;
        let harmonic: f64 = (1..n as u64).map(|i| 1.0 / i as f64).sum();
        let expected = f64::from(n - 1) * harmonic;
        assert!(
            (mean - expected).abs() < 0.05 * expected,
            "measured {mean} vs (n−1)H_{{n−1}} = {expected}"
        );
    }

    #[test]
    fn cover_time_dominates_worst_hitting() {
        // C(G) ≥ H(G) − o(·): covering all nodes includes hitting the
        // worst-case target. Check the empirical mean dominates a healthy
        // fraction of exact H(G) on a path (worst start = endpoint).
        let g = families::path(10);
        let h = classic_worst_hitting(&g);
        let seq = SeedSeq::new(37);
        let mean: f64 = (0..400)
            .map(|i| simulate_classic_cover(&g, 0, seq.child(i)) as f64)
            .sum::<f64>()
            / 400.0;
        assert!(mean >= 0.8 * h, "cover {mean} vs worst hitting {h}");
    }

    #[test]
    fn population_cover_scales_like_m_over_classic() {
        // On regular graphs the population walk moves every m/d steps on
        // average, so cover times scale by ≈ m/d.
        let g = families::cycle(10);
        let seq = SeedSeq::new(41);
        let classic: f64 = (0..300)
            .map(|i| simulate_classic_cover(&g, 0, seq.child(i)) as f64)
            .sum::<f64>()
            / 300.0;
        let population: f64 = (0..300)
            .map(|i| simulate_population_cover(&g, 0, seq.child(1000 + i)) as f64)
            .sum::<f64>()
            / 300.0;
        let factor = g.num_edges() as f64 / 2.0;
        let ratio = population / (classic * factor);
        assert!(
            (ratio - 1.0).abs() < 0.15,
            "population/classic·(m/d) = {ratio}"
        );
    }
}
