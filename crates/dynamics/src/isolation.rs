//! Isolation times of `(K, ℓ)`-covers (Section 6.1).
//!
//! The isolation time `Y(C)` of a cover `C = {V₀, …, V_{K−1}}` is the
//! first step at which some node of some `Vᵢ` is influenced by a node
//! outside `B_ℓ(Vᵢ)`. A cover is `t`-isolating if `Pr[Y(C) ≥ t] ≥ 1/2`;
//! `f`-renitent graphs (those with `f(n)`-isolating covers) admit the
//! `Ω(f)` lower bound of Theorem 34.
//!
//! Instead of maintaining full influencer sets (`O(n)` per step), we run a
//! *contamination* process per cover set: nodes outside `B_ℓ(Vᵢ)` start
//! `i`-contaminated; contamination spreads on every interaction; `Y(C)` is
//! the first step an `i`-contaminated node lies in `Vᵢ`. Node `v` is
//! `i`-contaminated at step `t` iff `I_t(v) ⊄ B_ℓ(Vᵢ)`, so this matches
//! the definition with O(K) work per step.

use popele_engine::EdgeScheduler;
use popele_graph::renitent::Cover;
use popele_graph::Graph;
use popele_math::rng::SeedSeq;
use popele_math::stats::Summary;

/// Incremental contamination process for a `(K, ℓ)`-cover.
///
/// Node `v` is *`i`-contaminated* at step `t` iff `I_t(v) ⊄ B_ℓ(Vᵢ)`;
/// feeding every scheduled interaction to [`ContaminationTracker::interact`]
/// maintains this in O(1) per step. [`ContaminationTracker::violated`]
/// flips to `true` exactly at the isolation time `Y(C)` — when some node
/// of some `Vᵢ` first becomes `i`-contaminated.
///
/// Exposed so experiments can co-observe a protocol execution and the
/// isolation event on the *same* schedule (the Theorem 34 demo drives an
/// [`popele_engine::Executor`] and mirrors each sampled pair here).
#[derive(Debug, Clone)]
pub struct ContaminationTracker {
    membership: Vec<u32>,
    contaminated: Vec<u32>,
    violated: bool,
}

impl ContaminationTracker {
    /// Initializes the process: nodes outside `B_ℓ(Vᵢ)` start
    /// `i`-contaminated.
    ///
    /// # Panics
    ///
    /// Panics if the cover has more than 32 sets or references nodes
    /// outside the graph.
    #[must_use]
    pub fn new(g: &Graph, cover: &Cover) -> Self {
        let k = cover.k();
        assert!(k <= 32, "contamination masks support at most 32 cover sets");
        let n = g.num_nodes() as usize;
        let mut membership = vec![0u32; n];
        let mut contaminated = vec![0u32; n];
        for (i, set) in cover.sets().iter().enumerate() {
            for &v in set {
                assert!((v as usize) < n, "cover node out of range");
                membership[v as usize] |= 1 << i;
            }
            let ball = cover.neighbourhood(g, i);
            let mut in_ball = vec![false; n];
            for &v in &ball {
                in_ball[v as usize] = true;
            }
            for v in 0..n {
                if !in_ball[v] {
                    contaminated[v] |= 1 << i;
                }
            }
        }
        let violated = membership
            .iter()
            .zip(&contaminated)
            .any(|(m, c)| m & c != 0);
        Self {
            membership,
            contaminated,
            violated,
        }
    }

    /// Processes one interaction.
    pub fn interact(&mut self, u: popele_graph::NodeId, v: popele_graph::NodeId) {
        let (iu, iv) = (u as usize, v as usize);
        let union = self.contaminated[iu] | self.contaminated[iv];
        self.contaminated[iu] = union;
        self.contaminated[iv] = union;
        if (self.membership[iu] | self.membership[iv]) & union != 0 {
            self.violated = true;
        }
    }

    /// Whether the isolation event has occurred (`t ≥ Y(C)`).
    #[must_use]
    pub fn violated(&self) -> bool {
        self.violated
    }
}

/// Measures the isolation time `Y(C)` under one seeded schedule.
///
/// Returns `None` if no contamination reached any cover set within
/// `max_steps` (i.e. `Y(C) > max_steps`).
///
/// # Panics
///
/// Panics if the cover has more than 32 sets or references nodes outside
/// the graph.
#[must_use]
pub fn isolation_time(g: &Graph, cover: &Cover, seed: u64, max_steps: u64) -> Option<u64> {
    let mut tracker = ContaminationTracker::new(g, cover);
    if tracker.violated() {
        return Some(0);
    }
    let mut sched = EdgeScheduler::new(g, seed);
    while sched.steps() < max_steps {
        let (u, v) = sched.next_pair();
        tracker.interact(u, v);
        if tracker.violated() {
            return Some(sched.steps());
        }
    }
    None
}

/// Monte-Carlo summary of `Y(C)` over `trials` schedules, plus the
/// empirical `t`-isolation check used by the renitence experiments.
#[derive(Debug, Clone, PartialEq)]
pub struct IsolationEstimate {
    /// Summary of observed isolation times (censored trials excluded).
    pub times: Summary,
    /// Trials whose isolation time exceeded the step cap.
    pub censored: usize,
    /// Total trials.
    pub trials: usize,
}

impl IsolationEstimate {
    /// Empirical `Pr[Y(C) ≥ t]`, counting censored trials as `≥ t` when
    /// the cap is at least `t`.
    #[must_use]
    pub fn survival_at(&self, t: f64) -> f64 {
        let above = self
            .times
            .sorted_values()
            .iter()
            .filter(|&&y| y >= t)
            .count()
            + self.censored;
        above as f64 / self.trials as f64
    }
}

/// Estimates the distribution of `Y(C)` over independent schedules.
#[must_use]
pub fn estimate_isolation(
    g: &Graph,
    cover: &Cover,
    trials: usize,
    max_steps: u64,
    master_seed: u64,
) -> IsolationEstimate {
    let seq = SeedSeq::new(master_seed);
    let mut times = Summary::new();
    let mut censored = 0usize;
    for i in 0..trials {
        match isolation_time(g, cover, seq.child(i as u64), max_steps) {
            Some(t) => times.push(t as f64),
            None => censored += 1,
        }
    }
    IsolationEstimate {
        times,
        censored,
        trials,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_graph::families;
    use popele_graph::renitent::{cycle_cover, lemma38, Cover};

    #[test]
    fn isolation_positive_on_cycle_cover() {
        let (g, cover) = cycle_cover(32);
        let t = isolation_time(&g, &cover, 5, u64::MAX).unwrap();
        assert!(t > 0, "isolation cannot be instantaneous for a valid cover");
        // Contamination must cross ≥ ℓ/2 edges in sequence; with ℓ = 4 it
        // takes at least ℓ steps.
        assert!(t >= u64::from(cover.ell()));
    }

    #[test]
    fn isolation_scales_with_ell_on_lemma38() {
        // Larger ℓ → longer paths → larger isolation times (Lemma 38).
        let base = families::clique(4);
        let (g_small, c_small) = lemma38(&base, 0, 2);
        let (g_large, c_large) = lemma38(&base, 0, 8);
        let est_small = estimate_isolation(&g_small, &c_small, 10, u64::MAX, 1);
        let est_large = estimate_isolation(&g_large, &c_large, 10, u64::MAX, 1);
        assert_eq!(est_small.censored, 0);
        assert_eq!(est_large.censored, 0);
        assert!(
            est_large.times.mean() > est_small.times.mean(),
            "ℓ=8 mean {} should exceed ℓ=2 mean {}",
            est_large.times.mean(),
            est_small.times.mean()
        );
    }

    #[test]
    fn degenerate_cover_isolates_instantly() {
        // A cover whose set already intersects the contaminated region:
        // sets far apart but radius 0 and a "set" next to everything.
        let g = families::clique(6);
        // In a clique with ℓ = 0, B_0(V_i) = V_i, so any node outside V_i
        // is contaminated for i; nodes of V_i are clean at step 0 but the
        // first interaction between V_0 and its complement contaminates.
        let cover = Cover::new(vec![vec![0, 1, 2], vec![3, 4, 5]], 0);
        let t = isolation_time(&g, &cover, 3, u64::MAX).unwrap();
        assert!(t >= 1);
        assert!(t <= 20, "clique contaminates almost immediately, got {t}");
    }

    #[test]
    fn censoring_reported() {
        let (g, cover) = cycle_cover(64);
        let est = estimate_isolation(&g, &cover, 5, 3, 1);
        assert_eq!(est.censored, 5);
        assert_eq!(est.survival_at(3.0), 1.0);
    }

    #[test]
    fn survival_counts_correctly() {
        let est = IsolationEstimate {
            times: Summary::from_slice(&[10.0, 20.0, 30.0]),
            censored: 1,
            trials: 4,
        };
        assert_eq!(est.survival_at(15.0), 0.75);
        assert_eq!(est.survival_at(5.0), 1.0);
        assert_eq!(est.survival_at(40.0), 0.25);
    }

    #[test]
    fn deterministic_per_seed() {
        let (g, cover) = cycle_cover(24);
        assert_eq!(
            isolation_time(&g, &cover, 42, u64::MAX),
            isolation_time(&g, &cover, 42, u64::MAX)
        );
    }
}
