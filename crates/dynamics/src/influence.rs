//! Influencer sets and interaction patterns (Section 7 machinery).
//!
//! * [`InfluenceTracker`] — maintains the influencer sets `I_t(v)` of
//!   Section 3.2 for **all** nodes simultaneously (bitset rows), used to
//!   validate Lemma 41 (influencer sets grow slowly on dense graphs) and
//!   Lemma 42 (many nodes stay untouched for `Ω(n log n)` steps);
//! * [`InteractionPattern`] — the *multigraph of influencers* `J_t(v)`
//!   of Section 7.2, built backwards from a recorded schedule, with
//!   internal-interaction counting (Lemma 44) and the mechanical
//!   tree-unfolding surgery of Lemma 45 (the paper's Figure 1).

use popele_graph::{Graph, NodeId};
use std::collections::{HashMap, HashSet};

/// Tracks the influencer sets `I_t(v)` for all nodes under a schedule.
///
/// `I_0(v) = {v}`; when `(u, v)` interact both sets become their union.
/// Row `v` of the internal bit matrix stores `I_t(v)`.
#[derive(Debug, Clone)]
pub struct InfluenceTracker {
    n: usize,
    words: usize,
    /// Row-major bitset: row v = influencers of v.
    bits: Vec<u64>,
    /// |I_t(v)| per node, maintained incrementally.
    sizes: Vec<u32>,
    steps: u64,
}

impl InfluenceTracker {
    /// Creates the tracker with `I_0(v) = {v}` for an `n`-node graph.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    #[must_use]
    pub fn new(n: u32) -> Self {
        assert!(n > 0, "need at least one node");
        let n = n as usize;
        let words = n.div_ceil(64);
        let mut bits = vec![0u64; n * words];
        for v in 0..n {
            bits[v * words + v / 64] |= 1u64 << (v % 64);
        }
        Self {
            n,
            words,
            bits,
            sizes: vec![1; n],
            steps: 0,
        }
    }

    /// Number of nodes.
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        self.n
    }

    /// Steps processed so far.
    #[must_use]
    pub fn steps(&self) -> u64 {
        self.steps
    }

    /// Processes one interaction: both endpoints learn each other's
    /// influencers.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or equal endpoints.
    pub fn interact(&mut self, u: NodeId, v: NodeId) {
        let (u, v) = (u as usize, v as usize);
        assert!(u < self.n && v < self.n && u != v, "invalid pair");
        self.steps += 1;
        let w = self.words;
        let (lo, hi) = (u.min(v), u.max(v));
        let (head, tail) = self.bits.split_at_mut(hi * w);
        let row_lo = &mut head[lo * w..lo * w + w];
        let row_hi = &mut tail[..w];
        let mut count = 0u32;
        for (a, b) in row_lo.iter_mut().zip(row_hi.iter_mut()) {
            let union = *a | *b;
            *a = union;
            *b = union;
            count += union.count_ones();
        }
        self.sizes[u] = count;
        self.sizes[v] = count;
    }

    /// `|I_t(v)|` — the number of influencers of `v`.
    #[must_use]
    pub fn influence_size(&self, v: NodeId) -> u32 {
        self.sizes[v as usize]
    }

    /// Whether `u ∈ I_t(v)` (can `u` have influenced `v`?).
    #[must_use]
    pub fn is_influencer(&self, u: NodeId, v: NodeId) -> bool {
        let (u, v) = (u as usize, v as usize);
        self.bits[v * self.words + u / 64] & (1u64 << (u % 64)) != 0
    }

    /// The largest influencer-set size over all nodes.
    #[must_use]
    pub fn max_influence_size(&self) -> u32 {
        self.sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Counts, under a seeded schedule, how many nodes of `g` have not
/// interacted at all after `t` steps (the quantity `X(t)` of Lemma 42,
/// equivalently `|S(t)|` of Lemma 43).
#[must_use]
pub fn untouched_after(g: &Graph, t: u64, seed: u64) -> usize {
    let mut sched = popele_engine::EdgeScheduler::new(g, seed);
    let mut touched = vec![false; g.num_nodes() as usize];
    for _ in 0..t {
        let (u, v) = sched.next_pair();
        touched[u as usize] = true;
        touched[v as usize] = true;
    }
    touched.iter().filter(|&&x| !x).count()
}

/// One timestamped, directed interaction `(initiator, responder)` of an
/// interaction pattern. Node ids are *pattern-local* (unfolding introduces
/// fresh copies that do not exist in the original graph).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TimedEdge {
    /// Initiator (pattern-local id).
    pub initiator: u64,
    /// Responder (pattern-local id).
    pub responder: u64,
    /// Timestamp; all timestamps in a pattern are distinct.
    pub time: u64,
}

/// The multigraph of influencers `J_{t₀}(v)` of Section 7.2: the set of
/// timestamped interactions that (transitively) influence the state of a
/// root node `v` at time `t₀`, plus the Lemma 45 unfolding surgery.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InteractionPattern {
    root: u64,
    /// Edges sorted by ascending timestamp.
    edges: Vec<TimedEdge>,
    /// Maps pattern-local ids to the original graph node they are copies
    /// of (fresh unfolding copies map to their original too).
    origin: HashMap<u64, NodeId>,
    next_fresh: u64,
}

impl InteractionPattern {
    /// Extracts `J_{t₀}(root)` from the first `t0` interactions of a
    /// recorded schedule: processing the schedule backwards, an
    /// interaction joins the pattern iff it touches a node already known
    /// to influence the root.
    ///
    /// # Panics
    ///
    /// Panics if `t0 > schedule.len()`.
    #[must_use]
    pub fn from_schedule(schedule: &[(NodeId, NodeId)], root: NodeId, t0: usize) -> Self {
        assert!(t0 <= schedule.len(), "t0 exceeds schedule length");
        let mut members: HashSet<NodeId> = HashSet::from([root]);
        let mut edges: Vec<TimedEdge> = Vec::new();
        for (idx, &(u, v)) in schedule[..t0].iter().enumerate().rev() {
            if members.contains(&u) || members.contains(&v) {
                members.insert(u);
                members.insert(v);
                edges.push(TimedEdge {
                    initiator: u64::from(u),
                    responder: u64::from(v),
                    // Timestamps are 1-based like the paper's steps.
                    time: idx as u64 + 1,
                });
            }
        }
        edges.reverse();
        let origin = members.iter().map(|&v| (u64::from(v), v)).collect();
        let next_fresh = members.iter().map(|&v| u64::from(v) + 1).max().unwrap_or(1);
        Self {
            root: u64::from(root),
            edges,
            origin,
            next_fresh,
        }
    }

    /// The root node (pattern-local id).
    #[must_use]
    pub fn root(&self) -> u64 {
        self.root
    }

    /// The interactions, in ascending timestamp order.
    #[must_use]
    pub fn edges(&self) -> &[TimedEdge] {
        &self.edges
    }

    /// Number of distinct nodes appearing in the pattern (including the
    /// root).
    #[must_use]
    pub fn num_nodes(&self) -> usize {
        let mut nodes: HashSet<u64> = HashSet::from([self.root]);
        for e in &self.edges {
            nodes.insert(e.initiator);
            nodes.insert(e.responder);
        }
        nodes.len()
    }

    /// The original graph node that pattern node `id` is a copy of.
    #[must_use]
    pub fn origin_of(&self, id: u64) -> Option<NodeId> {
        self.origin.get(&id).copied()
    }

    /// Counts **internal interactions**: replaying the backwards
    /// construction, an interaction is internal if *both* endpoints were
    /// already members of the pattern when it was added. Internal
    /// interactions are exactly the cycle-creating ones (Lemma 44).
    #[must_use]
    pub fn internal_interactions(&self) -> usize {
        let mut members: HashSet<u64> = HashSet::from([self.root]);
        let mut internal = 0usize;
        for e in self.edges.iter().rev() {
            let iu = members.contains(&e.initiator);
            let iv = members.contains(&e.responder);
            if iu && iv {
                internal += 1;
            }
            members.insert(e.initiator);
            members.insert(e.responder);
        }
        internal
    }

    /// Replays the pattern through a protocol: all pattern nodes start in
    /// `initial(origin)` and the interactions apply in timestamp order.
    /// Returns the final state of every pattern node.
    #[must_use]
    pub fn replay<S: Clone, F, T>(&self, initial: F, transition: T) -> HashMap<u64, S>
    where
        F: Fn(NodeId) -> S,
        T: Fn(&S, &S) -> (S, S),
    {
        let mut states: HashMap<u64, S> = HashMap::new();
        let state_of = |states: &mut HashMap<u64, S>, id: u64| {
            if let std::collections::hash_map::Entry::Vacant(slot) = states.entry(id) {
                let origin = self.origin_of(id).expect("pattern node has an origin");
                slot.insert(initial(origin));
            }
        };
        state_of(&mut states, self.root);
        for e in &self.edges {
            state_of(&mut states, e.initiator);
            state_of(&mut states, e.responder);
            let a = states[&e.initiator].clone();
            let b = states[&e.responder].clone();
            let (na, nb) = transition(&a, &b);
            states.insert(e.initiator, na);
            states.insert(e.responder, nb);
        }
        states
    }

    /// Lemma 45 surgery: removes the **earliest** internal interaction by
    /// splitting it against fresh copies of the two participants'
    /// influence trees (the construction of the paper's Figure 1).
    ///
    /// Returns `None` if the pattern has no internal interaction (it is
    /// already a forest). The result has one fewer internal interaction
    /// and at most twice as many nodes, and replays to the **same root
    /// state** for any deterministic protocol (validated in tests).
    #[must_use]
    pub fn unfold_once(&self) -> Option<InteractionPattern> {
        // Find the earliest internal interaction. Membership is defined by
        // the backwards construction, so compute membership sets first.
        let mut members: HashSet<u64> = HashSet::from([self.root]);
        let mut internal_flags = vec![false; self.edges.len()];
        for (i, e) in self.edges.iter().enumerate().rev() {
            internal_flags[i] = members.contains(&e.initiator) && members.contains(&e.responder);
            members.insert(e.initiator);
            members.insert(e.responder);
        }
        let idx = internal_flags.iter().position(|&f| f)?;
        let pivot = self.edges[idx];
        let r = pivot.time;
        let (u, w) = (pivot.initiator, pivot.responder);

        // Influence trees I(u), I(w): interactions with time < r that
        // transitively influence u (resp. w). Because `pivot` is the
        // earliest internal interaction these are edge- and node-disjoint
        // trees.
        let influence_tree = |target: u64| -> Vec<TimedEdge> {
            let mut tree_members: HashSet<u64> = HashSet::from([target]);
            let mut tree: Vec<TimedEdge> = Vec::new();
            for e in self.edges[..idx].iter().rev() {
                if tree_members.contains(&e.initiator) || tree_members.contains(&e.responder) {
                    tree_members.insert(e.initiator);
                    tree_members.insert(e.responder);
                    tree.push(*e);
                }
            }
            tree.reverse();
            tree
        };
        let tree_u = influence_tree(u);
        let tree_w = influence_tree(w);

        let mut next_fresh = self.next_fresh;
        let mut origin = self.origin.clone();

        // Fresh copies of the trees' nodes (the copied root becomes u'/w').
        let mut copy_tree =
            |tree: &[TimedEdge], copied_root: u64, shift: u64| -> (u64, Vec<TimedEdge>) {
                let mut rename: HashMap<u64, u64> = HashMap::new();
                let mut fresh =
                    |old: u64, next_fresh: &mut u64, origin: &mut HashMap<u64, NodeId>| -> u64 {
                        *rename.entry(old).or_insert_with(|| {
                            let id = *next_fresh;
                            *next_fresh += 1;
                            let org = self.origin[&old];
                            origin.insert(id, org);
                            id
                        })
                    };
                let root_copy = fresh(copied_root, &mut next_fresh, &mut origin);
                let edges = tree
                    .iter()
                    .map(|e| TimedEdge {
                        initiator: fresh(e.initiator, &mut next_fresh, &mut origin),
                        responder: fresh(e.responder, &mut next_fresh, &mut origin),
                        time: e.time + shift,
                    })
                    .collect();
                (root_copy, edges)
            };

        // Step 1: drop the pivot; shift all strictly-later timestamps by
        // 2r + 1 so the window (r, 3r] is free for the copies.
        let mut new_edges: Vec<TimedEdge> = Vec::new();
        for e in &self.edges {
            if e.time == r {
                continue; // the pivot
            }
            let mut e = *e;
            if e.time > r {
                e.time += 2 * r + 1;
            }
            new_edges.push(e);
        }

        // Step 2: copies I(u') with timestamps shifted +r and I(w')
        // shifted +2r.
        let (u_copy, edges_u) = copy_tree(&tree_u, u, r);
        let (w_copy, edges_w) = copy_tree(&tree_w, w, 2 * r);
        new_edges.extend(edges_u);
        new_edges.extend(edges_w);

        // Step 3: the replacement interactions. The pivot had `u` as
        // initiator and `w` as responder, so `u` must interact with a copy
        // of `w` as initiator, and a copy of `u` initiates towards `w`.
        new_edges.push(TimedEdge {
            initiator: u,
            responder: w_copy,
            time: 3 * r,
        });
        new_edges.push(TimedEdge {
            initiator: u_copy,
            responder: w,
            time: 3 * r + 1,
        });

        new_edges.sort_by_key(|e| e.time);
        Some(InteractionPattern {
            root: self.root,
            edges: new_edges,
            origin,
            next_fresh,
        })
    }

    /// Repeatedly applies [`Self::unfold_once`] until no internal
    /// interaction remains; the result is a tree-like (forest) pattern
    /// (the fully unfolded pattern of Theorem 40's proof).
    #[must_use]
    pub fn unfold_fully(&self) -> InteractionPattern {
        let mut current = self.clone();
        while let Some(next) = current.unfold_once() {
            current = next;
        }
        current
    }
}

/// Records the first `t` sampled pairs of a seeded schedule on `g`
/// (helper for building interaction patterns in experiments and tests).
#[must_use]
pub fn record_schedule(g: &Graph, t: usize, seed: u64) -> Vec<(NodeId, NodeId)> {
    let mut sched = popele_engine::EdgeScheduler::new(g, seed);
    (0..t).map(|_| sched.next_pair()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_graph::families;

    #[test]
    fn tracker_initial_state() {
        let t = InfluenceTracker::new(10);
        for v in 0..10 {
            assert_eq!(t.influence_size(v), 1);
            assert!(t.is_influencer(v, v));
        }
        assert_eq!(t.max_influence_size(), 1);
    }

    #[test]
    fn tracker_union_on_interaction() {
        let mut t = InfluenceTracker::new(4);
        t.interact(0, 1);
        assert_eq!(t.influence_size(0), 2);
        assert_eq!(t.influence_size(1), 2);
        assert!(t.is_influencer(0, 1) && t.is_influencer(1, 0));
        t.interact(1, 2);
        assert_eq!(t.influence_size(2), 3);
        assert!(t.is_influencer(0, 2));
        // 0's own set unchanged by the second interaction.
        assert_eq!(t.influence_size(0), 2);
        assert_eq!(t.steps(), 2);
    }

    #[test]
    fn tracker_works_past_word_boundary() {
        let mut t = InfluenceTracker::new(130);
        t.interact(0, 129);
        assert!(t.is_influencer(129, 0));
        assert!(t.is_influencer(0, 129));
        assert_eq!(t.influence_size(0), 2);
    }

    #[test]
    fn untouched_decreases_with_time() {
        let g = families::clique(40);
        let early = untouched_after(&g, 5, 3);
        let late = untouched_after(&g, 200, 3);
        assert!(early >= late);
        assert_eq!(untouched_after(&g, 0, 3), 40);
    }

    #[test]
    fn pattern_from_schedule_collects_influences() {
        // Schedule on a path 0-1-2-3: (0,1), (1,2), (2,3).
        // J for root 3 at t0=3: edge (2,3) joins; then (1,2) (touches 2);
        // then (0,1) (touches 1) — all three.
        let schedule = vec![(0u32, 1u32), (1, 2), (2, 3)];
        let p = InteractionPattern::from_schedule(&schedule, 3, 3);
        assert_eq!(p.edges().len(), 3);
        assert_eq!(p.num_nodes(), 4);
        assert_eq!(p.internal_interactions(), 0);
    }

    #[test]
    fn pattern_ignores_unrelated_interactions() {
        // (0,1) cannot influence root 3 because no later interaction
        // carries it over.
        let schedule = vec![(0u32, 1u32), (2, 3)];
        let p = InteractionPattern::from_schedule(&schedule, 3, 2);
        assert_eq!(p.edges().len(), 1);
        assert_eq!(p.num_nodes(), 2);
    }

    #[test]
    fn internal_interaction_detected() {
        // Triangle: (0,1), (1,2), (0,2), root 2 at t=3.
        // Backwards: (0,2) joins (touches 2) → members {0,2};
        // (1,2) joins, internal? members has 2, not 1 → not internal;
        // (0,1): 0,1 both members now → internal.
        let schedule = vec![(0u32, 1u32), (1, 2), (0, 2)];
        let p = InteractionPattern::from_schedule(&schedule, 2, 3);
        assert_eq!(p.edges().len(), 3);
        assert_eq!(p.internal_interactions(), 1);
    }

    #[test]
    fn replay_reproduces_execution_state() {
        // Replaying the pattern must give the root the same state as a
        // full forward execution of the schedule.
        let g = families::clique(6);
        let schedule = record_schedule(&g, 40, 77);
        // Simple protocol: state = max tag seen; initial tag = node id.
        let transition = |a: &u32, b: &u32| -> (u32, u32) {
            let m = *a.max(b);
            (m, m)
        };
        // Forward execution.
        let mut states: Vec<u32> = (0..6).collect();
        for &(u, v) in &schedule {
            let (na, nb) = transition(&states[u as usize], &states[v as usize]);
            states[u as usize] = na;
            states[v as usize] = nb;
        }
        for root in 0..6u32 {
            let p = InteractionPattern::from_schedule(&schedule, root, schedule.len());
            let final_states = p.replay(|v| v, transition);
            assert_eq!(
                final_states[&u64::from(root)],
                states[root as usize],
                "root {root}"
            );
        }
    }

    #[test]
    fn unfold_preserves_root_state_and_reduces_internal() {
        let g = families::clique(5);
        let schedule = record_schedule(&g, 30, 9);
        let transition = |a: &u64, b: &u64| -> (u64, u64) {
            // Non-commutative-ish deterministic rule to catch ordering or
            // role (initiator/responder) mistakes in the surgery.
            let x = a.wrapping_mul(3).wrapping_add(*b);
            let y = b.wrapping_mul(5).wrapping_add(a >> 1);
            (x, y)
        };
        let p = InteractionPattern::from_schedule(&schedule, 0, schedule.len());
        let before_internal = p.internal_interactions();
        assert!(before_internal > 0, "need an internal interaction to test");
        let root_before = p.replay(u64::from, transition)[&p.root()];

        let q = p.unfold_once().expect("has internal interaction");
        assert_eq!(q.internal_interactions(), before_internal - 1);
        assert!(q.num_nodes() <= 2 * p.num_nodes(), "Lemma 45 size bound");
        let root_after = q.replay(u64::from, transition)[&q.root()];
        assert_eq!(
            root_before, root_after,
            "unfolding must preserve the root state"
        );
    }

    #[test]
    fn unfold_fully_leaves_forest() {
        let g = families::clique(5);
        let schedule = record_schedule(&g, 25, 4);
        let p = InteractionPattern::from_schedule(&schedule, 1, schedule.len());
        let q = p.unfold_fully();
        assert_eq!(q.internal_interactions(), 0);
        assert!(q.unfold_once().is_none());
        // Root state preserved through the whole cascade.
        let transition = |a: &u64, b: &u64| (*a + *b, *b + 1);
        let before = p.replay(u64::from, transition)[&p.root()];
        let after = q.replay(u64::from, transition)[&q.root()];
        assert_eq!(before, after);
    }

    #[test]
    fn timestamps_stay_distinct_after_unfold() {
        let g = families::clique(5);
        let schedule = record_schedule(&g, 30, 15);
        let p = InteractionPattern::from_schedule(&schedule, 2, schedule.len());
        if let Some(q) = p.unfold_once() {
            let mut times: Vec<u64> = q.edges().iter().map(|e| e.time).collect();
            let len = times.len();
            times.sort_unstable();
            times.dedup();
            assert_eq!(times.len(), len, "duplicate timestamps after unfold");
        }
    }
}
