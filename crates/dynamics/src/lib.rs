//! Information-propagation dynamics in the stochastic population model.
//!
//! Implements Section 3 of *Near-Optimal Leader Election in Population
//! Protocols on Graphs* (PODC 2022) and the dynamical machinery of its
//! lower-bound sections:
//!
//! * [`broadcast`] — one-way epidemics: broadcast times `T(v)`, the
//!   worst-case expected broadcast time `B(G)`, distance-`k` propagation
//!   times `T_k(G)`, and the analytic bounds of Theorem 6 and Lemma 12;
//! * [`walks`] — random walks in the population model and classic random
//!   walks: exact hitting times by linear solve (Lemma 17 territory),
//!   simulated hitting and meeting times (Lemmas 18–19);
//! * [`influence`] — influencer sets `I_t(v)` (Lemma 41), the multigraph
//!   of influencers with internal-interaction counting (Lemma 44), and the
//!   mechanical interaction-pattern unfolding of Lemma 45 / Figure 1;
//! * [`isolation`] — isolation times `Y(C)` of `(K, ℓ)`-covers
//!   (Section 6.1), measured by a constant-work-per-step contamination
//!   process.
//!
//! # Examples
//!
//! ```
//! use popele_dynamics::broadcast;
//! use popele_graph::families;
//!
//! let g = families::clique(32);
//! // One epidemic from node 0 under a seeded schedule.
//! let t = broadcast::broadcast_time_from(&g, 0, 42);
//! assert!(t >= 31); // every other node must interact at least once
//! ```

#![warn(missing_docs)]

pub mod broadcast;
pub mod influence;
pub mod isolation;
pub mod walks;
