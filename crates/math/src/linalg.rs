//! Small dense linear algebra.
//!
//! Exact hitting times of a classic random walk on a graph `G` solve the
//! linear system `(I − P_{-v}) h = 1`, where `P_{-v}` is the transition
//! matrix with the target row/column removed. This module provides the
//! dense matrix type and the Gaussian-elimination solver used by
//! `popele-dynamics` for graphs up to a few hundred nodes, plus a power
//! iteration used for spectral conductance estimates.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense row-major matrix of `f64`.
#[derive(Debug, Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl Matrix {
    /// Creates a `rows × cols` zero matrix.
    #[must_use]
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    #[must_use]
    pub fn identity(n: usize) -> Self {
        let mut m = Self::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Builds a matrix from rows.
    ///
    /// # Panics
    ///
    /// Panics if rows have unequal lengths or the input is empty.
    #[must_use]
    pub fn from_rows(rows: &[Vec<f64>]) -> Self {
        assert!(!rows.is_empty(), "matrix must have at least one row");
        let cols = rows[0].len();
        assert!(
            rows.iter().all(|r| r.len() == cols),
            "all rows must have equal length"
        );
        Self {
            rows: rows.len(),
            cols,
            data: rows.iter().flatten().copied().collect(),
        }
    }

    /// Number of rows.
    #[must_use]
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    #[must_use]
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != self.cols()`.
    #[must_use]
    pub fn mul_vec(&self, x: &[f64]) -> Vec<f64> {
        assert_eq!(x.len(), self.cols, "dimension mismatch");
        let mut out = vec![0.0; self.rows];
        for (i, slot) in out.iter_mut().enumerate() {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            *slot = row.iter().zip(x).map(|(a, b)| a * b).sum();
        }
        out
    }

    /// Solves `A·x = b` by Gaussian elimination with partial pivoting,
    /// consuming the matrix.
    ///
    /// Returns `None` if the matrix is (numerically) singular.
    ///
    /// # Panics
    ///
    /// Panics if the matrix is not square or `b.len() != self.rows()`.
    #[must_use]
    pub fn solve(mut self, b: &[f64]) -> Option<Vec<f64>> {
        assert_eq!(self.rows, self.cols, "solve requires a square matrix");
        assert_eq!(b.len(), self.rows, "rhs dimension mismatch");
        let n = self.rows;
        let mut rhs = b.to_vec();

        for col in 0..n {
            // Partial pivoting: pick the largest magnitude entry in the column.
            let pivot_row = (col..n)
                .max_by(|&a, &b| {
                    self[(a, col)]
                        .abs()
                        .partial_cmp(&self[(b, col)].abs())
                        .expect("no NaN in matrix")
                })
                .expect("nonempty range");
            if self[(pivot_row, col)].abs() < 1e-12 {
                return None;
            }
            if pivot_row != col {
                for j in 0..n {
                    let tmp = self[(col, j)];
                    self[(col, j)] = self[(pivot_row, j)];
                    self[(pivot_row, j)] = tmp;
                }
                rhs.swap(col, pivot_row);
            }
            let pivot = self[(col, col)];
            for row in col + 1..n {
                let factor = self[(row, col)] / pivot;
                if factor == 0.0 {
                    continue;
                }
                for j in col..n {
                    let v = self[(col, j)];
                    self[(row, j)] -= factor * v;
                }
                rhs[row] -= factor * rhs[col];
            }
        }

        // Back substitution.
        let mut x = vec![0.0; n];
        for row in (0..n).rev() {
            let mut acc = rhs[row];
            for j in row + 1..n {
                acc -= self[(row, j)] * x[j];
            }
            x[row] = acc / self[(row, row)];
        }
        Some(x)
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f64;

    fn index(&self, (r, c): (usize, usize)) -> &f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f64 {
        assert!(r < self.rows && c < self.cols, "index out of bounds");
        &mut self.data[r * self.cols + c]
    }
}

impl fmt::Display for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            for j in 0..self.cols {
                write!(f, "{:10.4} ", self[(i, j)])?;
            }
            writeln!(f)?;
        }
        Ok(())
    }
}

/// Estimates the largest eigenvalue (by magnitude) of a symmetric matrix by
/// power iteration, returning `(eigenvalue, eigenvector)`.
///
/// # Panics
///
/// Panics if the matrix is not square or `iterations == 0`.
#[must_use]
pub fn power_iteration(a: &Matrix, iterations: usize) -> (f64, Vec<f64>) {
    assert_eq!(a.rows(), a.cols(), "power iteration requires square matrix");
    assert!(iterations > 0);
    let n = a.rows();
    // A deterministic, non-degenerate start vector.
    let mut v: Vec<f64> = (0..n).map(|i| 1.0 + (i as f64 * 0.7).sin()).collect();
    normalize(&mut v);
    let mut eigenvalue = 0.0;
    for _ in 0..iterations {
        let mut w = a.mul_vec(&v);
        eigenvalue = dot(&v, &w);
        let norm = norm2(&w);
        if norm < 1e-300 {
            return (0.0, v);
        }
        for x in &mut w {
            *x /= norm;
        }
        v = w;
    }
    (eigenvalue, v)
}

/// Estimates the second-largest eigenvalue of a symmetric matrix by deflated
/// power iteration against a known top eigenpair.
#[must_use]
pub fn second_eigenvalue(a: &Matrix, top_vec: &[f64], iterations: usize) -> f64 {
    assert_eq!(a.rows(), a.cols());
    let n = a.rows();
    let mut v: Vec<f64> = (0..n).map(|i| (i as f64 * 1.3).cos()).collect();
    orthogonalize(&mut v, top_vec);
    normalize(&mut v);
    let mut eigenvalue = 0.0;
    for _ in 0..iterations {
        let mut w = a.mul_vec(&v);
        orthogonalize(&mut w, top_vec);
        eigenvalue = dot(&v, &w);
        let norm = norm2(&w);
        if norm < 1e-300 {
            return 0.0;
        }
        for x in &mut w {
            *x /= norm;
        }
        v = w;
    }
    eigenvalue
}

fn dot(a: &[f64], b: &[f64]) -> f64 {
    a.iter().zip(b).map(|(x, y)| x * y).sum()
}

fn norm2(v: &[f64]) -> f64 {
    dot(v, v).sqrt()
}

fn normalize(v: &mut [f64]) {
    let n = norm2(v);
    if n > 0.0 {
        for x in v {
            *x /= n;
        }
    }
}

fn orthogonalize(v: &mut [f64], against: &[f64]) {
    let denom = dot(against, against);
    if denom < 1e-300 {
        return;
    }
    let coeff = dot(v, against) / denom;
    for (x, &a) in v.iter_mut().zip(against) {
        *x -= coeff * a;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_solves_trivially() {
        let m = Matrix::identity(4);
        let b = vec![1.0, 2.0, 3.0, 4.0];
        let x = m.solve(&b).unwrap();
        assert_eq!(x, b);
    }

    #[test]
    fn known_system_solved() {
        // 2x + y = 5, x + 3y = 10 → x = 1, y = 3.
        let m = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 3.0]]);
        let x = m.solve(&[5.0, 10.0]).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-10);
        assert!((x[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn singular_matrix_detected() {
        let m = Matrix::from_rows(&[vec![1.0, 2.0], vec![2.0, 4.0]]);
        assert!(m.solve(&[1.0, 2.0]).is_none());
    }

    #[test]
    fn pivoting_handles_zero_leading_entry() {
        let m = Matrix::from_rows(&[vec![0.0, 1.0], vec![1.0, 0.0]]);
        let x = m.solve(&[2.0, 3.0]).unwrap();
        assert!((x[0] - 3.0).abs() < 1e-12);
        assert!((x[1] - 2.0).abs() < 1e-12);
    }

    #[test]
    fn solve_random_system_consistency() {
        // Solve then multiply back: A·x must reproduce b.
        let n = 12;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = ((i * 31 + j * 17) % 13) as f64 - 6.0;
            }
            a[(i, i)] += 20.0; // diagonally dominant → nonsingular
        }
        let b: Vec<f64> = (0..n).map(|i| i as f64 - 3.0).collect();
        let x = a.clone().solve(&b).unwrap();
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            assert!((u - v).abs() < 1e-8);
        }
    }

    #[test]
    fn power_iteration_finds_dominant_eigenvalue() {
        // Symmetric matrix with known spectrum {3, 1}: [[2,1],[1,2]].
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (lambda, v) = power_iteration(&a, 200);
        assert!((lambda - 3.0).abs() < 1e-9, "lambda {lambda}");
        // Eigenvector proportional to (1, 1).
        assert!((v[0] - v[1]).abs() < 1e-6);
    }

    #[test]
    fn second_eigenvalue_via_deflation() {
        let a = Matrix::from_rows(&[vec![2.0, 1.0], vec![1.0, 2.0]]);
        let (_, top) = power_iteration(&a, 200);
        let lambda2 = second_eigenvalue(&a, &top, 200);
        assert!((lambda2 - 1.0).abs() < 1e-6, "lambda2 {lambda2}");
    }

    #[test]
    #[should_panic(expected = "equal length")]
    fn ragged_rows_rejected() {
        let _ = Matrix::from_rows(&[vec![1.0], vec![1.0, 2.0]]);
    }
}
