//! Exact samplers for the distributions used by the paper's analyses.
//!
//! The workspace deliberately depends only on `rand` for uniform bits;
//! everything else (geometric, Poisson, binomial, weighted choice) is
//! implemented here so the sampling logic is auditable and deterministic
//! across `rand` versions.

use rand::Rng;

/// Geometric distribution on `{1, 2, 3, …}`: number of Bernoulli(`p`)
/// trials up to and including the first success.
///
/// Sampling uses inversion: `X = ⌈ln U / ln(1−p)⌉`, which is exact for the
/// geometric law and O(1) regardless of `p`.
///
/// # Examples
///
/// ```
/// use popele_math::dist::Geometric;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = Geometric::new(0.5);
/// let x = g.sample(&mut rng);
/// assert!(x >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
    ln_q: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p ≤ 1`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "geometric requires 0 < p ≤ 1");
        Self {
            p,
            ln_q: (1.0 - p).ln(),
        }
    }

    /// Success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `1/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one sample (support `{1, 2, …}`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // U ∈ (0, 1]; using 1−random::<f64>() avoids ln(0).
        let u = 1.0 - rng.random::<f64>();
        let x = (u.ln() / self.ln_q).ceil();
        if x < 1.0 {
            1
        } else {
            x as u64
        }
    }
}

/// Poisson distribution with mean `λ`.
///
/// Knuth multiplication for `λ ≤ 30`; for larger means, the sum of two
/// independent Poissons (split recursively) keeps the products away from
/// underflow while staying exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda > 0`.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "Poisson mean must be positive");
        Self { lambda }
    }

    /// Mean `λ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut remaining = self.lambda;
        let mut total = 0u64;
        // Poisson(a + b) = Poisson(a) + Poisson(b) for independent summands.
        while remaining > 30.0 {
            total += knuth_poisson(30.0, rng);
            remaining -= 30.0;
        }
        total + knuth_poisson(remaining, rng)
    }
}

fn knuth_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let threshold = (-lambda).exp();
    let mut k = 0u64;
    let mut product = 1.0f64;
    loop {
        product *= rng.random::<f64>();
        if product <= threshold {
            return k;
        }
        k += 1;
    }
}

/// Binomial distribution `Bin(n, p)`.
///
/// Uses the exact geometric-skip method (O(np) expected time), which is fast
/// for every parameter range appearing in this workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution over `n` trials with success
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[must_use]
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "binomial requires 0 ≤ p ≤ 1");
        Self { n, p }
    }

    /// Mean `n·p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p == 0.0 || self.n == 0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        // Exploit symmetry so the expected work is n·min(p, 1−p).
        let (p, flip) = if self.p > 0.5 {
            (1.0 - self.p, true)
        } else {
            (self.p, false)
        };
        let geo = Geometric::new(p);
        let mut successes = 0u64;
        let mut position = 0u64;
        loop {
            position += geo.sample(rng);
            if position > self.n {
                break;
            }
            successes += 1;
        }
        if flip {
            self.n - successes
        } else {
            successes
        }
    }
}

/// Hypergeometric distribution: number of *marked* elements in a
/// uniform sample of `draws` elements taken **without replacement** from
/// a population of `total` elements of which `success` are marked.
///
/// This is the law of a batch draw from a count vector: picking `draws`
/// distinct agents from a population with `success` agents in a given
/// state yields a hypergeometric count for that state. Sampling uses
/// exact inversion *from the mode*: the pmf at the mode is computed once
/// (via a Lanczos log-gamma, the same f64 standard as the logarithmic
/// inversion in [`Geometric`]) and extended outward with the exact
/// two-term pmf recurrence, so the expected cost is `O(σ)` — independent
/// of the drawn value and of the population size. When the support is
/// small (`min(success, draws)` ≤ 24) a log-gamma-free path inverts
/// from 0 instead, with `pmf(0)` as a short falling-factorial product —
/// the hot case for the count engine's batch draws over near-empty
/// state classes.
///
/// # Examples
///
/// ```
/// use popele_math::dist::Hypergeometric;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// // 5 marked among 50, draw 10: between 0 and 5 marked in the sample.
/// let h = Hypergeometric::new(50, 5, 10);
/// let x = h.sample(&mut rng);
/// assert!(x <= 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hypergeometric {
    total: u64,
    success: u64,
    draws: u64,
}

/// Largest support size handled by the log-gamma-free inversion fast
/// path in [`Hypergeometric::sample`].
const SMALL_SUPPORT: u64 = 24;

impl Hypergeometric {
    /// Creates a hypergeometric distribution over a population of
    /// `total` elements with `success` marked ones, sampling `draws`
    /// elements without replacement.
    ///
    /// # Panics
    ///
    /// Panics unless `success ≤ total` and `draws ≤ total`.
    #[must_use]
    pub fn new(total: u64, success: u64, draws: u64) -> Self {
        assert!(
            success <= total,
            "hypergeometric requires success ≤ total ({success} > {total})"
        );
        assert!(
            draws <= total,
            "hypergeometric requires draws ≤ total ({draws} > {total})"
        );
        Self {
            total,
            success,
            draws,
        }
    }

    /// Mean `draws·success/total` (0 for an empty population).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.draws as f64 * self.success as f64 / self.total as f64
        }
    }

    /// Smallest attainable value, `max(0, draws + success − total)`.
    #[must_use]
    pub fn min_value(&self) -> u64 {
        (self.draws + self.success).saturating_sub(self.total)
    }

    /// Largest attainable value, `min(draws, success)`.
    #[must_use]
    pub fn max_value(&self) -> u64 {
        self.draws.min(self.success)
    }

    /// Natural log of the pmf at `k` (must be inside the support).
    fn ln_pmf(&self, k: u64) -> f64 {
        ln_choose(self.success, k) + ln_choose(self.total - self.success, self.draws - k)
            - ln_choose(self.total, self.draws)
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let lo = self.min_value();
        let hi = self.max_value();
        if lo == hi {
            return lo;
        }
        let (nn, kk, dd) = (self.total as f64, self.success as f64, self.draws as f64);
        // Small-support fast path: with min(success, draws) ≤ 24 the
        // whole support fits in ≤ 25 values, so exact inversion from 0
        // needs only the falling-factorial product for pmf(0) —
        //   pmf(0) = ∏_{i<s} (N − t − i)/(N − i),  s = min(K, d), t = max —
        // and the upward pmf ratio recurrence; no log-gamma at all.
        // This is the dominant case in the count engine's chained batch
        // draws, where most state classes hold only a handful of agents.
        if lo == 0 && hi <= SMALL_SUPPORT {
            let t = nn - kk.max(dd);
            let mut p = 1.0f64;
            for i in 0..hi {
                let i = i as f64;
                p *= (t - i) / (nn - i);
            }
            if p > 0.0 {
                let mut u = rng.random::<f64>();
                let mut k = 0u64;
                loop {
                    if u <= p || k == hi {
                        return k;
                    }
                    u -= p;
                    let kf = k as f64;
                    p *= (kk - kf) * (dd - kf) / ((kf + 1.0) * (nn - kk - dd + kf + 1.0));
                    k += 1;
                }
            }
        }
        // Mode of the pmf; clamp into the support for safety at the edges.
        let mode = (((self.draws + 1) as f64 * (self.success + 1) as f64) / (nn + 2.0)) as u64;
        let mode = mode.clamp(lo, hi);
        let mut u = rng.random::<f64>();
        let p_mode = self.ln_pmf(mode).exp();
        if u <= p_mode {
            return mode;
        }
        u -= p_mode;
        // Exact inversion over the enumeration mode, mode+1, mode−1, …
        // using the pmf ratio recurrences
        //   pmf(k+1)/pmf(k) = (K−k)(d−k) / ((k+1)(N−K−d+k+1))
        //   pmf(k−1)/pmf(k) = k(N−K−d+k) / ((K−k+1)(d−k+1)).
        let (mut down_k, mut down_p) = (mode, p_mode);
        let (mut up_k, mut up_p) = (mode, p_mode);
        loop {
            if up_k < hi {
                let k = up_k as f64;
                up_p *= (kk - k) * (dd - k) / ((k + 1.0) * (nn - kk - dd + k + 1.0));
                up_k += 1;
                if u <= up_p {
                    return up_k;
                }
                u -= up_p;
            }
            if down_k > lo {
                let k = down_k as f64;
                down_p *= k * (nn - kk - dd + k) / ((kk - k + 1.0) * (dd - k + 1.0));
                down_k -= 1;
                if u <= down_p {
                    return down_k;
                }
                u -= down_p;
            } else if up_k >= hi {
                // Floating-point leftovers (the pmf sums to 1 − ε): land
                // on the side whose tail still carries more mass.
                return if up_p >= down_p { hi } else { lo };
            }
        }
    }
}

/// Multinomial distribution: `trials` independent categorical draws with
/// probabilities proportional to `weights`, returning the per-category
/// counts.
///
/// This is the *with-replacement* counterpart of chained
/// [`Hypergeometric`] draws and converges to it when the population
/// dwarfs the batch. Sampling uses the exact conditional-binomial chain:
/// category `i` receives `Bin(remaining, wᵢ/Σ_{j≥i} wⱼ)`.
///
/// # Examples
///
/// ```
/// use popele_math::dist::Multinomial;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(2);
/// let m = Multinomial::new(100, vec![1.0, 1.0, 2.0]);
/// let counts = m.sample(&mut rng);
/// assert_eq!(counts.iter().sum::<u64>(), 100);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Multinomial {
    trials: u64,
    weights: Vec<f64>,
}

impl Multinomial {
    /// Creates a multinomial distribution over `weights.len()`
    /// categories.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty, contains a negative or non-finite
    /// value, or sums to 0.
    #[must_use]
    pub fn new(trials: u64, weights: Vec<f64>) -> Self {
        assert!(!weights.is_empty(), "multinomial weights must be nonempty");
        let mut total = 0.0f64;
        for &w in &weights {
            assert!(
                w >= 0.0 && w.is_finite(),
                "multinomial weights must be finite and nonnegative"
            );
            total += w;
        }
        assert!(total > 0.0, "multinomial weights must not all be zero");
        Self { trials, weights }
    }

    /// Number of categorical draws.
    #[must_use]
    pub fn trials(&self) -> u64 {
        self.trials
    }

    /// Mean count per category, `trials·wᵢ/Σw`.
    #[must_use]
    pub fn means(&self) -> Vec<f64> {
        let total: f64 = self.weights.iter().sum();
        self.weights
            .iter()
            .map(|w| self.trials as f64 * w / total)
            .collect()
    }

    /// Draws one count vector (sums to `trials`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> Vec<u64> {
        let mut out = vec![0u64; self.weights.len()];
        self.sample_into(rng, &mut out);
        out
    }

    /// Draws one count vector into `out` (resized to the category count).
    pub fn sample_into<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut Vec<u64>) {
        out.clear();
        out.resize(self.weights.len(), 0);
        let mut remaining = self.trials;
        let mut weight_left: f64 = self.weights.iter().sum();
        for (i, &w) in self.weights.iter().enumerate() {
            if remaining == 0 {
                break;
            }
            if i + 1 == self.weights.len() {
                out[i] = remaining;
                break;
            }
            let p = (w / weight_left).clamp(0.0, 1.0);
            let k = Binomial::new(remaining, p).sample(rng);
            out[i] = k;
            remaining -= k;
            weight_left -= w;
            if weight_left <= 0.0 {
                break;
            }
        }
    }
}

/// Lanczos approximation of `ln Γ(x)` for `x > 0`, accurate to ~1e-13 —
/// the same f64 standard as the library's logarithmic inversions.
fn ln_gamma(x: f64) -> f64 {
    // Lanczos coefficients for g = 7, n = 9.
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    const G: f64 = 7.0;
    debug_assert!(x > 0.0);
    let z = x - 1.0;
    let mut acc = 0.999_999_999_999_809_9_f64;
    for (i, &c) in COEFFS.iter().enumerate() {
        acc += c / (z + (i + 1) as f64);
    }
    let t = z + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (z + 0.5) * t.ln() - t + acc.ln()
}

/// `ln C(n, k)` for `k ≤ n` via [`ln_gamma`].
fn ln_choose(n: u64, k: u64) -> f64 {
    debug_assert!(k <= n);
    if k == 0 || k == n {
        return 0.0;
    }
    ln_gamma(n as f64 + 1.0) - ln_gamma(k as f64 + 1.0) - ln_gamma((n - k) as f64 + 1.0)
}

/// Samples an index from `0..weights.len()` proportionally to `weights`.
///
/// Linear scan; intended for small weight vectors (e.g. picking an
/// experiment arm), not hot loops.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative value, or sums to 0.
pub fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "weights must be nonempty");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0, "weights must be nonnegative");
            w
        })
        .sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_mean_var(mut f: impl FnMut(&mut SmallRng) -> f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w = Welford::new();
        for _ in 0..n {
            w.push(f(&mut rng));
        }
        (w.mean(), w.variance())
    }

    #[test]
    fn geometric_mean_and_variance() {
        let p = 0.25f64;
        let g = Geometric::new(p);
        let (mean, var) = sample_mean_var(|r| g.sample(r) as f64, 60_000, 11);
        assert!((mean - 1.0 / p).abs() < 0.1, "mean {mean}");
        let expected_var = (1.0 - p) / (p * p);
        assert!((var - expected_var).abs() / expected_var < 0.1, "var {var}");
    }

    #[test]
    fn geometric_p_one_is_constant() {
        let g = Geometric::new(1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(g.sample(&mut rng), 1);
        }
    }

    #[test]
    fn poisson_small_mean() {
        let lam = 3.5;
        let p = Poisson::new(lam);
        let (mean, var) = sample_mean_var(|r| p.sample(r) as f64, 60_000, 13);
        assert!((mean - lam).abs() < 0.1, "mean {mean}");
        assert!((var - lam).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_large_mean_splits() {
        let lam = 250.0;
        let p = Poisson::new(lam);
        let (mean, var) = sample_mean_var(|r| p.sample(r) as f64, 20_000, 17);
        assert!((mean - lam).abs() < 1.0, "mean {mean}");
        assert!((var - lam).abs() / lam < 0.1, "var {var}");
    }

    #[test]
    fn binomial_moments() {
        let b = Binomial::new(100, 0.3);
        let (mean, var) = sample_mean_var(|r| b.sample(r) as f64, 40_000, 19);
        assert!((mean - 30.0).abs() < 0.3, "mean {mean}");
        assert!((var - 21.0).abs() < 1.0, "var {var}");
    }

    #[test]
    fn binomial_high_p_uses_symmetry() {
        let b = Binomial::new(50, 0.9);
        let (mean, _) = sample_mean_var(|r| b.sample(r) as f64, 40_000, 23);
        assert!((mean - 45.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(Binomial::new(10, 0.0).sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 1.0).sample(&mut rng), 10);
        assert_eq!(Binomial::new(0, 0.5).sample(&mut rng), 0);
    }

    #[test]
    fn binomial_within_support() {
        let b = Binomial::new(20, 0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(b.sample(&mut rng) <= 20);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&weights, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn weighted_index_empty_panics() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = weighted_index(&[], &mut rng);
    }

    /// Pearson χ² statistic of observed counts against expected
    /// probabilities (cells with negligible expectation are pooled into
    /// their neighbour to keep the approximation sound).
    fn chi_square(observed: &[u64], probabilities: &[f64]) -> f64 {
        let n: u64 = observed.iter().sum();
        let mut stat = 0.0;
        let (mut pool_obs, mut pool_exp) = (0.0f64, 0.0f64);
        for (&o, &p) in observed.iter().zip(probabilities) {
            pool_obs += o as f64;
            pool_exp += p * n as f64;
            if pool_exp >= 5.0 {
                stat += (pool_obs - pool_exp) * (pool_obs - pool_exp) / pool_exp;
                pool_obs = 0.0;
                pool_exp = 0.0;
            }
        }
        if pool_exp > 0.0 {
            stat += (pool_obs - pool_exp) * (pool_obs - pool_exp) / pool_exp;
        }
        stat
    }

    /// Exact hypergeometric pmf over the full support via u128 binomial
    /// coefficients (small parameters only).
    fn exact_hyper_pmf(total: u64, success: u64, draws: u64) -> Vec<f64> {
        fn choose(n: u64, k: u64) -> u128 {
            if k > n {
                return 0;
            }
            let k = k.min(n - k);
            let mut acc: u128 = 1;
            for i in 0..k {
                acc = acc * u128::from(n - i) / u128::from(i + 1);
            }
            acc
        }
        let h = Hypergeometric::new(total, success, draws);
        let denom = choose(total, draws) as f64;
        (h.min_value()..=h.max_value())
            .map(|k| choose(success, k) as f64 * choose(total - success, draws - k) as f64 / denom)
            .collect()
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        let mut fact = 1.0f64;
        for n in 1..20u32 {
            fact *= f64::from(n);
            let lg = ln_gamma(f64::from(n) + 1.0);
            assert!((lg - fact.ln()).abs() < 1e-10, "ln Γ({}) = {lg}", n + 1);
        }
    }

    #[test]
    fn hypergeometric_moments() {
        let h = Hypergeometric::new(60, 20, 15);
        let (mean, var) = sample_mean_var(|r| h.sample(r) as f64, 60_000, 29);
        // mean = 15·20/60 = 5; var = d·p(1−p)·(N−d)/(N−1) ≈ 2.542.
        assert!((mean - 5.0).abs() < 0.05, "mean {mean}");
        let expected_var = 15.0 * (1.0 / 3.0) * (2.0 / 3.0) * 45.0 / 59.0;
        assert!(
            (var - expected_var).abs() / expected_var < 0.05,
            "var {var}"
        );
    }

    #[test]
    fn hypergeometric_chi_square_goodness_of_fit() {
        // N=20, K=8, d=10: support 0..=8, exact pmf via u128 binomials.
        let h = Hypergeometric::new(20, 8, 10);
        let pmf = exact_hyper_pmf(20, 8, 10);
        let mut rng = SmallRng::seed_from_u64(31);
        let mut counts = vec![0u64; pmf.len()];
        for _ in 0..40_000 {
            counts[h.sample(&mut rng) as usize] += 1;
        }
        // df ≤ 8; χ²₀.₉₉₉(8) ≈ 26.1 — allow slack for pooling.
        let stat = chi_square(&counts, &pmf);
        assert!(stat < 30.0, "χ² = {stat}, counts {counts:?}");
    }

    #[test]
    fn hypergeometric_tight_support_chi_square() {
        // N=10, K=7, d=8: support pinched to 5..=7 (k = n−... boundary).
        let h = Hypergeometric::new(10, 7, 8);
        assert_eq!((h.min_value(), h.max_value()), (5, 7));
        let pmf = exact_hyper_pmf(10, 7, 8);
        let mut rng = SmallRng::seed_from_u64(37);
        let mut counts = vec![0u64; pmf.len()];
        for _ in 0..30_000 {
            let x = h.sample(&mut rng);
            assert!((5..=7).contains(&x), "outside support: {x}");
            counts[(x - 5) as usize] += 1;
        }
        let stat = chi_square(&counts, &pmf);
        assert!(stat < 21.0, "χ² = {stat}, counts {counts:?}"); // χ²₀.₉₉₉(2) ≈ 13.8
    }

    #[test]
    fn hypergeometric_boundary_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        // k = 0 draws, and no marked elements: always 0.
        assert_eq!(Hypergeometric::new(10, 4, 0).sample(&mut rng), 0);
        assert_eq!(Hypergeometric::new(10, 0, 7).sample(&mut rng), 0);
        // k = n: drawing everything yields every marked element.
        assert_eq!(Hypergeometric::new(10, 4, 10).sample(&mut rng), 4);
        // All marked: every draw is marked.
        assert_eq!(Hypergeometric::new(10, 10, 6).sample(&mut rng), 6);
        // Empty population.
        assert_eq!(Hypergeometric::new(0, 0, 0).sample(&mut rng), 0);
    }

    #[test]
    fn hypergeometric_huge_population_mean() {
        // Exercises the mode-inversion walk at count-engine scale.
        let h = Hypergeometric::new(1_000_000_000, 300_000_000, 10_000);
        let (mean, var) = sample_mean_var(|r| h.sample(r) as f64, 4_000, 41);
        assert!((mean - 3_000.0).abs() < 3.0, "mean {mean}");
        // Nearly binomial at this ratio: var ≈ 10_000·0.3·0.7 = 2100.
        assert!((var - 2_100.0).abs() / 2_100.0 < 0.1, "var {var}");
    }

    #[test]
    fn hypergeometric_small_class_in_huge_population() {
        // The count engine's hot case: a state class holding a handful
        // of agents inside a batch draw over millions — served by the
        // log-gamma-free small-support path. mean = d·K/N = 0.005.
        let h = Hypergeometric::new(10_000_000, 5, 10_000);
        let (mean, _) = sample_mean_var(|r| h.sample(r) as f64, 400_000, 43);
        assert!((mean - 0.005).abs() < 0.0006, "mean {mean}");
        // And the same path with the mean pushed to the top of the
        // support (d ≈ N): all five marked agents are almost surely hit.
        let h = Hypergeometric::new(10_000_000, 5, 9_999_000);
        let mut rng = SmallRng::seed_from_u64(47);
        let mut total = 0u64;
        for _ in 0..2_000 {
            let x = h.sample(&mut rng);
            assert!(x <= 5);
            total += x;
        }
        assert!((total as f64 / 2_000.0 - 4.9995).abs() < 0.01);
    }

    #[test]
    fn hypergeometric_deterministic_across_seeds() {
        let h = Hypergeometric::new(500, 120, 60);
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        let mut c = SmallRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..200).map(|_| h.sample(&mut a)).collect();
        let ys: Vec<u64> = (0..200).map(|_| h.sample(&mut b)).collect();
        let zs: Vec<u64> = (0..200).map(|_| h.sample(&mut c)).collect();
        assert_eq!(xs, ys, "same seed must reproduce the sample path");
        assert_ne!(xs, zs, "different seeds must diverge");
    }

    #[test]
    #[should_panic(expected = "success ≤ total")]
    fn hypergeometric_rejects_success_above_total() {
        let _ = Hypergeometric::new(5, 6, 2);
    }

    #[test]
    #[should_panic(expected = "draws ≤ total")]
    fn hypergeometric_rejects_draws_above_total() {
        let _ = Hypergeometric::new(5, 2, 6);
    }

    #[test]
    fn multinomial_moments() {
        let m = Multinomial::new(100, vec![1.0, 2.0, 3.0, 4.0]);
        for (i, expected) in m.means().iter().enumerate() {
            let (mean, var) = sample_mean_var(|r| m.sample(r)[i] as f64, 20_000, 43 + i as u64);
            assert!(
                (mean - expected).abs() / expected < 0.03,
                "mean[{i}] {mean}"
            );
            let p = expected / 100.0;
            let expected_var = 100.0 * p * (1.0 - p);
            assert!(
                (var - expected_var).abs() / expected_var < 0.1,
                "var[{i}] {var}"
            );
        }
    }

    #[test]
    fn multinomial_chi_square_goodness_of_fit() {
        // Aggregate all cell counts across many draws: each of the
        // trials·samples categorical draws is i.i.d. with law w/Σw.
        let weights = vec![0.5, 1.5, 2.0, 1.0];
        let m = Multinomial::new(25, weights.clone());
        let mut rng = SmallRng::seed_from_u64(47);
        let mut counts = vec![0u64; 4];
        for _ in 0..4_000 {
            for (c, k) in counts.iter_mut().zip(m.sample(&mut rng)) {
                *c += k;
            }
        }
        let total: f64 = weights.iter().sum();
        let probs: Vec<f64> = weights.iter().map(|w| w / total).collect();
        let stat = chi_square(&counts, &probs);
        assert!(stat < 17.0, "χ² = {stat}, counts {counts:?}"); // χ²₀.₉₉₉(3) ≈ 16.3
    }

    #[test]
    fn multinomial_counts_sum_to_trials() {
        let m = Multinomial::new(77, vec![1.0, 0.0, 2.5, 0.1]);
        let mut rng = SmallRng::seed_from_u64(53);
        for _ in 0..500 {
            let counts = m.sample(&mut rng);
            assert_eq!(counts.iter().sum::<u64>(), 77);
            assert_eq!(counts[1], 0, "zero-weight category must stay empty");
        }
    }

    #[test]
    fn multinomial_boundary_cases() {
        let mut rng = SmallRng::seed_from_u64(3);
        // Single category takes everything.
        assert_eq!(Multinomial::new(42, vec![3.0]).sample(&mut rng), vec![42]);
        // Zero trials.
        assert_eq!(
            Multinomial::new(0, vec![1.0, 1.0]).sample(&mut rng),
            vec![0, 0]
        );
    }

    #[test]
    fn multinomial_deterministic_across_seeds() {
        let m = Multinomial::new(60, vec![1.0, 2.0, 3.0]);
        let mut a = SmallRng::seed_from_u64(11);
        let mut b = SmallRng::seed_from_u64(11);
        let xs: Vec<Vec<u64>> = (0..50).map(|_| m.sample(&mut a)).collect();
        let ys: Vec<Vec<u64>> = (0..50).map(|_| m.sample(&mut b)).collect();
        assert_eq!(xs, ys);
    }

    #[test]
    fn multinomial_agrees_with_chained_hypergeometric_limit() {
        // With the population far larger than the batch, without-
        // replacement (hypergeometric chain) and with-replacement
        // (multinomial) batch composition must agree in mean.
        let population = [600_000_000u64, 300_000_000, 100_000_000];
        let total: u64 = population.iter().sum();
        let draws = 1_000u64;
        let m = Multinomial::new(draws, population.iter().map(|&c| c as f64).collect());
        let mut rng = SmallRng::seed_from_u64(59);
        let mut hyper_sum = [0u64; 3];
        let mut multi_sum = [0u64; 3];
        for _ in 0..2_000 {
            let (mut pool, mut need) = (total, draws);
            for (i, &c) in population.iter().enumerate() {
                let k = Hypergeometric::new(pool, c, need).sample(&mut rng);
                hyper_sum[i] += k;
                pool -= c;
                need -= k;
            }
            for (s, k) in multi_sum.iter_mut().zip(m.sample(&mut rng)) {
                *s += k;
            }
        }
        for i in 0..3 {
            let (h, m) = (hyper_sum[i] as f64, multi_sum[i] as f64);
            assert!((h - m).abs() / m < 0.01, "category {i}: {h} vs {m}");
        }
    }

    /// Exact binomial pmf over `0..=n` via u128 binomial coefficients
    /// (small parameters only).
    fn exact_binom_pmf(n: u64, p: f64) -> Vec<f64> {
        fn choose(n: u64, k: u64) -> u128 {
            let k = k.min(n - k);
            let mut acc: u128 = 1;
            for i in 0..k {
                acc = acc * u128::from(n - i) / u128::from(i + 1);
            }
            acc
        }
        (0..=n)
            .map(|k| choose(n, k) as f64 * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32))
            .collect()
    }

    #[test]
    fn multinomial_marginals_match_exact_binomial_chi_square() {
        // The chained-binomial sampler must give each category its
        // exact marginal law Bin(trials, wᵢ/Σw) — not just the right
        // aggregate frequencies. This pins the conditional chain itself:
        // an error in the renormalization `wᵢ/Σ_{j≥i} wⱼ` preserves the
        // aggregate means but skews the per-category histograms.
        let weights = vec![0.2, 1.3, 2.5];
        let total: f64 = weights.iter().sum();
        let trials = 12u64;
        let m = Multinomial::new(trials, weights.clone());
        let mut rng = SmallRng::seed_from_u64(61);
        let mut hists = vec![vec![0u64; trials as usize + 1]; weights.len()];
        for _ in 0..30_000 {
            for (hist, k) in hists.iter_mut().zip(m.sample(&mut rng)) {
                hist[k as usize] += 1;
            }
        }
        for (i, (hist, w)) in hists.iter().zip(&weights).enumerate() {
            let pmf = exact_binom_pmf(trials, w / total);
            let stat = chi_square(hist, &pmf);
            // df ≤ 12; χ²₀.₉₉₉(12) ≈ 32.9 — allow slack for pooling.
            assert!(stat < 36.0, "category {i}: χ² = {stat}, hist {hist:?}");
        }
    }

    #[test]
    fn multinomial_joint_chi_square_small_support() {
        // Joint goodness of fit over *whole count vectors*: 3 draws
        // into 3 categories has only 10 compositions, so the exact
        // joint pmf trials!/(∏kᵢ!)·∏pᵢ^kᵢ is enumerable. Marginals
        // cannot see a broken dependence structure between categories;
        // this can.
        let weights = [1.0f64, 2.0, 1.0];
        let total: f64 = weights.iter().sum();
        let m = Multinomial::new(3, weights.to_vec());
        let mut support = Vec::new(); // (composition, probability)
        for a in 0..=3u64 {
            for b in 0..=(3 - a) {
                let c = 3 - a - b;
                let coeff = (6 / (fact(a) * fact(b) * fact(c))) as f64;
                let p = coeff
                    * (weights[0] / total).powi(a as i32)
                    * (weights[1] / total).powi(b as i32)
                    * (weights[2] / total).powi(c as i32);
                support.push(([a, b, c], p));
            }
        }
        fn fact(k: u64) -> u64 {
            (1..=k).product::<u64>().max(1)
        }
        let mut rng = SmallRng::seed_from_u64(67);
        let mut counts = vec![0u64; support.len()];
        for _ in 0..40_000 {
            let s = m.sample(&mut rng);
            let idx = support
                .iter()
                .position(|(comp, _)| comp[..] == s[..])
                .expect("sample outside enumerated support");
            counts[idx] += 1;
        }
        let probs: Vec<f64> = support.iter().map(|&(_, p)| p).collect();
        let stat = chi_square(&counts, &probs);
        // df ≤ 9; χ²₀.₉₉₉(9) ≈ 27.9.
        assert!(stat < 30.0, "joint χ² = {stat}, counts {counts:?}");
    }

    #[test]
    fn multinomial_covariance_is_negative_product() {
        // Cov(Xᵢ, Xⱼ) = −n·pᵢ·pⱼ for i ≠ j: the categories compete for
        // the same draws. A sampler that drew categories independently
        // (right marginals, zero covariance) passes every marginal test
        // and fails this one.
        let m = Multinomial::new(40, vec![1.0, 1.0, 2.0]);
        let mut rng = SmallRng::seed_from_u64(71);
        let samples = 40_000;
        let (mut sx, mut sy, mut sxy) = (0.0f64, 0.0f64, 0.0f64);
        for _ in 0..samples {
            let s = m.sample(&mut rng);
            let (x, y) = (s[0] as f64, s[1] as f64);
            sx += x;
            sy += y;
            sxy += x * y;
        }
        let nf = samples as f64;
        let cov = sxy / nf - (sx / nf) * (sy / nf);
        let expected = -40.0 * 0.25 * 0.25; // = −2.5
        assert!(
            (cov - expected).abs() < 0.15,
            "cov {cov}, expected {expected}"
        );
    }

    #[test]
    fn multinomial_interleaved_zero_weight_categories() {
        // Zero-weight categories in leading, interior and trailing
        // positions: the leading one exercises Bin(n, 0) draws, the
        // trailing one the weight-exhaustion break — and none of them
        // may ever receive a count or disturb their neighbours' means.
        let m = Multinomial::new(50, vec![0.0, 2.0, 0.0, 1.0, 0.0]);
        let mut rng = SmallRng::seed_from_u64(73);
        let mut sums = [0u64; 5];
        let draws = 20_000;
        for _ in 0..draws {
            let s = m.sample(&mut rng);
            assert_eq!(s.iter().sum::<u64>(), 50);
            for (acc, k) in sums.iter_mut().zip(s) {
                *acc += k;
            }
        }
        assert_eq!(sums[0], 0);
        assert_eq!(sums[2], 0);
        assert_eq!(sums[4], 0);
        let mean1 = sums[1] as f64 / draws as f64;
        let mean3 = sums[3] as f64 / draws as f64;
        assert!((mean1 - 50.0 * 2.0 / 3.0).abs() < 0.2, "mean1 {mean1}");
        assert!((mean3 - 50.0 / 3.0).abs() < 0.2, "mean3 {mean3}");
    }

    #[test]
    fn multinomial_sample_into_matches_sample_and_resizes() {
        // `sample_into` is the count engine's allocation-free entry
        // point: same RNG stream ⇒ same counts as `sample`, and any
        // stale buffer contents (wrong length, old values) are
        // overwritten.
        let m = Multinomial::new(33, vec![1.0, 4.0, 2.0]);
        let mut a = SmallRng::seed_from_u64(79);
        let mut b = SmallRng::seed_from_u64(79);
        let mut out = vec![999u64; 7];
        for _ in 0..100 {
            m.sample_into(&mut a, &mut out);
            assert_eq!(out, m.sample(&mut b));
            assert_eq!(out.len(), 3);
            out.push(999); // stale garbage for the next round
        }
    }

    #[test]
    fn multinomial_zero_trials_edge_cases() {
        // trials = 0 across category shapes, including zero weights:
        // every count vector is all-zero with the right length, and no
        // RNG draws are consumed (the stream stays untouched).
        let mut rng = SmallRng::seed_from_u64(83);
        let before = rng.clone();
        for weights in [vec![1.0], vec![0.0, 1.0], vec![2.0, 0.0, 5.0]] {
            let len = weights.len();
            let counts = Multinomial::new(0, weights).sample(&mut rng);
            assert_eq!(counts, vec![0u64; len]);
        }
        let mut before = before;
        assert_eq!(rng.random::<u64>(), before.random::<u64>());
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn multinomial_empty_weights_panics() {
        let _ = Multinomial::new(1, vec![]);
    }

    #[test]
    #[should_panic(expected = "not all be zero")]
    fn multinomial_zero_weights_panic() {
        let _ = Multinomial::new(1, vec![0.0, 0.0]);
    }
}
