//! Exact samplers for the distributions used by the paper's analyses.
//!
//! The workspace deliberately depends only on `rand` for uniform bits;
//! everything else (geometric, Poisson, binomial, weighted choice) is
//! implemented here so the sampling logic is auditable and deterministic
//! across `rand` versions.

use rand::Rng;

/// Geometric distribution on `{1, 2, 3, …}`: number of Bernoulli(`p`)
/// trials up to and including the first success.
///
/// Sampling uses inversion: `X = ⌈ln U / ln(1−p)⌉`, which is exact for the
/// geometric law and O(1) regardless of `p`.
///
/// # Examples
///
/// ```
/// use popele_math::dist::Geometric;
/// use rand::rngs::SmallRng;
/// use rand::SeedableRng;
///
/// let mut rng = SmallRng::seed_from_u64(1);
/// let g = Geometric::new(0.5);
/// let x = g.sample(&mut rng);
/// assert!(x >= 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Geometric {
    p: f64,
    ln_q: f64,
}

impl Geometric {
    /// Creates a geometric distribution with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < p ≤ 1`.
    #[must_use]
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p <= 1.0, "geometric requires 0 < p ≤ 1");
        Self {
            p,
            ln_q: (1.0 - p).ln(),
        }
    }

    /// Success probability.
    #[must_use]
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Mean `1/p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        1.0 / self.p
    }

    /// Draws one sample (support `{1, 2, …}`).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p >= 1.0 {
            return 1;
        }
        // U ∈ (0, 1]; using 1−random::<f64>() avoids ln(0).
        let u = 1.0 - rng.random::<f64>();
        let x = (u.ln() / self.ln_q).ceil();
        if x < 1.0 {
            1
        } else {
            x as u64
        }
    }
}

/// Poisson distribution with mean `λ`.
///
/// Knuth multiplication for `λ ≤ 30`; for larger means, the sum of two
/// independent Poissons (split recursively) keeps the products away from
/// underflow while staying exact.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Poisson {
    lambda: f64,
}

impl Poisson {
    /// Creates a Poisson distribution with mean `lambda`.
    ///
    /// # Panics
    ///
    /// Panics unless `lambda > 0`.
    #[must_use]
    pub fn new(lambda: f64) -> Self {
        assert!(lambda > 0.0, "Poisson mean must be positive");
        Self { lambda }
    }

    /// Mean `λ`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.lambda
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        let mut remaining = self.lambda;
        let mut total = 0u64;
        // Poisson(a + b) = Poisson(a) + Poisson(b) for independent summands.
        while remaining > 30.0 {
            total += knuth_poisson(30.0, rng);
            remaining -= 30.0;
        }
        total + knuth_poisson(remaining, rng)
    }
}

fn knuth_poisson<R: Rng + ?Sized>(lambda: f64, rng: &mut R) -> u64 {
    if lambda <= 0.0 {
        return 0;
    }
    let threshold = (-lambda).exp();
    let mut k = 0u64;
    let mut product = 1.0f64;
    loop {
        product *= rng.random::<f64>();
        if product <= threshold {
            return k;
        }
        k += 1;
    }
}

/// Binomial distribution `Bin(n, p)`.
///
/// Uses the exact geometric-skip method (O(np) expected time), which is fast
/// for every parameter range appearing in this workspace.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Binomial {
    n: u64,
    p: f64,
}

impl Binomial {
    /// Creates a binomial distribution over `n` trials with success
    /// probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[must_use]
    pub fn new(n: u64, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "binomial requires 0 ≤ p ≤ 1");
        Self { n, p }
    }

    /// Mean `n·p`.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.n as f64 * self.p
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> u64 {
        if self.p == 0.0 || self.n == 0 {
            return 0;
        }
        if self.p == 1.0 {
            return self.n;
        }
        // Exploit symmetry so the expected work is n·min(p, 1−p).
        let (p, flip) = if self.p > 0.5 {
            (1.0 - self.p, true)
        } else {
            (self.p, false)
        };
        let geo = Geometric::new(p);
        let mut successes = 0u64;
        let mut position = 0u64;
        loop {
            position += geo.sample(rng);
            if position > self.n {
                break;
            }
            successes += 1;
        }
        if flip {
            self.n - successes
        } else {
            successes
        }
    }
}

/// Samples an index from `0..weights.len()` proportionally to `weights`.
///
/// Linear scan; intended for small weight vectors (e.g. picking an
/// experiment arm), not hot loops.
///
/// # Panics
///
/// Panics if `weights` is empty, contains a negative value, or sums to 0.
pub fn weighted_index<R: Rng + ?Sized>(weights: &[f64], rng: &mut R) -> usize {
    assert!(!weights.is_empty(), "weights must be nonempty");
    let total: f64 = weights
        .iter()
        .map(|&w| {
            assert!(w >= 0.0, "weights must be nonnegative");
            w
        })
        .sum();
    assert!(total > 0.0, "weights must not all be zero");
    let mut target = rng.random::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::Welford;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    fn sample_mean_var(mut f: impl FnMut(&mut SmallRng) -> f64, n: usize, seed: u64) -> (f64, f64) {
        let mut rng = SmallRng::seed_from_u64(seed);
        let mut w = Welford::new();
        for _ in 0..n {
            w.push(f(&mut rng));
        }
        (w.mean(), w.variance())
    }

    #[test]
    fn geometric_mean_and_variance() {
        let p = 0.25f64;
        let g = Geometric::new(p);
        let (mean, var) = sample_mean_var(|r| g.sample(r) as f64, 60_000, 11);
        assert!((mean - 1.0 / p).abs() < 0.1, "mean {mean}");
        let expected_var = (1.0 - p) / (p * p);
        assert!((var - expected_var).abs() / expected_var < 0.1, "var {var}");
    }

    #[test]
    fn geometric_p_one_is_constant() {
        let g = Geometric::new(1.0);
        let mut rng = SmallRng::seed_from_u64(0);
        for _ in 0..50 {
            assert_eq!(g.sample(&mut rng), 1);
        }
    }

    #[test]
    fn poisson_small_mean() {
        let lam = 3.5;
        let p = Poisson::new(lam);
        let (mean, var) = sample_mean_var(|r| p.sample(r) as f64, 60_000, 13);
        assert!((mean - lam).abs() < 0.1, "mean {mean}");
        assert!((var - lam).abs() < 0.2, "var {var}");
    }

    #[test]
    fn poisson_large_mean_splits() {
        let lam = 250.0;
        let p = Poisson::new(lam);
        let (mean, var) = sample_mean_var(|r| p.sample(r) as f64, 20_000, 17);
        assert!((mean - lam).abs() < 1.0, "mean {mean}");
        assert!((var - lam).abs() / lam < 0.1, "var {var}");
    }

    #[test]
    fn binomial_moments() {
        let b = Binomial::new(100, 0.3);
        let (mean, var) = sample_mean_var(|r| b.sample(r) as f64, 40_000, 19);
        assert!((mean - 30.0).abs() < 0.3, "mean {mean}");
        assert!((var - 21.0).abs() < 1.0, "var {var}");
    }

    #[test]
    fn binomial_high_p_uses_symmetry() {
        let b = Binomial::new(50, 0.9);
        let (mean, _) = sample_mean_var(|r| b.sample(r) as f64, 40_000, 23);
        assert!((mean - 45.0).abs() < 0.2, "mean {mean}");
    }

    #[test]
    fn binomial_edge_cases() {
        let mut rng = SmallRng::seed_from_u64(1);
        assert_eq!(Binomial::new(10, 0.0).sample(&mut rng), 0);
        assert_eq!(Binomial::new(10, 1.0).sample(&mut rng), 10);
        assert_eq!(Binomial::new(0, 0.5).sample(&mut rng), 0);
    }

    #[test]
    fn binomial_within_support() {
        let b = Binomial::new(20, 0.5);
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            assert!(b.sample(&mut rng) <= 20);
        }
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = SmallRng::seed_from_u64(5);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[weighted_index(&weights, &mut rng)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn weighted_index_empty_panics() {
        let mut rng = SmallRng::seed_from_u64(5);
        let _ = weighted_index(&[], &mut rng);
    }
}
