//! Concentration inequalities from Section 2.3 of the paper.
//!
//! Each function evaluates the *probability bound* stated by the
//! corresponding lemma, so that experiments and tests can compare empirical
//! tail frequencies against the analytical guarantee:
//!
//! * Lemma 1 — Poisson tail bounds ([`poisson_tail`]);
//! * Lemma 2 — multiplicative Chernoff bounds for sums of Bernoulli
//!   variables ([`chernoff_upper`], [`chernoff_lower`]);
//! * Lemma 3 — Janson's tail bounds for sums of geometric variables
//!   ([`geometric_sum_tail`]);
//! * Lemma 5 — the edge-sequence sampling bound
//!   ([`edge_sequence_tail`]), the special case of Lemma 3 with
//!   `Yᵢ ~ Geom(1/m)` used throughout Sections 3 and 6.

/// The rate function `c(λ) = λ − 1 − ln λ` used by Lemmas 3 and 5.
///
/// `c` is nonnegative, strictly convex, and zero only at `λ = 1`.
///
/// # Panics
///
/// Panics if `lambda <= 0`.
#[must_use]
pub fn rate_c(lambda: f64) -> f64 {
    assert!(lambda > 0.0, "rate function defined for positive λ");
    lambda - 1.0 - lambda.ln()
}

/// Direction of a tail event.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Tail {
    /// `Pr[X ≥ threshold]`.
    Upper,
    /// `Pr[X ≤ threshold]`.
    Lower,
}

/// Lemma 1: tail bound for `X ~ Poisson(λ)` at `c·λ`.
///
/// For `tail == Upper` requires `c ≥ 1` and returns the bound
/// `exp(−λ(c−1)²/c)`; for `tail == Lower` requires `c ≤ 1` and returns
/// `exp(−λ(1−c)²/(2−c))`.
///
/// # Panics
///
/// Panics if `lambda <= 0`, or if `c` is on the wrong side of 1 for the
/// requested tail.
#[must_use]
pub fn poisson_tail(lambda: f64, c: f64, tail: Tail) -> f64 {
    assert!(lambda > 0.0, "Poisson mean must be positive");
    match tail {
        Tail::Upper => {
            assert!(c >= 1.0, "upper tail requires c ≥ 1");
            (-lambda * (c - 1.0) * (c - 1.0) / c).exp()
        }
        Tail::Lower => {
            assert!(c <= 1.0, "lower tail requires c ≤ 1");
            (-lambda * (1.0 - c) * (1.0 - c) / (2.0 - c)).exp()
        }
    }
}

/// Lemma 2(a): `Pr[X ≥ (1+λ)·E[X]] ≤ exp(−E[X]·λ²/3)` for a sum of
/// independent Bernoulli variables with mean `expectation`.
///
/// The paper states the bound for `λ ≥ 1`; it in fact holds for all
/// `0 ≤ λ ≤ 1` as well (standard Chernoff), and we accept any `λ ≥ 0`.
///
/// # Panics
///
/// Panics if `expectation < 0` or `lambda < 0`.
#[must_use]
pub fn chernoff_upper(expectation: f64, lambda: f64) -> f64 {
    assert!(expectation >= 0.0 && lambda >= 0.0);
    (-expectation * lambda * lambda / 3.0).exp()
}

/// Lemma 2(b): `Pr[X ≤ (1−λ)·E[X]] ≤ exp(−E[X]·λ²/2)` for `0 ≤ λ ≤ 1`.
///
/// # Panics
///
/// Panics if `expectation < 0` or `lambda` is outside `[0, 1]`.
#[must_use]
pub fn chernoff_lower(expectation: f64, lambda: f64) -> f64 {
    assert!(expectation >= 0.0);
    assert!((0.0..=1.0).contains(&lambda));
    (-expectation * lambda * lambda / 2.0).exp()
}

/// Lemma 3 (Janson): tail bound for a sum `X = Y₁ + … + Y_k` of independent
/// geometric variables at `λ·E[X]`.
///
/// `p_min` is the smallest success probability among the `Yᵢ` and
/// `expectation` is `E[X]`. Both tails are bounded by
/// `exp(−p_min·E[X]·c(λ))`, with `λ ≥ 1` for the upper tail and
/// `0 < λ ≤ 1` for the lower tail.
///
/// # Panics
///
/// Panics if arguments are out of range.
#[must_use]
pub fn geometric_sum_tail(p_min: f64, expectation: f64, lambda: f64, tail: Tail) -> f64 {
    assert!((0.0..=1.0).contains(&p_min) && p_min > 0.0);
    assert!(expectation >= 0.0);
    match tail {
        Tail::Upper => assert!(lambda >= 1.0, "upper tail requires λ ≥ 1"),
        Tail::Lower => assert!(
            lambda > 0.0 && lambda <= 1.0,
            "lower tail requires 0 < λ ≤ 1"
        ),
    }
    (-p_min * expectation * rate_c(lambda)).exp()
}

/// Lemma 5: tail bound for the number of steps `X(ρ)` until a uniform
/// edge scheduler on an `m`-edge graph has sampled a fixed sequence of `k`
/// edges in order. `E[X(ρ)] = k·m` and both tails are bounded by
/// `exp(−k·c(λ))`.
///
/// # Panics
///
/// Panics if `k == 0` or `lambda` is on the wrong side of 1 for the tail.
#[must_use]
pub fn edge_sequence_tail(k: u64, lambda: f64, tail: Tail) -> f64 {
    assert!(k > 0, "sequence must be nonempty");
    match tail {
        Tail::Upper => assert!(lambda >= 1.0),
        Tail::Lower => assert!(lambda > 0.0 && lambda <= 1.0),
    }
    (-(k as f64) * rate_c(lambda)).exp()
}

/// The `n`-th harmonic number `H_n = Σ_{i=1..n} 1/i`.
///
/// Exact summation for `n ≤ 10⁶`, asymptotic expansion beyond
/// (error < 1e-12).
#[must_use]
pub fn harmonic(n: u64) -> f64 {
    if n == 0 {
        return 0.0;
    }
    if n <= 1_000_000 {
        (1..=n).map(|i| 1.0 / i as f64).sum()
    } else {
        const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
        let x = n as f64;
        x.ln() + EULER_MASCHERONI + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x)
    }
}

/// Binary logarithm convenience (`log₂ x`).
///
/// # Panics
///
/// Panics if `x <= 0`.
#[must_use]
pub fn log2(x: f64) -> f64 {
    assert!(x > 0.0);
    x.log2()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::Geometric;
    use rand::rngs::SmallRng;
    use rand::SeedableRng;

    #[test]
    fn rate_c_properties() {
        assert_eq!(rate_c(1.0), 0.0);
        assert!(rate_c(2.0) > 0.0);
        assert!(rate_c(0.5) > 0.0);
        // Convexity spot check: midpoint below chord.
        let (a, b) = (0.5, 2.0);
        assert!(rate_c((a + b) / 2.0) < (rate_c(a) + rate_c(b)) / 2.0);
    }

    #[test]
    fn poisson_tail_at_one_is_one() {
        assert_eq!(poisson_tail(10.0, 1.0, Tail::Upper), 1.0);
        assert_eq!(poisson_tail(10.0, 1.0, Tail::Lower), 1.0);
    }

    #[test]
    fn poisson_tail_decreasing_in_lambda() {
        assert!(poisson_tail(5.0, 2.0, Tail::Upper) < poisson_tail(5.0, 1.5, Tail::Upper));
        assert!(poisson_tail(5.0, 0.2, Tail::Lower) < poisson_tail(5.0, 0.8, Tail::Lower));
    }

    #[test]
    fn chernoff_bounds_trivial_at_zero() {
        assert_eq!(chernoff_upper(10.0, 0.0), 1.0);
        assert_eq!(chernoff_lower(10.0, 0.0), 1.0);
    }

    #[test]
    fn edge_sequence_is_geometric_sum_with_k_over_km() {
        // Lemma 5 is Lemma 3 applied with p = 1/m and E[X] = km, so
        // p·E[X] = k and the bounds must agree.
        let (k, m, lambda) = (17u64, 100.0f64, 1.7);
        let lhs = edge_sequence_tail(k, lambda, Tail::Upper);
        let rhs = geometric_sum_tail(1.0 / m, k as f64 * m, lambda, Tail::Upper);
        assert!((lhs - rhs).abs() < 1e-12);
    }

    #[test]
    fn harmonic_small_values() {
        assert_eq!(harmonic(0), 0.0);
        assert_eq!(harmonic(1), 1.0);
        assert!((harmonic(2) - 1.5).abs() < 1e-12);
        assert!((harmonic(4) - (1.0 + 0.5 + 1.0 / 3.0 + 0.25)).abs() < 1e-12);
    }

    #[test]
    fn harmonic_asymptotic_matches_exact() {
        // The asymptotic branch must agree with the exact branch near the
        // switchover.
        let exact: f64 = (1..=1_000_000u64).map(|i| 1.0 / i as f64).sum();
        let x = 1_000_001f64;
        const EULER_MASCHERONI: f64 = 0.577_215_664_901_532_9;
        let approx = x.ln() + EULER_MASCHERONI + 1.0 / (2.0 * x) - 1.0 / (12.0 * x * x);
        assert!((exact + 1.0 / x - approx).abs() < 1e-9);
    }

    /// Empirical validation of Lemma 3: sample sums of geometrics and check
    /// the observed tail frequency never exceeds the analytic bound (with
    /// slack for Monte-Carlo noise).
    #[test]
    fn geometric_sum_bound_holds_empirically() {
        let mut rng = SmallRng::seed_from_u64(7);
        let p = 0.2f64;
        let k = 30usize;
        let expectation = k as f64 / p;
        let geo = Geometric::new(p);
        let trials = 4000;
        let lambda = 1.5;
        let threshold = lambda * expectation;
        let mut exceed = 0usize;
        for _ in 0..trials {
            let x: u64 = (0..k).map(|_| geo.sample(&mut rng)).sum();
            if x as f64 >= threshold {
                exceed += 1;
            }
        }
        let empirical = exceed as f64 / trials as f64;
        let bound = geometric_sum_tail(p, expectation, lambda, Tail::Upper);
        assert!(
            empirical <= bound + 0.02,
            "empirical {empirical} should be below bound {bound}"
        );
    }
}
