//! Least-squares fitting utilities.
//!
//! The experiment harness verifies asymptotic claims of the form
//! "stabilization time grows like `Θ(n^a polylog n)`" by fitting a power law
//! `y = C·x^a` in log–log space across a sweep of sizes and comparing the
//! fitted exponent `a` against the paper's prediction.

/// Result of an ordinary least-squares line fit `y = slope·x + intercept`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LineFit {
    /// Fitted slope.
    pub slope: f64,
    /// Fitted intercept.
    pub intercept: f64,
    /// Coefficient of determination `R²` (1 = perfect fit).
    pub r_squared: f64,
}

/// Fits a line through `(x, y)` points by ordinary least squares.
///
/// # Panics
///
/// Panics if fewer than two points are given or if all `x` coincide.
#[must_use]
pub fn linear_fit(points: &[(f64, f64)]) -> LineFit {
    assert!(points.len() >= 2, "need at least two points to fit a line");
    let n = points.len() as f64;
    let sx: f64 = points.iter().map(|p| p.0).sum();
    let sy: f64 = points.iter().map(|p| p.1).sum();
    let sxx: f64 = points.iter().map(|p| p.0 * p.0).sum();
    let sxy: f64 = points.iter().map(|p| p.0 * p.1).sum();
    let denom = n * sxx - sx * sx;
    assert!(
        denom.abs() > 1e-12,
        "x values are degenerate; cannot fit a line"
    );
    let slope = (n * sxy - sx * sy) / denom;
    let intercept = (sy - slope * sx) / n;

    let mean_y = sy / n;
    let ss_tot: f64 = points.iter().map(|p| (p.1 - mean_y).powi(2)).sum();
    let ss_res: f64 = points
        .iter()
        .map(|p| (p.1 - (slope * p.0 + intercept)).powi(2))
        .sum();
    let r_squared = if ss_tot <= 1e-300 {
        1.0
    } else {
        1.0 - ss_res / ss_tot
    };
    LineFit {
        slope,
        intercept,
        r_squared,
    }
}

/// A fitted power law `y = coefficient · x^exponent`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PowerFit {
    /// Fitted exponent `a`.
    pub exponent: f64,
    /// Fitted multiplicative constant `C`.
    pub coefficient: f64,
    /// `R²` of the underlying log–log line fit.
    pub r_squared: f64,
}

impl PowerFit {
    /// Evaluates the fitted law at `x`.
    #[must_use]
    pub fn eval(&self, x: f64) -> f64 {
        self.coefficient * x.powf(self.exponent)
    }
}

/// Fits `y = C·x^a` by least squares in log–log space.
///
/// Points with non-positive coordinates are rejected.
///
/// # Panics
///
/// Panics if fewer than two points are given or any coordinate is ≤ 0.
#[must_use]
pub fn power_fit(points: &[(f64, f64)]) -> PowerFit {
    assert!(
        points.len() >= 2,
        "need at least two points for a power fit"
    );
    let logged: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 0.0 && y > 0.0, "power fit requires positive data");
            (x.ln(), y.ln())
        })
        .collect();
    let line = linear_fit(&logged);
    PowerFit {
        exponent: line.slope,
        coefficient: line.intercept.exp(),
        r_squared: line.r_squared,
    }
}

/// Fits the exponent of `y = C·x^a·(ln x)^b` with `b` fixed, i.e. fits a
/// power law to `y / (ln x)^b`.
///
/// Useful for checking claims like `Θ(n log n)` (fit with `b = 1` and expect
/// exponent ≈ 1) without the polylog factor contaminating the estimate.
///
/// # Panics
///
/// Panics on fewer than two points, non-positive data, or `x ≤ 1`.
#[must_use]
pub fn power_fit_with_log_factor(points: &[(f64, f64)], log_power: f64) -> PowerFit {
    let adjusted: Vec<(f64, f64)> = points
        .iter()
        .map(|&(x, y)| {
            assert!(x > 1.0, "x must exceed 1 so ln x > 0");
            (x, y / x.ln().powf(log_power))
        })
        .collect();
    power_fit(&adjusted)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn exact_line_recovered() {
        let pts: Vec<(f64, f64)> = (1..=10).map(|i| (i as f64, 3.0 * i as f64 + 2.0)).collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-10);
        assert!((fit.intercept - 2.0).abs() < 1e-9);
        assert!((fit.r_squared - 1.0).abs() < 1e-12);
    }

    #[test]
    fn noisy_line_reasonable() {
        let pts: Vec<(f64, f64)> = (0..20)
            .map(|i| {
                let x = i as f64;
                let noise = if i % 2 == 0 { 0.5 } else { -0.5 };
                (x, 2.0 * x + 1.0 + noise)
            })
            .collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 2.0).abs() < 0.05);
        assert!(fit.r_squared > 0.99);
    }

    #[test]
    fn power_law_recovered() {
        let pts: Vec<(f64, f64)> = (1..=8)
            .map(|i| {
                let x = (1 << i) as f64;
                (x, 5.0 * x.powf(2.0))
            })
            .collect();
        let fit = power_fit(&pts);
        assert!((fit.exponent - 2.0).abs() < 1e-10);
        assert!((fit.coefficient - 5.0).abs() < 1e-6);
        assert!((fit.eval(10.0) - 500.0).abs() < 1e-6);
    }

    #[test]
    fn log_factor_fit_isolates_polynomial_part() {
        // y = 2 n ln n should fit exponent ≈ 1 once the log factor is
        // divided out, but > 1 without the correction.
        let pts: Vec<(f64, f64)> = (4..=12)
            .map(|i| {
                let n = (1u64 << i) as f64;
                (n, 2.0 * n * n.ln())
            })
            .collect();
        let raw = power_fit(&pts);
        let corrected = power_fit_with_log_factor(&pts, 1.0);
        assert!(raw.exponent > 1.03);
        assert!((corrected.exponent - 1.0).abs() < 1e-9);
        assert!((corrected.coefficient - 2.0).abs() < 1e-6);
    }

    #[test]
    #[should_panic(expected = "positive data")]
    fn power_fit_rejects_nonpositive() {
        let _ = power_fit(&[(1.0, 0.0), (2.0, 1.0)]);
    }

    #[test]
    #[should_panic(expected = "degenerate")]
    fn linear_fit_rejects_constant_x() {
        let _ = linear_fit(&[(1.0, 0.0), (1.0, 1.0)]);
    }

    #[test]
    fn r_squared_one_for_constant_y() {
        let fit = linear_fit(&[(0.0, 5.0), (1.0, 5.0), (2.0, 5.0)]);
        assert!(fit.slope.abs() < 1e-12);
        assert_eq!(fit.r_squared, 1.0);
    }
}
