//! Probability tools, tail bounds, samplers, statistics and small linear
//! algebra used throughout the `popele` workspace.
//!
//! This crate implements, from scratch, the probabilistic toolkit of
//! Section 2.3 of *Near-Optimal Leader Election in Population Protocols on
//! Graphs* (PODC 2022):
//!
//! * [`bounds`] — the concentration inequalities of Lemmas 1–3 and the
//!   edge-sequence bound of Lemma 5, as directly evaluable functions;
//! * [`dist`] — exact samplers for geometric, Poisson, binomial and
//!   categorical distributions (the workspace only depends on `rand` for raw
//!   uniform bits);
//! * [`stats`] — streaming summary statistics, quantiles and confidence
//!   intervals used by the experiment harness;
//! * [`fit`] — least-squares fitting, in particular log–log exponent fits
//!   used to verify asymptotic growth rates ("is this curve `Θ(n²)`?");
//! * [`linalg`] — a dense matrix with Gaussian elimination, used to compute
//!   exact hitting times of random walks on small graphs;
//! * [`rng`] — deterministic seed derivation so that every experiment is
//!   reproducible from a single master seed.
//!
//! # Examples
//!
//! ```
//! use popele_math::stats::Summary;
//!
//! let s: Summary = [1.0, 2.0, 3.0, 4.0].iter().copied().collect();
//! assert_eq!(s.mean(), 2.5);
//! ```

#![warn(missing_docs)]

pub mod bounds;
pub mod dist;
pub mod fit;
pub mod linalg;
pub mod rng;
pub mod stats;

pub use bounds::{chernoff_lower, chernoff_upper, geometric_sum_tail, poisson_tail};
pub use fit::PowerFit;
pub use stats::Summary;
