//! Deterministic seed derivation.
//!
//! Every stochastic component of the workspace (schedulers, random graphs,
//! Monte-Carlo trials) takes an explicit `u64` seed. This module provides a
//! splitmix64-based *seed sequence* so that a single master seed
//! deterministically fans out into independent child seeds: trial `i` of
//! experiment `e` always receives the same seed, regardless of thread
//! scheduling.

use rand::rngs::SmallRng;
use rand::SeedableRng;

/// One round of the splitmix64 output function.
///
/// Splitmix64 is a bijective mixer with excellent avalanche behaviour; it is
/// the standard way to expand one 64-bit seed into a stream of independent
/// seeds (it seeds xoshiro in reference implementations).
#[inline]
#[must_use]
pub fn splitmix64(state: u64) -> u64 {
    let mut z = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic stream of child seeds derived from a master seed.
///
/// # Examples
///
/// ```
/// use popele_math::rng::SeedSeq;
///
/// let mut seq = SeedSeq::new(42);
/// let a = seq.next_seed();
/// let b = seq.next_seed();
/// assert_ne!(a, b);
/// // Restarting from the same master seed reproduces the stream.
/// assert_eq!(SeedSeq::new(42).next_seed(), a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SeedSeq {
    state: u64,
}

impl SeedSeq {
    /// Creates a seed sequence from a master seed.
    #[must_use]
    pub fn new(master: u64) -> Self {
        Self { state: master }
    }

    /// Returns the next child seed.
    pub fn next_seed(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        splitmix64(self.state)
    }

    /// Returns the `i`-th child seed without advancing the sequence.
    ///
    /// `child(i)` equals the `i+1`-th value produced by [`Self::next_seed`].
    #[must_use]
    pub fn child(&self, i: u64) -> u64 {
        let state = self
            .state
            .wrapping_add(0x9E37_79B9_7F4A_7C15u64.wrapping_mul(i.wrapping_add(1)));
        splitmix64(state)
    }

    /// Returns a fast RNG seeded with the `i`-th child seed.
    #[must_use]
    pub fn child_rng(&self, i: u64) -> SmallRng {
        SmallRng::seed_from_u64(self.child(i))
    }
}

/// Convenience constructor for the workspace's standard fast RNG.
#[must_use]
pub fn small_rng(seed: u64) -> SmallRng {
    SmallRng::seed_from_u64(seed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;

    #[test]
    fn splitmix_known_values_differ() {
        // Bijectivity sanity: distinct inputs give distinct outputs.
        let outs: Vec<u64> = (0..1000u64).map(splitmix64).collect();
        let mut sorted = outs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), outs.len());
    }

    #[test]
    fn child_matches_next() {
        let seq = SeedSeq::new(7);
        let mut adv = SeedSeq::new(7);
        for i in 0..20 {
            assert_eq!(seq.child(i), adv.next_seed());
        }
    }

    #[test]
    fn child_rng_is_deterministic() {
        let seq = SeedSeq::new(99);
        let mut a = seq.child_rng(3);
        let mut b = seq.child_rng(3);
        for _ in 0..16 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn distinct_children_are_distinct() {
        let seq = SeedSeq::new(1);
        assert_ne!(seq.child(0), seq.child(1));
        assert_ne!(seq.child(1), seq.child(2));
    }
}
