//! Summary statistics for experiment results.
//!
//! [`Summary`] retains the full sample (experiments here are at most a few
//! thousand trials) and provides exact quantiles alongside the usual moment
//! statistics. [`Welford`] is a constant-memory alternative for the hot
//! loops of the engine where only mean/variance are needed.

use std::fmt;

/// Exact summary of a finite sample.
///
/// # Examples
///
/// ```
/// use popele_math::stats::Summary;
///
/// let s = Summary::from_slice(&[2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]);
/// assert_eq!(s.len(), 8);
/// assert_eq!(s.mean(), 5.0);
/// assert!((s.std_dev() - 2.138).abs() < 1e-3);
/// assert_eq!(s.median(), 4.5);
/// ```
#[derive(Debug, Clone, Default, PartialEq)]
pub struct Summary {
    sorted: Vec<f64>,
    sum: f64,
}

impl Summary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds a summary from a slice of observations.
    ///
    /// # Panics
    ///
    /// Panics if any observation is NaN.
    #[must_use]
    pub fn from_slice(values: &[f64]) -> Self {
        values.iter().copied().collect()
    }

    /// Inserts one observation.
    ///
    /// # Panics
    ///
    /// Panics if `value` is NaN.
    pub fn push(&mut self, value: f64) {
        assert!(!value.is_nan(), "summary observations must not be NaN");
        let idx = self.sorted.partition_point(|&x| x < value);
        self.sorted.insert(idx, value);
        self.sum += value;
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Sample mean; 0 for an empty sample.
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.sorted.is_empty() {
            0.0
        } else {
            self.sum / self.sorted.len() as f64
        }
    }

    /// Unbiased sample variance (Bessel-corrected); 0 for samples of size < 2.
    #[must_use]
    pub fn variance(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return 0.0;
        }
        let m = self.mean();
        self.sorted.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / (n - 1) as f64
    }

    /// Sample standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Smallest observation; 0 for an empty sample.
    #[must_use]
    pub fn min(&self) -> f64 {
        self.sorted.first().copied().unwrap_or(0.0)
    }

    /// Largest observation; 0 for an empty sample.
    #[must_use]
    pub fn max(&self) -> f64 {
        self.sorted.last().copied().unwrap_or(0.0)
    }

    /// Exact `q`-quantile with linear interpolation, `q ∈ [0, 1]`.
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty or `q` is outside `[0, 1]`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> f64 {
        assert!(!self.sorted.is_empty(), "quantile of empty sample");
        assert!((0.0..=1.0).contains(&q), "quantile level must be in [0,1]");
        let n = self.sorted.len();
        if n == 1 {
            return self.sorted[0];
        }
        let pos = q * (n - 1) as f64;
        let lo = pos.floor() as usize;
        let hi = pos.ceil() as usize;
        let frac = pos - lo as f64;
        self.sorted[lo] * (1.0 - frac) + self.sorted[hi] * frac
    }

    /// Median (0.5-quantile).
    ///
    /// # Panics
    ///
    /// Panics if the sample is empty.
    #[must_use]
    pub fn median(&self) -> f64 {
        self.quantile(0.5)
    }

    /// Half-width of a normal-approximation 95% confidence interval on the
    /// mean (`1.96·s/√n`); 0 for samples of size < 2.
    #[must_use]
    pub fn ci95_halfwidth(&self) -> f64 {
        let n = self.sorted.len();
        if n < 2 {
            return 0.0;
        }
        1.96 * self.std_dev() / (n as f64).sqrt()
    }

    /// Read-only view of the sorted observations.
    #[must_use]
    pub fn sorted_values(&self) -> &[f64] {
        &self.sorted
    }
}

impl FromIterator<f64> for Summary {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut sorted: Vec<f64> = iter.into_iter().collect();
        assert!(
            sorted.iter().all(|x| !x.is_nan()),
            "summary observations must not be NaN"
        );
        let sum = sorted.iter().sum();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN"));
        Self { sorted, sum }
    }
}

impl Extend<f64> for Summary {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        for v in iter {
            self.push(v);
        }
    }
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "(empty)");
        }
        write!(
            f,
            "n={} mean={:.4e} ±{:.2e} median={:.4e} [{:.3e}, {:.3e}]",
            self.len(),
            self.mean(),
            self.ci95_halfwidth(),
            self.median(),
            self.min(),
            self.max()
        )
    }
}

/// Constant-memory running mean/variance (Welford's algorithm).
///
/// # Examples
///
/// ```
/// use popele_math::stats::Welford;
///
/// let mut w = Welford::new();
/// for x in [1.0, 2.0, 3.0] {
///     w.push(x);
/// }
/// assert_eq!(w.mean(), 2.0);
/// assert_eq!(w.variance(), 1.0);
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq)]
pub struct Welford {
    count: u64,
    mean: f64,
    m2: f64,
}

impl Welford {
    /// Creates an empty accumulator.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds one observation.
    pub fn push(&mut self, value: f64) {
        self.count += 1;
        let delta = value - self.mean;
        self.mean += delta / self.count as f64;
        self.m2 += delta * (value - self.mean);
    }

    /// Number of observations.
    #[must_use]
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Running mean; 0 when empty.
    #[must_use]
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased running variance; 0 for fewer than two observations.
    #[must_use]
    pub fn variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Running standard deviation.
    #[must_use]
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let total = self.count + other.count;
        let delta = other.mean - self.mean;
        self.mean += delta * other.count as f64 / total as f64;
        self.m2 +=
            other.m2 + delta * delta * (self.count as f64 * other.count as f64) / total as f64;
        self.count = total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_basic_moments() {
        let s = Summary::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean(), 3.0);
        assert_eq!(s.variance(), 2.5);
        assert_eq!(s.min(), 1.0);
        assert_eq!(s.max(), 5.0);
        assert_eq!(s.median(), 3.0);
    }

    #[test]
    fn summary_push_keeps_sorted() {
        let mut s = Summary::new();
        for v in [5.0, 1.0, 3.0, 2.0, 4.0] {
            s.push(v);
        }
        assert_eq!(s.sorted_values(), &[1.0, 2.0, 3.0, 4.0, 5.0]);
        assert_eq!(s.mean(), 3.0);
    }

    #[test]
    fn quantile_interpolates() {
        let s = Summary::from_slice(&[0.0, 10.0]);
        assert_eq!(s.quantile(0.0), 0.0);
        assert_eq!(s.quantile(0.25), 2.5);
        assert_eq!(s.quantile(1.0), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn quantile_empty_panics() {
        let _ = Summary::new().quantile(0.5);
    }

    #[test]
    fn empty_summary_defaults() {
        let s = Summary::new();
        assert!(s.is_empty());
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.std_dev(), 0.0);
        assert_eq!(s.ci95_halfwidth(), 0.0);
    }

    #[test]
    fn welford_matches_summary() {
        let data = [3.1, 4.1, 5.9, 2.6, 5.3, 5.8, 9.7, 9.3];
        let s = Summary::from_slice(&data);
        let mut w = Welford::new();
        for &x in &data {
            w.push(x);
        }
        assert!((s.mean() - w.mean()).abs() < 1e-12);
        assert!((s.variance() - w.variance()).abs() < 1e-12);
    }

    #[test]
    fn welford_merge_matches_sequential() {
        let data: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = Welford::new();
        for &x in &data {
            whole.push(x);
        }
        let mut left = Welford::new();
        let mut right = Welford::new();
        for &x in &data[..37] {
            left.push(x);
        }
        for &x in &data[37..] {
            right.push(x);
        }
        left.merge(&right);
        assert_eq!(left.count(), whole.count());
        assert!((left.mean() - whole.mean()).abs() < 1e-10);
        assert!((left.variance() - whole.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_merge_with_empty() {
        let mut a = Welford::new();
        a.push(1.0);
        a.push(2.0);
        let b = Welford::new();
        let before = a;
        a.merge(&b);
        assert_eq!(a, before);
        let mut c = Welford::new();
        c.merge(&a);
        assert_eq!(c, a);
    }

    #[test]
    fn display_formats() {
        let s = Summary::from_slice(&[1.0, 2.0]);
        let text = format!("{s}");
        assert!(text.contains("n=2"));
        assert_eq!(format!("{}", Summary::new()), "(empty)");
    }
}
