//! Property-based tests for the numerics crate.

use popele_math::bounds::{harmonic, rate_c};
use popele_math::dist::{Binomial, Geometric};
use popele_math::fit::{linear_fit, power_fit};
use popele_math::linalg::Matrix;
use popele_math::rng::{small_rng, SeedSeq};
use popele_math::stats::{Summary, Welford};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Summary and Welford agree on mean and variance for any sample.
    #[test]
    fn summary_welford_agree(values in prop::collection::vec(-1e6f64..1e6, 2..200)) {
        let summary = Summary::from_slice(&values);
        let mut welford = Welford::new();
        for &v in &values {
            welford.push(v);
        }
        let scale = summary.variance().abs().max(1.0);
        prop_assert!((summary.mean() - welford.mean()).abs() < 1e-6);
        prop_assert!((summary.variance() - welford.variance()).abs() / scale < 1e-6);
    }

    /// Quantiles are monotone and bounded by min/max.
    #[test]
    fn quantiles_monotone(values in prop::collection::vec(-1e3f64..1e3, 1..100),
                          q1 in 0.0f64..1.0, q2 in 0.0f64..1.0) {
        let s = Summary::from_slice(&values);
        let (lo, hi) = (q1.min(q2), q1.max(q2));
        prop_assert!(s.quantile(lo) <= s.quantile(hi) + 1e-12);
        prop_assert!(s.quantile(0.0) >= s.min() - 1e-12);
        prop_assert!(s.quantile(1.0) <= s.max() + 1e-12);
    }

    /// Welford merge is order-independent (associativity up to fp noise).
    #[test]
    fn welford_merge_commutes(a in prop::collection::vec(-100f64..100.0, 1..50),
                              b in prop::collection::vec(-100f64..100.0, 1..50)) {
        let fill = |xs: &[f64]| {
            let mut w = Welford::new();
            for &x in xs {
                w.push(x);
            }
            w
        };
        let mut ab = fill(&a);
        ab.merge(&fill(&b));
        let mut ba = fill(&b);
        ba.merge(&fill(&a));
        prop_assert_eq!(ab.count(), ba.count());
        prop_assert!((ab.mean() - ba.mean()).abs() < 1e-9);
        prop_assert!((ab.variance() - ba.variance()).abs() < 1e-6);
    }

    /// Power-law fits recover planted exponents exactly on clean data.
    #[test]
    fn power_fit_recovers_planted(exp in -2.0f64..3.0, coeff in 0.1f64..50.0) {
        let points: Vec<(f64, f64)> = (1..8)
            .map(|i| {
                let x = f64::from(i) * 2.0;
                (x, coeff * x.powf(exp))
            })
            .collect();
        let fit = power_fit(&points);
        prop_assert!((fit.exponent - exp).abs() < 1e-8, "fit {} vs {}", fit.exponent, exp);
        prop_assert!((fit.coefficient - coeff).abs() / coeff < 1e-6);
        prop_assert!(fit.r_squared > 1.0 - 1e-9);
    }

    /// Linear fit residual orthogonality: slope of residuals is ~0.
    #[test]
    fn linear_fit_residuals_flat(seed in any::<u64>()) {
        let mut rng = small_rng(seed);
        use rand::Rng;
        let points: Vec<(f64, f64)> = (0..30)
            .map(|i| (f64::from(i), 3.0 * f64::from(i) + rng.random::<f64>() * 10.0))
            .collect();
        let fit = linear_fit(&points);
        let residuals: Vec<(f64, f64)> = points
            .iter()
            .map(|&(x, y)| (x, y - (fit.slope * x + fit.intercept)))
            .collect();
        let rfit = linear_fit(&residuals);
        prop_assert!(rfit.slope.abs() < 1e-8, "residual slope {}", rfit.slope);
    }

    /// Geometric samples are ≥ 1 and their empirical mean tracks 1/p.
    #[test]
    fn geometric_mean_tracks(p in 0.05f64..1.0, seed in any::<u64>()) {
        let g = Geometric::new(p);
        let mut rng = small_rng(seed);
        let n = 4000;
        let mut sum = 0u64;
        for _ in 0..n {
            let x = g.sample(&mut rng);
            prop_assert!(x >= 1);
            sum += x;
        }
        let mean = sum as f64 / f64::from(n);
        let expected = 1.0 / p;
        // 4000 samples: allow 5 standard errors.
        let se = ((1.0 - p).max(0.0)).sqrt() / p / f64::from(n).sqrt();
        prop_assert!((mean - expected).abs() < 5.0 * se + 0.05,
            "mean {} expected {}", mean, expected);
    }

    /// Binomial samples stay in the support.
    #[test]
    fn binomial_support(n in 0u64..200, p in 0.0f64..=1.0, seed in any::<u64>()) {
        let b = Binomial::new(n, p);
        let mut rng = small_rng(seed);
        for _ in 0..100 {
            prop_assert!(b.sample(&mut rng) <= n);
        }
    }

    /// Gaussian elimination: A·solve(A, b) = b for diagonally dominant A.
    #[test]
    fn solve_roundtrip(seed in any::<u64>(), n in 2usize..15) {
        let mut rng = small_rng(seed);
        use rand::Rng;
        let mut a = Matrix::zeros(n, n);
        for i in 0..n {
            let mut row_sum = 0.0;
            for j in 0..n {
                if i != j {
                    let v = rng.random::<f64>() * 2.0 - 1.0;
                    a[(i, j)] = v;
                    row_sum += v.abs();
                }
            }
            a[(i, i)] = row_sum + 1.0; // strictly diagonally dominant
        }
        let b: Vec<f64> = (0..n).map(|_| rng.random::<f64>() * 10.0 - 5.0).collect();
        let x = a.clone().solve(&b).expect("dominant matrix is nonsingular");
        let back = a.mul_vec(&x);
        for (u, v) in back.iter().zip(&b) {
            prop_assert!((u - v).abs() < 1e-7);
        }
    }

    /// Harmonic numbers are increasing and ln n ≤ H_n ≤ ln n + 1.
    #[test]
    fn harmonic_bounds(n in 1u64..100_000) {
        let h = harmonic(n);
        let ln = (n as f64).ln();
        prop_assert!(h >= ln, "H_{n} = {h} < ln n = {ln}");
        prop_assert!(h <= ln + 1.0, "H_{n} = {h} > ln n + 1");
        prop_assert!(harmonic(n + 1) > h);
    }

    /// The rate function c(λ) is nonnegative with unique zero at 1.
    #[test]
    fn rate_c_nonnegative(lambda in 0.01f64..20.0) {
        let c = rate_c(lambda);
        prop_assert!(c >= 0.0);
        if (lambda - 1.0).abs() > 0.05 {
            prop_assert!(c > 0.0);
        }
    }

    /// Seed sequences: child seeds are pairwise distinct for small indices.
    #[test]
    fn seed_children_distinct(master in any::<u64>()) {
        let seq = SeedSeq::new(master);
        let children: Vec<u64> = (0..64).map(|i| seq.child(i)).collect();
        let mut sorted = children.clone();
        sorted.sort_unstable();
        sorted.dedup();
        prop_assert_eq!(sorted.len(), children.len());
    }
}
