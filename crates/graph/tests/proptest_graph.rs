//! Property-based tests for graph construction and structure.

use popele_graph::properties::{diameter, diameter_double_sweep, is_connected};
use popele_graph::renitent::{cycle_cover, lemma38};
use popele_graph::traversal::{bfs_distances, connected_components, UNREACHABLE};
use popele_graph::{families, random, Graph, GraphBuilder};
use proptest::prelude::*;

fn arbitrary_graph() -> impl Strategy<Value = Graph> {
    (
        1u32..=30,
        prop::collection::vec((0u32..30, 0u32..30), 0..80),
    )
        .prop_map(|(n, pairs)| {
            let mut b = GraphBuilder::new(n);
            let mut seen = std::collections::HashSet::new();
            for (u, v) in pairs {
                let (u, v) = (u % n, v % n);
                if u != v && seen.insert((u.min(v), u.max(v))) {
                    b.add_edge(u, v).unwrap();
                }
            }
            b.build().unwrap()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Handshake lemma and adjacency symmetry for arbitrary graphs.
    #[test]
    fn handshake_and_symmetry(g in arbitrary_graph()) {
        let degree_sum: u64 = g.nodes().map(|v| u64::from(g.degree(v))).sum();
        prop_assert_eq!(degree_sum, 2 * g.num_edges() as u64);
        for &(u, v) in g.edges() {
            prop_assert!(u < v);
            prop_assert!(g.has_edge(u, v) && g.has_edge(v, u));
        }
    }

    /// BFS distances satisfy the triangle property along edges:
    /// |d(u) − d(v)| ≤ 1 for every edge {u, v} in the source's component.
    #[test]
    fn bfs_lipschitz_along_edges(g in arbitrary_graph()) {
        let dist = bfs_distances(&g, 0);
        for &(u, v) in g.edges() {
            let (du, dv) = (dist[u as usize], dist[v as usize]);
            if du != UNREACHABLE && dv != UNREACHABLE {
                prop_assert!(du.abs_diff(dv) <= 1, "edge ({u},{v}): {du} vs {dv}");
            } else {
                prop_assert_eq!(du, dv, "one endpoint reachable, the other not");
            }
        }
    }

    /// Component labels partition the nodes consistently with edges.
    #[test]
    fn components_respect_edges(g in arbitrary_graph()) {
        let (count, labels) = connected_components(&g);
        prop_assert!(count >= 1);
        prop_assert!(labels.iter().all(|&l| (l as usize) < count));
        for &(u, v) in g.edges() {
            prop_assert_eq!(labels[u as usize], labels[v as usize]);
        }
        prop_assert_eq!(count == 1, is_connected(&g));
    }

    /// Double-sweep never exceeds the exact diameter (it is a lower
    /// bound realized by an actual shortest path).
    #[test]
    fn double_sweep_lower_bounds(n in 4u32..40, seed in any::<u64>()) {
        let g = random::erdos_renyi_connected(n, 0.3, seed, 400);
        prop_assert!(diameter_double_sweep(&g) <= diameter(&g));
    }

    /// G(n, m) produces exactly m distinct edges.
    #[test]
    fn gnm_edge_count_exact(n in 2u32..40, seed in any::<u64>()) {
        let max_m = u64::from(n) * u64::from(n - 1) / 2;
        let m = seed % (max_m + 1);
        let g = random::gnm(n, m, seed);
        prop_assert_eq!(g.num_edges() as u64, m);
    }

    /// Random regular graphs are simple and exactly d-regular.
    #[test]
    fn random_regular_valid(half_n in 3u32..15, d in 2u32..5, seed in any::<u64>()) {
        let n = 2 * half_n; // even so n·d is always even
        prop_assume!(d < n);
        let g = random::random_regular(n, d, seed);
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.max_degree(), d);
        prop_assert_eq!(g.num_edges() as u64, u64::from(n) * u64::from(d) / 2);
    }

    /// Lemma 38 covers verify for arbitrary connected bases and radii.
    #[test]
    fn lemma38_cover_valid(base_n in 3u32..8, ell_extra in 0u32..6) {
        let base = families::clique(base_n); // diameter 1
        let ell = 1 + ell_extra;
        let (g, cover) = lemma38(&base, 0, ell);
        prop_assert!(is_connected(&g));
        prop_assert!(cover.verify(&g).is_empty(), "{:?}", cover.verify(&g));
        prop_assert!(cover.disjoint_pair(&g).is_some());
        // Size accounting: 4 copies + 4 paths of 2ℓ−1 internal nodes.
        prop_assert_eq!(g.num_nodes(), 4 * base_n + 4 * (2 * ell - 1));
    }

    /// Cycle covers verify for all admissible sizes.
    #[test]
    fn cycle_cover_valid(quarter in 2u32..40) {
        let n = 4 * quarter;
        let (g, cover) = cycle_cover(n);
        prop_assert!(cover.verify(&g).is_empty());
    }

    /// Torus family: always 4-regular with n = side² nodes, diameter
    /// side (two independent wrap distances of side/2 each).
    #[test]
    fn torus_structure(side in 3u32..12) {
        let g = families::torus(side, side);
        prop_assert!(g.is_regular());
        prop_assert_eq!(g.max_degree(), 4);
        prop_assert_eq!(g.num_nodes(), side * side);
        prop_assert_eq!(diameter(&g), 2 * (side / 2));
    }

    /// Hypercube diameter equals its dimension.
    #[test]
    fn hypercube_diameter(d in 1u32..8) {
        let g = families::hypercube(d);
        prop_assert_eq!(diameter(&g), d);
        prop_assert_eq!(g.num_nodes(), 1 << d);
    }

    /// Disjoint union preserves structure on both sides.
    #[test]
    fn disjoint_union_preserves(a in arbitrary_graph(), b in arbitrary_graph()) {
        let (u, offset) = a.disjoint_union(&b);
        prop_assert_eq!(u.num_nodes(), a.num_nodes() + b.num_nodes());
        prop_assert_eq!(u.num_edges(), a.num_edges() + b.num_edges());
        for &(x, y) in a.edges() {
            prop_assert!(u.has_edge(x, y));
        }
        for &(x, y) in b.edges() {
            prop_assert!(u.has_edge(x + offset, y + offset));
        }
        // No cross edges.
        for v in 0..a.num_nodes() {
            for &w in u.neighbors(v) {
                prop_assert!(w < a.num_nodes());
            }
        }
    }
}
