//! Breadth-first traversal primitives shared by the property computations
//! and the dynamics crate.

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Sentinel distance for unreachable nodes.
pub const UNREACHABLE: u32 = u32::MAX;

/// BFS distances from `source`; unreachable nodes get [`UNREACHABLE`].
///
/// # Panics
///
/// Panics if `source` is out of range.
///
/// # Examples
///
/// ```
/// use popele_graph::families;
/// use popele_graph::traversal::bfs_distances;
///
/// let g = families::path(4);
/// assert_eq!(bfs_distances(&g, 0), vec![0, 1, 2, 3]);
/// ```
#[must_use]
pub fn bfs_distances(g: &Graph, source: NodeId) -> Vec<u32> {
    assert!(source < g.num_nodes(), "source out of range");
    let mut dist = vec![UNREACHABLE; g.num_nodes() as usize];
    dist[source as usize] = 0;
    let mut queue = VecDeque::with_capacity(64);
    queue.push_back(source);
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// BFS distances from a set of sources (distance to the nearest source).
///
/// # Panics
///
/// Panics if `sources` is empty or contains an out-of-range node.
#[must_use]
pub fn multi_source_bfs(g: &Graph, sources: &[NodeId]) -> Vec<u32> {
    assert!(!sources.is_empty(), "need at least one source");
    let mut dist = vec![UNREACHABLE; g.num_nodes() as usize];
    let mut queue = VecDeque::with_capacity(sources.len());
    for &s in sources {
        assert!(s < g.num_nodes(), "source out of range");
        if dist[s as usize] == UNREACHABLE {
            dist[s as usize] = 0;
            queue.push_back(s);
        }
    }
    while let Some(v) = queue.pop_front() {
        let dv = dist[v as usize];
        for &w in g.neighbors(v) {
            if dist[w as usize] == UNREACHABLE {
                dist[w as usize] = dv + 1;
                queue.push_back(w);
            }
        }
    }
    dist
}

/// Eccentricity of `source`: the largest finite BFS distance, or
/// [`UNREACHABLE`] if some node is unreachable.
#[must_use]
pub fn eccentricity(g: &Graph, source: NodeId) -> u32 {
    let dist = bfs_distances(g, source);
    let mut ecc = 0;
    for &d in &dist {
        if d == UNREACHABLE {
            return UNREACHABLE;
        }
        ecc = ecc.max(d);
    }
    ecc
}

/// Connected components as a label vector: `labels[v]` is the component
/// index of `v`, components numbered `0..count` in order of smallest member.
#[must_use]
pub fn connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let n = g.num_nodes() as usize;
    let mut labels = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut queue = VecDeque::new();
    for start in 0..n as u32 {
        if labels[start as usize] != u32::MAX {
            continue;
        }
        labels[start as usize] = count;
        queue.push_back(start);
        while let Some(v) = queue.pop_front() {
            for &w in g.neighbors(v) {
                if labels[w as usize] == u32::MAX {
                    labels[w as usize] = count;
                    queue.push_back(w);
                }
            }
        }
        count += 1;
    }
    (count as usize, labels)
}

/// Nodes within BFS distance `r` of any node in `set` — the
/// `B_r(U)` neighbourhood of Section 2.1, returned sorted.
///
/// # Panics
///
/// Panics if `set` is empty or contains an out-of-range node.
#[must_use]
pub fn ball(g: &Graph, set: &[NodeId], r: u32) -> Vec<NodeId> {
    let dist = multi_source_bfs(g, set);
    let mut out: Vec<NodeId> = dist
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE && d <= r)
        .map(|(v, _)| v as NodeId)
        .collect();
    out.sort_unstable();
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::graph::Graph;

    #[test]
    fn distances_on_cycle() {
        let g = families::cycle(6);
        let d = bfs_distances(&g, 0);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1]);
    }

    #[test]
    fn unreachable_marked() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let d = bfs_distances(&g, 0);
        assert_eq!(d[1], 1);
        assert_eq!(d[2], UNREACHABLE);
        assert_eq!(eccentricity(&g, 0), UNREACHABLE);
    }

    #[test]
    fn multi_source_takes_minimum() {
        let g = families::path(7);
        let d = multi_source_bfs(&g, &[0, 6]);
        assert_eq!(d, vec![0, 1, 2, 3, 2, 1, 0]);
    }

    #[test]
    fn multi_source_dedups_sources() {
        let g = families::path(3);
        let d = multi_source_bfs(&g, &[0, 0]);
        assert_eq!(d, vec![0, 1, 2]);
    }

    #[test]
    fn eccentricity_path_endpoint() {
        let g = families::path(5);
        assert_eq!(eccentricity(&g, 0), 4);
        assert_eq!(eccentricity(&g, 2), 2);
    }

    #[test]
    fn components_counted() {
        let g = Graph::from_edges(5, &[(0, 1), (3, 4)]).unwrap();
        let (count, labels) = connected_components(&g);
        assert_eq!(count, 3);
        assert_eq!(labels[0], labels[1]);
        assert_eq!(labels[3], labels[4]);
        assert_ne!(labels[0], labels[2]);
        assert_ne!(labels[2], labels[3]);
    }

    #[test]
    fn ball_grows_with_radius() {
        let g = families::cycle(8);
        assert_eq!(ball(&g, &[0], 0), vec![0]);
        assert_eq!(ball(&g, &[0], 1), vec![0, 1, 7]);
        assert_eq!(ball(&g, &[0], 2), vec![0, 1, 2, 6, 7]);
        assert_eq!(ball(&g, &[0], 4).len(), 8);
    }

    #[test]
    fn ball_of_set() {
        let g = families::path(9);
        assert_eq!(ball(&g, &[0, 8], 1), vec![0, 1, 7, 8]);
    }
}
