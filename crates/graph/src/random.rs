//! Random graph models.
//!
//! * Erdős–Rényi `G(n, p)` and `G(n, m)` — the average-case setting of
//!   Section 7 (Theorems 40 and 46 concern dense `G(n, p)` with constant
//!   `p`);
//! * random `d`-regular graphs via the configuration model with rejection —
//!   the regular-graph setting of Corollary 25.
//!
//! All generators take an explicit seed and are fully deterministic.

use crate::graph::{Graph, GraphBuilder};
use crate::properties::is_connected;
use popele_math::dist::Geometric;
use popele_math::rng::small_rng;
use rand::seq::SliceRandom;
use rand::Rng;

/// Samples `G ~ G(n, p)`: every unordered pair becomes an edge
/// independently with probability `p`.
///
/// Uses geometric skipping over the `\binom{n}{2}` pair indices, so the
/// running time is `O(n + m)` rather than `O(n²)` for sparse graphs.
///
/// # Panics
///
/// Panics unless `n ≥ 1` and `0 ≤ p ≤ 1`.
#[must_use]
pub fn erdos_renyi(n: u32, p: f64, seed: u64) -> Graph {
    assert!(n >= 1, "G(n,p) requires n ≥ 1");
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut b = GraphBuilder::new(n);
    if p > 0.0 && n >= 2 {
        let mut rng = small_rng(seed);
        let total_pairs = u64::from(n) * (u64::from(n) - 1) / 2;
        if p >= 1.0 {
            for u in 0..n {
                for v in u + 1..n {
                    b.add_edge(u, v).expect("valid by construction");
                }
            }
        } else {
            let geo = Geometric::new(p);
            // Skip to each successive present pair.
            let mut index = geo.sample(&mut rng) - 1; // 0-based index of first edge
            while index < total_pairs {
                let (u, v) = pair_from_index(index, n);
                b.add_edge(u, v).expect("valid by construction");
                index += geo.sample(&mut rng);
            }
        }
    }
    b.build().expect("valid by construction")
}

/// Maps a linear index in `0..C(n,2)` to the corresponding unordered pair
/// in lexicographic order: `(0,1), (0,2), …, (0,n−1), (1,2), …`.
fn pair_from_index(index: u64, n: u32) -> (u32, u32) {
    let n = u64::from(n);
    // Row u starts at offset u*n − u(u+3)/2 ... we find u by scanning rows
    // arithmetically: remaining pairs after row u is (n−1−u) per row.
    // Solve via the quadratic formula on cumulative counts.
    // cum(u) = u*n − u(u+1)/2 pairs precede row u.
    let idx = index;
    // Binary search is simplest and branch-predictable for our sizes.
    let (mut lo, mut hi) = (0u64, n - 1);
    while lo < hi {
        let mid = (lo + hi).div_ceil(2);
        let cum = mid * n - mid * (mid + 1) / 2;
        if cum <= idx {
            lo = mid;
        } else {
            hi = mid - 1;
        }
    }
    let u = lo;
    let cum = u * n - u * (u + 1) / 2;
    let v = u + 1 + (idx - cum);
    (u as u32, v as u32)
}

/// Samples `G ~ G(n, p)` conditioned on connectivity by rejection.
///
/// # Panics
///
/// Panics if no connected sample is found within `max_attempts` — choose
/// `p` above the connectivity threshold `ln n / n`.
#[must_use]
pub fn erdos_renyi_connected(n: u32, p: f64, seed: u64, max_attempts: u32) -> Graph {
    let mut rng = small_rng(seed);
    for _ in 0..max_attempts {
        let g = erdos_renyi(n, p, rng.random::<u64>());
        if is_connected(&g) {
            return g;
        }
    }
    panic!("no connected G({n},{p}) sample in {max_attempts} attempts");
}

/// Samples a uniform graph with exactly `m` edges (`G(n, m)` model).
///
/// # Panics
///
/// Panics unless `m ≤ C(n,2)`.
#[must_use]
pub fn gnm(n: u32, m: u64, seed: u64) -> Graph {
    let total_pairs = u64::from(n) * (u64::from(n).saturating_sub(1)) / 2;
    assert!(m <= total_pairs, "m exceeds the number of pairs");
    let mut rng = small_rng(seed);
    // Floyd's algorithm for a uniform m-subset of 0..total_pairs.
    let mut chosen = std::collections::HashSet::with_capacity(m as usize);
    for j in total_pairs - m..total_pairs {
        let t = rng.random_range(0..=j);
        if !chosen.insert(t) {
            chosen.insert(j);
        }
    }
    let mut b = GraphBuilder::new(n);
    for &idx in &chosen {
        let (u, v) = pair_from_index(idx, n);
        b.add_edge(u, v).expect("valid by construction");
    }
    b.build().expect("valid by construction")
}

/// Samples a random `d`-regular graph by the configuration model with
/// rejection of self-loops and parallel edges (uniform for `d ∈ O(1)`;
/// asymptotically uniform in general).
///
/// # Panics
///
/// Panics unless `n·d` is even, `d < n`, and a simple matching is found
/// within an internal retry budget (effectively always for `d ≤ √n`).
#[must_use]
pub fn random_regular(n: u32, d: u32, seed: u64) -> Graph {
    assert!(d < n, "degree must be below n");
    assert!((u64::from(n) * u64::from(d)) % 2 == 0, "n·d must be even");
    if d == 0 {
        return GraphBuilder::new(n).build().expect("nonempty");
    }
    let mut rng = small_rng(seed);
    // Half-edge stubs: node v owns stubs v*d..(v+1)*d.
    let mut stubs: Vec<u32> = (0..n)
        .flat_map(|v| std::iter::repeat_n(v, d as usize))
        .collect();
    // The pairing is simple with probability ≈ exp((1 − d²)/4), e.g.
    // ≈ 0.25% at d = 5 — a budget of 10⁵ cheap attempts makes overall
    // failure astronomically unlikely for every d ≤ √n.
    'attempt: for _ in 0..100_000 {
        stubs.shuffle(&mut rng);
        let mut b = GraphBuilder::new(n);
        let mut seen = std::collections::HashSet::with_capacity(stubs.len() / 2);
        for pair in stubs.chunks_exact(2) {
            let (u, v) = (pair[0], pair[1]);
            if u == v {
                continue 'attempt;
            }
            if !seen.insert((u.min(v), u.max(v))) {
                continue 'attempt;
            }
            b.add_edge(u, v).expect("checked above");
        }
        return b.build().expect("valid by construction");
    }
    panic!("configuration model failed to produce a simple {d}-regular graph on {n} nodes");
}

/// Samples a *connected* random `d`-regular graph by rejection.
///
/// # Panics
///
/// As [`random_regular`], plus panics if no connected sample appears within
/// `max_attempts` (random regular graphs with `d ≥ 3` are connected w.h.p.,
/// so a handful of attempts suffices).
#[must_use]
pub fn random_regular_connected(n: u32, d: u32, seed: u64, max_attempts: u32) -> Graph {
    let mut rng = small_rng(seed);
    for _ in 0..max_attempts {
        let g = random_regular(n, d, rng.random::<u64>());
        if is_connected(&g) {
            return g;
        }
    }
    panic!("no connected {d}-regular sample on {n} nodes in {max_attempts} attempts");
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_math::stats::Welford;

    #[test]
    fn pair_index_roundtrip() {
        let n = 7u32;
        let mut idx = 0u64;
        for u in 0..n {
            for v in u + 1..n {
                assert_eq!(pair_from_index(idx, n), (u, v));
                idx += 1;
            }
        }
    }

    #[test]
    fn gnp_zero_and_one() {
        let empty = erdos_renyi(10, 0.0, 1);
        assert_eq!(empty.num_edges(), 0);
        let full = erdos_renyi(10, 1.0, 1);
        assert_eq!(full.num_edges(), 45);
    }

    #[test]
    fn gnp_edge_count_concentrates() {
        let n = 60u32;
        let p = 0.3;
        let expected = f64::from(n) * f64::from(n - 1) / 2.0 * p;
        let mut w = Welford::new();
        for seed in 0..60 {
            w.push(erdos_renyi(n, p, seed).num_edges() as f64);
        }
        assert!(
            (w.mean() - expected).abs() < 0.05 * expected,
            "mean {} vs expected {}",
            w.mean(),
            expected
        );
    }

    #[test]
    fn gnp_deterministic_per_seed() {
        let a = erdos_renyi(40, 0.2, 99);
        let b = erdos_renyi(40, 0.2, 99);
        assert_eq!(a, b);
        let c = erdos_renyi(40, 0.2, 100);
        assert_ne!(a, c);
    }

    #[test]
    fn gnp_connected_is_connected() {
        let g = erdos_renyi_connected(50, 0.2, 7, 100);
        assert!(is_connected(&g));
    }

    #[test]
    fn gnm_exact_edge_count() {
        for m in [0u64, 1, 10, 45] {
            let g = gnm(10, m, 5);
            assert_eq!(g.num_edges() as u64, m);
        }
    }

    #[test]
    #[should_panic(expected = "exceeds")]
    fn gnm_too_many_edges() {
        let _ = gnm(4, 7, 0);
    }

    #[test]
    fn regular_graph_is_regular() {
        for (n, d) in [(10u32, 3u32), (20, 4), (16, 5)] {
            let g = random_regular(n, d, 42);
            assert_eq!(g.num_nodes(), n);
            assert!(g.is_regular(), "not regular: n={n} d={d}");
            assert_eq!(g.max_degree(), d);
            assert_eq!(g.num_edges() as u64, u64::from(n) * u64::from(d) / 2);
        }
    }

    #[test]
    #[should_panic(expected = "even")]
    fn regular_odd_product_rejected() {
        let _ = random_regular(5, 3, 0);
    }

    #[test]
    fn regular_zero_degree() {
        let g = random_regular(6, 0, 0);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn regular_connected_is_connected() {
        let g = random_regular_connected(30, 3, 11, 50);
        assert!(is_connected(&g));
        assert!(g.is_regular());
    }

    #[test]
    fn dense_gnp_is_almost_regular() {
        // Theorem 40's setting: p constant → degrees concentrate near np.
        let g = erdos_renyi(200, 0.5, 3);
        let expected = 199.0 * 0.5;
        assert!(f64::from(g.min_degree()) > expected * 0.7);
        assert!(f64::from(g.max_degree()) < expected * 1.3);
    }
}
