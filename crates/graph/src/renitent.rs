//! Renitent graphs and `(K, ℓ)`-covers (Section 6 of the paper).
//!
//! A `(K, ℓ)`-cover of `G` is a collection of `K` node sets whose
//! `ℓ`-neighbourhoods are pairwise isomorphic, at least two of which have
//! disjoint `ℓ`-neighbourhoods, and whose union covers `V(G)`. If
//! information is unlikely to propagate across distance `ℓ` within `t`
//! steps, the cover is `t`-isolating and Theorem 34 yields an `Ω(t)` lower
//! bound for stable leader election.
//!
//! This module provides:
//!
//! * [`Cover`] — the cover data structure plus structural verification;
//! * [`cycle_cover`] — the four-arc cover of a cycle (Lemma 37, showing
//!   cycles are `Ω(n²)`-renitent);
//! * [`lemma38`] — the general construction: four copies of a base graph
//!   `H` joined into a ring by paths of length `2ℓ`, giving
//!   `Ω(ℓ·m)`-renitent graphs with `B(G) ∈ Ω(ℓ·m)`;
//! * [`theorem39_graph`] — for any target `T(n)` between `n log n` and
//!   `n³`, a graph family on which both broadcast and stable leader
//!   election take `Θ(T)` expected steps.

use crate::families;
use crate::graph::{Graph, GraphBuilder, NodeId};
use crate::properties::diameter;
use crate::traversal::ball;

/// A `(K, ℓ)`-cover: `K` node sets together with the isolation radius `ℓ`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Cover {
    sets: Vec<Vec<NodeId>>,
    ell: u32,
}

impl Cover {
    /// Creates a cover from explicit sets.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two sets are given or any set is empty.
    #[must_use]
    pub fn new(sets: Vec<Vec<NodeId>>, ell: u32) -> Self {
        assert!(sets.len() >= 2, "a cover needs at least two sets");
        assert!(
            sets.iter().all(|s| !s.is_empty()),
            "cover sets must be nonempty"
        );
        let sets = sets
            .into_iter()
            .map(|mut s| {
                s.sort_unstable();
                s.dedup();
                s
            })
            .collect();
        Self { sets, ell }
    }

    /// The cover sets `V₀, …, V_{K−1}`.
    #[must_use]
    pub fn sets(&self) -> &[Vec<NodeId>] {
        &self.sets
    }

    /// Number of sets `K`.
    #[must_use]
    pub fn k(&self) -> usize {
        self.sets.len()
    }

    /// Isolation radius `ℓ`.
    #[must_use]
    pub fn ell(&self) -> u32 {
        self.ell
    }

    /// The `ℓ`-neighbourhood `B_ℓ(Vᵢ)` of set `i`, sorted.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[must_use]
    pub fn neighbourhood(&self, g: &Graph, i: usize) -> Vec<NodeId> {
        ball(g, &self.sets[i], self.ell)
    }

    /// Structural verification of the three `(K, ℓ)`-cover properties on `g`.
    ///
    /// Property (1) — isomorphism of the neighbourhoods — is verified by
    /// cheap invariants (equal set sizes, equal neighbourhood sizes, equal
    /// induced edge counts and degree multisets) rather than a full
    /// isomorphism test; the constructions in this module are isomorphic by
    /// construction and carry explicit witness maps in their tests.
    ///
    /// Returns a list of violated properties (empty = cover is valid).
    #[must_use]
    pub fn verify(&self, g: &Graph) -> Vec<CoverViolation> {
        let mut violations = Vec::new();

        // Property (3): union covers V.
        let mut covered = vec![false; g.num_nodes() as usize];
        for set in &self.sets {
            for &v in set {
                if v >= g.num_nodes() {
                    violations.push(CoverViolation::NodeOutOfRange(v));
                    return violations;
                }
                covered[v as usize] = true;
            }
        }
        if covered.iter().any(|&c| !c) {
            violations.push(CoverViolation::NotCovering);
        }

        // Property (1) invariants.
        let balls: Vec<Vec<NodeId>> = (0..self.sets.len())
            .map(|i| self.neighbourhood(g, i))
            .collect();
        let set_size = self.sets[0].len();
        if self.sets.iter().any(|s| s.len() != set_size) {
            violations.push(CoverViolation::UnequalSetSizes);
        }
        let sig0 = induced_signature(g, &balls[0]);
        for b in &balls[1..] {
            if induced_signature(g, b) != sig0 {
                violations.push(CoverViolation::NeighbourhoodsNotIsomorphic);
                break;
            }
        }

        // Property (2): some pair of ℓ-neighbourhoods disjoint.
        let mut found_disjoint = false;
        'outer: for i in 0..balls.len() {
            for j in i + 1..balls.len() {
                if sorted_disjoint(&balls[i], &balls[j]) {
                    found_disjoint = true;
                    break 'outer;
                }
            }
        }
        if !found_disjoint {
            violations.push(CoverViolation::NoDisjointPair);
        }

        violations
    }

    /// Returns the index pair of two sets with disjoint `ℓ`-neighbourhoods,
    /// if any.
    #[must_use]
    pub fn disjoint_pair(&self, g: &Graph) -> Option<(usize, usize)> {
        let balls: Vec<Vec<NodeId>> = (0..self.sets.len())
            .map(|i| self.neighbourhood(g, i))
            .collect();
        for i in 0..balls.len() {
            for j in i + 1..balls.len() {
                if sorted_disjoint(&balls[i], &balls[j]) {
                    return Some((i, j));
                }
            }
        }
        None
    }
}

/// A violated `(K, ℓ)`-cover property reported by [`Cover::verify`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CoverViolation {
    /// A set references a node outside the graph.
    NodeOutOfRange(NodeId),
    /// The sets do not cover all of `V(G)` (property 3).
    NotCovering,
    /// The sets have different cardinalities (necessary for property 1).
    UnequalSetSizes,
    /// The `ℓ`-neighbourhood invariants differ (property 1 violated).
    NeighbourhoodsNotIsomorphic,
    /// No two `ℓ`-neighbourhoods are disjoint (property 2).
    NoDisjointPair,
}

/// Cheap isomorphism-invariant signature of an induced subgraph: node
/// count, induced edge count and sorted internal-degree multiset.
fn induced_signature(g: &Graph, nodes: &[NodeId]) -> (usize, usize, Vec<u32>) {
    let inside = |v: NodeId| nodes.binary_search(&v).is_ok();
    let mut degrees = Vec::with_capacity(nodes.len());
    let mut edges = 0usize;
    for &v in nodes {
        let d = g.neighbors(v).iter().filter(|&&w| inside(w)).count() as u32;
        degrees.push(d);
        edges += d as usize;
    }
    degrees.sort_unstable();
    (nodes.len(), edges / 2, degrees)
}

fn sorted_disjoint(a: &[NodeId], b: &[NodeId]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return false,
        }
    }
    true
}

/// Lemma 37: the four-arc `(4, ⌈n/4⌉−1)`-cover of the cycle `C_n`,
/// witnessing that cycles are `Ω(n²)`-renitent.
///
/// # Panics
///
/// Panics unless `n ≥ 8` and `n.is_multiple_of(4)` (equal arcs keep property (1)
/// exact).
#[must_use]
pub fn cycle_cover(n: u32) -> (Graph, Cover) {
    assert!(
        n >= 8 && n.is_multiple_of(4),
        "cycle cover requires n ≥ 8 divisible by 4"
    );
    let g = families::cycle(n);
    let arc = n / 4;
    let sets = (0..4).map(|i| (i * arc..(i + 1) * arc).collect()).collect();
    // With ℓ = arc − 1 the neighbourhoods of opposite arcs would just
    // touch; use arc/2 so B_ℓ(V₀) ∩ B_ℓ(V₂) = ∅ strictly, matching the
    // Lemma 37 proof which uses B_{ℓ−1} disjointness.
    let ell = arc / 2;
    (g, Cover::new(sets, ell))
}

/// Lemma 38: the four-copy ring construction.
///
/// Takes a connected base graph `H` with a designated `anchor` node and a
/// radius `ell ≥ max(D(H), 1)`, and builds `G'`: four copies of `H` whose
/// anchors are joined in a ring by paths with `2·ell` edges. The returned
/// cover has `Vᵢ = V(Hᵢ) ∪ internal nodes of Pᵢ` and radius `ell`.
///
/// The resulting graph has `Θ(n)` nodes, `Θ(m)` edges and diameter
/// `Θ(ell)`; it is `Ω(ell·m)`-renitent and `B(G') ∈ Ω(ell·m)`.
///
/// # Panics
///
/// Panics if `H` is disconnected, `anchor` is out of range, or
/// `ell < max(D(H), 1)`.
#[must_use]
pub fn lemma38(base: &Graph, anchor: NodeId, ell: u32) -> (Graph, Cover) {
    assert!(anchor < base.num_nodes(), "anchor out of range");
    let d = diameter(base);
    assert!(d != u32::MAX, "base graph must be connected");
    assert!(ell >= d.max(1), "Lemma 38 requires ℓ ≥ max(D(H), 1)");

    let nh = base.num_nodes();
    let internal = 2 * ell - 1; // internal nodes per connecting path
    let n = 4 * nh + 4 * internal;
    let mut b = GraphBuilder::new(n);

    // Four copies of H.
    for copy in 0..4u32 {
        let offset = copy * nh;
        for &(u, v) in base.edges() {
            b.add_edge(offset + u, offset + v)
                .expect("valid by construction");
        }
    }
    let anchor_of = |copy: u32| copy * nh + anchor;
    let path_base = 4 * nh;
    // Path P_i joins anchor_i to anchor_{(i+1) % 4} through `internal`
    // fresh nodes.
    for i in 0..4u32 {
        let start = path_base + i * internal;
        b.add_edge(anchor_of(i), start)
            .expect("valid by construction");
        for j in 0..internal - 1 {
            b.add_edge(start + j, start + j + 1)
                .expect("valid by construction");
        }
        b.add_edge(start + internal - 1, anchor_of((i + 1) % 4))
            .expect("valid by construction");
    }
    let g = b.build().expect("valid by construction");

    let sets = (0..4u32)
        .map(|i| {
            let mut set: Vec<NodeId> = (i * nh..(i + 1) * nh).collect();
            let start = path_base + i * internal;
            set.extend(start..start + internal);
            set
        })
        .collect();
    (g, Cover::new(sets, ell))
}

/// Section 6.2: the four-slab `(4, ℓ)`-cover of a 2-dimensional torus,
/// witnessing that `k`-dimensional toroidal grids are
/// `Ω(n^{1+1/k})`-renitent (here `k = 2`: isolation takes `Ω(n^{3/2})`
/// steps).
///
/// The torus is cut into four vertical slabs of `side/4` columns each;
/// slabs are isomorphic by translation and opposite slabs have disjoint
/// `ℓ`-neighbourhoods for `ℓ = side/8`.
///
/// # Panics
///
/// Panics unless `side ≥ 16` and `side.is_multiple_of(8)`.
#[must_use]
pub fn torus_cover(side: u32) -> (Graph, Cover) {
    assert!(
        side >= 16 && side.is_multiple_of(8),
        "torus cover requires side ≥ 16 divisible by 8"
    );
    let g = families::torus(side, side);
    let slab = side / 4;
    // Node (r, c) has id r·side + c; slab i owns columns [i·slab, (i+1)·slab).
    let sets = (0..4u32)
        .map(|i| {
            (0..side)
                .flat_map(|r| (i * slab..(i + 1) * slab).map(move |c| r * side + c))
                .collect()
        })
        .collect();
    (g, Cover::new(sets, side / 8))
}

/// Theorem 39: for a target stabilization/broadcast time `T` (in steps, for
/// the produced graph), builds a graph `G` with `Θ(base_n)` nodes on which
/// stable leader election takes `Θ(T)` expected steps.
///
/// Follows the two cases of the paper's proof:
/// * `T ∈ ω(n² log n)` — base `H` is a clique on `base_n` nodes and
///   `ℓ = ⌈T/base_n²⌉`;
/// * otherwise — base `H` is a star on `base_n` nodes plus
///   `Θ(T/ℓ)` extra edges, with `ℓ = ⌈log base_n + T/(base_n·log base_n)⌉`.
///
/// Returns the graph with its `(4, ℓ)`-cover.
///
/// # Panics
///
/// Panics if `base_n < 4` or the target is below `base_n·log base_n`
/// (Theorem 39 requires `n log n ≤ T(n) ≤ n³`).
#[must_use]
pub fn theorem39_graph(base_n: u32, target_steps: f64) -> (Graph, Cover) {
    assert!(base_n >= 4, "base size must be at least 4");
    let nf = f64::from(base_n);
    let log_n = nf.ln().max(1.0);
    assert!(
        target_steps >= nf * log_n,
        "Theorem 39 requires T(n) ≥ n log n"
    );

    if target_steps > nf * nf * log_n {
        // Case 1: dense/long regime — clique base.
        let ell = (target_steps / (nf * nf)).ceil() as u32;
        let base = families::clique(base_n);
        lemma38(&base, 0, ell.max(1))
    } else {
        // Case 2: star base plus Θ(T/ℓ) extra edges.
        let ell = (log_n + target_steps / (nf * log_n)).ceil() as u32;
        let extra_target = (target_steps / f64::from(ell)).ceil() as u64;
        let base = star_with_extra_edges(base_n, extra_target);
        lemma38(&base, 0, ell.max(2))
    }
}

/// A star on `n` nodes with up to `extra` additional leaf-to-leaf edges
/// added in a fixed deterministic (lexicographic) order.
fn star_with_extra_edges(n: u32, extra: u64) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).expect("valid by construction");
    }
    let mut remaining = extra;
    'outer: for u in 1..n {
        for v in u + 1..n {
            if remaining == 0 {
                break 'outer;
            }
            b.add_edge(u, v).expect("valid by construction");
            remaining -= 1;
        }
    }
    b.build().expect("valid by construction")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::{diameter, is_connected};
    use crate::traversal::bfs_distances;

    #[test]
    fn cycle_cover_is_valid() {
        let (g, cover) = cycle_cover(16);
        assert_eq!(cover.k(), 4);
        assert!(cover.verify(&g).is_empty(), "{:?}", cover.verify(&g));
        assert!(cover.disjoint_pair(&g).is_some());
    }

    #[test]
    fn cycle_cover_opposite_arcs_disjoint() {
        let (g, cover) = cycle_cover(24);
        let (i, j) = cover.disjoint_pair(&g).unwrap();
        assert_eq!((j + 4 - i) % 4, 2, "disjoint pair should be opposite arcs");
    }

    #[test]
    #[should_panic(expected = "divisible by 4")]
    fn cycle_cover_rejects_bad_n() {
        let _ = cycle_cover(10);
    }

    #[test]
    fn lemma38_structure() {
        let base = families::clique(5);
        let ell = 3;
        let (g, cover) = lemma38(&base, 0, ell);
        // 4 copies of K5 plus 4 paths with 2ℓ−1 = 5 internal nodes.
        assert_eq!(g.num_nodes(), 4 * 5 + 4 * 5);
        assert_eq!(g.num_edges(), 4 * 10 + 4 * 6);
        assert!(is_connected(&g));
        assert!(cover.verify(&g).is_empty(), "{:?}", cover.verify(&g));
    }

    #[test]
    fn lemma38_diameter_is_theta_ell() {
        let base = families::clique(4);
        for ell in [2u32, 4, 8] {
            let (g, _) = lemma38(&base, 0, ell);
            let d = diameter(&g);
            // Two opposite anchors are 2·2ℓ/... around the ring: the far
            // pair of copies is two paths away → diameter ≈ 2·(2ℓ)/2 + O(1).
            assert!(d >= 2 * ell, "diameter {d} vs ell {ell}");
            assert!(d <= 4 * ell + 4, "diameter {d} vs ell {ell}");
        }
    }

    #[test]
    fn lemma38_rotation_witness() {
        // Explicit isomorphism witness: rotating copy i → copy i+1 maps
        // distances from anchors consistently.
        let base = families::cycle(6);
        let (g, cover) = lemma38(&base, 0, 4);
        let sets = cover.sets();
        let d0 = bfs_distances(&g, sets[0][0]);
        let d1 = bfs_distances(&g, sets[1][0]);
        // Distance profile from the first node of each set within its own
        // set must be identical under the rotation.
        let profile = |dist: &[u32], set: &[NodeId]| {
            let mut p: Vec<u32> = set.iter().map(|&v| dist[v as usize]).collect();
            p.sort_unstable();
            p
        };
        assert_eq!(profile(&d0, &sets[0]), profile(&d1, &sets[1]));
    }

    #[test]
    #[should_panic(expected = "ℓ ≥ max(D(H), 1)")]
    fn lemma38_rejects_small_ell() {
        let base = families::path(10); // diameter 9
        let _ = lemma38(&base, 0, 4);
    }

    #[test]
    fn theorem39_clique_regime() {
        let n = 16u32;
        let target = (n as f64).powi(3); // ω(n² log n) for this n
        let (g, cover) = theorem39_graph(n, target);
        assert!(is_connected(&g));
        assert!(cover.verify(&g).is_empty(), "{:?}", cover.verify(&g));
        // Base is a clique: m ≈ 4·C(16,2) plus path edges.
        assert!(g.num_edges() >= 4 * 120);
    }

    #[test]
    fn theorem39_star_regime() {
        let n = 32u32;
        let nf = n as f64;
        let target = nf * nf.ln() * 4.0; // Θ(n log n) — star regime
        let (g, cover) = theorem39_graph(n, target);
        assert!(is_connected(&g));
        assert!(cover.verify(&g).is_empty(), "{:?}", cover.verify(&g));
    }

    #[test]
    #[should_panic(expected = "n log n")]
    fn theorem39_rejects_small_target() {
        let _ = theorem39_graph(32, 10.0);
    }

    #[test]
    fn star_with_extra_edges_caps() {
        let g = star_with_extra_edges(5, 1000);
        // Star has 4 edges; leaves form K4 with 6 edges.
        assert_eq!(g.num_edges(), 4 + 6);
        let g2 = star_with_extra_edges(5, 2);
        assert_eq!(g2.num_edges(), 6);
    }

    #[test]
    fn verify_detects_bad_covers() {
        let g = families::cycle(12);
        // Not covering.
        let c = Cover::new(vec![vec![0, 1], vec![6, 7]], 1);
        assert!(c.verify(&g).contains(&CoverViolation::NotCovering));
        // Unequal sizes.
        let sets = vec![vec![0, 1, 2], (3..12).collect::<Vec<_>>()];
        let c = Cover::new(sets, 0);
        assert!(c.verify(&g).contains(&CoverViolation::UnequalSetSizes));
        // No disjoint pair at huge radius.
        let (g, _) = cycle_cover(16);
        let sets = (0..4).map(|i| (i * 4..(i + 1) * 4).collect()).collect();
        let c = Cover::new(sets, 8);
        assert!(c.verify(&g).contains(&CoverViolation::NoDisjointPair));
    }

    #[test]
    fn torus_cover_is_valid() {
        for side in [16u32, 24] {
            let (g, cover) = torus_cover(side);
            assert_eq!(g.num_nodes(), side * side);
            assert!(cover.verify(&g).is_empty(), "{:?}", cover.verify(&g));
            let (i, j) = cover.disjoint_pair(&g).unwrap();
            assert_eq!((j + 4 - i) % 4, 2, "opposite slabs should be disjoint");
        }
    }

    #[test]
    #[should_panic(expected = "divisible by 8")]
    fn torus_cover_rejects_bad_side() {
        let _ = torus_cover(20);
    }

    #[test]
    fn verify_detects_out_of_range() {
        let g = families::cycle(8);
        let c = Cover::new(vec![vec![0], vec![99]], 1);
        assert!(matches!(
            c.verify(&g)[0],
            CoverViolation::NodeOutOfRange(99)
        ));
    }
}
