//! Deterministic graph families.
//!
//! Every family referenced by the paper's Table 1 or used in its proofs is
//! available here. All constructors panic on degenerate sizes (documented
//! per function) — family sizes are experiment parameters, so failing fast
//! beats propagating errors.

use crate::graph::{Graph, GraphBuilder, NodeId};

/// Complete graph `K_n`.
///
/// # Panics
///
/// Panics if `n < 1`.
#[must_use]
pub fn clique(n: u32) -> Graph {
    assert!(n >= 1, "clique requires n ≥ 1");
    let mut b = GraphBuilder::new(n);
    for u in 0..n {
        for v in u + 1..n {
            b.add_edge(u, v).expect("valid by construction");
        }
    }
    b.build().expect("valid by construction")
}

/// Cycle `C_n`.
///
/// # Panics
///
/// Panics if `n < 3`.
#[must_use]
pub fn cycle(n: u32) -> Graph {
    assert!(n >= 3, "cycle requires n ≥ 3");
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        b.add_edge(v, (v + 1) % n).expect("valid by construction");
    }
    b.build().expect("valid by construction")
}

/// Path `P_n` on `n` nodes (`n − 1` edges).
///
/// # Panics
///
/// Panics if `n < 1`.
#[must_use]
pub fn path(n: u32) -> Graph {
    assert!(n >= 1, "path requires n ≥ 1");
    let mut b = GraphBuilder::new(n);
    for v in 0..n.saturating_sub(1) {
        b.add_edge(v, v + 1).expect("valid by construction");
    }
    b.build().expect("valid by construction")
}

/// Star `S_n`: node 0 is the centre, nodes `1..n` are leaves.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn star(n: u32) -> Graph {
    assert!(n >= 2, "star requires n ≥ 2");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(0, v).expect("valid by construction");
    }
    b.build().expect("valid by construction")
}

/// Complete bipartite graph `K_{a,b}`; the first `a` ids form one side.
///
/// # Panics
///
/// Panics if `a < 1` or `b < 1`.
#[must_use]
pub fn complete_bipartite(a: u32, b: u32) -> Graph {
    assert!(a >= 1 && b >= 1, "both sides must be nonempty");
    let mut builder = GraphBuilder::new(a + b);
    for u in 0..a {
        for v in a..a + b {
            builder.add_edge(u, v).expect("valid by construction");
        }
    }
    builder.build().expect("valid by construction")
}

/// `rows × cols` grid (4-neighbour lattice, no wraparound).
///
/// Node `(r, c)` has id `r·cols + c`.
///
/// # Panics
///
/// Panics if `rows < 1`, `cols < 1`, or the grid has fewer than 2 nodes.
#[must_use]
pub fn grid(rows: u32, cols: u32) -> Graph {
    assert!(rows >= 1 && cols >= 1, "grid dimensions must be positive");
    assert!(rows * cols >= 2, "grid must have at least 2 nodes");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            if c + 1 < cols {
                b.add_edge(id, id + 1).expect("valid by construction");
            }
            if r + 1 < rows {
                b.add_edge(id, id + cols).expect("valid by construction");
            }
        }
    }
    b.build().expect("valid by construction")
}

/// `rows × cols` torus (grid with wraparound); 4-regular when both sides
/// are ≥ 3.
///
/// # Panics
///
/// Panics if `rows < 3` or `cols < 3` (smaller tori would create parallel
/// edges).
#[must_use]
pub fn torus(rows: u32, cols: u32) -> Graph {
    assert!(rows >= 3 && cols >= 3, "torus requires both sides ≥ 3");
    let mut b = GraphBuilder::new(rows * cols);
    for r in 0..rows {
        for c in 0..cols {
            let id = r * cols + c;
            let right = r * cols + (c + 1) % cols;
            let down = ((r + 1) % rows) * cols + c;
            b.add_edge(id, right).expect("valid by construction");
            b.add_edge(id, down).expect("valid by construction");
        }
    }
    b.build().expect("valid by construction")
}

/// `k`-dimensional toroidal grid with `side` nodes per dimension
/// (`side^k` nodes, `2k`-regular). Used for the `Ω(n^{1+1/k})`-renitent
/// examples in Section 6.2.
///
/// # Panics
///
/// Panics if `side < 3`, `k < 1`, or `side^k` overflows `u32`.
#[must_use]
pub fn torus_kd(side: u32, k: u32) -> Graph {
    assert!(side >= 3, "toroidal grid requires side ≥ 3");
    assert!(k >= 1, "dimension must be ≥ 1");
    let n = side.checked_pow(k).expect("side^k must fit in u32");
    let mut b = GraphBuilder::new(n);
    // Node id encodes coordinates in base `side`.
    let mut stride = 1u32;
    for _dim in 0..k {
        for id in 0..n {
            let coord = (id / stride) % side;
            let next_coord = (coord + 1) % side;
            let neighbor = id - coord * stride + next_coord * stride;
            b.add_edge(id, neighbor).expect("valid by construction");
        }
        stride *= side;
    }
    b.build().expect("valid by construction")
}

/// `d`-dimensional hypercube `Q_d` on `2^d` nodes.
///
/// # Panics
///
/// Panics if `d < 1` or `d > 31`.
#[must_use]
pub fn hypercube(d: u32) -> Graph {
    assert!(
        (1..=31).contains(&d),
        "hypercube dimension must be in 1..=31"
    );
    let n = 1u32 << d;
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for bit in 0..d {
            let u = v ^ (1 << bit);
            if v < u {
                b.add_edge(v, u).expect("valid by construction");
            }
        }
    }
    b.build().expect("valid by construction")
}

/// Complete binary tree on `n` nodes (heap ordering: children of `v` are
/// `2v + 1` and `2v + 2`).
///
/// # Panics
///
/// Panics if `n < 1`.
#[must_use]
pub fn binary_tree(n: u32) -> Graph {
    assert!(n >= 1, "tree requires n ≥ 1");
    let mut b = GraphBuilder::new(n);
    for v in 1..n {
        b.add_edge(v, (v - 1) / 2).expect("valid by construction");
    }
    b.build().expect("valid by construction")
}

/// Lollipop graph: a clique on `clique_n` nodes with a path of
/// `path_n` extra nodes attached to clique node 0. A classic worst case for
/// random-walk hitting times (`H(G) ∈ Θ(n³)`).
///
/// # Panics
///
/// Panics if `clique_n < 1` or `path_n < 1`.
#[must_use]
pub fn lollipop(clique_n: u32, path_n: u32) -> Graph {
    assert!(clique_n >= 1 && path_n >= 1);
    let n = clique_n + path_n;
    let mut b = GraphBuilder::new(n);
    for u in 0..clique_n {
        for v in u + 1..clique_n {
            b.add_edge(u, v).expect("valid by construction");
        }
    }
    b.add_edge(0, clique_n).expect("valid by construction");
    for v in clique_n..n - 1 {
        b.add_edge(v, v + 1).expect("valid by construction");
    }
    b.build().expect("valid by construction")
}

/// Barbell graph: two cliques of size `clique_n` joined by a path of
/// `bridge_n` intermediate nodes.
///
/// # Panics
///
/// Panics if `clique_n < 2`.
#[must_use]
pub fn barbell(clique_n: u32, bridge_n: u32) -> Graph {
    assert!(clique_n >= 2, "barbell cliques need ≥ 2 nodes");
    let n = 2 * clique_n + bridge_n;
    let mut b = GraphBuilder::new(n);
    for base in [0, clique_n] {
        for u in 0..clique_n {
            for v in u + 1..clique_n {
                b.add_edge(base + u, base + v)
                    .expect("valid by construction");
            }
        }
    }
    if bridge_n == 0 {
        b.add_edge(0, clique_n).expect("valid by construction");
    } else {
        let first_bridge = 2 * clique_n;
        b.add_edge(0, first_bridge).expect("valid by construction");
        for i in 0..bridge_n - 1 {
            b.add_edge(first_bridge + i, first_bridge + i + 1)
                .expect("valid by construction");
        }
        b.add_edge(first_bridge + bridge_n - 1, clique_n)
            .expect("valid by construction");
    }
    b.build().expect("valid by construction")
}

/// The anchor node conventionally used when attaching structures to a
/// family graph (e.g. in the renitent construction of Lemma 38).
///
/// For all families in this module node `0` is a sensible anchor: clique
/// nodes are symmetric, it is the star centre, a cycle/path endpoint, and a
/// grid corner.
#[must_use]
pub fn anchor(_g: &Graph) -> NodeId {
    0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::properties::is_connected;

    #[test]
    fn clique_counts() {
        let g = clique(6);
        assert_eq!(g.num_nodes(), 6);
        assert_eq!(g.num_edges(), 15);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 5);
        assert!(is_connected(&g));
    }

    #[test]
    fn clique_of_one() {
        let g = clique(1);
        assert_eq!(g.num_edges(), 0);
    }

    #[test]
    fn cycle_counts() {
        let g = cycle(7);
        assert_eq!(g.num_edges(), 7);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 2);
        assert!(is_connected(&g));
    }

    #[test]
    #[should_panic(expected = "n ≥ 3")]
    fn cycle_too_small() {
        let _ = cycle(2);
    }

    #[test]
    fn path_counts() {
        let g = path(5);
        assert_eq!(g.num_edges(), 4);
        assert_eq!(g.degree(0), 1);
        assert_eq!(g.degree(2), 2);
        assert!(is_connected(&g));
        assert_eq!(path(1).num_edges(), 0);
    }

    #[test]
    fn star_counts() {
        let g = star(10);
        assert_eq!(g.num_edges(), 9);
        assert_eq!(g.degree(0), 9);
        for v in 1..10 {
            assert_eq!(g.degree(v), 1);
        }
        assert!(is_connected(&g));
    }

    #[test]
    fn complete_bipartite_counts() {
        let g = complete_bipartite(3, 4);
        assert_eq!(g.num_nodes(), 7);
        assert_eq!(g.num_edges(), 12);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(3), 3);
        assert!(!g.has_edge(0, 1));
        assert!(g.has_edge(0, 3));
    }

    #[test]
    fn grid_counts() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // Edges: 3 rows × 3 horizontal + 2 × 4 vertical = 9 + 8 = 17.
        assert_eq!(g.num_edges(), 17);
        assert_eq!(g.degree(0), 2); // corner
        assert_eq!(g.degree(1), 3); // edge
        assert_eq!(g.degree(5), 4); // interior
        assert!(is_connected(&g));
    }

    #[test]
    fn torus_is_4_regular() {
        let g = torus(4, 5);
        assert_eq!(g.num_nodes(), 20);
        assert_eq!(g.num_edges(), 40);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn torus_kd_matches_2d() {
        let a = torus_kd(5, 2);
        let b = torus(5, 5);
        assert_eq!(a.num_nodes(), b.num_nodes());
        assert_eq!(a.num_edges(), b.num_edges());
        assert!(a.is_regular());
        assert_eq!(a.max_degree(), 4);
    }

    #[test]
    fn torus_kd_3d() {
        let g = torus_kd(3, 3);
        assert_eq!(g.num_nodes(), 27);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 6);
        assert!(is_connected(&g));
    }

    #[test]
    fn hypercube_counts() {
        let g = hypercube(4);
        assert_eq!(g.num_nodes(), 16);
        assert_eq!(g.num_edges(), 32);
        assert!(g.is_regular());
        assert_eq!(g.max_degree(), 4);
        assert!(is_connected(&g));
    }

    #[test]
    fn binary_tree_counts() {
        let g = binary_tree(7);
        assert_eq!(g.num_edges(), 6);
        assert_eq!(g.degree(0), 2);
        assert_eq!(g.degree(3), 1);
        assert!(is_connected(&g));
    }

    #[test]
    fn lollipop_counts() {
        let g = lollipop(5, 3);
        assert_eq!(g.num_nodes(), 8);
        assert_eq!(g.num_edges(), 10 + 3);
        assert_eq!(g.degree(0), 5); // clique + path attachment
        assert_eq!(g.degree(7), 1); // path tip
        assert!(is_connected(&g));
    }

    #[test]
    fn barbell_counts() {
        let g = barbell(4, 2);
        assert_eq!(g.num_nodes(), 10);
        assert_eq!(g.num_edges(), 6 + 6 + 3);
        assert!(is_connected(&g));
        let g0 = barbell(3, 0);
        assert_eq!(g0.num_nodes(), 6);
        assert_eq!(g0.num_edges(), 3 + 3 + 1);
        assert!(is_connected(&g0));
    }
}
