//! The core immutable undirected graph type.

use std::fmt;

/// Identifier of a node; nodes of an `n`-node graph are `0..n`.
pub type NodeId = u32;

/// Errors raised while building a [`Graph`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GraphError {
    /// An edge endpoint is `>= num_nodes`.
    NodeOutOfRange {
        /// The offending endpoint.
        node: NodeId,
        /// Number of nodes the builder was created with.
        num_nodes: u32,
    },
    /// An edge connects a node to itself.
    SelfLoop(NodeId),
    /// The same undirected edge was added twice.
    DuplicateEdge(NodeId, NodeId),
    /// The graph has zero nodes.
    Empty,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::NodeOutOfRange { node, num_nodes } => {
                write!(
                    f,
                    "node {node} out of range for graph with {num_nodes} nodes"
                )
            }
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v}"),
            GraphError::DuplicateEdge(u, v) => write!(f, "duplicate edge {{{u}, {v}}}"),
            GraphError::Empty => write!(f, "graph must have at least one node"),
        }
    }
}

impl std::error::Error for GraphError {}

/// Incremental builder for [`Graph`].
///
/// # Examples
///
/// ```
/// use popele_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1)?;
/// b.add_edge(1, 2)?;
/// let g = b.build()?;
/// assert_eq!(g.num_edges(), 2);
/// # Ok::<(), popele_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct GraphBuilder {
    num_nodes: u32,
    edges: Vec<(NodeId, NodeId)>,
}

impl GraphBuilder {
    /// Starts a builder for a graph on `num_nodes` nodes.
    #[must_use]
    pub fn new(num_nodes: u32) -> Self {
        Self {
            num_nodes,
            edges: Vec::new(),
        }
    }

    /// Adds the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns an error for out-of-range endpoints or self-loops.
    /// Duplicate edges are detected at [`Self::build`] time.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: u,
                num_nodes: self.num_nodes,
            });
        }
        if v >= self.num_nodes {
            return Err(GraphError::NodeOutOfRange {
                node: v,
                num_nodes: self.num_nodes,
            });
        }
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        self.edges.push((u.min(v), u.max(v)));
        Ok(())
    }

    /// Number of edges added so far.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Finalizes the graph.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::Empty`] for a zero-node graph and
    /// [`GraphError::DuplicateEdge`] if the same edge was added twice.
    pub fn build(mut self) -> Result<Graph, GraphError> {
        if self.num_nodes == 0 {
            return Err(GraphError::Empty);
        }
        self.edges.sort_unstable();
        for w in self.edges.windows(2) {
            if w[0] == w[1] {
                return Err(GraphError::DuplicateEdge(w[0].0, w[0].1));
            }
        }
        Ok(Graph::from_sorted_edges(self.num_nodes, self.edges))
    }
}

/// An immutable, simple, undirected graph in CSR form.
///
/// Invariants: no self-loops, no parallel edges, canonical edge order
/// (`u < v`, lexicographically sorted), adjacency lists sorted ascending.
///
/// # Examples
///
/// ```
/// use popele_graph::Graph;
///
/// let g = Graph::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)])?;
/// assert_eq!(g.degree(0), 2);
/// assert_eq!(g.neighbors(1), &[0, 2]);
/// assert!(g.has_edge(3, 0));
/// assert!(!g.has_edge(0, 2));
/// # Ok::<(), popele_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    num_nodes: u32,
    /// Canonical edge list: `u < v`, sorted.
    edges: Vec<(NodeId, NodeId)>,
    /// CSR offsets, length `num_nodes + 1`.
    offsets: Vec<u32>,
    /// Concatenated sorted adjacency lists, length `2m`.
    adjacency: Vec<NodeId>,
}

impl Graph {
    /// Builds a graph from an edge list.
    ///
    /// # Errors
    ///
    /// Propagates the same validation errors as [`GraphBuilder`].
    pub fn from_edges(num_nodes: u32, edges: &[(NodeId, NodeId)]) -> Result<Self, GraphError> {
        let mut b = GraphBuilder::new(num_nodes);
        for &(u, v) in edges {
            b.add_edge(u, v)?;
        }
        b.build()
    }

    /// Internal constructor from validated, canonically sorted edges.
    fn from_sorted_edges(num_nodes: u32, edges: Vec<(NodeId, NodeId)>) -> Self {
        let n = num_nodes as usize;
        let mut degree = vec![0u32; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u32; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut adjacency = vec![0u32; 2 * edges.len()];
        let mut cursor = offsets.clone();
        for &(u, v) in &edges {
            adjacency[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            adjacency[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        for i in 0..n {
            adjacency[offsets[i] as usize..offsets[i + 1] as usize].sort_unstable();
        }
        Self {
            num_nodes,
            edges,
            offsets,
            adjacency,
        }
    }

    /// Number of nodes `n`.
    #[must_use]
    pub fn num_nodes(&self) -> u32 {
        self.num_nodes
    }

    /// Number of edges `m`.
    #[must_use]
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// The canonical (sorted, `u < v`) edge list.
    #[must_use]
    pub fn edges(&self) -> &[(NodeId, NodeId)] {
        &self.edges
    }

    /// Degree of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> u32 {
        let v = v as usize;
        assert!(v < self.num_nodes as usize, "node out of range");
        self.offsets[v + 1] - self.offsets[v]
    }

    /// Sorted neighbours of node `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[must_use]
    pub fn neighbors(&self, v: NodeId) -> &[NodeId] {
        let v = v as usize;
        assert!(v < self.num_nodes as usize, "node out of range");
        &self.adjacency[self.offsets[v] as usize..self.offsets[v + 1] as usize]
    }

    /// Whether the undirected edge `{u, v}` is present.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        if u >= self.num_nodes || v >= self.num_nodes || u == v {
            return false;
        }
        // Search the shorter adjacency list.
        let (a, b) = if self.degree(u) <= self.degree(v) {
            (u, v)
        } else {
            (v, u)
        };
        self.neighbors(a).binary_search(&b).is_ok()
    }

    /// Maximum degree `Δ`.
    #[must_use]
    pub fn max_degree(&self) -> u32 {
        (0..self.num_nodes)
            .map(|v| self.degree(v))
            .max()
            .unwrap_or(0)
    }

    /// Minimum degree `δ`.
    #[must_use]
    pub fn min_degree(&self) -> u32 {
        (0..self.num_nodes)
            .map(|v| self.degree(v))
            .min()
            .unwrap_or(0)
    }

    /// Average degree `2m/n`.
    #[must_use]
    pub fn avg_degree(&self) -> f64 {
        2.0 * self.num_edges() as f64 / self.num_nodes as f64
    }

    /// Whether every node has the same degree.
    #[must_use]
    pub fn is_regular(&self) -> bool {
        self.max_degree() == self.min_degree()
    }

    /// Iterator over all node ids `0..n`.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        0..self.num_nodes
    }

    /// Disjoint union with another graph: nodes of `other` are relabelled to
    /// `self.num_nodes()..`, and no edges connect the two parts.
    ///
    /// Returns the combined graph and the offset applied to `other`'s ids.
    #[must_use]
    pub fn disjoint_union(&self, other: &Graph) -> (Graph, u32) {
        let offset = self.num_nodes;
        let mut edges = self.edges.clone();
        edges.extend(other.edges.iter().map(|&(u, v)| (u + offset, v + offset)));
        edges.sort_unstable();
        (
            Graph::from_sorted_edges(self.num_nodes + other.num_nodes, edges),
            offset,
        )
    }

    /// Returns a new graph with the given extra edges added.
    ///
    /// # Errors
    ///
    /// Same validation as [`GraphBuilder`]; adding an existing edge is a
    /// [`GraphError::DuplicateEdge`].
    pub fn with_edges(&self, extra: &[(NodeId, NodeId)]) -> Result<Graph, GraphError> {
        let mut b = GraphBuilder::new(self.num_nodes);
        for &(u, v) in self.edges.iter().chain(extra) {
            b.add_edge(u, v)?;
        }
        b.build()
    }
}

impl fmt::Display for Graph {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "Graph(n={}, m={}, Δ={}, δ={})",
            self.num_nodes,
            self.num_edges(),
            self.max_degree(),
            self.min_degree()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triangle_basics() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2), (0, 2)]).unwrap();
        assert_eq!(g.num_nodes(), 3);
        assert_eq!(g.num_edges(), 3);
        for v in 0..3 {
            assert_eq!(g.degree(v), 2);
        }
        assert!(g.is_regular());
        assert_eq!(g.avg_degree(), 2.0);
    }

    #[test]
    fn neighbors_sorted() {
        let g = Graph::from_edges(5, &[(3, 0), (0, 4), (1, 0), (0, 2)]).unwrap();
        assert_eq!(g.neighbors(0), &[1, 2, 3, 4]);
        assert_eq!(g.degree(0), 4);
        assert_eq!(g.degree(1), 1);
    }

    #[test]
    fn has_edge_both_orders() {
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(g.has_edge(0, 1));
        assert!(g.has_edge(1, 0));
        assert!(g.has_edge(3, 2));
        assert!(!g.has_edge(0, 2));
        assert!(!g.has_edge(0, 0));
        assert!(!g.has_edge(0, 99));
    }

    #[test]
    fn rejects_self_loop() {
        assert_eq!(
            Graph::from_edges(2, &[(1, 1)]),
            Err(GraphError::SelfLoop(1))
        );
    }

    #[test]
    fn rejects_out_of_range() {
        assert_eq!(
            Graph::from_edges(2, &[(0, 2)]),
            Err(GraphError::NodeOutOfRange {
                node: 2,
                num_nodes: 2
            })
        );
    }

    #[test]
    fn rejects_duplicate_even_reversed() {
        assert_eq!(
            Graph::from_edges(3, &[(0, 1), (1, 0)]),
            Err(GraphError::DuplicateEdge(0, 1))
        );
    }

    #[test]
    fn rejects_empty() {
        assert_eq!(Graph::from_edges(0, &[]), Err(GraphError::Empty));
    }

    #[test]
    fn single_node_graph_ok() {
        let g = Graph::from_edges(1, &[]).unwrap();
        assert_eq!(g.num_nodes(), 1);
        assert_eq!(g.num_edges(), 0);
        assert_eq!(g.degree(0), 0);
        assert_eq!(g.neighbors(0), &[] as &[u32]);
    }

    #[test]
    fn canonical_edge_list() {
        let g = Graph::from_edges(4, &[(3, 2), (1, 0), (2, 0)]).unwrap();
        assert_eq!(g.edges(), &[(0, 1), (0, 2), (2, 3)]);
    }

    #[test]
    fn disjoint_union_relabels() {
        let a = Graph::from_edges(2, &[(0, 1)]).unwrap();
        let b = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let (u, offset) = a.disjoint_union(&b);
        assert_eq!(offset, 2);
        assert_eq!(u.num_nodes(), 5);
        assert_eq!(u.num_edges(), 3);
        assert!(u.has_edge(0, 1));
        assert!(u.has_edge(2, 3));
        assert!(u.has_edge(3, 4));
        assert!(!u.has_edge(1, 2));
    }

    #[test]
    fn with_edges_adds() {
        let g = Graph::from_edges(3, &[(0, 1)]).unwrap();
        let g2 = g.with_edges(&[(1, 2)]).unwrap();
        assert_eq!(g2.num_edges(), 2);
        assert!(g.with_edges(&[(0, 1)]).is_err());
    }

    #[test]
    fn error_display_messages() {
        assert!(format!("{}", GraphError::SelfLoop(3)).contains("self-loop"));
        assert!(format!("{}", GraphError::DuplicateEdge(1, 2)).contains("duplicate"));
        assert!(format!("{}", GraphError::Empty).contains("at least one"));
        assert!(format!(
            "{}",
            GraphError::NodeOutOfRange {
                node: 9,
                num_nodes: 4
            }
        )
        .contains("out of range"));
    }

    #[test]
    fn display_summarizes() {
        let g = Graph::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
        let s = format!("{g}");
        assert!(s.contains("n=3") && s.contains("m=2"));
    }
}
