//! Interaction graphs for population protocols.
//!
//! This crate provides the graph substrate of the reproduction of
//! *Near-Optimal Leader Election in Population Protocols on Graphs*
//! (PODC 2022):
//!
//! * [`Graph`] — a compact, immutable undirected graph (CSR adjacency) with
//!   validation, the representation every other crate consumes;
//! * [`families`] — deterministic graph families used across the paper's
//!   Table 1: cliques, cycles, paths, stars, grids and tori, hypercubes,
//!   complete bipartite graphs, lollipops, barbells and binary trees;
//! * [`random`] — random graph models: Erdős–Rényi `G(n, p)` / `G(n, m)`
//!   (Section 7) and random regular graphs (Section 5 / Corollary 25);
//! * [`renitent`] — the lower-bound constructions of Section 6:
//!   `(K, ℓ)`-covers, the cycle cover of Lemma 37 and the four-copy path
//!   construction of Lemma 38 / Theorem 39;
//! * [`properties`] — structural statistics: connectivity, exact and
//!   estimated diameter, exact edge expansion for small graphs, spectral
//!   conductance estimates;
//! * [`traversal`] — BFS distances and connected components.
//!
//! # Examples
//!
//! ```
//! use popele_graph::families;
//! use popele_graph::properties;
//!
//! let g = families::cycle(10);
//! assert_eq!(g.num_nodes(), 10);
//! assert_eq!(g.num_edges(), 10);
//! assert!(properties::is_connected(&g));
//! assert_eq!(properties::diameter(&g), 5);
//! ```

#![warn(missing_docs)]

mod graph;

pub mod families;
pub mod properties;
pub mod random;
pub mod renitent;
pub mod traversal;

pub use graph::{Graph, GraphBuilder, GraphError, NodeId};
