//! Structural graph statistics used to parameterize protocols and report
//! experiment context.
//!
//! Exact edge expansion `β(G)` (Section 2.1) is only computed by subset
//! enumeration for very small graphs; larger graphs use the spectral
//! estimate of [`conductance_bounds`], or the closed forms known for the
//! deterministic families. Protocols themselves are parameterized by the
//! measured broadcast time, so these statistics affect reporting only.

use crate::graph::{Graph, NodeId};
use crate::traversal::{bfs_distances, connected_components, eccentricity, UNREACHABLE};
use popele_math::linalg::{power_iteration, second_eigenvalue, Matrix};

/// Whether the graph is connected.
#[must_use]
pub fn is_connected(g: &Graph) -> bool {
    connected_components(g).0 == 1
}

/// Exact diameter via all-pairs BFS (`O(n·m)`), or [`UNREACHABLE`] if
/// disconnected.
///
/// Suitable for the graph sizes in this workspace (up to a few tens of
/// thousands of nodes for sparse graphs).
#[must_use]
pub fn diameter(g: &Graph) -> u32 {
    let mut diam = 0;
    for v in g.nodes() {
        let e = eccentricity(g, v);
        if e == UNREACHABLE {
            return UNREACHABLE;
        }
        diam = diam.max(e);
    }
    diam
}

/// Lower bound on the diameter by a double BFS sweep (exact on trees, and
/// a good estimate elsewhere at `O(m)` cost).
#[must_use]
pub fn diameter_double_sweep(g: &Graph) -> u32 {
    let d0 = bfs_distances(g, 0);
    let (far, &best) = d0
        .iter()
        .enumerate()
        .filter(|&(_, &d)| d != UNREACHABLE)
        .max_by_key(|&(_, &d)| d)
        .expect("graph is nonempty");
    let _ = best;
    eccentricity(g, far as NodeId)
}

/// Exact edge expansion `β(G) = min_{0<|S|≤n/2} |∂S|/|S|` by exhaustive
/// subset enumeration.
///
/// # Panics
///
/// Panics if `n > 24` (enumeration would be infeasible) or `n < 2`.
#[must_use]
pub fn edge_expansion_exact(g: &Graph) -> f64 {
    let n = g.num_nodes();
    assert!(n >= 2, "expansion needs at least 2 nodes");
    assert!(n <= 24, "exact expansion limited to n ≤ 24");
    let n = n as usize;
    let mut best = f64::INFINITY;
    // Enumerate nonempty subsets with |S| ≤ n/2; representing S as a bitmask.
    for mask in 1u32..(1u32 << n) {
        let size = mask.count_ones() as usize;
        if size > n / 2 {
            continue;
        }
        let mut boundary = 0usize;
        for &(u, v) in g.edges() {
            let u_in = mask & (1 << u) != 0;
            let v_in = mask & (1 << v) != 0;
            if u_in != v_in {
                boundary += 1;
            }
        }
        let ratio = boundary as f64 / size as f64;
        if ratio < best {
            best = ratio;
        }
    }
    best
}

/// Closed-form edge expansion for families where it is known, used to
/// avoid the exponential exact computation in experiments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum KnownExpansion {
    /// Clique `K_n`: `β = ⌈n/2⌉`.
    Clique(u32),
    /// Cycle `C_n`: `β = 2/⌊n/2⌋`.
    Cycle(u32),
    /// Star `S_n`: `β = 1` (any leaf set has boundary = its size).
    Star(u32),
    /// Hypercube `Q_d`: `β = 1` (isoperimetric inequality, achieved by
    /// subcubes).
    Hypercube(u32),
}

impl KnownExpansion {
    /// The exact edge expansion of the family member.
    #[must_use]
    pub fn value(self) -> f64 {
        match self {
            KnownExpansion::Clique(n) => (n as f64 / 2.0).ceil(),
            KnownExpansion::Cycle(n) => 2.0 / f64::from(n / 2),
            KnownExpansion::Star(_) => 1.0,
            KnownExpansion::Hypercube(_) => 1.0,
        }
    }
}

/// Spectral bounds `(lower, upper)` on the conductance `φ(G)` via the
/// Cheeger inequality: `(1−λ₂)/2 ≤ φ ≤ √(2(1−λ₂))`, where `λ₂` is the
/// second eigenvalue of the lazy normalized adjacency operator.
///
/// Builds a dense matrix, so restricted to `n ≤ 2000`.
///
/// # Panics
///
/// Panics if the graph is disconnected or `n > 2000`.
#[must_use]
pub fn conductance_bounds(g: &Graph) -> (f64, f64) {
    assert!(is_connected(g), "conductance bounds need a connected graph");
    let n = g.num_nodes() as usize;
    assert!(n <= 2000, "spectral estimate limited to n ≤ 2000");
    // Symmetrized lazy walk matrix: M = (I + D^{-1/2} A D^{-1/2}) / 2.
    // Its spectrum is in [0, 1]; the top eigenvalue is 1 with eigenvector
    // ∝ sqrt(deg), and 1 − λ₂(M) = (1 − λ₂(walk))/2 … we report in terms of
    // the non-lazy normalized adjacency eigenvalue recovered from M.
    let mut m = Matrix::zeros(n, n);
    for &(u, v) in g.edges() {
        let w = 0.5 / ((g.degree(u) as f64).sqrt() * (g.degree(v) as f64).sqrt());
        m[(u as usize, v as usize)] = w;
        m[(v as usize, u as usize)] = w;
    }
    for v in 0..n {
        m[(v, v)] = 0.5;
    }
    let iterations = 80 + 40 * (n as f64).log2() as usize;
    let (_top, top_vec) = power_iteration(&m, iterations);
    let lambda2_lazy = second_eigenvalue(&m, &top_vec, iterations);
    // Undo the laziness: λ₂(normalized adjacency) = 2λ₂(M) − 1.
    let lambda2 = (2.0 * lambda2_lazy - 1.0).clamp(-1.0, 1.0);
    let gap = (1.0 - lambda2).max(0.0);
    (gap / 2.0, (2.0 * gap).sqrt().min(1.0))
}

/// Bundle of statistics reported by the experiment harness for a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    /// Number of nodes `n`.
    pub num_nodes: u32,
    /// Number of edges `m`.
    pub num_edges: usize,
    /// Maximum degree `Δ`.
    pub max_degree: u32,
    /// Minimum degree `δ`.
    pub min_degree: u32,
    /// Exact diameter `D`.
    pub diameter: u32,
    /// Whether the graph is regular.
    pub regular: bool,
}

impl GraphStats {
    /// Computes the statistics bundle (uses the exact diameter).
    #[must_use]
    pub fn compute(g: &Graph) -> Self {
        Self {
            num_nodes: g.num_nodes(),
            num_edges: g.num_edges(),
            max_degree: g.max_degree(),
            min_degree: g.min_degree(),
            diameter: diameter(g),
            regular: g.is_regular(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::families;
    use crate::graph::Graph;

    #[test]
    fn connectivity() {
        assert!(is_connected(&families::clique(5)));
        let g = Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        assert!(!is_connected(&g));
    }

    #[test]
    fn diameters_of_families() {
        assert_eq!(diameter(&families::clique(8)), 1);
        assert_eq!(diameter(&families::cycle(8)), 4);
        assert_eq!(diameter(&families::cycle(9)), 4);
        assert_eq!(diameter(&families::path(6)), 5);
        assert_eq!(diameter(&families::star(9)), 2);
        assert_eq!(diameter(&families::hypercube(4)), 4);
        assert_eq!(diameter(&families::torus(4, 4)), 4);
    }

    #[test]
    fn double_sweep_exact_on_paths_and_trees() {
        assert_eq!(diameter_double_sweep(&families::path(9)), 8);
        let t = families::binary_tree(15);
        assert_eq!(diameter_double_sweep(&t), diameter(&t));
    }

    #[test]
    fn double_sweep_lower_bounds_diameter() {
        let g = families::torus(5, 7);
        assert!(diameter_double_sweep(&g) <= diameter(&g));
    }

    #[test]
    fn expansion_of_clique() {
        // K_4: minimum over |S|=2: boundary 4, ratio 2; |S|=1: 3.
        let b = edge_expansion_exact(&families::clique(4));
        assert!((b - 2.0).abs() < 1e-12);
        assert_eq!(KnownExpansion::Clique(4).value(), 2.0);
    }

    #[test]
    fn expansion_of_cycle() {
        // C_8: worst S is a half-arc: boundary 2, |S| = 4 → 0.5.
        let b = edge_expansion_exact(&families::cycle(8));
        assert!((b - 0.5).abs() < 1e-12);
        assert!((KnownExpansion::Cycle(8).value() - 0.5).abs() < 1e-12);
    }

    #[test]
    fn expansion_of_star() {
        // S_6: any set of k ≤ 3 leaves has boundary k → β = 1.
        let b = edge_expansion_exact(&families::star(6));
        assert!((b - 1.0).abs() < 1e-12);
        assert_eq!(KnownExpansion::Star(6).value(), 1.0);
    }

    #[test]
    fn expansion_of_hypercube() {
        let b = edge_expansion_exact(&families::hypercube(3));
        assert!((b - 1.0).abs() < 1e-12, "got {b}");
        assert_eq!(KnownExpansion::Hypercube(3).value(), 1.0);
    }

    #[test]
    fn conductance_bounds_sandwich_clique() {
        // K_n conductance = β/Δ = ⌈n/2⌉/(n−1) ≈ 1/2.
        let (lo, hi) = conductance_bounds(&families::clique(16));
        let exact = 8.0 / 15.0;
        assert!(lo <= exact + 1e-6, "lower bound {lo} vs exact {exact}");
        assert!(hi >= exact - 1e-6, "upper bound {hi} vs exact {exact}");
        assert!(lo > 0.1, "clique should have large conductance, lo = {lo}");
    }

    #[test]
    fn conductance_bounds_detect_poor_expansion() {
        // A long cycle has conductance Θ(1/n); the upper bound must reflect
        // that it is small.
        let (_lo, hi) = conductance_bounds(&families::cycle(64));
        assert!(
            hi < 0.5,
            "cycle conductance upper bound should be small, got {hi}"
        );
    }

    #[test]
    fn stats_bundle() {
        let s = GraphStats::compute(&families::cycle(10));
        assert_eq!(s.num_nodes, 10);
        assert_eq!(s.num_edges, 10);
        assert_eq!(s.diameter, 5);
        assert!(s.regular);
        assert_eq!(s.max_degree, 2);
    }
}
