//! Vendored, minimal subset of the `criterion` 0.5 API.
//!
//! The build environment is hermetic (no crates.io access), so this crate
//! reimplements the benchmarking surface the workspace's bench targets
//! use: [`Criterion`], [`BenchmarkGroup`], [`Bencher::iter`],
//! [`BenchmarkId`], [`Throughput`], [`black_box`] and the
//! [`criterion_group!`] / [`criterion_main!`] macros.
//!
//! Measurement model: each benchmark warms up for `warm_up_time`, then
//! collects `sample_size` samples within `measurement_time`; each sample
//! times a batch of iterations and the reported estimate is the median
//! per-iteration time. Results are printed to stdout and also recorded in
//! a process-wide registry readable via [`take_measurements`], which the
//! workspace uses to emit machine-readable baselines (e.g.
//! `BENCH_engine.json`).
//!
//! Set `CRITERION_QUICK=1` to shrink warm-up/measurement times by 10×
//! (used by CI smoke runs).

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Opaque value barrier preventing the optimizer from deleting work.
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// One recorded benchmark estimate.
#[derive(Debug, Clone, PartialEq)]
pub struct Measurement {
    /// Full benchmark id, `group/function[/parameter]`.
    pub id: String,
    /// Median per-iteration time in nanoseconds.
    pub median_ns: f64,
    /// Mean per-iteration time in nanoseconds.
    pub mean_ns: f64,
    /// Fastest sample's per-iteration time in nanoseconds.
    pub min_ns: f64,
    /// Number of samples collected.
    pub samples: usize,
    /// Total iterations executed during measurement.
    pub iterations: u64,
}

static MEASUREMENTS: Mutex<Vec<Measurement>> = Mutex::new(Vec::new());

/// Drains every measurement recorded so far in this process.
#[must_use]
pub fn take_measurements() -> Vec<Measurement> {
    std::mem::take(&mut MEASUREMENTS.lock().expect("measurement registry poisoned"))
}

fn record(m: Measurement) {
    MEASUREMENTS
        .lock()
        .expect("measurement registry poisoned")
        .push(m);
}

/// Identifier of a parameterized benchmark.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    /// `function/parameter` id.
    #[must_use]
    pub fn new(function: impl Into<String>, parameter: impl Display) -> Self {
        Self {
            text: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Id carrying only a parameter.
    #[must_use]
    pub fn from_parameter(parameter: impl Display) -> Self {
        Self {
            text: parameter.to_string(),
        }
    }
}

impl Display for BenchmarkId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.text)
    }
}

/// Units-of-work declaration for throughput reporting.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Times closures; handed to benchmark functions.
pub struct Bencher<'a> {
    config: &'a Config,
    result: Option<(Vec<f64>, u64)>,
}

impl Bencher<'_> {
    /// Runs `f` repeatedly and records per-iteration timings.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // Warm-up: run until the warm-up budget elapses, measuring a
        // rough per-iteration cost to size measurement batches.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_secs_f64() / warm_iters.max(1) as f64;

        let samples = self.config.sample_size.max(2);
        let budget = self.config.measurement_time.as_secs_f64();
        // Batch size so all samples fit roughly inside the budget.
        let batch = ((budget / samples as f64 / per_iter.max(1e-9)).ceil() as u64).max(1);

        let mut timings = Vec::with_capacity(samples);
        let mut total_iters = 0u64;
        let measure_start = Instant::now();
        for _ in 0..samples {
            let t0 = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let dt = t0.elapsed().as_secs_f64();
            timings.push(dt * 1e9 / batch as f64);
            total_iters += batch;
            // Do not run absurdly over budget on slow benchmarks.
            if measure_start.elapsed().as_secs_f64() > 4.0 * budget && timings.len() >= 2 {
                break;
            }
        }
        self.result = Some((timings, total_iters));
    }
}

#[derive(Debug, Clone)]
struct Config {
    warm_up_time: Duration,
    measurement_time: Duration,
    sample_size: usize,
}

impl Config {
    fn scaled(&self) -> Config {
        if std::env::var("CRITERION_QUICK").is_ok_and(|v| v == "1") {
            Config {
                warm_up_time: self.warm_up_time / 10,
                measurement_time: self.measurement_time / 10,
                sample_size: self.sample_size.min(10),
            }
        } else {
            self.clone()
        }
    }
}

impl Default for Config {
    fn default() -> Self {
        Self {
            warm_up_time: Duration::from_secs(3),
            measurement_time: Duration::from_secs(5),
            sample_size: 100,
        }
    }
}

/// Benchmark harness entry point.
#[derive(Debug, Clone, Default)]
pub struct Criterion {
    config: Config,
}

impl Criterion {
    /// Sets the warm-up duration.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.config.warm_up_time = d;
        self
    }

    /// Sets the measurement duration.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.config.measurement_time = d;
        self
    }

    /// Sets the number of samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.config.sample_size = n;
        self
    }

    /// Opens a named benchmark group.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            name: name.into(),
            config: self.config.clone(),
            _parent: std::marker::PhantomData,
        }
    }

    /// Benchmarks a single function outside any group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(&mut self, name: &str, f: F) -> &mut Self {
        run_benchmark(name, &self.config.scaled(), f);
        self
    }
}

/// A named group of related benchmarks.
pub struct BenchmarkGroup<'a> {
    name: String,
    config: Config,
    _parent: std::marker::PhantomData<&'a mut Criterion>,
}

impl BenchmarkGroup<'_> {
    /// Declares per-iteration throughput (recorded for display only).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Overrides the sample count for this group.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.config.sample_size = n;
        self
    }

    /// Overrides the measurement duration for this group.
    pub fn measurement_time(&mut self, d: Duration) -> &mut Self {
        self.config.measurement_time = d;
        self
    }

    /// Overrides the warm-up duration for this group.
    pub fn warm_up_time(&mut self, d: Duration) -> &mut Self {
        self.config.warm_up_time = d;
        self
    }

    /// Benchmarks `f` with shared setup `input`.
    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher<'_>, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &self.config.scaled(), |b| f(b, input));
        self
    }

    /// Benchmarks a function within the group.
    pub fn bench_function<F: FnMut(&mut Bencher<'_>)>(
        &mut self,
        id: impl Display,
        f: F,
    ) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        run_benchmark(&full, &self.config.scaled(), f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_benchmark<F: FnMut(&mut Bencher<'_>)>(id: &str, config: &Config, mut f: F) {
    let mut bencher = Bencher {
        config,
        result: None,
    };
    f(&mut bencher);
    let Some((mut timings, iterations)) = bencher.result else {
        eprintln!("{id}: benchmark closure never called Bencher::iter");
        return;
    };
    timings.sort_by(|a, b| a.partial_cmp(b).expect("no NaN timings"));
    let median = timings[timings.len() / 2];
    let mean = timings.iter().sum::<f64>() / timings.len() as f64;
    let min = timings[0];
    println!(
        "{id:<50} time: [{} {} {}] ({} samples, {iterations} iters)",
        fmt_ns(min),
        fmt_ns(median),
        fmt_ns(timings[timings.len() - 1]),
        timings.len(),
    );
    record(Measurement {
        id: id.to_string(),
        median_ns: median,
        mean_ns: mean,
        min_ns: min,
        samples: timings.len(),
        iterations,
    });
}

fn fmt_ns(ns: f64) -> String {
    if ns < 1e3 {
        format!("{ns:.2} ns")
    } else if ns < 1e6 {
        format!("{:.2} µs", ns / 1e3)
    } else if ns < 1e9 {
        format!("{:.2} ms", ns / 1e6)
    } else {
        format!("{:.2} s", ns / 1e9)
    }
}

/// Declares a group of benchmark functions, optionally with a shared
/// configuration (both criterion forms are supported).
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generates `fn main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_and_records() {
        std::env::set_var("CRITERION_QUICK", "1");
        let mut c = Criterion::default()
            .warm_up_time(Duration::from_millis(20))
            .measurement_time(Duration::from_millis(50))
            .sample_size(5);
        let mut group = c.benchmark_group("shim");
        group.bench_with_input(BenchmarkId::new("sum", 100), &100u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.finish();
        let ms = take_measurements();
        assert_eq!(ms.len(), 2);
        assert!(ms.iter().any(|m| m.id == "shim/sum/100"));
        assert!(ms.iter().all(|m| m.median_ns > 0.0 && m.iterations > 0));
    }

    #[test]
    fn benchmark_id_formats() {
        assert_eq!(BenchmarkId::new("f", 32).to_string(), "f/32");
        assert_eq!(BenchmarkId::from_parameter("clique").to_string(), "clique");
    }
}
