//! Vendored, minimal subset of the `proptest` 1.x API.
//!
//! The build environment is hermetic (no crates.io access), so this crate
//! reimplements exactly the property-testing surface the workspace uses:
//!
//! * the [`proptest!`] macro with an optional
//!   `#![proptest_config(ProptestConfig::with_cases(n))]` header and
//!   `arg in strategy` bindings;
//! * [`strategy::Strategy`] with [`strategy::Strategy::prop_map`],
//!   implemented for integer and float ranges and for tuples of
//!   strategies;
//! * [`arbitrary::any`] for primitive types;
//! * [`collection::vec`] for random-length vectors;
//! * the assertion macros [`prop_assert!`], [`prop_assert_eq!`],
//!   [`prop_assert_ne!`] and [`prop_assume!`].
//!
//! Differences from real proptest: case generation is deterministic per
//! test name (derived from a fixed master seed, overridable via the
//! `PROPTEST_SEED` environment variable) and there is **no shrinking** —
//! a failing case reports its inputs via the panic message produced by
//! the assertion that failed.

use rand::rngs::SmallRng;

/// The RNG driving case generation.
pub type TestRng = SmallRng;

/// Strategy combinators and the core [`strategy::Strategy`] trait.
pub mod strategy {
    use super::TestRng;
    use rand::Rng;

    /// A generator of random values of type `Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draws one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        inner: S,
        f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;

        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// A strategy that always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;

        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for core::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
            impl Strategy for core::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    rng.random_range(self.clone())
                }
            }
        )*};
    }

    impl_int_range_strategy!(u8, u16, u32, u64, usize, i32, i64);

    impl Strategy for core::ops::Range<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            assert!(self.start < self.end, "empty f64 range");
            let u: f64 = rng.random();
            self.start + u * (self.end - self.start)
        }
    }

    impl Strategy for core::ops::RangeInclusive<f64> {
        type Value = f64;

        fn generate(&self, rng: &mut TestRng) -> f64 {
            let (lo, hi) = (*self.start(), *self.end());
            assert!(lo <= hi, "empty f64 range");
            let u: f64 = rng.random();
            // Clamp so downstream `0 ≤ p ≤ 1`-style contracts always hold.
            (lo + u * (hi - lo)).clamp(lo, hi)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($(($($name:ident),+))*) => {$(
            #[allow(non_snake_case)]
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        )*};
    }

    impl_tuple_strategy! {
        (A)
        (A, B)
        (A, B, C)
        (A, B, C, D)
        (A, B, C, D, E)
        (A, B, C, D, E, F)
    }
}

/// `any::<T>()` support for primitive types.
pub mod arbitrary {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Types with a canonical full-range strategy.
    pub trait Arbitrary: Sized {
        /// Draws one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! impl_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> Self {
                    rng.random()
                }
            }
        )*};
    }

    impl_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, bool);

    /// Strategy over the full value range of `T`.
    pub struct Any<T>(core::marker::PhantomData<T>);

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;

        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    #[must_use]
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any(core::marker::PhantomData)
    }
}

/// Collection strategies.
pub mod collection {
    use super::strategy::Strategy;
    use super::TestRng;
    use rand::Rng;

    /// Length specifications accepted by [`vec()`].
    pub trait SizeRange {
        /// Draws a length.
        fn pick(&self, rng: &mut TestRng) -> usize;
    }

    impl SizeRange for usize {
        fn pick(&self, _rng: &mut TestRng) -> usize {
            *self
        }
    }

    impl SizeRange for core::ops::Range<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    impl SizeRange for core::ops::RangeInclusive<usize> {
        fn pick(&self, rng: &mut TestRng) -> usize {
            rng.random_range(self.clone())
        }
    }

    /// Strategy for vectors with element strategy `S` and length spec `L`.
    pub struct VecStrategy<S, L> {
        element: S,
        len: L,
    }

    impl<S: Strategy, L: SizeRange> Strategy for VecStrategy<S, L> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.pick(rng);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates vectors whose length is drawn from `len` and whose
    /// elements are drawn from `element`.
    pub fn vec<S: Strategy, L: SizeRange>(element: S, len: L) -> VecStrategy<S, L> {
        VecStrategy { element, len }
    }
}

/// Test-case driving: configuration, error type and the per-test runner.
pub mod test_runner {
    use super::TestRng;
    use rand::SeedableRng;

    /// Configuration for a `proptest!` block.
    #[derive(Debug, Clone)]
    pub struct Config {
        /// Number of cases to run per test.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        #[must_use]
        pub fn with_cases(cases: u32) -> Self {
            Self { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Self { cases: 256 }
        }
    }

    /// Why a test case did not pass.
    #[derive(Debug, Clone)]
    pub enum TestCaseError {
        /// An assertion failed; the test fails.
        Fail(String),
        /// A `prop_assume!` precondition was not met; the case is skipped.
        Reject(String),
    }

    impl TestCaseError {
        /// Creates a failure.
        #[must_use]
        pub fn fail(msg: impl Into<String>) -> Self {
            Self::Fail(msg.into())
        }

        /// Creates a rejection.
        #[must_use]
        pub fn reject(msg: impl Into<String>) -> Self {
            Self::Reject(msg.into())
        }
    }

    /// Drives the cases of one property test.
    pub struct TestRunner {
        config: Config,
        seed: u64,
        case: u64,
        rejects: u32,
    }

    impl TestRunner {
        /// Creates a runner for the named test.
        #[must_use]
        pub fn new(config: Config, test_name: &str) -> Self {
            let master = std::env::var("PROPTEST_SEED")
                .ok()
                .and_then(|s| s.parse().ok())
                .unwrap_or(0x5EED_CAFE_F00Du64);
            // Mix the test name so sibling tests explore different inputs.
            let mut seed = master;
            for b in test_name.bytes() {
                seed = seed.rotate_left(7) ^ u64::from(b) ^ seed.wrapping_mul(0x100_0000_01B3);
            }
            Self {
                config,
                seed,
                case: 0,
                rejects: 0,
            }
        }

        /// Number of cases to run.
        #[must_use]
        pub fn cases(&self) -> u32 {
            self.config.cases
        }

        /// The RNG for the next case.
        pub fn next_rng(&mut self) -> TestRng {
            self.case += 1;
            TestRng::seed_from_u64(
                self.seed
                    .wrapping_add(self.case.wrapping_mul(0x9E37_79B9_7F4A_7C15)),
            )
        }

        /// Records a case outcome.
        ///
        /// # Panics
        ///
        /// Panics (failing the surrounding `#[test]`) on
        /// [`TestCaseError::Fail`], or when too many cases are rejected.
        pub fn record(&mut self, result: Result<(), TestCaseError>) {
            match result {
                Ok(()) => {}
                Err(TestCaseError::Fail(msg)) => {
                    panic!("proptest case {} failed: {msg}", self.case)
                }
                Err(TestCaseError::Reject(msg)) => {
                    self.rejects += 1;
                    assert!(
                        self.rejects <= 4 * self.config.cases.max(64),
                        "too many prop_assume! rejections ({}); last: {msg}",
                        self.rejects
                    );
                }
            }
        }
    }
}

/// Everything a `proptest!` user needs in scope.
pub mod prelude {
    pub use crate as prop;
    pub use crate::arbitrary::any;
    pub use crate::strategy::{Just, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Declares property tests; see the crate docs for the supported syntax.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl! { cfg = $crate::test_runner::Config::default(); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (cfg = $cfg:expr; $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),* $(,)?) $body:block)*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(config, stringify!($name));
                for _case in 0..runner.cases() {
                    let mut __proptest_rng = runner.next_rng();
                    $(let $arg = $crate::strategy::Strategy::generate(&($strat), &mut __proptest_rng);)*
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| { $body Ok(()) })();
                    runner.record(outcome);
                }
            }
        )*
    };
}

/// Asserts a condition inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err(
                $crate::test_runner::TestCaseError::fail(format!($($fmt)*)),
            );
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{} == {}` (left: {:?}, right: {:?})",
            stringify!($a), stringify!($b), left, right
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{} != {}` (both: {:?})",
            stringify!($a), stringify!($b), left
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$a, &$b);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Skips the current case unless a precondition holds.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError::reject(
                stringify!($cond),
            ));
        }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3u32..10, y in 0usize..=4, f in -1.0f64..1.0) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y <= 4);
            prop_assert!((-1.0..=1.0).contains(&f));
        }

        #[test]
        fn tuples_and_maps(v in (1u32..5, 1u32..5).prop_map(|(a, b)| a * b)) {
            prop_assert!((1..25).contains(&v));
        }

        #[test]
        fn vec_lengths(xs in prop::collection::vec(0u8..=255, 2..7)) {
            prop_assert!(xs.len() >= 2 && xs.len() < 7);
        }

        #[test]
        fn assume_skips(n in 0u32..10) {
            prop_assume!(n % 2 == 0);
            prop_assert_eq!(n % 2, 0);
            prop_assert_ne!(n, 1);
        }
    }

    #[test]
    fn deterministic_generation() {
        use crate::strategy::Strategy;
        use crate::test_runner::{Config, TestRunner};
        let gen_all = || {
            let mut runner = TestRunner::new(Config::with_cases(8), "determinism");
            (0..8)
                .map(|_| (0u64..1000).generate(&mut runner.next_rng()))
                .collect::<Vec<_>>()
        };
        assert_eq!(gen_all(), gen_all());
    }
}
