//! Vendored, dependency-free subset of the `rand` 0.9 API.
//!
//! The build environment of this workspace is hermetic (no crates.io
//! access), so instead of the real `rand` crate the workspace vendors the
//! exact API surface it consumes:
//!
//! * [`RngCore`] — raw 64-bit generator interface;
//! * [`Rng`] — the user-facing extension trait with [`Rng::random`],
//!   [`Rng::random_range`] and [`Rng::random_bool`] (the rand 0.9 method
//!   names; the pre-0.9 `gen_*` names are not provided);
//! * [`SeedableRng`] with [`SeedableRng::seed_from_u64`];
//! * [`rngs::SmallRng`] — a small, fast, non-cryptographic generator
//!   (xoshiro256++, the same family the real `SmallRng` uses on 64-bit
//!   targets), seeded via splitmix64 expansion;
//! * [`seq::SliceRandom`] — Fisher–Yates [`seq::SliceRandom::shuffle`]
//!   and uniform [`seq::SliceRandom::choose`].
//!
//! Everything is deterministic per seed; nothing reads OS entropy. The
//! statistical quality is that of xoshiro256++, which is more than
//! adequate for the simulation workloads here (and is validated by the
//! scheduler-statistics and distribution tests of the workspace).

/// A source of random 64-bit words.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;

    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an `RngCore` — the vendored
/// stand-in for rand's `StandardUniform` distribution.
pub trait Standard: Sized {
    /// Draws one uniform sample.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            #[inline]
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}

impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Standard for u128 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl Standard for bool {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // Use the high bit: xoshiro's low bits are the weakest.
        rng.next_u64() >> 63 == 1
    }
}

impl Standard for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision (the standard
    /// `(x >> 11) · 2⁻⁵³` construction).
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    #[inline]
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

/// Integer types that support unbiased uniform range sampling.
pub trait UniformInt: Copy + PartialOrd {
    /// Samples uniformly from `[low, high)`; `high > low`.
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
    /// Samples uniformly from `[low, high]`; `high >= low`.
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self;
}

/// Unbiased bounded sampling in `[0, n)` via Lemire's multiply-shift
/// method with rejection.
#[inline]
fn bounded_u64<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let mut x = rng.next_u64();
    let mut m = u128::from(x) * u128::from(n);
    let mut lo = m as u64;
    if lo < n {
        let threshold = n.wrapping_neg() % n;
        while lo < threshold {
            x = rng.next_u64();
            m = u128::from(x) * u128::from(n);
            lo = m as u64;
        }
    }
    (m >> 64) as u64
}

macro_rules! impl_uniform_int {
    ($($t:ty => $u:ty),*) => {$(
        impl UniformInt for $t {
            #[inline]
            fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low < high, "cannot sample from an empty range");
                let span = (high as $u).wrapping_sub(low as $u);
                low.wrapping_add(bounded_u64(rng, u64::from(span)) as $t)
            }
            #[inline]
            fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
                assert!(low <= high, "cannot sample from an empty range");
                let span = (high as $u).wrapping_sub(low as $u);
                if u64::from(span) == u64::MAX {
                    return rng.next_u64() as $t;
                }
                low.wrapping_add(bounded_u64(rng, u64::from(span) + 1) as $t)
            }
        }
    )*};
}

impl_uniform_int!(u8 => u8, u16 => u16, u32 => u32, u64 => u64, i32 => u32, i64 => u64);

impl UniformInt for usize {
    #[inline]
    fn sample_exclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low < high, "cannot sample from an empty range");
        low + bounded_u64(rng, (high - low) as u64) as usize
    }
    #[inline]
    fn sample_inclusive<R: RngCore + ?Sized>(rng: &mut R, low: Self, high: Self) -> Self {
        assert!(low <= high, "cannot sample from an empty range");
        let span = (high - low) as u64;
        if span == u64::MAX {
            return rng.next_u64() as usize;
        }
        low + bounded_u64(rng, span + 1) as usize
    }
}

/// Range forms accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws a uniform sample from the range.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: UniformInt> SampleRange<T> for core::ops::Range<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_exclusive(rng, self.start, self.end)
    }
}

impl<T: UniformInt> SampleRange<T> for core::ops::RangeInclusive<T> {
    #[inline]
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_inclusive(rng, *self.start(), *self.end())
    }
}

/// User-facing random-value methods, blanket-implemented for every
/// [`RngCore`] (mirrors the rand 0.9 `Rng` trait).
pub trait Rng: RngCore {
    /// Samples a value of type `T` from its standard uniform distribution.
    #[inline]
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Samples uniformly from `range` (`a..b` or `a..=b`).
    #[inline]
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    #[inline]
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction of a generator from seed material.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed, expanding it with
    /// splitmix64 (the reference seeding procedure for xoshiro).
    fn seed_from_u64(seed: u64) -> Self;
}

#[inline]
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// A small, fast, non-cryptographic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SmallRng {
        /// The raw xoshiro256++ state words — for bulk steppers that
        /// reproduce this generator's stream exactly out-of-band (e.g.
        /// lane-parallel engines stepping many generators at once) and
        /// then restore the advanced state with [`Self::set_state`].
        #[must_use]
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Replaces the state words (the counterpart of
        /// [`Self::state`]). The caller is responsible for handing back
        /// a state reachable from this generator's seed if stream
        /// reproducibility matters; an all-zero state is degenerate
        /// (xoshiro maps it to itself) and is rejected.
        ///
        /// # Panics
        ///
        /// Panics if `s` is all zeros.
        pub fn set_state(&mut self, s: [u64; 4]) {
            assert!(s != [0; 4], "the all-zero xoshiro state is degenerate");
            self.s = s;
        }
    }

    impl SeedableRng for SmallRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut state = seed;
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = super::splitmix64(&mut state);
            }
            // xoshiro requires a nonzero state; splitmix64 output is zero
            // for at most one of the four words, but guard anyway.
            if s == [0; 4] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            Self { s }
        }
    }
}

/// Sequence-related helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.random_range(0..=i);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.random_range(0..self.len())])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = SmallRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn random_range_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let x: usize = rng.random_range(0..17);
            assert!(x < 17);
            let y: u64 = rng.random_range(5..=9);
            assert!((5..=9).contains(&y));
            let z: u32 = rng.random_range(3..4);
            assert_eq!(z, 3);
        }
    }

    #[test]
    fn range_is_roughly_uniform() {
        let mut rng = SmallRng::seed_from_u64(7);
        let mut counts = [0u32; 8];
        let trials = 80_000;
        for _ in 0..trials {
            counts[rng.random_range(0..8usize)] += 1;
        }
        for &c in &counts {
            let freq = f64::from(c) / f64::from(trials);
            assert!((freq - 0.125).abs() < 0.01, "freq {freq}");
        }
    }

    #[test]
    fn f64_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(3);
        let mut sum = 0.0;
        for _ in 0..40_000 {
            let u: f64 = rng.random();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        assert!((sum / 40_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn bool_is_fair() {
        let mut rng = SmallRng::seed_from_u64(9);
        let heads = (0..40_000).filter(|_| rng.random::<bool>()).count();
        assert!((heads as f64 / 40_000.0 - 0.5).abs() < 0.01);
    }

    #[test]
    fn random_bool_probability() {
        let mut rng = SmallRng::seed_from_u64(11);
        let hits = (0..40_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((hits as f64 / 40_000.0 - 0.25).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = SmallRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, sorted, "shuffle should move something");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = SmallRng::seed_from_u64(13);
        let v = [1, 2, 3];
        let mut seen = [false; 3];
        for _ in 0..200 {
            seen[*v.choose(&mut rng).unwrap() - 1] = true;
        }
        assert_eq!(seen, [true; 3]);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }
}
