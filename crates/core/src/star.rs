//! The trivial 3-state protocol for star graphs (Table 1, "Stars" row).
//!
//! Section 1.3 of the paper observes that on stars a constant-state
//! protocol elects a leader in a **single interaction**: every interaction
//! involves the centre, so the first interaction breaks all symmetry.
//!
//! Rules (initiator, responder):
//!
//! * `(Init, Init) → (Leader, Follower)`
//! * `(Leader, Init) → (Leader, Follower)` and symmetrically
//! * `(Follower, Init) → (Follower, Follower)` and symmetrically
//!
//! `Init` outputs *follower*, so after the first interaction exactly one
//! node outputs leader.
//!
//! # Stability on stars (oracle proof)
//!
//! A new leader can only arise from an `(Init, Init)` interaction. On a
//! star every edge contains the centre, and after the first interaction
//! the centre is never `Init` again, so no second leader can ever appear;
//! leaders are never demoted. Hence on stars *exactly one leader output ⟺
//! stable and correct*, and [`LeaderCountOracle`] is exact. **On graphs
//! with an edge between two non-centre nodes this equivalence fails** —
//! the protocol is only intended for stars, and [`StarProtocol::new`]
//! documents this contract.

use popele_engine::{LeaderCountOracle, Protocol, Role};
use popele_graph::NodeId;

/// The three local states.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StarState {
    /// Initial, undecided state (outputs follower).
    Init,
    /// Elected leader.
    Leader,
    /// Decided follower.
    Follower,
}

/// The 3-state single-interaction protocol for star graphs.
///
/// # Examples
///
/// ```
/// use popele_core::star::StarProtocol;
/// use popele_engine::Executor;
/// use popele_graph::families;
///
/// let g = families::star(100);
/// let out = Executor::new(&g, &StarProtocol::new(), 1)
///     .run_until_stable(10)
///     .unwrap();
/// assert_eq!(out.stabilization_step, 1); // one interaction!
/// ```
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct StarProtocol;

impl StarProtocol {
    /// Creates the protocol. Correct (and its oracle exact) on star
    /// graphs; see the module docs for why it must not be used elsewhere.
    #[must_use]
    pub fn new() -> Self {
        Self
    }
}

impl Protocol for StarProtocol {
    type State = StarState;
    type Oracle = LeaderCountOracle;

    fn initial_state(&self, _node: NodeId) -> StarState {
        StarState::Init
    }

    fn transition(&self, a: &StarState, b: &StarState) -> (StarState, StarState) {
        use StarState::{Follower, Init, Leader};
        match (a, b) {
            (Init, Init) => (Leader, Follower),
            (Leader, Init) => (Leader, Follower),
            (Init, Leader) => (Follower, Leader),
            (Follower, Init) => (Follower, Follower),
            (Init, Follower) => (Follower, Follower),
            (x, y) => (*x, *y),
        }
    }

    fn output(&self, state: &StarState) -> Role {
        match state {
            StarState::Leader => Role::Leader,
            _ => Role::Follower,
        }
    }

    fn oracle(&self) -> LeaderCountOracle {
        LeaderCountOracle::new()
    }

    fn state_space_bound(&self) -> Option<u64> {
        Some(3)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_engine::exhaustive::{validate_oracle_on_execution, DEFAULT_CONFIG_LIMIT};
    use popele_engine::Executor;
    use popele_graph::families;

    #[test]
    fn one_interaction_on_any_star() {
        for n in [2u32, 3, 10, 100, 1000] {
            let g = families::star(n);
            let out = Executor::new(&g, &StarProtocol::new(), u64::from(n))
                .run_until_stable(10)
                .unwrap();
            assert_eq!(out.stabilization_step, 1, "star n={n}");
            assert_eq!(out.leader_count, 1);
        }
    }

    #[test]
    fn leader_is_centre_or_first_leaf() {
        // The first interaction is centre↔some leaf; the initiator wins.
        let g = families::star(50);
        let p = StarProtocol::new();
        let mut exec = Executor::new(&g, &p, 7);
        let (initiator, _) = exec.step();
        assert_eq!(exec.leader(), Some(initiator));
    }

    #[test]
    fn oracle_exact_on_tiny_stars() {
        for n in [2u32, 3, 4] {
            let steps = validate_oracle_on_execution(
                &StarProtocol::new(),
                &families::star(n),
                3,
                50,
                DEFAULT_CONFIG_LIMIT,
            );
            assert_eq!(steps, 1);
        }
    }

    #[test]
    fn later_interactions_change_nothing_observable() {
        let g = families::star(10);
        let p = StarProtocol::new();
        let mut exec = Executor::new(&g, &p, 5);
        exec.run_until_stable(10).unwrap();
        let leader = exec.leader();
        exec.run_steps(1000);
        assert_eq!(exec.leader(), leader);
        assert_eq!(exec.leader_count(), 1);
    }

    #[test]
    fn transition_table_complete() {
        use StarState::{Follower, Init, Leader};
        let p = StarProtocol::new();
        assert_eq!(p.transition(&Init, &Init), (Leader, Follower));
        assert_eq!(p.transition(&Leader, &Init), (Leader, Follower));
        assert_eq!(p.transition(&Init, &Leader), (Follower, Leader));
        assert_eq!(p.transition(&Follower, &Init), (Follower, Follower));
        assert_eq!(p.transition(&Init, &Follower), (Follower, Follower));
        // Decided pairs are inert.
        assert_eq!(p.transition(&Leader, &Follower), (Leader, Follower));
        assert_eq!(p.transition(&Follower, &Leader), (Follower, Leader));
        assert_eq!(p.transition(&Follower, &Follower), (Follower, Follower));
        assert_eq!(p.transition(&Leader, &Leader), (Leader, Leader));
    }

    #[test]
    fn uses_three_states() {
        let g = families::star(20);
        let p = StarProtocol::new();
        let mut exec = Executor::new(&g, &p, 2);
        exec.enable_state_census();
        exec.run_steps(500);
        let out = exec.outcome();
        assert!(out.distinct_states.unwrap() <= 3);
    }
}
