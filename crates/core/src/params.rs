//! Parameter derivation for the paper's protocols.
//!
//! The fast protocol of Theorem 24 is *non-uniform*: its state space and
//! transition function depend on high-level structural quantities of the
//! interaction graph (the broadcast time `B(G)`, the maximum degree `Δ`,
//! `m` and `n`) which all nodes receive identically at initialization
//! (Section 2.2). This module derives those parameters from measured
//! graph statistics.
//!
//! Two flavours are provided:
//!
//! * [`FastParams::paper`] — the constants exactly as in Section 5.2:
//!   `h = 8 + ⌈log₂(B(G)·Δ/m)⌉` and `L = ⌈2τ·log₂ n⌉`. These are sized
//!   for the high-probability union bounds of the proofs and put
//!   `≈ 2⁹·B(G)` steps between clock ticks — faithful, but *hundreds of
//!   times slower* than necessary in simulation.
//! * [`FastParams::practical`] — the same formulas with the proof
//!   slack removed (`h = max(1, ⌈log₂(B(G)·Δ/m)⌉)`, `L = ⌈log₂ n⌉`,
//!   `α = 4`). The asymptotic shape `O(B(G)·log n)` is unchanged; only
//!   the constant shrinks. Failures (several nodes surviving to the
//!   maximum level) are handled by the always-correct backup phase, so
//!   correctness never depends on the parameter choice.

/// Parameters of the fast space-efficient protocol (Theorem 24).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastParams {
    /// Streak length `h` of the local clocks.
    pub h: u8,
    /// Elimination-phase entry level `L`.
    pub big_l: u32,
    /// Level-cap multiplier: nodes reaching `α·L` switch to the backup.
    pub alpha: u32,
}

impl FastParams {
    /// Explicit constructor (mainly for tests and ablations).
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ h ≤ 60`, `big_l ≥ 1`, `alpha ≥ 2`.
    #[must_use]
    pub fn new(h: u8, big_l: u32, alpha: u32) -> Self {
        assert!((1..=60).contains(&h), "h must be in 1..=60");
        assert!(big_l >= 1, "L must be at least 1");
        assert!(alpha >= 2, "α must be at least 2");
        Self { h, big_l, alpha }
    }

    /// The paper's constants (Section 5.2) with failure parameter `τ`:
    /// `h = 8 + ⌈log₂(B(G)·Δ/m)⌉`, `L = ⌈2τ·log₂ n⌉`, `α = 8`.
    ///
    /// # Panics
    ///
    /// Panics on degenerate inputs (`n < 2`, `m == 0`, `Δ == 0`,
    /// non-positive `b_estimate`, `tau == 0`).
    #[must_use]
    pub fn paper(b_estimate: f64, max_degree: u32, m: usize, n: u32, tau: u32) -> Self {
        assert!(n >= 2 && m > 0 && max_degree > 0 && tau > 0);
        assert!(b_estimate > 0.0, "broadcast estimate must be positive");
        let ratio = (b_estimate * f64::from(max_degree) / m as f64).max(1.0);
        let h = 8 + ratio.log2().ceil() as i64;
        let big_l = (2.0 * f64::from(tau) * f64::from(n).log2()).ceil() as u32;
        Self::new(h.clamp(1, 60) as u8, big_l.max(1), 8)
    }

    /// Simulation-sized constants preserving the asymptotic shape:
    /// `h = max(1, ⌈log₂(B(G)·Δ/m)⌉)`, `L = ⌈log₂ n⌉`, `α = 4`.
    ///
    /// # Panics
    ///
    /// As [`FastParams::paper`].
    #[must_use]
    pub fn practical(b_estimate: f64, max_degree: u32, m: usize, n: u32) -> Self {
        assert!(n >= 2 && m > 0 && max_degree > 0);
        assert!(b_estimate > 0.0, "broadcast estimate must be positive");
        let ratio = (b_estimate * f64::from(max_degree) / m as f64).max(1.0);
        let h = ratio.log2().ceil().max(1.0) as i64;
        let big_l = f64::from(n).log2().ceil() as u32;
        Self::new(h.clamp(1, 60) as u8, big_l.max(1), 4)
    }

    /// Clique-specialized constants for an `n`-clique.
    ///
    /// The waiting phase (levels below `L`) exists to eliminate
    /// low-degree nodes, whose clocks tick too slowly to win — on a
    /// clique every node has degree `n − 1`, so the phase buys nothing
    /// and its `L = ⌈log₂ n⌉` levels at `≈ 2^h` parallel time each
    /// dominate the election. This constructor collapses it: `L = 2`
    /// (elimination starts at the first contested level), `h` stays at
    /// the broadcast-matched `⌈log₂(B·Δ/m)⌉ = ⌈log₂(2·ln n)⌉`, and the
    /// backup cap is held at `α·L = 2⌈log₂ n⌉` so the duel endgame has
    /// the same `Θ(log n)` levels of headroom as the general
    /// parameterization. Elections finish in `Θ(log n)` parallel time —
    /// tens of units at `n = 10⁶`–`10⁸` — instead of the waiting
    /// phase's hundreds; this is the configuration the count engine's
    /// large-clique benchmarks run.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    #[must_use]
    pub fn clique_tuned(n: u32) -> Self {
        assert!(n >= 2, "need at least two nodes");
        let ratio = (2.0 * f64::from(n).ln()).max(1.0);
        let h = ratio.log2().ceil().max(1.0) as i64;
        let log_n = f64::from(n).log2().ceil().max(1.0) as u32;
        Self::new(h.clamp(1, 60) as u8, 2, log_n.max(2))
    }

    /// The maximum level `α·L` at which nodes switch to the backup phase.
    #[must_use]
    pub fn max_level(&self) -> u32 {
        self.alpha * self.big_l
    }

    /// The state-space size `h(G)·L` style bound of Theorem 24 for this
    /// parameterization: streak states × level states × status ×
    /// backup-token states.
    #[must_use]
    pub fn state_space_bound(&self) -> u64 {
        let streaks = u64::from(self.h) + 1;
        let levels = u64::from(self.max_level()) + 1;
        // status ∈ {leader, follower}; backup ∈ {off} ∪ 6 token states.
        streaks * levels * 2 * 7
    }
}

/// Identifier length for the Theorem 21 protocol.
///
/// `paper = true` gives `k = ⌈4·log₂ n⌉` (general graphs; use
/// `⌈3·log₂ n⌉` for regular graphs per the theorem), capped at 62 bits;
/// `paper = false` gives the simulation-sized `k = 2·⌈log₂ n⌉` whose
/// collision probability `n/2^k ≤ 1/n` already makes ties negligible.
///
/// # Panics
///
/// Panics if `n < 2`.
#[must_use]
pub fn identifier_bits(n: u32, paper: bool) -> u32 {
    assert!(n >= 2, "need at least two nodes");
    let log_n = f64::from(n).log2().ceil() as u32;
    let k = if paper { 4 * log_n } else { 2 * log_n };
    k.clamp(1, 62)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_params_match_formulas() {
        // Clique-ish inputs: B ≈ n log n, Δ = n−1, m = n(n−1)/2.
        let n = 256u32;
        let m = 256 * 255 / 2;
        let b = 256.0 * 8.0 * std::f64::consts::LN_2; // ≈ n ln n
        let p = FastParams::paper(b, 255, m, n, 1);
        // ratio = B·Δ/m ≈ 2·B/n ≈ 11.09 → ⌈log₂⌉ = 4 → h = 12.
        assert_eq!(p.h, 12);
        assert_eq!(p.big_l, 16); // 2·1·log₂ 256
        assert_eq!(p.alpha, 8);
        assert_eq!(p.max_level(), 128);
    }

    #[test]
    fn practical_smaller_than_paper() {
        let p = FastParams::paper(1000.0, 10, 500, 64, 2);
        let q = FastParams::practical(1000.0, 10, 500, 64);
        assert!(q.h < p.h);
        assert!(q.big_l <= p.big_l);
        assert_eq!(q.h, 5); // log2(1000·10/500) = log2(20) → ⌈4.32⌉ = 5
        assert_eq!(q.big_l, 6);
    }

    #[test]
    fn ratio_below_one_clamps() {
        // Very fast broadcast relative to m/Δ: h floors at its minimum.
        let p = FastParams::practical(1.0, 1, 1000, 16);
        assert_eq!(p.h, 1);
        let q = FastParams::paper(1.0, 1, 1000, 16, 1);
        assert_eq!(q.h, 8);
    }

    #[test]
    fn state_space_bound_counts_components() {
        let p = FastParams::new(2, 3, 2);
        // (h+1)·(αL+1)·2·7 = 3·7·2·7 = 294.
        assert_eq!(p.state_space_bound(), 294);
    }

    #[test]
    fn clique_tuned_collapses_the_waiting_phase() {
        let p = FastParams::clique_tuned(10_000_000);
        // 2·ln 10⁷ ≈ 32.2 → h = 6; L = 2; cap = 2·⌈log₂ 10⁷⌉ = 48.
        assert_eq!(p.h, 6);
        assert_eq!(p.big_l, 2);
        assert_eq!(p.max_level(), 48);
        // h matches the practical derivation for the same clique.
        let n = 10_000_000u64;
        let q = FastParams::practical(
            n as f64 * (n as f64).ln(),
            (n - 1) as u32,
            (n * (n - 1) / 2) as usize,
            n as u32,
        );
        assert_eq!(p.h, q.h);
        assert!(p.max_level() <= q.max_level());
        // Degenerate sizes stay constructible.
        let tiny = FastParams::clique_tuned(2);
        assert!(tiny.h >= 1 && tiny.max_level() >= 4);
    }

    #[test]
    fn identifier_bits_flavours() {
        assert_eq!(identifier_bits(256, true), 32);
        assert_eq!(identifier_bits(256, false), 16);
        assert_eq!(identifier_bits(1 << 20, true), 62); // capped
        assert_eq!(identifier_bits(2, false), 2);
    }

    #[test]
    #[should_panic(expected = "α must be at least 2")]
    fn alpha_one_rejected() {
        let _ = FastParams::new(1, 1, 1);
    }
}
