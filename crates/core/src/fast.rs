//! The fast space-efficient leader-election protocol (Theorem 24):
//! `O(B(G)·log n)` expected stabilization with `O(log n · h(G))` states.
//!
//! Every node runs a [`crate::clock::StreakClock`] with streak length `h`
//! chosen so that clock ticks arrive roughly every `B(G)` steps at
//! `Θ(Δ)`-degree nodes. All nodes start as leaders at level 0 and race up
//! a ladder of `α·L` levels:
//!
//! 1. a **leader** that completes a streak climbs one level (rule 1);
//! 2. meeting a node of strictly higher level `≥ L` demotes a node to
//!    follower (rule 2);
//! 3. levels `≥ L` spread by broadcast (rule 3).
//!
//! Levels below `L` are the *waiting phase* — low-degree nodes tick too
//! slowly to reach `L` before the broadcast of faster nodes' levels
//! arrives, which is what eliminates them and guarantees the winner has
//! degree `Θ(Δ)` w.h.p. Levels in `[L, α·L)` are the *elimination phase*:
//! whenever two surviving leaders are at the same level, the next tick
//! plus one broadcast demotes one of them with constant probability
//! (Lemma 30), so `O(log n)` levels suffice to whittle the field to one
//! w.h.p. (Lemma 31). A node reaching the cap `α·L` switches to the
//! always-correct **backup**: the 6-state token protocol
//! ([`crate::token`]), seeded with its current status, while continuing to
//! broadcast its level so every node follows it into the backup phase.
//! The backup fires with probability `O(n^{−τ})` and guarantees finite
//! expected stabilization time.
//!
//! # Stability oracle
//!
//! Let `leaders` be the number of leader-*output* nodes (backup nodes
//! output their token-protocol candidacy; fast-phase nodes their status),
//! `backup` the number of nodes in the backup phase, and `backup_cands`
//! the number of backup candidates. The oracle reports stability iff
//!
//! ```text
//! leaders == 1  ∧  (backup == 0 ∨ backup_cands == 1)
//! ```
//!
//! *Soundness.* Status never goes follower → leader, and backup
//! candidates arise only from entry status, so leader outputs never
//! reappear. If `backup == 0`: the maximum level in the system was first
//! reached by a rule-1 increment, whose owner cannot be demoted while the
//! maximum stands (demotion needs a strictly higher partner), so the
//! unique leader holds the maximum level and rule 2 can never fire on it;
//! reaching the cap later only turns it into the unique backup candidate,
//! which is protected by the token-protocol invariant
//! (`candidates = blacks + whites`, see [`crate::token`]). If
//! `backup_cands == 1`: the unique output leader is that backup
//! candidate; every fast-phase node is a follower and joins the backup as
//! a follower (rule 2 fires before the rule-3 level copy), so no output
//! ever changes. *Necessity.* With two leader outputs one of them is
//! eventually demoted (Lemma 31 / token coalescence); with a unique
//! *fast* leader but a candidate-less backup region, the leader is
//! demoted on contact with the cap-level front. Validated against
//! exhaustive reachability search in the tests.

use crate::params::FastParams;
use crate::token::{TokenProtocol, TokenState};
use popele_engine::{Protocol, Role, StabilityOracle};
use popele_graph::NodeId;

/// Leadership status during the fast phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Status {
    /// Still in contention.
    Leader,
    /// Eliminated.
    Follower,
}

/// Local state of the fast protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct FastState {
    /// Streak counter of the local clock (`0..h`).
    pub streak: u8,
    /// Tournament level (`0..=α·L`).
    pub level: u32,
    /// Fast-phase status.
    pub status: Status,
    /// Backup token-protocol state, engaged upon reaching level `α·L`.
    pub backup: Option<TokenState>,
}

/// The Theorem 24 protocol.
///
/// # Examples
///
/// ```
/// use popele_core::fast::FastProtocol;
/// use popele_core::params::FastParams;
/// use popele_engine::Executor;
/// use popele_graph::families;
///
/// let g = families::clique(32);
/// // Practical parameters for a clique with B(G) ≈ n·log n ≈ 111.
/// let params = FastParams::practical(111.0, 31, g.num_edges(), 32);
/// let p = FastProtocol::new(params);
/// let out = Executor::new(&g, &p, 7).run_until_stable(100_000_000).unwrap();
/// assert_eq!(out.leader_count, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FastProtocol {
    params: FastParams,
}

impl FastProtocol {
    /// Creates the protocol with the given parameters (see
    /// [`FastParams::paper`] and [`FastParams::practical`]).
    #[must_use]
    pub fn new(params: FastParams) -> Self {
        Self { params }
    }

    /// The protocol's parameters.
    #[must_use]
    pub fn params(&self) -> &FastParams {
        &self.params
    }
}

impl Protocol for FastProtocol {
    type State = FastState;
    type Oracle = FastOracle;

    fn initial_state(&self, _node: NodeId) -> FastState {
        FastState {
            streak: 0,
            level: 0,
            status: Status::Leader,
            backup: None,
        }
    }

    fn transition(&self, a: &FastState, b: &FastState) -> (FastState, FastState) {
        let h = self.params.h;
        let big_l = self.params.big_l;
        let cap = self.params.max_level();
        let mut na = *a;
        let mut nb = *b;

        // Clock subroutine: the initiator extends its streak, the
        // responder resets; only the initiator can complete a streak.
        na.streak += 1;
        let a_tick = if na.streak == h {
            na.streak = 0;
            true
        } else {
            false
        };
        nb.streak = 0;

        // Rule 1: a leader completing a streak climbs a level.
        if a_tick && na.status == Status::Leader {
            na.level = (na.level + 1).min(cap);
        }

        // Rule 2 uses the *post-rule-1* levels (Lemma 30 relies on the
        // responder observing the initiator's fresh level).
        let (la, lb) = (na.level, nb.level);
        if la < lb && lb >= big_l {
            na.status = Status::Follower;
        }
        if lb < la && la >= big_l {
            nb.status = Status::Follower;
        }

        // Rule 3: elimination-phase levels spread by broadcast.
        let mx = la.max(lb);
        if mx >= big_l {
            na.level = mx;
            nb.level = mx;
        }

        // Backup entry: reaching the cap switches to the token protocol,
        // seeded with the node's (post-rule-2) status.
        for s in [&mut na, &mut nb] {
            if s.level == cap && s.backup.is_none() {
                s.backup = Some(if s.status == Status::Leader {
                    TokenState::candidate()
                } else {
                    TokenState::follower()
                });
            }
        }

        // Backup interaction: once both endpoints run the backup, the
        // token protocol takes over.
        if let (Some(x), Some(y)) = (na.backup, nb.backup) {
            let (nx, ny) = TokenProtocol::interact(&x, &y);
            na.backup = Some(nx);
            nb.backup = Some(ny);
        }

        (na, nb)
    }

    fn output(&self, state: &FastState) -> Role {
        let leading = match state.backup {
            Some(inner) => inner.candidate,
            None => state.status == Status::Leader,
        };
        if leading {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn oracle(&self) -> FastOracle {
        FastOracle::default()
    }

    fn state_space_bound(&self) -> Option<u64> {
        Some(self.params.state_space_bound())
    }
}

/// Incremental oracle for [`FastProtocol`]; see the module docs for the
/// exactness argument.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FastOracle {
    leaders: usize,
    backup: usize,
    backup_candidates: usize,
}

impl FastOracle {
    fn add(&mut self, s: &FastState) {
        self.add_many(s, 1);
    }

    fn add_many(&mut self, s: &FastState, count: usize) {
        match s.backup {
            Some(inner) => {
                self.backup += count;
                if inner.candidate {
                    self.backup_candidates += count;
                    self.leaders += count;
                }
            }
            None => {
                if s.status == Status::Leader {
                    self.leaders += count;
                }
            }
        }
    }

    fn remove(&mut self, s: &FastState) {
        match s.backup {
            Some(inner) => {
                self.backup -= 1;
                if inner.candidate {
                    self.backup_candidates -= 1;
                    self.leaders -= 1;
                }
            }
            None => {
                if s.status == Status::Leader {
                    self.leaders -= 1;
                }
            }
        }
    }

    /// Number of nodes currently in the backup phase.
    #[must_use]
    pub fn backup_count(&self) -> usize {
        self.backup
    }

    /// Number of leader-output nodes.
    #[must_use]
    pub fn leader_count(&self) -> usize {
        self.leaders
    }
}

impl StabilityOracle<FastProtocol> for FastOracle {
    fn recompute(&mut self, _protocol: &FastProtocol, config: &[FastState]) {
        *self = Self::default();
        for s in config {
            self.add(s);
        }
    }

    fn apply(
        &mut self,
        _protocol: &FastProtocol,
        old: (&FastState, &FastState),
        new: (&FastState, &FastState),
    ) {
        self.remove(old.0);
        self.remove(old.1);
        self.add(new.0);
        self.add(new.1);
    }

    fn recompute_census(&mut self, _protocol: &FastProtocol, census: &[(FastState, u64)]) -> bool {
        *self = Self::default();
        for (s, count) in census {
            self.add_many(s, *count as usize);
        }
        true
    }

    fn is_stable(&self) -> bool {
        self.leaders == 1 && (self.backup == 0 || self.backup_candidates == 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_engine::exhaustive::{check_stable_and_correct, Verdict, DEFAULT_CONFIG_LIMIT};
    use popele_engine::Executor;
    use popele_graph::families;
    use popele_math::rng::SeedSeq;

    fn practical_for(g: &popele_graph::Graph, b_estimate: f64) -> FastProtocol {
        FastProtocol::new(FastParams::practical(
            b_estimate,
            g.max_degree(),
            g.num_edges(),
            g.num_nodes(),
        ))
    }

    #[test]
    fn stabilizes_on_clique() {
        let g = families::clique(32);
        let p = practical_for(&g, 120.0);
        let out = Executor::new(&g, &p, 5)
            .run_until_stable(200_000_000)
            .unwrap();
        assert_eq!(out.leader_count, 1);
    }

    #[test]
    fn stabilizes_on_cycle_and_torus() {
        for (g, b) in [
            (families::cycle(24), 24.0 * 24.0 / 2.0),
            (families::torus(5, 5), 600.0),
        ] {
            let p = practical_for(&g, b);
            let out = Executor::new(&g, &p, 9)
                .run_until_stable(500_000_000)
                .unwrap_or_else(|_| panic!("did not stabilize on {g}"));
            assert_eq!(out.leader_count, 1);
        }
    }

    #[test]
    fn at_least_one_leader_output_always() {
        // The paper: "the protocol guarantees that there is always at
        // least one leader in every step."
        let g = families::cycle(12);
        let p = practical_for(&g, 150.0);
        let mut exec = Executor::new(&g, &p, 3);
        for _ in 0..200_000 {
            exec.step();
            if exec.is_stable() {
                break;
            }
        }
        assert!(exec.leader_count() >= 1);
    }

    #[test]
    fn leaders_never_reappear() {
        let g = families::clique(10);
        let p = practical_for(&g, 40.0);
        let mut exec = Executor::new(&g, &p, 11);
        let mut prev = exec.leader_count();
        let mut was_leader: Vec<bool> = vec![true; 10];
        for _ in 0..100_000 {
            exec.step();
            let count = exec.leader_count();
            // Individual nodes never regain leader output.
            for (v, s) in exec.states().iter().enumerate() {
                let is_leader = p.output(s) == popele_engine::Role::Leader;
                if is_leader {
                    assert!(was_leader[v], "node {v} regained leadership");
                }
                was_leader[v] = is_leader;
            }
            prev = count;
            if exec.is_stable() {
                break;
            }
        }
        let _ = prev;
    }

    #[test]
    fn tiny_cap_forces_backup_and_still_elects() {
        // With a tiny level cap several nodes survive to the cap and the
        // backup must resolve them.
        let g = families::clique(12);
        let p = FastProtocol::new(FastParams::new(1, 1, 2));
        let mut exec = Executor::new(&g, &p, 17);
        let out = exec.run_until_stable(50_000_000).unwrap();
        assert_eq!(out.leader_count, 1);
        assert!(
            exec.oracle().backup_count() > 0,
            "cap 2 on a clique should engage the backup"
        );
    }

    #[test]
    fn oracle_agrees_with_exhaustive_at_snapshots() {
        // Compare the oracle against the reachability definition at many
        // points along executions on a 2-clique (single edge), where the
        // configuration space is small.
        let g = families::clique(2);
        let p = FastProtocol::new(FastParams::new(1, 1, 2));
        let seq = SeedSeq::new(23);
        for trial in 0..4u64 {
            let mut exec = Executor::new(&g, &p, seq.child(trial));
            for step in 0..40 {
                let exhaustive =
                    check_stable_and_correct(&p, &g, exec.states(), DEFAULT_CONFIG_LIMIT);
                match exhaustive {
                    Verdict::Stable => assert!(
                        exec.is_stable(),
                        "trial {trial} step {step}: oracle misses stability: {:?}",
                        exec.states()
                    ),
                    Verdict::Unstable => assert!(
                        !exec.is_stable(),
                        "trial {trial} step {step}: oracle claims stability: {:?}",
                        exec.states()
                    ),
                    Verdict::Inconclusive => panic!("state space too large"),
                }
                exec.step();
            }
        }
    }

    #[test]
    fn oracle_agrees_with_exhaustive_on_triangle() {
        let g = families::cycle(3);
        let p = FastProtocol::new(FastParams::new(1, 1, 2));
        let mut exec = Executor::new(&g, &p, 77);
        for _ in 0..30 {
            let exhaustive = check_stable_and_correct(&p, &g, exec.states(), DEFAULT_CONFIG_LIMIT);
            match exhaustive {
                Verdict::Stable => assert!(exec.is_stable()),
                Verdict::Unstable => assert!(!exec.is_stable()),
                Verdict::Inconclusive => panic!("state space too large"),
            }
            exec.step();
        }
    }

    #[test]
    fn high_degree_node_wins_on_star() {
        // Theorem 24 guarantees the winner has degree Θ(Δ) w.h.p.; on a
        // star the centre should essentially always win.
        let g = families::star(40);
        let b = 40.0 * (40.0f64).ln(); // B(star) ≈ n·ln n
        let p = practical_for(&g, b);
        let seq = SeedSeq::new(31);
        let mut centre_wins = 0;
        let trials = 10;
        for i in 0..trials {
            let out = Executor::new(&g, &p, seq.child(i))
                .run_until_stable(500_000_000)
                .unwrap();
            if out.leader == Some(0) {
                centre_wins += 1;
            }
        }
        assert!(
            centre_wins >= 8,
            "centre won only {centre_wins}/{trials} trials"
        );
    }

    #[test]
    fn rule2_demotes_on_fresh_level() {
        // Lemma 30's step: both at level L, initiator ticks to L+1, the
        // responder must observe the fresh level and be demoted.
        let params = FastParams::new(1, 1, 4); // h=1: every initiation ticks
        let p = FastProtocol::new(params);
        let at_l = FastState {
            streak: 0,
            level: 1,
            status: Status::Leader,
            backup: None,
        };
        let (na, nb) = p.transition(&at_l, &at_l);
        assert_eq!(na.level, 2);
        assert_eq!(na.status, Status::Leader);
        assert_eq!(nb.status, Status::Follower, "responder must be demoted");
        assert_eq!(nb.level, 2, "rule 3 copies the level");
    }

    #[test]
    fn waiting_phase_levels_do_not_spread() {
        // Below L, rule 3 must not copy levels.
        let p = FastProtocol::new(FastParams::new(2, 5, 2));
        let low = FastState {
            streak: 0,
            level: 2,
            status: Status::Leader,
            backup: None,
        };
        let zero = FastState {
            streak: 0,
            level: 0,
            status: Status::Leader,
            backup: None,
        };
        let (na, nb) = p.transition(&low, &zero);
        assert_eq!(na.level, 2);
        assert_eq!(nb.level, 0, "waiting-phase level must not spread");
        assert_eq!(nb.status, Status::Leader, "no demotion below L");
    }

    #[test]
    fn backup_entry_seeds_candidacy_from_status() {
        let params = FastParams::new(1, 1, 2); // cap = 2
        let p = FastProtocol::new(params);
        let leader_near_cap = FastState {
            streak: 0,
            level: 1,
            status: Status::Leader,
            backup: None,
        };
        let follower_low = FastState {
            streak: 0,
            level: 1,
            status: Status::Follower,
            backup: None,
        };
        // Initiator ticks 1 → 2 = cap → backup as candidate; responder
        // demoted (already follower) and pulled to the cap → backup as
        // follower.
        let (na, nb) = p.transition(&leader_near_cap, &follower_low);
        assert!(na.backup.unwrap().candidate);
        assert!(!nb.backup.unwrap().candidate);
    }

    #[test]
    fn census_within_bound() {
        let g = families::clique(10);
        let p = FastProtocol::new(FastParams::new(2, 2, 2));
        let mut exec = Executor::new(&g, &p, 3);
        exec.enable_state_census();
        let _ = exec.run_until_stable(50_000_000).unwrap();
        let seen = exec.outcome().distinct_states.unwrap() as u64;
        assert!(
            seen <= p.state_space_bound().unwrap(),
            "{seen} states exceed the bound"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let g = families::clique(12);
        let p = practical_for(&g, 40.0);
        let a = Executor::new(&g, &p, 2).run_until_stable(1 << 32).unwrap();
        let b = Executor::new(&g, &p, 2).run_until_stable(1 << 32).unwrap();
        assert_eq!(a, b);
    }
}
