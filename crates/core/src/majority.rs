//! Exact two-opinion majority on graphs — the paper's stated follow-up
//! problem (Section 8: "Another direction is considering other
//! fundamental problems, such as majority, in the same setting, for which
//! our techniques should prove useful").
//!
//! This module demonstrates exactly that: the four-state exact-majority
//! protocol of Bénézit et al. works on **cliques** because opposing
//! strong opinions always may meet; on general graphs it deadlocks for
//! the same reason the naive leader-absorption protocol does. The fix is
//! the paper's token mechanic (Theorem 16): let the opinions *walk*.
//! Every interaction first **swaps** the two endpoint states — turning
//! every opinion token into a population-model random walk — and then
//! applies the classic rules:
//!
//! * `A + B → a + b` — opposing strong tokens cancel into weak ones;
//! * `A + b → A + a` and `B + a → B + b` — strong tokens convert weak
//!   ones to their sign.
//!
//! The difference `#A − #B` of strong tokens is invariant, so the
//! surviving strong sign is the exact initial majority; random-walk
//! meeting times (Lemmas 17–19) bound the stabilization time by
//! `O(H(G)·n·log n)`, the same driver as the token protocol's.
//!
//! # Output encoding
//!
//! The engine's output alphabet is `{Leader, Follower}`; this module
//! encodes **opinion A as `Role::Leader`** and **opinion B as
//! `Role::Follower`**. Stability has its usual meaning (no reachable
//! configuration changes any node's output), so the engine's exhaustive
//! checker applies unchanged.
//!
//! # Ties
//!
//! With `#A = #B` all strong tokens cancel and the weak remainder keeps
//! swapping forever, so no configuration is output-stable: exact-majority
//! protocols of this family cannot decide ties (a known limitation).
//! [`MajorityProtocol::new`] therefore rejects tied inputs.
//!
//! # Stability oracle
//!
//! Stable ⟺ one sign is extinct: `(#B = #b = 0)` or `(#A = #a = 0)`.
//! *Soundness*: with only one sign left, cancellation and conversion are
//! disabled, and swaps exchange equal outputs. *Necessity*: a surviving
//! minority strong token meets an opposing strong w.p. 1 (connected
//! graph ⇒ positive-probability meeting sequence) and a surviving
//! minority weak token is eventually converted, both changing outputs.

use popele_engine::{Protocol, Role, StabilityOracle};
use popele_graph::NodeId;

/// Opinion tokens: strong tokens carry cancellation power, weak tokens
/// only an output preference.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opinion {
    /// Strong A.
    StrongA,
    /// Strong B.
    StrongB,
    /// Weak A (converted or cancelled remainder).
    WeakA,
    /// Weak B.
    WeakB,
}

impl Opinion {
    /// Whether the token outputs opinion A.
    #[must_use]
    pub fn is_a(self) -> bool {
        matches!(self, Opinion::StrongA | Opinion::WeakA)
    }

    /// Whether the token is strong.
    #[must_use]
    pub fn is_strong(self) -> bool {
        matches!(self, Opinion::StrongA | Opinion::StrongB)
    }
}

/// The walking four-state exact-majority protocol.
///
/// # Examples
///
/// ```
/// use popele_core::majority::MajorityProtocol;
/// use popele_engine::{Executor, Role};
/// use popele_graph::families;
///
/// let g = families::cycle(9);
/// // Nodes 0..6 start with opinion A, the rest with B: A wins.
/// let p = MajorityProtocol::new(6, 9);
/// let mut exec = Executor::new(&g, &p, 5);
/// exec.run_until_stable(100_000_000).unwrap();
/// assert!(exec.states().iter().all(|s| s.is_a()));
/// # let _ = Role::Leader;
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MajorityProtocol {
    initial_a: u32,
    num_nodes: u32,
}

impl MajorityProtocol {
    /// Creates the protocol with nodes `0..initial_a` holding opinion A
    /// and nodes `initial_a..num_nodes` holding opinion B.
    ///
    /// (In the anonymous model the opinion is the node's *input*; the
    /// id-based assignment is just the harness's way of supplying it.)
    ///
    /// # Panics
    ///
    /// Panics if the input is a tie (undecidable by this protocol
    /// family) or `initial_a > num_nodes`.
    #[must_use]
    pub fn new(initial_a: u32, num_nodes: u32) -> Self {
        assert!(initial_a <= num_nodes, "more A opinions than nodes");
        assert!(
            2 * initial_a != num_nodes,
            "exact-majority protocols cannot decide ties"
        );
        Self {
            initial_a,
            num_nodes,
        }
    }

    /// The majority opinion of the input (`true` = A).
    #[must_use]
    pub fn majority_is_a(&self) -> bool {
        2 * self.initial_a > self.num_nodes
    }
}

impl Protocol for MajorityProtocol {
    type State = Opinion;
    type Oracle = MajorityOracle;

    fn initial_state(&self, node: NodeId) -> Opinion {
        if node < self.initial_a {
            Opinion::StrongA
        } else {
            Opinion::StrongB
        }
    }

    fn transition(&self, a: &Opinion, b: &Opinion) -> (Opinion, Opinion) {
        // Swap first: opinions walk like the Theorem 16 tokens.
        let (x, y) = (*b, *a);
        match (x, y) {
            // Cancellation.
            (Opinion::StrongA, Opinion::StrongB) => (Opinion::WeakA, Opinion::WeakB),
            (Opinion::StrongB, Opinion::StrongA) => (Opinion::WeakB, Opinion::WeakA),
            // Conversion.
            (Opinion::StrongA, Opinion::WeakB) => (Opinion::StrongA, Opinion::WeakA),
            (Opinion::WeakB, Opinion::StrongA) => (Opinion::WeakA, Opinion::StrongA),
            (Opinion::StrongB, Opinion::WeakA) => (Opinion::StrongB, Opinion::WeakB),
            (Opinion::WeakA, Opinion::StrongB) => (Opinion::WeakB, Opinion::StrongB),
            other => other,
        }
    }

    fn output(&self, state: &Opinion) -> Role {
        if state.is_a() {
            Role::Leader // encodes "opinion A"
        } else {
            Role::Follower // encodes "opinion B"
        }
    }

    fn oracle(&self) -> MajorityOracle {
        MajorityOracle::default()
    }

    fn state_space_bound(&self) -> Option<u64> {
        Some(4)
    }
}

/// Incremental oracle: stable ⟺ one sign extinct.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MajorityOracle {
    a_tokens: usize,
    b_tokens: usize,
}

impl MajorityOracle {
    fn delta(s: &Opinion) -> (usize, usize) {
        if s.is_a() {
            (1, 0)
        } else {
            (0, 1)
        }
    }
}

impl StabilityOracle<MajorityProtocol> for MajorityOracle {
    fn recompute(&mut self, _p: &MajorityProtocol, config: &[Opinion]) {
        self.a_tokens = 0;
        self.b_tokens = 0;
        for s in config {
            let (a, b) = Self::delta(s);
            self.a_tokens += a;
            self.b_tokens += b;
        }
    }

    fn apply(
        &mut self,
        _p: &MajorityProtocol,
        old: (&Opinion, &Opinion),
        new: (&Opinion, &Opinion),
    ) {
        for s in [old.0, old.1] {
            let (a, b) = Self::delta(s);
            self.a_tokens -= a;
            self.b_tokens -= b;
        }
        for s in [new.0, new.1] {
            let (a, b) = Self::delta(s);
            self.a_tokens += a;
            self.b_tokens += b;
        }
    }

    fn recompute_census(&mut self, _p: &MajorityProtocol, census: &[(Opinion, u64)]) -> bool {
        self.a_tokens = 0;
        self.b_tokens = 0;
        for (s, count) in census {
            let (a, b) = Self::delta(s);
            self.a_tokens += a * *count as usize;
            self.b_tokens += b * *count as usize;
        }
        true
    }

    fn is_stable(&self) -> bool {
        self.a_tokens == 0 || self.b_tokens == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_engine::exhaustive::{Verdict, DEFAULT_CONFIG_LIMIT};
    use popele_engine::Executor;
    use popele_graph::families;
    use popele_math::rng::SeedSeq;

    #[test]
    fn strong_difference_is_invariant() {
        let g = families::cycle(10);
        let p = MajorityProtocol::new(6, 10);
        let mut exec = Executor::new(&g, &p, 3);
        let diff = |states: &[Opinion]| -> i64 {
            let a = states.iter().filter(|s| **s == Opinion::StrongA).count() as i64;
            let b = states.iter().filter(|s| **s == Opinion::StrongB).count() as i64;
            a - b
        };
        let initial = diff(exec.states());
        assert_eq!(initial, 2);
        for _ in 0..2000 {
            exec.step();
            assert_eq!(diff(exec.states()), initial);
        }
    }

    #[test]
    fn majority_wins_on_various_graphs() {
        for g in [
            families::clique(15),
            families::cycle(15),
            families::star(15),
            families::binary_tree(15),
        ] {
            let p = MajorityProtocol::new(9, 15); // A majority 9 vs 6
            let mut exec = Executor::new(&g, &p, 11);
            exec.run_until_stable(500_000_000)
                .unwrap_or_else(|_| panic!("no majority on {g}"));
            assert!(exec.states().iter().all(|s| s.is_a()), "A must win on {g}");
        }
    }

    #[test]
    fn minority_never_wins() {
        let seq = SeedSeq::new(77);
        let g = families::torus(4, 4);
        for trial in 0..10 {
            let p = MajorityProtocol::new(5, 16); // B majority 11 vs 5
            let mut exec = Executor::new(&g, &p, seq.child(trial));
            exec.run_until_stable(500_000_000).unwrap();
            assert!(exec.states().iter().all(|s| !s.is_a()), "B must win");
        }
    }

    #[test]
    fn close_majorities_still_decided() {
        // 8 vs 7 — one surviving strong token must convert everyone.
        let g = families::cycle(15);
        let p = MajorityProtocol::new(8, 15);
        let mut exec = Executor::new(&g, &p, 9);
        exec.run_until_stable(1_000_000_000).unwrap();
        assert!(exec.states().iter().all(|s| s.is_a()));
        // Exactly one strong token survives (|#A − #B| = 1).
        let strong = exec.states().iter().filter(|s| s.is_strong()).count();
        assert_eq!(strong, 1);
    }

    #[test]
    #[should_panic(expected = "ties")]
    fn ties_rejected() {
        let _ = MajorityProtocol::new(8, 16);
    }

    #[test]
    fn oracle_matches_exhaustive_definition() {
        let g = families::path(3);
        let p = MajorityProtocol::new(2, 3);
        let mut exec = Executor::new(&g, &p, 5);
        for step in 0..200 {
            let verdict = exhaustive_verdict(&p, &g, exec.states());
            match verdict {
                Verdict::Stable => assert!(exec.is_stable(), "step {step}"),
                Verdict::Unstable => assert!(!exec.is_stable(), "step {step}"),
                Verdict::Inconclusive => panic!("space exploded"),
            }
            if exec.is_stable() {
                return;
            }
            exec.step();
        }
        panic!("did not stabilize in 200 steps on a tiny path");
    }

    /// Majority "correctness" is sign-extinction, not leader-uniqueness,
    /// so call the raw stability check rather than the
    /// one-leader-specific wrapper.
    fn exhaustive_verdict(
        p: &MajorityProtocol,
        g: &popele_graph::Graph,
        config: &[Opinion],
    ) -> Verdict {
        popele_engine::exhaustive::check_stability(p, g, config, DEFAULT_CONFIG_LIMIT)
    }

    #[test]
    fn four_states_only() {
        let g = families::clique(9);
        let p = MajorityProtocol::new(6, 9);
        let mut exec = Executor::new(&g, &p, 2);
        exec.enable_state_census();
        exec.run_until_stable(100_000_000).unwrap();
        assert!(exec.outcome().distinct_states.unwrap() <= 4);
    }

    #[test]
    fn transition_conserves_tokens() {
        // Every rule permutes or re-signs the two tokens; node count of
        // tokens is always exactly 2 in, 2 out and strong difference is
        // conserved rule-by-rule.
        let p = MajorityProtocol::new(1, 3);
        let all = [
            Opinion::StrongA,
            Opinion::StrongB,
            Opinion::WeakA,
            Opinion::WeakB,
        ];
        let strong_diff = |x: Opinion| match x {
            Opinion::StrongA => 1i32,
            Opinion::StrongB => -1,
            _ => 0,
        };
        for a in all {
            for b in all {
                let (na, nb) = p.transition(&a, &b);
                assert_eq!(
                    strong_diff(a) + strong_diff(b),
                    strong_diff(na) + strong_diff(nb),
                    "{a:?}+{b:?}"
                );
            }
        }
    }
}
