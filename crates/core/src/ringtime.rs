//! Time-optimal self-stabilizing leader election on rings: the
//! token-circulation family (after Sudo, Ooshita, Izumi, Kakugawa,
//! Masuzawa, arXiv 2009.10926 — time-optimal loose stabilization via
//! circulating tokens with bounded timers).
//!
//! Where the [`crate::loose`] ring variant invalidates stale *distance
//! beliefs*, this family certifies the leader's existence by **token
//! circulation**: the walking leader periodically drops a *token* that
//! random-walks the ring with a bounded time-to-live, stamping every
//! node it visits with a fresh heartbeat. Three ingredients:
//!
//! * **Walking leader with a drop timer**: the leader token walks on
//!   every interaction with an idle node (it must walk — on a ring two
//!   static leaders are never adjacent to duel), counting its timer
//!   down from `leader_timer`; on drain it deposits a circulating
//!   token at the node it vacates and resets. Two leaders that meet
//!   merge — the only rule that lowers the leader count.
//! * **Circulating tokens**: a token hops from carrier to idle
//!   neighbour with `ttl` decremented, refreshing each visited node to
//!   the full idle budget; at `ttl = 0` it evaporates. Two tokens
//!   merge; a leader consumes any token it meets and is refreshed by
//!   it — the circulation loop that keeps a lone leader's neighbourhood
//!   perpetually certified without unbounded state.
//! * **Idle timeout**: idle timers spread as a decaying max epidemic
//!   (exactly the loose family's timeout phase); a drained idle pair
//!   promotes the initiator, making leaderless configurations
//!   recoverable from *any* arbitrary start.
//!
//! # What the oracle certifies
//!
//! As for the whole loosely-stabilizing family, unique-leader
//! configurations are not stable forever — a timeout can always mint a
//! challenger, and exact anonymous self-stabilizing election is
//! impossible (Angluin, Aspnes, Fischer, Jiang 2008). The
//! [`LeaderCountOracle`] certifies the *holding predicate* ("exactly
//! one node outputs leader"); elections and holding times are measured
//! through [`popele_engine::stabilize::run_to_hold`] from arbitrary
//! configurations sampled over [`TimeOptimalRingProtocol`]'s full
//! state space ([`ArbitraryInit`]).
//!
//! # Parameter shape
//!
//! [`TimeOptimalRingProtocol::for_ring`] derives `leader_timer = 4n`
//! and `token_ttl = 2n` from the known ring size (the knowledge the
//! self-stabilizing ring protocols assume): a token lives long enough
//! to lap the ring's `n` nodes with slack, and the leader re-seeds
//! tokens fast enough that idle drains — the spurious-promotion path —
//! need the whole ring to go unvisited for `Θ(n)` decays. The state
//! space `2·(4n + 1) + (2n + 1) ≈ 10n` is intentionally *linear* in
//! `n`: past the ahead-of-time compile cap at sweep sizes, this is the
//! workspace's canonical lazy-tier stabilizing workload (the declared
//! [`Protocol::state_space_bound`] is what routes it there).
//!
//! # Examples
//!
//! ```
//! use popele_core::ringtime::TimeOptimalRingProtocol;
//! use popele_engine::stabilize::{arbitrary_config, arbitrary_seed, run_to_hold};
//! use popele_engine::Executor;
//! use popele_graph::families;
//!
//! let p = TimeOptimalRingProtocol::for_ring(12);
//! let g = families::cycle(12);
//! let mut exec = Executor::new(&g, &p, 7);
//! exec.set_configuration(&arbitrary_config(&p, 12, arbitrary_seed(7)));
//! let report = run_to_hold(&mut exec, 1 << 24);
//! assert!(report.holding.elect_step.is_some());
//! ```

use popele_engine::stabilize::ArbitraryInit;
use popele_engine::{LeaderCountOracle, Protocol, Role};
use popele_graph::NodeId;

/// Local state of [`TimeOptimalRingProtocol`]: leader with a drop
/// timer, token carrier with a time-to-live, or idle with a heartbeat
/// timer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum RingTimeState {
    /// The walking leader; `timer` counts interactions until the next
    /// token drop.
    Leader {
        /// Remaining walk budget before a token is deposited, in
        /// `0..=leader_timer`.
        timer: u32,
    },
    /// A node carrying a circulating token.
    Holder {
        /// Remaining hops before the token evaporates, in
        /// `0..=token_ttl`.
        ttl: u32,
    },
    /// An ordinary node; `timer` is the decaying heartbeat credit.
    Idle {
        /// Heartbeat timer in `0..=leader_timer`; a drained pair
        /// promotes.
        timer: u32,
    },
}

/// Time-optimal self-stabilizing ring election by bounded-timer token
/// circulation.
///
/// See the [module docs](self) for the mechanism; restricted to the
/// cycle family in sweeps (token circulation certifies a *ring* lap).
///
/// # Examples
///
/// ```
/// use popele_core::ringtime::TimeOptimalRingProtocol;
/// use popele_engine::Protocol;
///
/// let p = TimeOptimalRingProtocol::for_ring(2000);
/// assert_eq!((p.leader_timer(), p.token_ttl()), (8000, 4000));
/// // ~10n states: the declared bound routes sweep cells to the lazy
/// // engine (past the AOT cap, far past u16 id space is NOT needed).
/// assert_eq!(p.state_space_bound(), Some(2 * 8001 + 4001));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimeOptimalRingProtocol {
    leader_timer: u32,
    token_ttl: u32,
}

impl TimeOptimalRingProtocol {
    /// Creates the protocol with the given walk budget and token
    /// time-to-live.
    ///
    /// # Panics
    ///
    /// Panics if either budget is below 2 (tokens would evaporate on
    /// the spot / every idle pair would time out).
    #[must_use]
    pub fn new(leader_timer: u32, token_ttl: u32) -> Self {
        assert!(
            leader_timer >= 2,
            "the leader walk budget must be at least 2"
        );
        assert!(token_ttl >= 2, "the token time-to-live must be at least 2");
        Self {
            leader_timer,
            token_ttl,
        }
    }

    /// Derives the budgets from the known ring size:
    /// `leader_timer = 4n`, `token_ttl = 2n` (floored for tiny rings).
    ///
    /// # Examples
    ///
    /// ```
    /// use popele_core::ringtime::TimeOptimalRingProtocol;
    ///
    /// assert_eq!(TimeOptimalRingProtocol::for_ring(3).leader_timer(), 16);
    /// ```
    #[must_use]
    pub fn for_ring(n: u32) -> Self {
        Self::new((4 * n).max(16), (2 * n).max(8))
    }

    /// The leader's walk budget between token drops (also the idle
    /// heartbeat budget).
    #[must_use]
    pub fn leader_timer(&self) -> u32 {
        self.leader_timer
    }

    /// The circulating token's hop budget.
    #[must_use]
    pub fn token_ttl(&self) -> u32 {
        self.token_ttl
    }

    /// The transition on a pair of states, exposed for unit tests and
    /// the concordance's rule-by-rule references.
    #[must_use]
    pub fn interact(&self, a: &RingTimeState, b: &RingTimeState) -> (RingTimeState, RingTimeState) {
        use RingTimeState::{Holder, Idle, Leader};
        let bl = self.leader_timer;
        let fresh_idle = Idle { timer: bl };
        match (*a, *b) {
            // Duel: the initiator absorbs the responder's leadership.
            (Leader { .. }, Leader { .. }) => (Leader { timer: bl }, fresh_idle),
            // The leader walks onto an idle node; on a drained walk
            // budget it deposits a token at the vacated node and
            // resets, otherwise the vacated node is freshly stamped.
            (Leader { timer }, Idle { .. }) => {
                if timer <= 1 {
                    (
                        Holder {
                            ttl: self.token_ttl,
                        },
                        Leader { timer: bl },
                    )
                } else {
                    (fresh_idle, Leader { timer: timer - 1 })
                }
            }
            (Idle { .. }, Leader { timer }) => {
                if timer <= 1 {
                    (
                        Leader { timer: bl },
                        Holder {
                            ttl: self.token_ttl,
                        },
                    )
                } else {
                    (Leader { timer: timer - 1 }, fresh_idle)
                }
            }
            // A leader consumes any token it meets and is refreshed by
            // it; the emptied carrier is freshly stamped.
            (Leader { .. }, Holder { .. }) => (fresh_idle, Leader { timer: bl }),
            (Holder { .. }, Leader { .. }) => (Leader { timer: bl }, fresh_idle),
            // The token hops, decrementing its time-to-live and
            // stamping the node it vacates; at zero it evaporates.
            (Holder { ttl }, Idle { .. }) => {
                if ttl == 0 {
                    (fresh_idle, fresh_idle)
                } else {
                    (fresh_idle, Holder { ttl: ttl - 1 })
                }
            }
            (Idle { .. }, Holder { ttl }) => {
                if ttl == 0 {
                    (fresh_idle, fresh_idle)
                } else {
                    (Holder { ttl: ttl - 1 }, fresh_idle)
                }
            }
            // Two tokens merge (the survivor keeps the larger budget,
            // aged by the hop).
            (Holder { ttl: x }, Holder { ttl: y }) => (
                Holder {
                    ttl: x.max(y).saturating_sub(1),
                },
                fresh_idle,
            ),
            // Idle timeout phase: decaying max epidemic; a drained
            // pair promotes the initiator.
            (Idle { timer: x }, Idle { timer: y }) => {
                let t = x.max(y).min(bl);
                if t <= 1 {
                    (Leader { timer: bl }, fresh_idle)
                } else {
                    let decayed = Idle { timer: t - 1 };
                    (decayed, decayed)
                }
            }
        }
    }
}

impl Protocol for TimeOptimalRingProtocol {
    type State = RingTimeState;
    type Oracle = LeaderCountOracle;

    fn initial_state(&self, _node: NodeId) -> RingTimeState {
        // Clean start: no leadership claim, full heartbeat credit —
        // the first election is an idle drain plus leader coalescence.
        RingTimeState::Idle {
            timer: self.leader_timer,
        }
    }

    fn transition(&self, a: &RingTimeState, b: &RingTimeState) -> (RingTimeState, RingTimeState) {
        self.interact(a, b)
    }

    fn output(&self, state: &RingTimeState) -> Role {
        if matches!(state, RingTimeState::Leader { .. }) {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn oracle(&self) -> LeaderCountOracle {
        LeaderCountOracle::new()
    }

    fn state_space_bound(&self) -> Option<u64> {
        // Leader timers 0..=BL, idle timers 0..=BL, token ttls 0..=BT.
        Some(2 * (u64::from(self.leader_timer) + 1) + u64::from(self.token_ttl) + 1)
    }
}

impl ArbitraryInit for TimeOptimalRingProtocol {
    /// The full state space — every leader timer, token time-to-live
    /// and idle timer — so the sampler is maximally adversarial.
    fn arbitrary_support(&self) -> Vec<RingTimeState> {
        let mut support =
            Vec::with_capacity(self.state_space_bound().expect("bound declared") as usize);
        for timer in 0..=self.leader_timer {
            support.push(RingTimeState::Idle { timer });
        }
        for ttl in 0..=self.token_ttl {
            support.push(RingTimeState::Holder { ttl });
        }
        for timer in 0..=self.leader_timer {
            support.push(RingTimeState::Leader { timer });
        }
        support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_engine::monte_carlo::TrialOptions;
    use popele_engine::stabilize::{
        arbitrary_config, arbitrary_seed, run_to_hold, run_trials_stabilize_auto,
        select_stabilize_engine,
    };
    use popele_engine::{Engine, Executor, FaultPlan};
    use popele_graph::families;
    use RingTimeState::{Holder, Idle, Leader};

    const fn led(timer: u32) -> RingTimeState {
        Leader { timer }
    }

    const fn tok(ttl: u32) -> RingTimeState {
        Holder { ttl }
    }

    const fn idl(timer: u32) -> RingTimeState {
        Idle { timer }
    }

    #[test]
    fn interact_rules() {
        let p = TimeOptimalRingProtocol::new(8, 4);
        // Duel: the initiator's leadership survives.
        assert_eq!(p.interact(&led(3), &led(7)), (led(8), idl(8)));
        // Walk with timer decrement; the vacated node is stamped.
        assert_eq!(p.interact(&led(5), &idl(0)), (idl(8), led(4)));
        assert_eq!(p.interact(&idl(2), &led(5)), (led(4), idl(8)));
        // Drained walk budget deposits a token and resets.
        assert_eq!(p.interact(&led(1), &idl(3)), (tok(4), led(8)));
        assert_eq!(p.interact(&idl(3), &led(0)), (led(8), tok(4)));
        // A leader consumes tokens and is refreshed.
        assert_eq!(p.interact(&led(2), &tok(1)), (idl(8), led(8)));
        assert_eq!(p.interact(&tok(1), &led(2)), (led(8), idl(8)));
        // Tokens hop with ttl decrement, stamping as they go…
        assert_eq!(p.interact(&tok(3), &idl(0)), (idl(8), tok(2)));
        assert_eq!(p.interact(&idl(0), &tok(3)), (tok(2), idl(8)));
        // …and evaporate at zero.
        assert_eq!(p.interact(&tok(0), &idl(5)), (idl(8), idl(8)));
        // Token merge keeps the larger aged budget.
        assert_eq!(p.interact(&tok(1), &tok(4)), (tok(3), idl(8)));
        // Idle decay, clamping over-budget timers, and the timeout
        // promotion on a drained pair.
        assert_eq!(p.interact(&idl(4), &idl(99)), (idl(7), idl(7)));
        assert_eq!(p.interact(&idl(1), &idl(0)), (led(8), idl(8)));
    }

    #[test]
    fn a_lone_leader_is_never_lost() {
        // The safety property the rule set is built around: every rule
        // touching a Leader state leaves at least one Leader behind
        // (duels merge, walks relocate, token meetings refresh), so
        // once elected the ring is never leaderless again. Challengers
        // minted by idle timeouts are legal — loose stabilization — and
        // must be reabsorbed by duels.
        let p = TimeOptimalRingProtocol::for_ring(8);
        let g = families::cycle(8);
        let mut exec = Executor::new(&g, &p, 3);
        exec.run_until_stable(1 << 24).expect("clean start elects");
        for _ in 0..50_000 {
            exec.step();
            let leaders = exec
                .states()
                .iter()
                .filter(|s| matches!(s, Leader { .. }))
                .count();
            assert!(leaders >= 1, "the ring went leaderless");
        }
        // Whatever challengers the window minted, duels reconverge.
        let out = exec.run_until_stable(1 << 24).expect("reconverges");
        assert_eq!(out.leader_count, 1);
    }

    #[test]
    fn elects_from_clean_and_arbitrary_starts() {
        let g = families::cycle(12);
        let p = TimeOptimalRingProtocol::for_ring(12);
        let out = Executor::new(&g, &p, 2)
            .run_until_stable(1 << 24)
            .expect("clean start elects");
        assert_eq!(out.leader_count, 1);
        for seed in [3u64, 11, 29] {
            let mut exec = Executor::new(&g, &p, seed);
            exec.set_configuration(&arbitrary_config(&p, 12, arbitrary_seed(seed)));
            let report = run_to_hold(&mut exec, 1 << 24);
            assert!(
                report.holding.elect_step.is_some(),
                "seed {seed} failed to elect"
            );
        }
    }

    #[test]
    fn support_enumerates_the_whole_space() {
        let p = TimeOptimalRingProtocol::new(4, 3);
        let support = p.arbitrary_support();
        assert_eq!(support.len() as u64, p.state_space_bound().unwrap());
        assert!(support.contains(&led(0)));
        assert!(support.contains(&tok(3)));
        assert!(support.contains(&idl(4)));
    }

    #[test]
    fn engine_selection_by_ring_size() {
        // Tiny rings compile ahead of time (the matrix tests rely on
        // this); sweep-sized rings ride the lazy tier via the declared
        // linear state-space bound.
        assert_eq!(
            select_stabilize_engine(&TimeOptimalRingProtocol::for_ring(8), 8),
            Engine::Dense
        );
        assert_eq!(
            select_stabilize_engine(&TimeOptimalRingProtocol::for_ring(2000), 2000),
            Engine::LazyDense
        );
    }

    #[test]
    fn stabilize_trials_attach_holding_metrics() {
        let g = families::cycle(10);
        let p = TimeOptimalRingProtocol::for_ring(10);
        let results = run_trials_stabilize_auto(
            &g,
            &p,
            5,
            TrialOptions {
                trials: 4,
                max_steps: 1 << 23,
                threads: 2,
                ..TrialOptions::default()
            },
            &FaultPlan::empty(),
        );
        assert_eq!(results.len(), 4);
        for r in &results {
            let h = r.holding.expect("stabilize trials attach holding");
            assert_eq!(h.elect_step, r.stabilization_step);
        }
    }
}
