//! Leader-election protocols from *Near-Optimal Leader Election in
//! Population Protocols on Graphs* (PODC 2022).
//!
//! This crate is the primary contribution of the reproduction: every
//! protocol the paper analyses, implemented against the
//! [`popele_engine::Protocol`] abstraction with an exact stabilization
//! oracle each:
//!
//! * [`token`] — the 6-state token-based protocol of Beauquier, Blanchard
//!   and Burman, the paper's constant-state baseline (Theorem 16,
//!   `O(H(G)·n·log n)` expected steps);
//! * [`identifier`] — the time-efficient polynomial-state protocol
//!   (Theorem 21, `O(B(G) + n·log n)` expected steps with `O(n⁴)` states):
//!   identifier generation by initiator/responder coin flips, broadcast of
//!   the maximum, and the token protocol as an always-correct backup;
//! * [`clock`] — the space-efficient streak clock (Section 5.1,
//!   Lemmas 26–29): `h + 1` states generating ticks every `Θ(2^h·m/d)`
//!   steps at a degree-`d` node;
//! * [`fast`] — the paper's main protocol (Theorem 24,
//!   `O(B(G)·log n)` steps with `O(log n · h(G))` states): a level-based
//!   tournament among high-degree nodes driven by streak clocks, with the
//!   token protocol as a backup phase;
//! * [`star`] — the trivial 3-state protocol electing a leader in one
//!   interaction on stars (Table 1, "Stars" row);
//! * [`params`] — derivation of the protocols' parameters (`h`, `L`, `α`,
//!   `k`) from measured graph statistics, in both *paper* (faithful
//!   constants) and *practical* (simulation-sized constants) flavours;
//! * [`loose`] — beyond the paper's clean-start model: the
//!   loosely-stabilizing timeout/propagation family (Kanaya et al.
//!   2024; Yokota et al. 2020) started from *arbitrary* configurations,
//!   with a ring-specialized distance-invalidation variant — measured
//!   by election time and holding time via
//!   [`popele_engine::stabilize`];
//! * [`spaceopt`] — the space-optimal corner of the states-vs-time
//!   tradeoff: the Gąsieniec–Stachowiak junta race with a junta-driven
//!   leaderless phase clock (`O(log log n)` junta levels, exact
//!   stability oracle; clique-model);
//! * [`ringtime`] — the time-optimal self-stabilizing ring corner:
//!   bounded-timer token circulation (arXiv 2009.10926 regime), run
//!   from arbitrary starts like the [`loose`] family.
//!
//! # Examples
//!
//! ```
//! use popele_core::token::TokenProtocol;
//! use popele_engine::Executor;
//! use popele_graph::families;
//!
//! let g = families::cycle(16);
//! let protocol = TokenProtocol::all_candidates();
//! let mut exec = Executor::new(&g, &protocol, 99);
//! let outcome = exec.run_until_stable(50_000_000).expect("token protocol always stabilizes");
//! assert_eq!(outcome.leader_count, 1);
//! ```

#![warn(missing_docs)]

pub mod clock;
pub mod fast;
pub mod identifier;
pub mod loose;
pub mod majority;
pub mod params;
pub mod ringtime;
pub mod spaceopt;
pub mod star;
pub mod token;

pub use fast::FastProtocol;
pub use identifier::IdentifierProtocol;
pub use loose::{LooseProtocol, RingLooseProtocol};
pub use majority::MajorityProtocol;
pub use ringtime::TimeOptimalRingProtocol;
pub use spaceopt::SpaceOptimalProtocol;
pub use star::StarProtocol;
pub use token::TokenProtocol;
