//! The space-efficient streak clock (Section 5.1, Lemmas 26–29).
//!
//! Each node keeps a counter `streak ∈ {0, …, h}`. On every interaction
//! the node increments the counter if it acted as **initiator** and resets
//! it to 0 otherwise; reaching `h` *completes a streak* (a clock tick) and
//! resets the counter. Because the scheduler assigns roles by fair coin
//! flips, the number `K` of interactions per tick is the waiting time for
//! `h` consecutive heads: `E[K] = 2^{h+1} − 2` (Lemma 27a), sandwiched
//! between `Geom(2^{−h})` and `Geom(2^{−h−1}) + h` (Lemma 26). A node of
//! degree `d` interacts with probability `d/m` per step, so ticks arrive
//! every `Θ(2^h·m/d)` **steps** (Lemma 27b) — high-degree nodes tick
//! faster, which is what lets the fast protocol elect a `Θ(Δ)`-degree
//! leader.

use rand::Rng;

/// The streak-counter clock: `h + 1` local states.
///
/// # Examples
///
/// ```
/// use popele_core::clock::StreakClock;
///
/// let mut c = StreakClock::new(2);
/// assert!(!c.on_interaction(true));  // streak 1
/// assert!(c.on_interaction(true));   // streak 2 = h → tick, reset
/// assert!(!c.on_interaction(true));  // streak 1 again
/// assert!(!c.on_interaction(false)); // responder → reset
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StreakClock {
    streak: u8,
    h: u8,
}

impl StreakClock {
    /// Creates a clock with streak length `h`.
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ h ≤ 60`.
    #[must_use]
    pub fn new(h: u8) -> Self {
        assert!((1..=60).contains(&h), "streak length must be in 1..=60");
        Self { streak: 0, h }
    }

    /// Current streak value.
    #[must_use]
    pub fn streak(&self) -> u8 {
        self.streak
    }

    /// Streak length parameter `h`.
    #[must_use]
    pub fn h(&self) -> u8 {
        self.h
    }

    /// Updates the clock for one interaction of its node; returns `true`
    /// when this interaction completes a streak (a tick).
    pub fn on_interaction(&mut self, was_initiator: bool) -> bool {
        if was_initiator {
            self.streak += 1;
        } else {
            self.streak = 0;
        }
        if self.streak == self.h {
            self.streak = 0;
            true
        } else {
            false
        }
    }

    /// Expected interactions per tick, `E[K] = 2^{h+1} − 2` (Lemma 27a).
    #[must_use]
    pub fn expected_interactions_per_tick(&self) -> f64 {
        (2u64 << self.h) as f64 - 2.0
    }

    /// Expected scheduler **steps** per tick for a degree-`d` node on an
    /// `m`-edge graph: `E[X(d)] = E[K]·m/d` (Lemma 27b, Wald's identity).
    ///
    /// # Panics
    ///
    /// Panics if `d == 0`.
    #[must_use]
    pub fn expected_steps_per_tick(&self, d: u32, m: usize) -> f64 {
        assert!(d > 0, "degree must be positive");
        self.expected_interactions_per_tick() * m as f64 / f64::from(d)
    }
}

/// Samples `K`, the number of fair coin flips until `h` consecutive heads
/// (the per-tick interaction count of Lemma 26).
pub fn sample_interactions_per_tick<R: Rng + ?Sized>(h: u8, rng: &mut R) -> u64 {
    let mut clock = StreakClock::new(h);
    let mut flips = 0u64;
    loop {
        flips += 1;
        if clock.on_interaction(rng.random::<bool>()) {
            return flips;
        }
    }
}

/// The **exact** survival function `f(k) = Pr[K ≥ k]` of the per-tick
/// interaction count, evaluated for `k = 0..=k_max` via the Appendix B
/// recurrence (Lemma 55):
///
/// ```text
/// f(k) = 1                           for k ≤ h,
/// f(h + 1) = 1 − 2^{−h}              (all-heads opening run),
/// f(k + 1) = f(k) − f(k − h)/2^{h+1} for k ≥ h + 1.
/// ```
///
/// **Erratum note.** The paper states the identity
/// `Pr[K = k] = f(k − h)/2^{h+1}` "for k ≥ h", but at `k = h` there is no
/// tail flip preceding the winning run: `Pr[K = h] = 2^{−h}`, not
/// `2^{−h−1}`. The identity (and hence the recurrence) holds for
/// `k ≥ h + 1`; we use the corrected base case. The Lemma 56/57 sandwich
/// `(1 − 2^{−h})^k ≤ f(k) ≤ (1 − 2^{−h−1})^{k−h}` — the inequality
/// Lemma 26's stochastic domination rests on — still holds for the true
/// distribution, and is asserted against these exact values in tests.
///
/// # Panics
///
/// Panics unless `1 ≤ h ≤ 60`.
#[must_use]
pub fn tick_survival_exact(h: u8, k_max: usize) -> Vec<f64> {
    assert!((1..=60).contains(&h), "streak length must be in 1..=60");
    let h = usize::from(h);
    let denom = (2u64 << h) as f64; // 2^{h+1}
    let mut f = Vec::with_capacity(k_max + 1);
    for k in 0..=k_max {
        if k <= h {
            f.push(1.0);
        } else if k == h + 1 {
            f.push(1.0 - 0.5f64.powi(h as i32));
        } else {
            // f(k) = f(k−1) − f(k−1−h)/2^{h+1} for k − 1 ≥ h + 1.
            let value = f[k - 1] - f[k - 1 - h] / denom;
            f.push(value.max(0.0));
        }
    }
    f
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_math::dist::Geometric;
    use popele_math::rng::small_rng;
    use popele_math::stats::Welford;

    #[test]
    fn tick_requires_h_consecutive_initiations() {
        let mut c = StreakClock::new(3);
        assert!(!c.on_interaction(true));
        assert!(!c.on_interaction(true));
        assert!(!c.on_interaction(false)); // reset at streak 2
        assert!(!c.on_interaction(true));
        assert!(!c.on_interaction(true));
        assert!(c.on_interaction(true)); // third in a row → tick
        assert_eq!(c.streak(), 0);
    }

    #[test]
    fn h_one_ticks_every_initiation() {
        let mut c = StreakClock::new(1);
        assert!(c.on_interaction(true));
        assert!(!c.on_interaction(false));
        assert!(c.on_interaction(true));
    }

    #[test]
    fn expected_interactions_formula() {
        assert_eq!(StreakClock::new(1).expected_interactions_per_tick(), 2.0);
        assert_eq!(StreakClock::new(2).expected_interactions_per_tick(), 6.0);
        assert_eq!(StreakClock::new(3).expected_interactions_per_tick(), 14.0);
        assert_eq!(
            StreakClock::new(10).expected_interactions_per_tick(),
            2046.0
        );
    }

    #[test]
    fn lemma27a_empirical_mean() {
        // E[K] = 2^{h+1} − 2 for h = 4 is 30.
        let mut rng = small_rng(7);
        let mut w = Welford::new();
        for _ in 0..40_000 {
            w.push(sample_interactions_per_tick(4, &mut rng) as f64);
        }
        assert!((w.mean() - 30.0).abs() < 0.6, "mean {}", w.mean());
    }

    #[test]
    fn lemma26_stochastic_sandwich() {
        // Geom(2^{−h}) ⪯ K ⪯ Geom(2^{−h−1}) + h: compare empirical
        // survival functions at several thresholds.
        let h = 3u8;
        let mut rng = small_rng(13);
        let trials = 30_000usize;
        let samples: Vec<u64> = (0..trials)
            .map(|_| sample_interactions_per_tick(h, &mut rng))
            .collect();
        let lower = Geometric::new(1.0 / f64::from(1u32 << h));
        let upper = Geometric::new(1.0 / f64::from(1u32 << (h + 1)));
        let lower_samples: Vec<u64> = (0..trials).map(|_| lower.sample(&mut rng)).collect();
        let upper_samples: Vec<u64> = (0..trials)
            .map(|_| upper.sample(&mut rng) + u64::from(h))
            .collect();
        let survival =
            |xs: &[u64], t: u64| xs.iter().filter(|&&x| x >= t).count() as f64 / xs.len() as f64;
        for t in [5u64, 10, 20, 40, 80] {
            let s_k = survival(&samples, t);
            let s_lo = survival(&lower_samples, t);
            let s_hi = survival(&upper_samples, t);
            assert!(
                s_lo <= s_k + 0.02,
                "t={t}: Geom lower bound violated ({s_lo} > {s_k})"
            );
            assert!(
                s_k <= s_hi + 0.02,
                "t={t}: Geom upper bound violated ({s_k} > {s_hi})"
            );
        }
    }

    #[test]
    fn exact_survival_matches_base_cases() {
        // h = 1: K ~ Geom(1/2) exactly, so f(k) = (1/2)^{k−1} for k ≥ 1.
        let f = tick_survival_exact(1, 10);
        for (k, &fk) in f.iter().enumerate().skip(1) {
            let expected = 0.5f64.powi(k as i32 - 1);
            assert!(
                (fk - expected).abs() < 1e-12,
                "h=1, k={k}: {fk} vs {expected}"
            );
        }
    }

    #[test]
    fn exact_survival_mean_matches_lemma27a() {
        // E[K] = Σ_{k≥1} Pr[K ≥ k]; truncating far past the mean loses
        // a negligible tail.
        for h in [2u8, 3, 4, 5] {
            let horizon = 200 * (1usize << h);
            let f = tick_survival_exact(h, horizon);
            let mean: f64 = f[1..].iter().sum();
            let expected = (2u64 << h) as f64 - 2.0;
            assert!(
                (mean - expected).abs() < 1e-6,
                "h={h}: exact mean {mean} vs 2^{{h+1}}−2 = {expected}"
            );
        }
    }

    #[test]
    fn lemmas_56_57_sandwich_exact_survival() {
        // (1 − 2^{−h})^k ≤ f(k) ≤ (1 − 2^{−h−1})^{k−h} for k ≥ h.
        for h in [2u8, 4, 6] {
            let f = tick_survival_exact(h, 400);
            let lo_base = 1.0 - 0.5f64.powi(i32::from(h));
            let hi_base = 1.0 - 0.5f64.powi(i32::from(h) + 1);
            for (k, &fk) in f.iter().enumerate().skip(usize::from(h)) {
                let lower = lo_base.powi(k as i32);
                let upper = hi_base.powi(k as i32 - i32::from(h));
                assert!(fk >= lower - 1e-12, "h={h} k={k}: {fk} < lower {lower}");
                assert!(fk <= upper + 1e-12, "h={h} k={k}: {fk} > upper {upper}");
            }
        }
    }

    #[test]
    fn sampler_matches_exact_distribution() {
        // Empirical survival of the sampler vs the Appendix B recurrence.
        let h = 3u8;
        let f = tick_survival_exact(h, 120);
        let mut rng = small_rng(29);
        let trials = 60_000usize;
        let mut counts = vec![0u32; 121];
        for _ in 0..trials {
            let k = sample_interactions_per_tick(h, &mut rng) as usize;
            if k <= 120 {
                counts[k] += 1;
            }
        }
        // Empirical Pr[K ≥ k] by reverse cumulative sum.
        let mut tail = 0u32;
        let mut empirical = vec![0.0; 121];
        for k in (0..=120).rev() {
            tail += counts[k];
            empirical[k] = f64::from(tail) / trials as f64;
        }
        for k in [1usize, 5, 14, 30, 60] {
            assert!(
                (empirical[k] - f[k]).abs() < 0.01,
                "k={k}: empirical {} vs exact {}",
                empirical[k],
                f[k]
            );
        }
    }

    #[test]
    fn steps_per_tick_scales_inversely_with_degree() {
        let c = StreakClock::new(5);
        let high = c.expected_steps_per_tick(100, 1000);
        let low = c.expected_steps_per_tick(10, 1000);
        assert!((low / high - 10.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "1..=60")]
    fn rejects_zero_h() {
        let _ = StreakClock::new(0);
    }

    #[test]
    fn clock_state_space_is_h_plus_one() {
        // streak ranges over {0, …, h−1} after the completion reset — the
        // transient value h is collapsed to 0 — so h distinct stored
        // values; with the h parameter fixed the clock contributes h + 1
        // states counting the tick signal. Verify streak stays < h.
        let mut c = StreakClock::new(4);
        let mut rng = small_rng(3);
        for _ in 0..1000 {
            c.on_interaction(rng.random::<bool>());
            assert!(c.streak() < 4);
        }
    }
}
