//! Space-optimal leader election: the junta/phase-clock family of
//! Gąsieniec and Stachowiak (arXiv 1704.07649; journal version
//! 1802.06867).
//!
//! The paper's `fast`/`identifier` protocols buy election speed with
//! state count; this family sits at the opposite Pareto corner —
//! `O(log log n)` **junta levels** instead of `Θ(log n)` identifier
//! bits. Two mechanisms share the agent state:
//!
//! * **Junta race**: every agent starts as a *candidate* at level 0.
//!   When two same-level candidates meet, the initiator climbs one
//!   level and the responder drops out; levels spread epidemically as a
//!   max, and a candidate that learns of a strictly higher level drops
//!   out too. Successive halving leaves `O(log log n)` occupied levels
//!   whp — the junta — and the duels continue until one candidate
//!   remains. Candidates *are* the leaders here: the output map is
//!   exactly the candidate mark.
//! * **Leaderless phase clock**: every agent carries a `mod m` clock
//!   synchronized by one-way epidemics (both parties jump to the
//!   cyclically-ahead reading) and *ticked* by candidates — the
//!   junta-driven clock of the paper, which stays a bounded-skew
//!   heartbeat because only the shrinking candidate set advances it.
//!   Duels are **clock-gated**: two candidates fight only when their
//!   pre-interaction clocks agree to within one tick, so the phase
//!   structure is load-bearing (a candidate pair first synchronizes,
//!   then duels on a later meeting), exactly as the paper's phases
//!   separate "spread your level" from "fight".
//!
//! This is a **clique-model** family, like the classic population
//! protocols it comes from: elimination needs direct candidate
//! meetings, so on a sparse graph two ceiling-level candidates can end
//! up non-adjacent with no rule that ever reduces them. Sweep cells
//! therefore pair `space-opt` exclusively with the clique family
//! (`cell_skip_reason` records the restriction); the cross-engine
//! trace-identity matrix still runs it on every family, since trace
//! identity needs no convergence.
//!
//! # What the oracle certifies
//!
//! The candidate count never increases, and an easy induction (spelled
//! out on [`SpaceOptimalProtocol::interact`]) shows the **global
//! maximum level is always held by some candidate** — so the count
//! never reaches zero, and a *unique* candidate can never meet a
//! strictly higher level or a rival: unique-candidate configurations
//! are absorbing. [`LeaderCountOracle`] is therefore an **exact**
//! stability oracle for this family (unlike the loose family next
//! door), the census-only count tier may batch it on cliques, and the
//! exhaustive reachability validator applies in full — see
//! `tests/protocol_matrix.rs` and the exhaustive suite in this module.
//!
//! # Practical deviation
//!
//! [`SpaceOptimalProtocol::practical`] keeps the full `m`-valued clock
//! on every agent for simulation fidelity (the paper compresses
//! follower state further to reach `O(log log n)` states overall); the
//! `O(log log n)` bound applies to the *junta levels*
//! (`max_level + 1 = bitlen(bitlen(n)) + 2`), and the whole state
//! space `2·(max_level + 1)·m` still undercuts the identifier
//! protocol's `O(n⁴)` by orders of magnitude — at `n = 10⁹` it is
//! ~420 states, inside even the count engine's compile cap.
//!
//! # Examples
//!
//! ```
//! use popele_core::spaceopt::SpaceOptimalProtocol;
//! use popele_engine::{Executor, Protocol};
//! use popele_graph::families;
//!
//! let p = SpaceOptimalProtocol::practical(64);
//! let out = Executor::new(&families::clique(64), &p, 9)
//!     .run_until_stable(1 << 24)
//!     .expect("the junta race always collapses to one candidate");
//! assert_eq!(out.leader_count, 1);
//! ```

use popele_engine::{LeaderCountOracle, Protocol, Role};
use popele_graph::NodeId;

/// Local state of [`SpaceOptimalProtocol`]: junta level, candidate
/// mark, and phase-clock reading (`2·(max_level + 1)·phase_len`
/// combinations).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct SpaceOptState {
    /// Highest junta level this agent has witnessed (its own, if still
    /// a candidate).
    pub level: u8,
    /// Whether this agent is still a candidate in the junta race (and
    /// outputs *leader*).
    pub candidate: bool,
    /// Phase-clock reading in `0..phase_len`.
    pub clock: u8,
}

/// Space-optimal leader election (Gąsieniec–Stachowiak junta race with
/// a junta-driven leaderless phase clock).
///
/// See the [module docs](self) for the mechanism and the exactness
/// argument.
///
/// # Examples
///
/// ```
/// use popele_core::spaceopt::SpaceOptimalProtocol;
/// use popele_engine::Protocol;
///
/// let p = SpaceOptimalProtocol::new(3, 8);
/// // 4 levels × 8 clock readings × candidate bit.
/// assert_eq!(p.state_space_bound(), Some(64));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpaceOptimalProtocol {
    max_level: u8,
    phase_len: u8,
}

impl SpaceOptimalProtocol {
    /// Creates the protocol with junta levels `0..=max_level` and a
    /// `mod phase_len` phase clock.
    ///
    /// # Panics
    ///
    /// Panics if `max_level` is zero (no race to run) or `phase_len`
    /// is below 2 (no phases to gate on).
    #[must_use]
    pub fn new(max_level: u8, phase_len: u8) -> Self {
        assert!(max_level >= 1, "the junta race needs at least two levels");
        assert!(
            phase_len >= 2,
            "the phase clock needs at least two readings"
        );
        Self {
            max_level,
            phase_len,
        }
    }

    /// Simulation-practical parameters for an `n`-agent population:
    /// `phase_len = bitlen(n)` (the paper's `Θ(log n)`-tick phases) and
    /// `max_level = bitlen(bitlen(n)) + 1` (the `O(log log n)` junta
    /// ceiling, one slack level over the expected `log log n` climb).
    ///
    /// # Examples
    ///
    /// ```
    /// use popele_core::spaceopt::SpaceOptimalProtocol;
    /// use popele_engine::Protocol;
    ///
    /// let p = SpaceOptimalProtocol::practical(2000);
    /// assert_eq!((p.max_level(), p.phase_len()), (5, 11));
    /// // ~tens of states where the identifier protocol needs O(n⁴).
    /// assert_eq!(p.state_space_bound(), Some(132));
    /// ```
    #[must_use]
    pub fn practical(n: u32) -> Self {
        let bitlen = |x: u32| 32 - x.max(2).leading_zeros();
        let phase_len = bitlen(n);
        let max_level = bitlen(phase_len) + 1;
        Self::new(max_level as u8, phase_len as u8)
    }

    /// The junta-level ceiling.
    #[must_use]
    pub fn max_level(&self) -> u8 {
        self.max_level
    }

    /// The phase-clock modulus `m`.
    #[must_use]
    pub fn phase_len(&self) -> u8 {
        self.phase_len
    }

    /// The cyclically-ahead reading of two `mod m` clocks: the one the
    /// other can reach in at most `⌊m/2⌋` forward ticks (ties at the
    /// antipode break to the numerically larger reading, keeping the
    /// function symmetric and hence the transition well defined).
    #[must_use]
    pub fn clock_max(&self, x: u8, y: u8) -> u8 {
        let m = u16::from(self.phase_len);
        let d = (u16::from(y) + m - u16::from(x)) % m;
        if d == 0 {
            x
        } else if 2 * d < m {
            y
        } else if 2 * d > m {
            x
        } else {
            x.max(y)
        }
    }

    /// Cyclic distance between two readings (forward or backward,
    /// whichever is shorter) — duels fire at distance `≤ 1`.
    #[must_use]
    pub fn clock_dist(&self, x: u8, y: u8) -> u8 {
        let m = u16::from(self.phase_len);
        let d = (u16::from(y) + m - u16::from(x)) % m;
        d.min(m - d) as u8
    }

    /// The transition on a pair of states, exposed for unit tests and
    /// the concordance's rule-by-rule references.
    ///
    /// Safety induction ("the global max level is always held by a
    /// candidate", whence `LeaderCountOracle` exactness): initially all
    /// agents are level-0 candidates. A same-level duel leaves the
    /// initiator a candidate at the (possibly new) maximum; the
    /// level-adoption rule only drops a candidate whose level is
    /// *strictly below* the witnessed one — by induction some *other*
    /// candidate already holds a level at least that high; and no rule
    /// ever lowers a level or revives a candidate.
    #[must_use]
    pub fn interact(&self, a: &SpaceOptState, b: &SpaceOptState) -> (SpaceOptState, SpaceOptState) {
        let mut na = *a;
        let mut nb = *b;
        // Junta race on the pre-interaction levels and clocks.
        if a.candidate
            && b.candidate
            && a.level == b.level
            && self.clock_dist(a.clock, b.clock) <= 1
        {
            // Clock-gated duel: the initiator survives, climbing one
            // level while the ceiling allows.
            if a.level < self.max_level {
                na.level = a.level + 1;
            }
            nb.candidate = false;
        } else {
            // Level epidemic: witnessing a strictly higher level means
            // someone is ahead in the race — adopt it and drop out.
            if a.level < b.level {
                na.level = b.level;
                na.candidate = false;
            } else if b.level < a.level {
                nb.level = a.level;
                nb.candidate = false;
            }
        }
        // Phase clock: both jump to the cyclically-ahead reading; a
        // surviving candidate initiator then ticks it — the clock is
        // junta-driven, so it freezes only when the race is over.
        let c = self.clock_max(a.clock, b.clock);
        na.clock = c;
        nb.clock = c;
        if na.candidate {
            na.clock = (c + 1) % self.phase_len;
        }
        (na, nb)
    }
}

impl Protocol for SpaceOptimalProtocol {
    type State = SpaceOptState;
    type Oracle = LeaderCountOracle;

    fn initial_state(&self, _node: NodeId) -> SpaceOptState {
        SpaceOptState {
            level: 0,
            candidate: true,
            clock: 0,
        }
    }

    fn transition(&self, a: &SpaceOptState, b: &SpaceOptState) -> (SpaceOptState, SpaceOptState) {
        self.interact(a, b)
    }

    fn output(&self, state: &SpaceOptState) -> Role {
        if state.candidate {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn oracle(&self) -> LeaderCountOracle {
        LeaderCountOracle::new()
    }

    fn state_space_bound(&self) -> Option<u64> {
        Some(2 * (u64::from(self.max_level) + 1) * u64::from(self.phase_len))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_engine::exhaustive::{
        check_stable_and_correct, validate_oracle_on_execution, Verdict, DEFAULT_CONFIG_LIMIT,
    };
    use popele_engine::monte_carlo::{run_trials, select_engine, Engine, TrialOptions, TrialStats};
    use popele_engine::{CompiledProtocol, Executor};
    use popele_graph::families;

    fn cand(level: u8, clock: u8) -> SpaceOptState {
        SpaceOptState {
            level,
            candidate: true,
            clock,
        }
    }

    fn fol(level: u8, clock: u8) -> SpaceOptState {
        SpaceOptState {
            level,
            candidate: false,
            clock,
        }
    }

    #[test]
    fn duel_rules() {
        let p = SpaceOptimalProtocol::new(2, 8);
        // Same level, clocks in sync: the initiator climbs, the
        // responder drops out, both land on the ticked common reading.
        assert_eq!(
            p.interact(&cand(0, 3), &cand(0, 3)),
            (cand(1, 4), fol(0, 3))
        );
        assert_eq!(
            p.interact(&cand(0, 3), &cand(0, 4)),
            (cand(1, 5), fol(0, 4))
        );
        // At the ceiling the duel still eliminates, without climbing.
        assert_eq!(
            p.interact(&cand(2, 0), &cand(2, 0)),
            (cand(2, 1), fol(2, 0))
        );
        // Clocks too far apart: no duel, just synchronization (both
        // stay candidates, initiator ticks the synced clock).
        assert_eq!(
            p.interact(&cand(0, 0), &cand(0, 3)),
            (cand(0, 4), cand(0, 3))
        );
    }

    #[test]
    fn level_epidemic_drops_trailing_candidates() {
        let p = SpaceOptimalProtocol::new(3, 8);
        // A candidate that witnesses a higher level adopts it and
        // drops out; the witness is unaffected (but synced).
        assert_eq!(p.interact(&cand(1, 2), &fol(2, 2)), (fol(2, 2), fol(2, 2)));
        // The dropped candidate no longer ticks the clock either.
        assert_eq!(p.interact(&fol(3, 5), &cand(1, 5)), (fol(3, 5), fol(3, 5)));
        // Follower-follower meetings spread the max level.
        assert_eq!(p.interact(&fol(0, 1), &fol(2, 1)), (fol(2, 1), fol(2, 1)));
    }

    #[test]
    fn clock_max_is_symmetric_and_cyclic() {
        let p = SpaceOptimalProtocol::new(1, 6);
        for x in 0..6 {
            for y in 0..6 {
                assert_eq!(p.clock_max(x, y), p.clock_max(y, x), "({x},{y})");
                assert_eq!(p.clock_dist(x, y), p.clock_dist(y, x), "({x},{y})");
            }
        }
        // 5 is one tick behind 0, so 0 is ahead.
        assert_eq!(p.clock_max(5, 0), 0);
        assert_eq!(p.clock_dist(5, 0), 1);
        // The antipode tie breaks to the larger reading, symmetrically.
        assert_eq!(p.clock_max(1, 4), 4);
        assert_eq!(p.clock_max(4, 1), 4);
    }

    #[test]
    fn elects_exactly_one_candidate_on_cliques() {
        // The clique is this family's home model (see the module docs):
        // on sparse graphs two ceiling-level candidates may end up
        // non-adjacent with no way to duel, which is exactly why the
        // sweep restricts space-opt cells to cliques.
        for n in [8u32, 16, 32, 64] {
            let g = families::clique(n);
            let p = SpaceOptimalProtocol::practical(n);
            let out = Executor::new(&g, &p, 0x5ACE ^ u64::from(n))
                .run_until_stable(1 << 26)
                .unwrap_or_else(|_| panic!("did not elect on {g}"));
            assert_eq!(out.leader_count, 1, "{g}");
        }
    }

    #[test]
    fn candidate_count_never_increases_and_max_level_is_candidate_held() {
        // Drive a clique run and check the two safety invariants the
        // oracle-exactness argument rests on, step by step.
        let g = families::clique(12);
        let p = SpaceOptimalProtocol::practical(12);
        let mut exec = Executor::new(&g, &p, 77);
        let mut last_count = usize::MAX;
        for _ in 0..20_000 {
            let states = exec.states();
            let count = states.iter().filter(|s| s.candidate).count();
            assert!(count <= last_count, "candidate count increased");
            assert!(count >= 1, "the race lost every candidate");
            let max_level = states.iter().map(|s| s.level).max().unwrap();
            assert!(
                states.iter().any(|s| s.candidate && s.level == max_level),
                "no candidate at the global max level"
            );
            last_count = count;
            exec.step();
        }
    }

    #[test]
    fn exhaustive_every_reachable_configuration_is_correctly_judged() {
        // n ≤ 8 exhaustive validation on cliques and a cycle: along an
        // execution, the oracle's verdict must match the reachability
        // search at every step (mirrors the dense-id exhaustive suite;
        // the compiled twin lives in tests/protocol_matrix.rs).
        let p = SpaceOptimalProtocol::new(1, 2);
        for g in [
            families::clique(4),
            families::clique(5),
            families::clique(6),
        ] {
            let steps = validate_oracle_on_execution(&p, &g, 3, 4000, DEFAULT_CONFIG_LIMIT);
            assert!(steps < 4000, "should elect quickly on {g}");
        }
    }

    #[test]
    fn exhaustive_unique_candidate_configurations_are_stable() {
        let p = SpaceOptimalProtocol::new(1, 2);
        let g = families::clique(4);
        // One ceiling-level candidate among followers: absorbing.
        let config = vec![cand(1, 1), fol(1, 0), fol(0, 1), fol(1, 1)];
        assert_eq!(
            check_stable_and_correct(&p, &g, &config, DEFAULT_CONFIG_LIMIT),
            Verdict::Stable
        );
        // Two candidates: a duel is always reachable, so unstable.
        let config = vec![cand(1, 1), cand(1, 1), fol(0, 0), fol(1, 1)];
        assert_eq!(
            check_stable_and_correct(&p, &g, &config, DEFAULT_CONFIG_LIMIT),
            Verdict::Unstable
        );
    }

    #[test]
    fn census_respects_the_declared_bound_and_aot_selection() {
        let g = families::clique(16);
        let p = SpaceOptimalProtocol::practical(16);
        assert_eq!(select_engine(&p, 16), Engine::Dense);
        let results = run_trials(
            &g,
            &p,
            5,
            TrialOptions {
                trials: 3,
                max_steps: 1 << 24,
                census: true,
                threads: 1,
                ..TrialOptions::default()
            },
        );
        let stats = TrialStats::from_results(&results);
        let seen = stats.max_distinct_states.unwrap() as u64;
        assert!(seen <= p.state_space_bound().unwrap(), "census {seen}");
    }

    #[test]
    fn compiled_closure_fits_the_declared_bound_even_at_count_scale() {
        // The count tier's door: |Λ| at n = 10⁹ parameters stays far
        // below the 4096-state count compile cap.
        let p = SpaceOptimalProtocol::practical(1_000_000_000);
        assert!(p.state_space_bound().unwrap() <= 4096);
        let compiled = CompiledProtocol::compile(&p, 64, 4096).unwrap();
        assert!(compiled.num_states() as u64 <= p.state_space_bound().unwrap());
    }
}
