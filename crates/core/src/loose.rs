//! Loosely-stabilizing leader election: the timeout/propagation family.
//!
//! The paper's protocols assume a clean initial configuration; this
//! module implements the neighbouring regime — **loose stabilization**
//! (Sudo et al. 2012; Kanaya et al. 2024 on arbitrary graphs without
//! identifiers; Yokota et al. 2020 on rings): started from an
//! *arbitrary* configuration, the protocol must reach a unique-leader
//! configuration within a small expected **election time** and then
//! keep it for a large expected **holding time**. Exact self-stabilizing
//! leader election is impossible for anonymous constant-interaction
//! agents on general graphs (Angluin, Aspnes, Fischer, Jiang 2008), so
//! loose stabilization — holding for a time exponential in a tunable
//! budget rather than forever — is the strongest guarantee this model
//! admits, and the elect-vs-hold tradeoff is *the* design axis
//! (`popele-lab stabilize` measures it).
//!
//! Two protocols share the mechanism:
//!
//! * [`LooseProtocol`] — for arbitrary graphs. Per Kanaya et al.'s
//!   timeout/propagation structure, every agent keeps a count-down
//!   **heartbeat timer**; the leader (a walking token, as in the
//!   Theorem 16 baseline — it must walk, because on a sparse graph two
//!   static leaders may never be adjacent to duel) refreshes the timers
//!   of everyone it meets to the budget `τ`, high timers propagate
//!   epidemically (`max − 1`), and an agent whose pair times out
//!   **promotes itself** — the timeout phase that makes a leaderless
//!   configuration recoverable. Two leaders that meet merge.
//! * [`RingLooseProtocol`] — the ring-specialized variant. Instead of
//!   an abstract timer it propagates a believed **hop distance to the
//!   leader** (`min + 1`, aging upward when no leader feeds zeroes);
//!   an agent whose believed distance reaches the bound `B` has
//!   evidence that no leader exists within `B − 1` hops — on an
//!   `n`-ring with `B > n` an impossibility — and promotes itself.
//!   [`RingLooseProtocol::for_ring`] derives `B = 2n` from the known
//!   ring size, the same knowledge the self-stabilizing ring protocols
//!   assume.
//!
//! # What the oracle certifies
//!
//! Unique-leader configurations of these protocols are **not** stable
//! forever — by design a timeout can always mint a new leader. Their
//! [`LeaderCountOracle`] therefore certifies the *holding predicate*
//! ("exactly one node outputs leader"), not classic stability:
//! `run_until_stable` returns the **election step**, and the
//! elect-and-hold drivers of [`popele_engine::stabilize`] keep running
//! past it to time how long the predicate holds before the first
//! violation. (This is exactly the pair of quantities loose
//! stabilization is defined by; the exhaustive reachability validator
//! is deliberately *not* applicable here.)
//!
//! # Tradeoff shape
//!
//! Raising the budget (`τ` or `B`) slows election — a leaderless start
//! must drain the budget before the first timeout — and lengthens the
//! hold superlinearly: a violation needs some agent to decay through
//! the whole budget without once hearing the leader's heartbeat, a
//! probability that shrinks geometrically with the budget once it
//! exceeds the graph's propagation time. `popele-lab stabilize`
//! reproduces the resulting elect-vs-hold table.
//!
//! # Examples
//!
//! ```
//! use popele_core::loose::LooseProtocol;
//! use popele_engine::stabilize::{arbitrary_config, arbitrary_seed, run_to_hold};
//! use popele_engine::Executor;
//! use popele_graph::families;
//!
//! let g = families::clique(16);
//! let p = LooseProtocol::new(24);
//! let mut exec = Executor::new(&g, &p, 7);
//! // Start from an adversarial configuration, elect, then hold.
//! exec.set_configuration(&arbitrary_config(&p, 16, arbitrary_seed(7)));
//! let report = run_to_hold(&mut exec, 1 << 22);
//! assert!(report.holding.elect_step.is_some());
//! ```

use popele_engine::stabilize::ArbitraryInit;
use popele_engine::{LeaderCountOracle, Protocol, Role};
use popele_graph::NodeId;

/// Local state of [`LooseProtocol`]: a leadership token bit plus the
/// count-down heartbeat timer (`2·(τ + 1)` states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LooseState {
    /// Whether this node holds the leadership token (and outputs
    /// *leader*).
    pub leader: bool,
    /// Heartbeat timer in `0..=timer_max`: time credit since the last
    /// evidence that a leader exists.
    pub timer: u32,
}

/// Loosely-stabilizing leader election for arbitrary graphs
/// (timeout/propagation with a walking leader token).
///
/// See the [module docs](self) for the mechanism and guarantees.
///
/// # Examples
///
/// ```
/// use popele_core::loose::LooseProtocol;
/// use popele_engine::{Executor, Protocol};
/// use popele_graph::families;
///
/// // From the clean initial configuration the first election is a
/// // timer drain followed by token coalescence.
/// let p = LooseProtocol::new(8);
/// assert_eq!(p.state_space_bound(), Some(18));
/// let out = Executor::new(&families::clique(12), &p, 3)
///     .run_until_stable(1 << 22)
///     .expect("a leader is always minted and merged");
/// assert_eq!(out.leader_count, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LooseProtocol {
    timer_max: u32,
}

impl LooseProtocol {
    /// Creates the protocol with heartbeat budget `timer_max` (`τ`).
    ///
    /// # Panics
    ///
    /// Panics if `timer_max` is zero (every pair would time out).
    #[must_use]
    pub fn new(timer_max: u32) -> Self {
        assert!(timer_max >= 1, "the heartbeat budget must be at least 1");
        Self { timer_max }
    }

    /// Simulation-practical budget for an `n`-node graph:
    /// `τ = 8·bitlen(n)` — several heartbeat propagation times on the
    /// dense and expander families, so holds are long while elections
    /// stay cheap. (Sweep cells use this derivation; the `stabilize`
    /// experiment sweeps `τ` explicitly instead.)
    ///
    /// # Examples
    ///
    /// ```
    /// use popele_core::loose::LooseProtocol;
    ///
    /// assert_eq!(LooseProtocol::practical(2000).timer_max(), 88);
    /// ```
    #[must_use]
    pub fn practical(n: u32) -> Self {
        let bitlen = 32 - n.max(2).leading_zeros();
        Self::new(8 * bitlen)
    }

    /// The heartbeat budget `τ`.
    #[must_use]
    pub fn timer_max(&self) -> u32 {
        self.timer_max
    }

    /// The transition on a pair of loose states, exposed for unit tests
    /// and for the concordance's rule-by-rule references.
    #[must_use]
    pub fn interact(&self, a: &LooseState, b: &LooseState) -> (LooseState, LooseState) {
        let tau = self.timer_max;
        let leader = LooseState {
            leader: true,
            timer: tau,
        };
        let follower = LooseState {
            leader: false,
            timer: tau,
        };
        match (a.leader, b.leader) {
            // Duel: two tokens merge, the initiator's survives.
            (true, true) => (leader, follower),
            // The token walks to the other party; both heard the
            // heartbeat first-hand and reset to the full budget.
            (true, false) => (follower, leader),
            (false, true) => (leader, follower),
            // Propagation: the larger credit spreads, decayed by one.
            // A drained pair is the timeout phase — the initiator
            // promotes itself with a fresh token.
            (false, false) => {
                let t = a.timer.max(b.timer).min(tau);
                if t <= 1 {
                    (leader, follower)
                } else {
                    let decayed = LooseState {
                        leader: false,
                        timer: t - 1,
                    };
                    (decayed, decayed)
                }
            }
        }
    }
}

impl Protocol for LooseProtocol {
    type State = LooseState;
    type Oracle = LeaderCountOracle;

    fn initial_state(&self, _node: NodeId) -> LooseState {
        // Clean (re)join: no leadership claim, full benefit of the
        // doubt. A corrupt-to-initial burst that erases the leader
        // therefore forces a full drain before re-election — the
        // bounded re-election time the fault experiments measure.
        LooseState {
            leader: false,
            timer: self.timer_max,
        }
    }

    fn transition(&self, a: &LooseState, b: &LooseState) -> (LooseState, LooseState) {
        self.interact(a, b)
    }

    fn output(&self, state: &LooseState) -> Role {
        if state.leader {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn oracle(&self) -> LeaderCountOracle {
        LeaderCountOracle::new()
    }

    fn state_space_bound(&self) -> Option<u64> {
        Some(2 * (u64::from(self.timer_max) + 1))
    }
}

impl ArbitraryInit for LooseProtocol {
    /// Every `(leader, timer)` combination — the full state space, so
    /// the sampler is maximally adversarial ("reachable or not").
    fn arbitrary_support(&self) -> Vec<LooseState> {
        let mut support = Vec::with_capacity(2 * (self.timer_max as usize + 1));
        for timer in 0..=self.timer_max {
            for leader in [false, true] {
                support.push(LooseState { leader, timer });
            }
        }
        support
    }
}

/// Local state of [`RingLooseProtocol`]: the token bit plus the
/// believed hop distance to the leader.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct RingState {
    /// Whether this node holds the leadership token (and outputs
    /// *leader*). A leader's distance is canonically `0`.
    pub leader: bool,
    /// Believed upper bound on the hop distance to the leader, in
    /// `0..=bound`; reaching `bound` is the leaderless verdict.
    pub dist: u32,
}

/// The ring-specialized loosely-stabilizing variant:
/// distance-to-leader invalidation with the bound derived from the
/// known ring size.
///
/// Mechanism (see the [module docs](self)): followers propagate
/// `dist := min(dist_a, dist_b) + 1` — a valid distance bound on a ring
/// whenever the smaller belief is valid, since ring neighbours' true
/// distances differ by exactly one — while the walking leader feeds
/// zeroes. With no leader the global minimum ages upward until some
/// agent reaches `bound` and promotes itself; with a leader present on
/// an `n`-ring and `bound ≥ 2n`, a valid belief can never reach the
/// bound, so spurious promotions need the whole chain of beliefs to go
/// stale — the loose-holding guarantee.
///
/// # Examples
///
/// ```
/// use popele_core::loose::RingLooseProtocol;
/// use popele_engine::{Executor, Protocol};
/// use popele_graph::families;
///
/// let p = RingLooseProtocol::for_ring(16);
/// assert_eq!(p.bound(), 32);
/// let out = Executor::new(&families::cycle(16), &p, 5)
///     .run_until_stable(1 << 24)
///     .expect("self-starts from the clean configuration");
/// assert_eq!(out.leader_count, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RingLooseProtocol {
    bound: u32,
}

impl RingLooseProtocol {
    /// Creates the protocol with distance bound `B`.
    ///
    /// # Panics
    ///
    /// Panics if `bound < 2` (promotion would fire on every pair).
    #[must_use]
    pub fn new(bound: u32) -> Self {
        assert!(bound >= 2, "the distance bound must be at least 2");
        Self { bound }
    }

    /// Derives the bound from the ring size: `B = 2n` (true distances
    /// on an `n`-ring are at most `⌊n/2⌋`, so a factor-4 slack absorbs
    /// scheduler-induced staleness), floored at 8 for tiny rings.
    ///
    /// # Examples
    ///
    /// ```
    /// use popele_core::loose::RingLooseProtocol;
    ///
    /// assert_eq!(RingLooseProtocol::for_ring(2000).bound(), 4000);
    /// assert_eq!(RingLooseProtocol::for_ring(3).bound(), 8);
    /// ```
    #[must_use]
    pub fn for_ring(n: u32) -> Self {
        Self::new((2 * n).max(8))
    }

    /// The distance bound `B`.
    #[must_use]
    pub fn bound(&self) -> u32 {
        self.bound
    }

    /// The transition on a pair of ring states, exposed for unit tests
    /// and the concordance.
    #[must_use]
    pub fn interact(&self, a: &RingState, b: &RingState) -> (RingState, RingState) {
        let leader = RingState {
            leader: true,
            dist: 0,
        };
        let adjacent = RingState {
            leader: false,
            dist: 1,
        };
        match (a.leader, b.leader) {
            // Duel: the initiator's token survives; the loser is one
            // hop from it.
            (true, true) => (leader, adjacent),
            // The token walks; the vacated node is one hop away.
            (true, false) => (adjacent, leader),
            (false, true) => (leader, adjacent),
            // Distance propagation with aging; the bound is the
            // leaderless verdict and promotes the initiator.
            (false, false) => {
                let d = a.dist.min(b.dist).saturating_add(1).min(self.bound);
                if d >= self.bound {
                    (leader, adjacent)
                } else {
                    let believed = RingState {
                        leader: false,
                        dist: d,
                    };
                    (believed, believed)
                }
            }
        }
    }
}

impl Protocol for RingLooseProtocol {
    type State = RingState;
    type Oracle = LeaderCountOracle;

    fn initial_state(&self, _node: NodeId) -> RingState {
        // Clean start: no distance evidence at all, i.e. the believed
        // distance is already at the bound — the first interactions
        // mint tokens, which then coalesce along the ring.
        RingState {
            leader: false,
            dist: self.bound,
        }
    }

    fn transition(&self, a: &RingState, b: &RingState) -> (RingState, RingState) {
        self.interact(a, b)
    }

    fn output(&self, state: &RingState) -> Role {
        if state.leader {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn oracle(&self) -> LeaderCountOracle {
        LeaderCountOracle::new()
    }

    fn state_space_bound(&self) -> Option<u64> {
        // Follower dists 0..=B plus the canonical leader state.
        Some(u64::from(self.bound) + 2)
    }
}

impl ArbitraryInit for RingLooseProtocol {
    /// Every follower distance plus the canonical leader state
    /// (non-canonical leader states are never produced by any
    /// transition, so the sampler stays within the closure).
    fn arbitrary_support(&self) -> Vec<RingState> {
        let mut support: Vec<RingState> = (0..=self.bound)
            .map(|dist| RingState {
                leader: false,
                dist,
            })
            .collect();
        support.push(RingState {
            leader: true,
            dist: 0,
        });
        support
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_engine::monte_carlo::{run_trials, TrialOptions, TrialStats};
    use popele_engine::stabilize::{
        arbitrary_config, arbitrary_seed, run_to_hold, run_trials_stabilize_auto,
        select_stabilize_engine,
    };
    use popele_engine::{Engine, Executor, FaultPlan};
    use popele_graph::families;

    fn fol(timer: u32) -> LooseState {
        LooseState {
            leader: false,
            timer,
        }
    }

    fn led(timer: u32) -> LooseState {
        LooseState {
            leader: true,
            timer,
        }
    }

    #[test]
    fn loose_interact_rules() {
        let p = LooseProtocol::new(10);
        // Duel: initiator's token survives, both refreshed.
        assert_eq!(p.interact(&led(3), &led(7)), (led(10), fol(10)));
        // The token walks to the other party.
        assert_eq!(p.interact(&led(2), &fol(0)), (fol(10), led(10)));
        assert_eq!(p.interact(&fol(0), &led(2)), (led(10), fol(10)));
        // Propagation: max − 1 on both sides.
        assert_eq!(p.interact(&fol(4), &fol(9)), (fol(8), fol(8)));
        // Timeout: a drained pair promotes the initiator.
        assert_eq!(p.interact(&fol(1), &fol(1)), (led(10), fol(10)));
        assert_eq!(p.interact(&fol(0), &fol(0)), (led(10), fol(10)));
        // Arbitrary over-budget timers are clamped, not trusted.
        assert_eq!(p.interact(&fol(99), &fol(0)), (fol(9), fol(9)));
    }

    #[test]
    fn loose_elects_from_clean_start_on_all_families() {
        let p = LooseProtocol::new(8);
        for g in [
            families::clique(16),
            families::cycle(16),
            families::star(16),
            families::torus(4, 4),
        ] {
            let out = Executor::new(&g, &p, 42)
                .run_until_stable(20_000_000)
                .unwrap_or_else(|_| panic!("did not elect on {g}"));
            assert_eq!(out.leader_count, 1, "{g}");
        }
    }

    #[test]
    fn loose_elects_and_holds_from_arbitrary_starts() {
        let g = families::clique(16);
        let p = LooseProtocol::new(48);
        for seed in [1u64, 9, 23] {
            let mut exec = Executor::new(&g, &p, seed);
            exec.set_configuration(&arbitrary_config(&p, 16, arbitrary_seed(seed)));
            let report = run_to_hold(&mut exec, 1 << 21);
            let h = report.holding;
            assert!(h.elect_step.is_some(), "seed {seed} failed to elect");
            // A 48-budget heartbeat on a 16-clique essentially cannot
            // drain while the leader keeps refreshing: the hold
            // survives to the budget.
            assert!(h.held_to_budget, "seed {seed} violated: {h:?}");
        }
    }

    #[test]
    fn tiny_budget_holds_break_within_the_budget() {
        // τ = 1 means every follower pair times out: unique-leader
        // configurations are violated almost immediately.
        let g = families::clique(8);
        let p = LooseProtocol::new(1);
        let mut exec = Executor::new(&g, &p, 4);
        exec.set_configuration(&arbitrary_config(&p, 8, arbitrary_seed(4)));
        let report = run_to_hold(&mut exec, 1 << 20);
        let h = report.holding;
        assert!(h.elect_step.is_some());
        assert!(h.hold_steps.is_some(), "τ = 1 must be violated: {h:?}");
        assert!(!h.held_to_budget);
    }

    #[test]
    fn corruption_of_every_node_forces_reelection_within_a_drain() {
        // Corrupt-to-initial on all nodes erases the leader; the next
        // election needs exactly one full drain plus coalescence — the
        // bounded re-election property.
        let g = families::clique(12);
        let p = LooseProtocol::new(6);
        let mut exec = Executor::new(&g, &p, 8);
        exec.run_until_stable(1 << 22).unwrap();
        for v in 0..12 {
            exec.corrupt_to_initial(v);
        }
        assert_eq!(exec.leader_count(), 0);
        let out = exec.run_until_stable(1 << 22).expect("re-elects");
        assert_eq!(out.leader_count, 1);
    }

    #[test]
    fn loose_state_census_respects_the_declared_bound() {
        let g = families::clique(10);
        let p = LooseProtocol::new(5);
        let results = run_trials(
            &g,
            &p,
            3,
            TrialOptions {
                trials: 3,
                max_steps: 1 << 22,
                census: true,
                threads: 1,
                ..TrialOptions::default()
            },
        );
        let stats = TrialStats::from_results(&results);
        let seen = stats.max_distinct_states.unwrap() as u64;
        assert!(seen <= p.state_space_bound().unwrap(), "census {seen}");
    }

    #[test]
    fn loose_support_enumerates_the_whole_space() {
        let p = LooseProtocol::new(3);
        let support = p.arbitrary_support();
        assert_eq!(support.len() as u64, p.state_space_bound().unwrap());
        assert!(support.contains(&led(0)), "unreachable states included");
    }

    #[test]
    fn engine_selection_by_budget_size() {
        // Small budgets compile ahead of time; budgets past the AOT cap
        // ride the lazy engine (the state-space bound is declared).
        assert_eq!(
            select_stabilize_engine(&LooseProtocol::new(24), 64),
            Engine::Dense
        );
        assert_eq!(
            select_stabilize_engine(&LooseProtocol::new(2000), 64),
            Engine::LazyDense
        );
        assert_eq!(
            select_stabilize_engine(&RingLooseProtocol::for_ring(16), 16),
            Engine::Dense
        );
        assert_eq!(
            select_stabilize_engine(&RingLooseProtocol::for_ring(2000), 2000),
            Engine::LazyDense
        );
    }

    fn rfol(dist: u32) -> RingState {
        RingState {
            leader: false,
            dist,
        }
    }

    const RLED: RingState = RingState {
        leader: true,
        dist: 0,
    };

    #[test]
    fn ring_interact_rules() {
        let p = RingLooseProtocol::new(8);
        // Duel and walk leave the vacated side one hop away.
        assert_eq!(p.interact(&RLED, &RLED), (RLED, rfol(1)));
        assert_eq!(p.interact(&RLED, &rfol(5)), (rfol(1), RLED));
        assert_eq!(p.interact(&rfol(5), &RLED), (RLED, rfol(1)));
        // Distance propagation ages the pair to min + 1.
        assert_eq!(p.interact(&rfol(2), &rfol(6)), (rfol(3), rfol(3)));
        // Reaching the bound is the leaderless verdict.
        assert_eq!(p.interact(&rfol(7), &rfol(7)), (RLED, rfol(1)));
        assert_eq!(p.interact(&rfol(8), &rfol(8)), (RLED, rfol(1)));
    }

    #[test]
    fn ring_elects_from_clean_and_arbitrary_starts() {
        let g = families::cycle(12);
        let p = RingLooseProtocol::for_ring(12);
        let out = Executor::new(&g, &p, 2)
            .run_until_stable(1 << 24)
            .expect("clean start elects");
        assert_eq!(out.leader_count, 1);
        let mut exec = Executor::new(&g, &p, 3);
        exec.set_configuration(&arbitrary_config(&p, 12, arbitrary_seed(3)));
        let report = run_to_hold(&mut exec, 1 << 24);
        assert!(report.holding.elect_step.is_some());
    }

    #[test]
    fn ring_support_is_canonical() {
        let p = RingLooseProtocol::new(4);
        let support = p.arbitrary_support();
        assert_eq!(support.len() as u64, p.state_space_bound().unwrap());
        // Exactly one leader state, and it is canonical (dist 0).
        let leaders: Vec<_> = support.iter().filter(|s| s.leader).collect();
        assert_eq!(leaders, vec![&RLED]);
    }

    #[test]
    fn stabilize_trials_attach_holding_metrics() {
        let g = families::cycle(10);
        let p = RingLooseProtocol::for_ring(10);
        let results = run_trials_stabilize_auto(
            &g,
            &p,
            5,
            TrialOptions {
                trials: 4,
                max_steps: 1 << 22,
                threads: 2,
                ..TrialOptions::default()
            },
            &FaultPlan::empty(),
        );
        assert_eq!(results.len(), 4);
        for r in &results {
            let h = r.holding.expect("stabilize trials attach holding");
            assert_eq!(h.elect_step, r.stabilization_step);
        }
    }
}
