//! The 6-state token-based protocol of Beauquier, Blanchard and Burman
//! (the paper's Theorem 16 baseline).
//!
//! Input: a nonempty set of *leader candidates*. Each candidate starts with
//! a **black token**. On every interaction the two nodes swap their tokens;
//! when two black tokens meet, one turns **white**; when a candidate
//! receives a white token, the candidate becomes a follower and the token
//! is removed. Tokens therefore perform random walks in the population
//! model, black tokens coalesce, and white tokens hunt down surplus
//! candidates.
//!
//! Stabilization: in `O(H(G)·n·log n)` steps in expectation and w.h.p.,
//! where `H(G)` is the worst-case hitting time of a classic random walk
//! (Theorem 16 via the analysis of Sudo et al.).
//!
//! # Stability invariant (proof of the oracle)
//!
//! Let `C₀` be the number of initial candidates, `meet` the number of
//! black-black meetings so far and `dem` the number of white-token
//! demotions. Then
//!
//! * `blacks = C₀ − meet` — each meeting recolours one black token;
//! * `whites = meet − dem` — meetings create whites, demotions consume
//!   them;
//! * `candidates = C₀ − dem` — only white tokens demote candidates.
//!
//! Black tokens never vanish entirely (`blacks ≥ 1`: a meeting needs two
//! blacks), so `candidates = blacks + whites ≥ 1`. If `candidates = 1`
//! then `whites = 1 − blacks ≤ 0`, hence `whites = 0` and `blacks = 1`:
//! no white token exists or can ever be created (one black cannot meet
//! itself), so the last candidate is permanent — the configuration is
//! **stable**. Conversely, with `candidates ≥ 2` the protocol provably
//! reduces the count (Theorem 16), so some reachable configuration changes
//! an output. Therefore *stable and correct ⟺ exactly one candidate*, and
//! [`popele_engine::LeaderCountOracle`] is an exact oracle.

use popele_engine::{LeaderCountOracle, Protocol, Role};
use popele_graph::NodeId;

/// Colour of a walking token.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Token {
    /// Black token: one survives and certifies the leader.
    Black,
    /// White token: demotes the next candidate it reaches.
    White,
}

/// Local state: candidacy bit plus an optional carried token
/// (2 × 3 = 6 states).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TokenState {
    /// Whether this node is still a leader candidate.
    pub candidate: bool,
    /// The token currently carried, if any.
    pub token: Option<Token>,
}

impl TokenState {
    /// Initial state of a leader candidate (black token in hand).
    #[must_use]
    pub fn candidate() -> Self {
        Self {
            candidate: true,
            token: Some(Token::Black),
        }
    }

    /// Initial state of a follower (no token).
    #[must_use]
    pub fn follower() -> Self {
        Self {
            candidate: false,
            token: None,
        }
    }
}

/// Which nodes start as candidates.
#[derive(Debug, Clone, PartialEq, Eq)]
enum CandidateInput {
    All,
    Set(Vec<NodeId>),
}

/// The 6-state token protocol (Theorem 16).
///
/// # Examples
///
/// ```
/// use popele_core::token::TokenProtocol;
/// use popele_engine::Executor;
/// use popele_graph::families;
///
/// let g = families::star(12);
/// let p = TokenProtocol::all_candidates();
/// let out = Executor::new(&g, &p, 3).run_until_stable(10_000_000).unwrap();
/// assert_eq!(out.leader_count, 1);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TokenProtocol {
    input: CandidateInput,
}

impl TokenProtocol {
    /// Standard leader election: every node starts as a candidate
    /// (the constant input required by the anonymous model).
    #[must_use]
    pub fn all_candidates() -> Self {
        Self {
            input: CandidateInput::All,
        }
    }

    /// Theorem 16's input model: exactly the listed nodes start as
    /// candidates.
    ///
    /// # Panics
    ///
    /// Panics if `candidates` is empty (the protocol then has no leader to
    /// elect).
    #[must_use]
    pub fn with_candidates(candidates: Vec<NodeId>) -> Self {
        assert!(
            !candidates.is_empty(),
            "token protocol needs a nonempty candidate set"
        );
        Self {
            input: CandidateInput::Set(candidates),
        }
    }

    /// The transition on a pair of token states, exposed for reuse by the
    /// composed protocols (Theorems 21 and 24).
    #[must_use]
    pub fn interact(a: &TokenState, b: &TokenState) -> (TokenState, TokenState) {
        // 1. Swap tokens.
        let mut na = TokenState {
            candidate: a.candidate,
            token: b.token,
        };
        let mut nb = TokenState {
            candidate: b.candidate,
            token: a.token,
        };
        // 2. Two black tokens meet: the responder's copy turns white
        //    (the choice is symmetric; any fixed rule works).
        if na.token == Some(Token::Black) && nb.token == Some(Token::Black) {
            nb.token = Some(Token::White);
        }
        // 3. A candidate holding a white token is demoted and the token
        //    removed from the system.
        for s in [&mut na, &mut nb] {
            if s.candidate && s.token == Some(Token::White) {
                s.candidate = false;
                s.token = None;
            }
        }
        (na, nb)
    }
}

impl Protocol for TokenProtocol {
    type State = TokenState;
    type Oracle = LeaderCountOracle;

    fn initial_state(&self, node: NodeId) -> TokenState {
        match &self.input {
            CandidateInput::All => TokenState::candidate(),
            CandidateInput::Set(set) => {
                if set.contains(&node) {
                    TokenState::candidate()
                } else {
                    TokenState::follower()
                }
            }
        }
    }

    fn transition(&self, a: &TokenState, b: &TokenState) -> (TokenState, TokenState) {
        Self::interact(a, b)
    }

    fn output(&self, state: &TokenState) -> Role {
        if state.candidate {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn oracle(&self) -> LeaderCountOracle {
        LeaderCountOracle::new()
    }

    fn state_space_bound(&self) -> Option<u64> {
        Some(6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_engine::exhaustive::{validate_oracle_on_execution, DEFAULT_CONFIG_LIMIT};
    use popele_engine::monte_carlo::{run_trials, TrialOptions, TrialStats};
    use popele_engine::Executor;
    use popele_graph::families;

    #[test]
    fn token_conservation_laws() {
        // Run a while and check the invariants of the module docs.
        let g = families::cycle(20);
        let p = TokenProtocol::all_candidates();
        let mut exec = Executor::new(&g, &p, 5);
        let c0 = 20i64;
        for _ in 0..5000 {
            exec.step();
            let blacks = exec
                .states()
                .iter()
                .filter(|s| s.token == Some(Token::Black))
                .count() as i64;
            let whites = exec
                .states()
                .iter()
                .filter(|s| s.token == Some(Token::White))
                .count() as i64;
            let candidates = exec.states().iter().filter(|s| s.candidate).count() as i64;
            assert!(blacks >= 1, "black tokens can never die out");
            assert_eq!(
                candidates,
                blacks + whites,
                "candidates = blacks + whites (C₀ = {c0})"
            );
        }
    }

    #[test]
    fn stabilizes_on_various_graphs() {
        let p = TokenProtocol::all_candidates();
        for g in [
            families::clique(16),
            families::cycle(16),
            families::star(16),
            families::grid(4, 4),
            families::binary_tree(15),
        ] {
            let out = Executor::new(&g, &p, 42)
                .run_until_stable(200_000_000)
                .unwrap_or_else(|_| panic!("did not stabilize on {g}"));
            assert_eq!(out.leader_count, 1);
        }
    }

    #[test]
    fn oracle_matches_exhaustive_definition() {
        // Validate the candidates==1 ⟺ stable equivalence against the
        // literal reachability definition on tiny graphs.
        let p = TokenProtocol::all_candidates();
        for (g, seed) in [
            (families::path(3), 1u64),
            (families::cycle(3), 2),
            (families::star(4), 3),
        ] {
            let steps = validate_oracle_on_execution(&p, &g, seed, 400, DEFAULT_CONFIG_LIMIT);
            assert!(steps < 400, "tiny instance should stabilize, took {steps}");
        }
    }

    #[test]
    fn candidate_subset_input() {
        let g = families::clique(10);
        let p = TokenProtocol::with_candidates(vec![2, 7]);
        let mut exec = Executor::new(&g, &p, 9);
        assert_eq!(exec.leader_count(), 2);
        let out = exec.run_until_stable(10_000_000).unwrap();
        assert_eq!(out.leader_count, 1);
        // The winner must be one of the two initial candidates? No — the
        // *candidate bit* never moves between nodes, so yes:
        assert!(matches!(out.leader, Some(2) | Some(7)));
    }

    #[test]
    fn single_candidate_is_immediately_stable() {
        let g = families::clique(5);
        let p = TokenProtocol::with_candidates(vec![3]);
        let out = Executor::new(&g, &p, 1).run_until_stable(10).unwrap();
        assert_eq!(out.stabilization_step, 0);
        assert_eq!(out.leader, Some(3));
    }

    #[test]
    #[should_panic(expected = "nonempty")]
    fn empty_candidate_set_rejected() {
        let _ = TokenProtocol::with_candidates(vec![]);
    }

    #[test]
    fn uses_at_most_six_states() {
        let g = families::clique(12);
        let p = TokenProtocol::all_candidates();
        let results = run_trials(
            &g,
            &p,
            7,
            TrialOptions {
                trials: 4,
                max_steps: 10_000_000,
                census: true,
                threads: 1,
                ..TrialOptions::default()
            },
        );
        let stats = TrialStats::from_results(&results);
        let max_states = stats.max_distinct_states.unwrap();
        assert!(max_states <= 6, "observed {max_states} distinct states");
        assert!(p.state_space_bound().unwrap() >= max_states as u64);
    }

    #[test]
    fn interact_rules_unit() {
        let cand = TokenState::candidate();
        let foll = TokenState::follower();
        // Candidate meets candidate: both swap blacks, responder's turns
        // white, responder demoted and token destroyed.
        let (a, b) = TokenProtocol::interact(&cand, &cand);
        assert_eq!(
            a,
            TokenState {
                candidate: true,
                token: Some(Token::Black)
            }
        );
        assert_eq!(
            b,
            TokenState {
                candidate: false,
                token: None
            }
        );
        // Candidate passes its black token to a follower.
        let (a, b) = TokenProtocol::interact(&cand, &foll);
        assert_eq!(a.token, None);
        assert!(a.candidate);
        assert_eq!(b.token, Some(Token::Black));
        assert!(!b.candidate);
        // Follower with white token meets bare candidate: candidate takes
        // the white token and is demoted.
        let white_carrier = TokenState {
            candidate: false,
            token: Some(Token::White),
        };
        let bare_candidate = TokenState {
            candidate: true,
            token: None,
        };
        let (a, b) = TokenProtocol::interact(&white_carrier, &bare_candidate);
        assert_eq!(a.token, None);
        assert_eq!(
            b,
            TokenState {
                candidate: false,
                token: None
            }
        );
        // Two followers swap (nothing observable happens).
        let (a, b) = TokenProtocol::interact(&foll, &foll);
        assert_eq!((a, b), (foll, foll));
    }

    #[test]
    fn black_meets_black_on_followers_creates_white() {
        let carrier = TokenState {
            candidate: false,
            token: Some(Token::Black),
        };
        let (a, b) = TokenProtocol::interact(&carrier, &carrier);
        assert_eq!(a.token, Some(Token::Black));
        assert_eq!(b.token, Some(Token::White));
        assert!(!a.candidate && !b.candidate);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = families::torus(4, 4);
        let p = TokenProtocol::all_candidates();
        let a = Executor::new(&g, &p, 11).run_until_stable(1 << 30).unwrap();
        let b = Executor::new(&g, &p, 11).run_until_stable(1 << 30).unwrap();
        assert_eq!(a, b);
    }
}
