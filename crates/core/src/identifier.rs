//! The time-efficient polynomial-state protocol (Theorem 21):
//! `O(B(G) + n·log n)` expected stabilization with `O(n⁴)` states.
//!
//! Every node grows a `k`-bit identifier by appending, on each of its
//! first `k` interactions, a bit encoding whether it acted as initiator
//! (`0`) or responder (`1`) — the scheduler's fair role assignment makes
//! the result uniform on `{2^k, …, 2^{k+1}−1}`. A node that completes its
//! identifier starts an instance of the 6-state token protocol
//! ([`crate::token`]) labelled with that identifier, designating itself a
//! candidate. Nodes always defect to the instance with the largest label
//! (rule 2), re-initializing as followers. If several nodes draw the same
//! maximal identifier (probability ≤ `n/2^k`, Lemma 22), the token
//! protocol resolves the tie in polynomial time, preserving finite
//! expected stabilization time.
//!
//! # Stability oracle
//!
//! The tracked invariant: **no node is still generating**, **exactly one
//! candidate exists**, and **that candidate's identifier equals the
//! maximum identifier present**. Soundness: with generation finished no
//! `init(leader)` can ever execute again, so no new candidate appears; the
//! unique candidate has the maximal label so rule 2 cannot demote it; and
//! within its instance the token invariant (see [`crate::token`]) gives
//! `whites = candidates − blacks ≤ 0`, so no white token can reach it.
//! Necessity: a still-generating node may later output leader
//! (`init(leader)` on completion); two candidates are provably reduced to
//! one; and a candidate below the maximum is demoted once the maximum
//! reaches it. Hence the oracle is exact.

use crate::token::{TokenProtocol, TokenState};
use popele_engine::{Protocol, Role, StabilityOracle, EFFECT_OPAQUE};
use popele_graph::NodeId;
use std::collections::HashMap;

/// Local state: the identifier being grown plus the inner token-protocol
/// state of the instance the node currently belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct IdState {
    /// Identifier; starts at 1, doubles with a role bit per interaction
    /// while `< 2^k`, finished once in `[2^k, 2^{k+1})`.
    pub id: u64,
    /// Inner 6-state token-protocol state within the current instance.
    pub inner: TokenState,
}

/// The Theorem 21 protocol with identifier length `k`.
///
/// # Examples
///
/// ```
/// use popele_core::identifier::IdentifierProtocol;
/// use popele_engine::Executor;
/// use popele_graph::families;
///
/// let g = families::clique(20);
/// let p = IdentifierProtocol::new(12);
/// let out = Executor::new(&g, &p, 5).run_until_stable(10_000_000).unwrap();
/// assert_eq!(out.leader_count, 1);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct IdentifierProtocol {
    k: u32,
}

impl IdentifierProtocol {
    /// Creates the protocol with `k`-bit identifiers.
    ///
    /// Theorem 21 uses `k = ⌈4·log₂ n⌉` on general graphs and
    /// `k = ⌈3·log₂ n⌉` on regular graphs; see
    /// [`crate::params::identifier_bits`].
    ///
    /// # Panics
    ///
    /// Panics unless `1 ≤ k ≤ 62`.
    #[must_use]
    pub fn new(k: u32) -> Self {
        assert!((1..=62).contains(&k), "identifier length must be in 1..=62");
        Self { k }
    }

    /// Identifier length `k`.
    #[must_use]
    pub fn k(&self) -> u32 {
        self.k
    }

    /// The generation threshold `2^k`.
    #[must_use]
    pub fn threshold(&self) -> u64 {
        1u64 << self.k
    }

    fn update_one(&self, own: IdState, own_role_bit: u64, other_id_after_rule1: u64) -> IdState {
        let threshold = self.threshold();
        let mut state = own;
        // Rule 1: grow the identifier; on completion, start an instance as
        // a candidate.
        if state.id < threshold {
            state.id = 2 * state.id + own_role_bit;
            if state.id >= threshold {
                state.inner = TokenState::candidate();
            }
        }
        // Rule 2: defect to a strictly larger finished instance.
        if state.id < other_id_after_rule1 && other_id_after_rule1 >= threshold {
            state.id = other_id_after_rule1;
            state.inner = TokenState::follower();
        }
        state
    }
}

impl Protocol for IdentifierProtocol {
    type State = IdState;
    type Oracle = IdOracle;

    fn initial_state(&self, _node: NodeId) -> IdState {
        IdState {
            id: 1,
            inner: TokenState::follower(),
        }
    }

    fn transition(&self, a: &IdState, b: &IdState) -> (IdState, IdState) {
        // Rule 1 for both nodes first (each appends its role bit), because
        // rule 2 compares post-rule-1 identifiers.
        let threshold = self.threshold();
        let a1_id = if a.id < threshold { 2 * a.id } else { a.id };
        let b1_id = if b.id < threshold { 2 * b.id + 1 } else { b.id };
        let mut na = self.update_one(*a, 0, b1_id);
        let mut nb = self.update_one(*b, 1, a1_id);
        // Rule 3: run the inner token protocol on the (possibly re-
        // initialized) inner states. After rule 2 both nodes carry the
        // same instance label unless both are still generating, in which
        // case both inners are tokenless followers and this is a no-op.
        let (ia, ib) = TokenProtocol::interact(&na.inner, &nb.inner);
        na.inner = ia;
        nb.inner = ib;
        (na, nb)
    }

    fn output(&self, state: &IdState) -> Role {
        if state.inner.candidate {
            Role::Leader
        } else {
            Role::Follower
        }
    }

    fn oracle(&self) -> IdOracle {
        IdOracle {
            threshold: self.threshold(),
            generating: 0,
            total_candidates: 0,
            candidate_ids: HashMap::new(),
            max_id: 0,
            max_id_candidates: 0,
        }
    }

    fn state_space_bound(&self) -> Option<u64> {
        // Identifiers occupy [1, 2^{k+1}); 6 inner states each.
        Some((2u64 << self.k) * 6)
    }
}

/// Incremental oracle for [`IdentifierProtocol`]; see the module docs for
/// the exactness proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IdOracle {
    threshold: u64,
    generating: usize,
    total_candidates: usize,
    candidate_ids: HashMap<u64, usize>,
    max_id: u64,
    /// `candidate_ids[max_id]`, mirrored incrementally so
    /// [`StabilityOracle::is_stable`] — called on the executors' hot
    /// paths — is three integer compares instead of a hash lookup. The
    /// mirror is exact because `max_id` is monotone along executions:
    /// it only moves when a strictly larger id appears (one hash lookup
    /// then), never on removals.
    max_id_candidates: usize,
}

impl IdOracle {
    fn add(&mut self, s: &IdState) {
        if s.id < self.threshold {
            self.generating += 1;
        }
        if s.inner.candidate {
            self.total_candidates += 1;
            *self.candidate_ids.entry(s.id).or_insert(0) += 1;
        }
        // Identifiers are monotone along executions, so a running max is
        // exact even though `remove` never lowers it.
        if s.id > self.max_id {
            self.max_id = s.id;
            self.max_id_candidates = self.candidate_ids.get(&s.id).copied().unwrap_or(0);
        } else if s.id == self.max_id && s.inner.candidate {
            self.max_id_candidates += 1;
        }
    }

    fn remove(&mut self, s: &IdState) {
        if s.id < self.threshold {
            self.generating -= 1;
        }
        if s.inner.candidate {
            self.total_candidates -= 1;
            let c = self
                .candidate_ids
                .get_mut(&s.id)
                .expect("removing tracked candidate");
            *c -= 1;
            if *c == 0 {
                self.candidate_ids.remove(&s.id);
            }
            if s.id == self.max_id {
                self.max_id_candidates -= 1;
            }
        }
    }
}

impl StabilityOracle<IdentifierProtocol> for IdOracle {
    fn recompute(&mut self, _protocol: &IdentifierProtocol, config: &[IdState]) {
        self.generating = 0;
        self.total_candidates = 0;
        self.candidate_ids.clear();
        self.max_id = 0;
        self.max_id_candidates = 0;
        for s in config {
            self.add(s);
        }
    }

    fn apply(
        &mut self,
        _protocol: &IdentifierProtocol,
        old: (&IdState, &IdState),
        new: (&IdState, &IdState),
    ) {
        self.remove(old.0);
        self.remove(old.1);
        self.add(new.0);
        self.add(new.1);
    }

    fn is_stable(&self) -> bool {
        self.generating == 0 && self.total_candidates == 1 && self.max_id_candidates == 1
    }

    fn transition_effect(
        &self,
        _protocol: &IdentifierProtocol,
        old: (&IdState, &IdState),
        new: (&IdState, &IdState),
    ) -> u64 {
        // A transition leaves every counter untouched iff no candidate
        // is involved on either side (so `total_candidates`, the
        // `candidate_ids` map, and the `max_id_candidates` mirror never
        // move), the number of still-generating participants is
        // unchanged (so `generating` nets to zero), and no new
        // identifier exceeds the running maximum. The first two are
        // pure functions of the four states and fold into the summary;
        // the maximum check is deferred to `effect_inert` because it
        // depends on the oracle's current `max_id`. Identifiers fit in
        // 63 bits (`k ≤ 62`), so `max(new ids)` never collides with
        // [`EFFECT_OPAQUE`].
        let gen = |s: &IdState| usize::from(s.id < self.threshold);
        let candidate = old.0.inner.candidate
            || old.1.inner.candidate
            || new.0.inner.candidate
            || new.1.inner.candidate;
        if candidate || gen(new.0) + gen(new.1) != gen(old.0) + gen(old.1) {
            return EFFECT_OPAQUE;
        }
        new.0.id.max(new.1.id)
    }

    fn effect_inert(&self, effect: u64) -> bool {
        // `EFFECT_OPAQUE` is `u64::MAX`, which no 63-bit identifier
        // reaches, so opaque summaries are never inert. Old identifiers
        // never exceed `max_id` (it is monotone over every state ever
        // added), so bounding the *new* ids is enough.
        effect <= self.max_id
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use popele_engine::exhaustive::{validate_oracle_on_execution, DEFAULT_CONFIG_LIMIT};
    use popele_engine::monte_carlo::{run_trials, TrialOptions, TrialStats};
    use popele_engine::Executor;
    use popele_graph::families;
    use popele_math::rng::SeedSeq;

    #[test]
    fn stabilizes_on_various_graphs() {
        let p = IdentifierProtocol::new(10);
        for g in [
            families::clique(16),
            families::cycle(16),
            families::star(16),
            families::torus(4, 4),
        ] {
            let out = Executor::new(&g, &p, 21)
                .run_until_stable(100_000_000)
                .unwrap_or_else(|_| panic!("did not stabilize on {g}"));
            assert_eq!(out.leader_count, 1);
        }
    }

    #[test]
    fn identifiers_land_in_final_range() {
        let g = families::clique(12);
        let p = IdentifierProtocol::new(8);
        let mut exec = Executor::new(&g, &p, 3);
        exec.run_until_stable(10_000_000).unwrap();
        let threshold = p.threshold();
        for s in exec.states() {
            assert!(s.id >= threshold && s.id < 2 * threshold, "id {}", s.id);
        }
        // All nodes end in the same instance.
        let first = exec.states()[0].id;
        assert!(exec.states().iter().all(|s| s.id == first));
    }

    #[test]
    fn ids_are_monotone_along_execution() {
        let g = families::cycle(10);
        let p = IdentifierProtocol::new(6);
        let mut exec = Executor::new(&g, &p, 17);
        let mut prev: Vec<u64> = exec.states().iter().map(|s| s.id).collect();
        for _ in 0..3000 {
            exec.step();
            for (v, s) in exec.states().iter().enumerate() {
                assert!(s.id >= prev[v], "id decreased at node {v}");
                prev[v] = s.id;
            }
        }
    }

    #[test]
    fn oracle_matches_exhaustive_definition() {
        // k = 1: ids finish after a single interaction, state space stays
        // tiny enough for reachability search.
        let p = IdentifierProtocol::new(1);
        for (g, seed) in [(families::path(3), 4u64), (families::cycle(3), 5)] {
            let steps = validate_oracle_on_execution(&p, &g, seed, 300, DEFAULT_CONFIG_LIMIT);
            assert!(steps < 300, "tiny instance should stabilize, took {steps}");
        }
    }

    /// Simulates pure identifier *generation* (rule 1 only, no instance
    /// merging) on `g` until all nodes finish; returns the generated ids.
    fn generate_ids(g: &popele_graph::Graph, k: u32, seed: u64) -> Vec<u64> {
        let threshold = 1u64 << k;
        let mut sched = popele_engine::EdgeScheduler::new(g, seed);
        let mut ids = vec![1u64; g.num_nodes() as usize];
        while ids.iter().any(|&id| id < threshold) {
            let (a, b) = sched.next_pair();
            if ids[a as usize] < threshold {
                ids[a as usize] *= 2; // initiator bit 0
            }
            if ids[b as usize] < threshold {
                ids[b as usize] = 2 * ids[b as usize] + 1; // responder bit 1
            }
        }
        ids
    }

    #[test]
    fn collision_probability_matches_lemma22() {
        // Lemma 22 case 1: nodes assigning their bits in the *same*
        // interaction take opposite roles, so on a 2-clique generated
        // identifiers can never collide.
        let g = families::clique(2);
        let k = 3u32;
        let seq = SeedSeq::new(99);
        for i in 0..2000u64 {
            let ids = generate_ids(&g, k, seq.child(i));
            assert_ne!(ids[0], ids[1], "trial {i}");
        }
    }

    #[test]
    fn collision_bound_with_disjoint_pairs() {
        // Lemma 22 case 2: nodes that never interact while generating
        // collide with probability exactly 2^{−k}. Two disjoint edges give
        // independent generation for nodes 0 and 2.
        let g = popele_graph::Graph::from_edges(4, &[(0, 1), (2, 3)]).unwrap();
        let k = 4u32;
        let seq = SeedSeq::new(5);
        let trials = 6000;
        let mut equal = 0usize;
        for i in 0..trials {
            let ids = generate_ids(&g, k, seq.child(i as u64));
            if ids[0] == ids[2] {
                equal += 1;
            }
        }
        let rate = equal as f64 / trials as f64;
        let bound = 1.0 / f64::from(1u32 << k);
        assert!(
            rate <= bound * 1.4 + 0.01,
            "collision rate {rate} vs Lemma 22 bound {bound}"
        );
        // The bound is tight in this case: the rate should not be far
        // below it either.
        assert!(
            rate >= bound * 0.5,
            "collision rate {rate} suspiciously below the exact value {bound}"
        );
    }

    #[test]
    fn state_census_within_bound() {
        let g = families::clique(8);
        let p = IdentifierProtocol::new(6);
        let results = run_trials(
            &g,
            &p,
            13,
            TrialOptions {
                trials: 3,
                max_steps: 10_000_000,
                census: true,
                threads: 1,
                ..TrialOptions::default()
            },
        );
        let stats = TrialStats::from_results(&results);
        assert!(stats.max_distinct_states.unwrap() as u64 <= p.state_space_bound().unwrap());
    }

    #[test]
    fn ties_resolved_by_inner_protocol() {
        // Force a tie: k = 1 gives ids in {2, 3}; on a clique several
        // nodes will share the maximum 3 and the token protocol must
        // resolve them.
        let g = families::clique(10);
        let p = IdentifierProtocol::new(1);
        let out = Executor::new(&g, &p, 7)
            .run_until_stable(50_000_000)
            .unwrap();
        assert_eq!(out.leader_count, 1);
    }

    #[test]
    #[should_panic(expected = "1..=62")]
    fn rejects_oversized_k() {
        let _ = IdentifierProtocol::new(63);
    }

    #[test]
    fn deterministic_per_seed() {
        let g = families::clique(9);
        let p = IdentifierProtocol::new(8);
        let a = Executor::new(&g, &p, 4).run_until_stable(1 << 30).unwrap();
        let b = Executor::new(&g, &p, 4).run_until_stable(1 << 30).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn inert_effects_leave_oracle_unchanged() {
        // Differential check of the effect-summary contract the lazy
        // engine relies on: whenever `effect_inert` vouches for a
        // transition, applying it must leave the oracle bit-for-bit
        // unchanged — and the inert path must actually trigger, or the
        // test guards nothing.
        use popele_engine::{EdgeScheduler, StabilityOracle};
        let g = families::torus(6, 6);
        let p = IdentifierProtocol::new(12);
        let mut sched = EdgeScheduler::new(&g, 23);
        let mut states: Vec<IdState> = (0..g.num_nodes()).map(|v| p.initial_state(v)).collect();
        let mut oracle = p.oracle();
        oracle.recompute(&p, &states);
        let (mut inert, mut opaque) = (0u32, 0u32);
        for _ in 0..20_000 {
            let (a, b) = sched.next_pair();
            let (ai, bi) = (a as usize, b as usize);
            let (na, nb) = p.transition(&states[ai], &states[bi]);
            let eff = oracle.transition_effect(&p, (&states[ai], &states[bi]), (&na, &nb));
            if oracle.effect_inert(eff) {
                let before = oracle.clone();
                oracle.apply(&p, (&states[ai], &states[bi]), (&na, &nb));
                assert_eq!(oracle, before, "inert transition changed the oracle");
                inert += 1;
            } else {
                oracle.apply(&p, (&states[ai], &states[bi]), (&na, &nb));
                opaque += 1;
            }
            states[ai] = na;
            states[bi] = nb;
        }
        assert!(inert > 0, "inert path never exercised");
        assert!(opaque > 0, "every transition classified inert");
        // The incremental oracle must still agree with a fresh rebuild.
        let mut rebuilt = p.oracle();
        rebuilt.recompute(&p, &states);
        assert_eq!(oracle, rebuilt);
    }

    #[test]
    fn lazy_engine_matches_generic_through_inert_skip() {
        // Trace-identity across the engine pair on the workload whose
        // hot loop takes the inert-skip: same seed, same graph, same
        // stabilization step and leader.
        use popele_engine::LazyDenseExecutor;
        let g = families::torus(8, 8);
        let p = IdentifierProtocol::new(14);
        let seq = SeedSeq::new(61);
        for i in 0..4u64 {
            let seed = seq.child(i);
            let generic = Executor::new(&g, &p, seed)
                .run_until_stable(1 << 30)
                .unwrap();
            let lazy = LazyDenseExecutor::new(&g, &p, seed)
                .run_until_stable(1 << 30)
                .unwrap();
            assert_eq!(generic, lazy, "seed {seed}");
        }
    }
}
