//! Shared fixtures for the Criterion benchmarks in `benches/`.
//!
//! Every bench target corresponds to one experiment of DESIGN.md §4 and
//! measures the *wall-clock* cost of regenerating that experiment's rows
//! at a fixed, bench-sized scale; the step-count reproduction itself lives
//! in `popele-lab` (`cargo run --release -p popele-lab`).

#![warn(missing_docs)]

use popele_graph::{families, random, Graph};

/// The standard bench sizes (kept small: Criterion repeats each closure
/// many times).
pub const BENCH_SIZES: [u32; 3] = [16, 32, 64];

/// Builds the bench graph of a named family at size `n`.
///
/// # Panics
///
/// Panics on unknown family names.
#[must_use]
pub fn bench_graph(family: &str, n: u32) -> Graph {
    match family {
        "clique" => families::clique(n),
        "cycle" => families::cycle(n),
        "star" => families::star(n),
        "torus" => {
            let side = (f64::from(n).sqrt().round() as u32).max(3);
            families::torus(side, side)
        }
        "gnp" => random::erdos_renyi_connected(n, 0.5, 42, 100),
        other => panic!("unknown bench family {other}"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_graphs_build() {
        for f in ["clique", "cycle", "star", "torus", "gnp"] {
            let g = bench_graph(f, 16);
            assert!(g.num_nodes() >= 9);
        }
    }

    #[test]
    #[should_panic(expected = "unknown bench family")]
    fn unknown_family_panics() {
        let _ = bench_graph("nope", 16);
    }
}
