//! Sweep-campaign benchmarks: end-to-end orchestration cost of a mini
//! grid (spec enumeration, engine selection, per-shard checkpointing,
//! summary rendering) and the checkpoint serialization round trip that
//! runs after every shard of a real campaign.
//!
//! The simulation kernels themselves are covered by `bench_engine`;
//! this bench watches the *harness* around them, which must stay cheap
//! enough to checkpoint at fine shard granularity.

use criterion::{black_box, Criterion};
use popele_lab::sweep::{
    run_campaign, CampaignOptions, Checkpoint, ProtocolSpec, SweepSpec, TrialRecord,
};
use popele_lab::workloads::Family;
use std::time::Duration;

fn mini_spec(out_tag: &str) -> SweepSpec {
    SweepSpec {
        name: format!("bench-{out_tag}"),
        protocols: vec![ProtocolSpec::Token, ProtocolSpec::Majority],
        families: vec![Family::Clique, Family::Cycle],
        sizes: vec![16, 32],
        trials_per_cell: 4,
        shard_trials: 2,
        max_steps: 1 << 22,
        master_seed: 0xBE7C4,
        threads: 1,
        ..SweepSpec::default()
    }
}

fn bench_campaign(c: &mut Criterion) {
    let out_dir = std::env::temp_dir().join("popele-bench-sweep");
    let mut group = c.benchmark_group("sweep/campaign");
    group.sample_size(10);
    group.bench_function("mini_grid_fresh", |b| {
        let spec = mini_spec("fresh");
        b.iter(|| {
            // A fresh campaign every iteration: all 16 shards run.
            std::fs::remove_dir_all(out_dir.join(&spec.name)).ok();
            let outcome = run_campaign(
                &spec,
                &CampaignOptions {
                    out_dir: out_dir.clone(),
                    ..CampaignOptions::default()
                },
            )
            .expect("campaign runs");
            black_box(outcome.ran_shards)
        });
    });
    group.bench_function("mini_grid_resume_noop", |b| {
        // Fully-checkpointed campaign: measures pure resume overhead
        // (checkpoint load + summary regeneration, zero simulation).
        let spec = mini_spec("resume");
        std::fs::remove_dir_all(out_dir.join(&spec.name)).ok();
        run_campaign(
            &spec,
            &CampaignOptions {
                out_dir: out_dir.clone(),
                ..CampaignOptions::default()
            },
        )
        .expect("campaign runs");
        b.iter(|| {
            let outcome = run_campaign(
                &spec,
                &CampaignOptions {
                    out_dir: out_dir.clone(),
                    ..CampaignOptions::default()
                },
            )
            .expect("campaign resumes");
            black_box(outcome.resumed_shards)
        });
    });
    group.finish();
    std::fs::remove_dir_all(&out_dir).ok();
}

fn bench_checkpoint_roundtrip(c: &mut Criterion) {
    // A checkpoint the size of a serious campaign: 500 shards × 8
    // trials. Render + parse happen once per completed shard, so they
    // must stay well under a shard's simulation time.
    let spec = mini_spec("roundtrip");
    let mut ck = Checkpoint::new(&spec);
    for shard in 0..500 {
        let records: Vec<TrialRecord> = (0..8)
            .map(|t| TrialRecord {
                trial: shard * 8 + t,
                steps: Some(1_000_000 + (shard * 8 + t) as u64 * 137),
                leader: Some((t * 13) as u32),
                recovery: None,
                holding: None,
            })
            .collect();
        ck.shards
            .insert(format!("token/cycle/8000/s{shard}"), records);
    }
    let text = ck.render();
    let mut group = c.benchmark_group("sweep/checkpoint");
    group.bench_function("render_500_shards", |b| {
        b.iter(|| black_box(ck.render().len()));
    });
    group.bench_function("parse_500_shards", |b| {
        b.iter(|| black_box(Checkpoint::from_text(&text).expect("parses").shards.len()));
    });
    group.finish();
}

fn main() {
    let mut c = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5))
        .sample_size(20);
    bench_campaign(&mut c);
    bench_checkpoint_roundtrip(&mut c);
}
