//! Fault-injection benchmarks: what the fault layer costs.
//!
//! Three questions, one group each:
//!
//! * `faults/overhead` — does routing a **fault-free** election through
//!   [`popele_engine::faults::run_with_faults`] (empty plan) cost
//!   anything over calling `run_until_stable` directly? It must not:
//!   the session adds two function calls per run.
//! * `faults/resolve` — how expensive is resolving a plan against a
//!   graph (target sampling, connectivity checks, epoch
//!   materialization)? This happens once per trial and must stay far
//!   below the simulation it perturbs.
//! * `faults/election` — end-to-end faulted elections on the compiled
//!   engine (corruption bursts and churn on `clique(1000)`), the
//!   workload `popele-lab sweep --faults` runs per cell.
//!
//! Recorded baselines live in BENCH.md ("Fault-injection overhead").

use criterion::{black_box, Criterion};
use popele_core::TokenProtocol;
use popele_engine::faults::{fault_seed, run_with_faults, FaultKind, FaultPlan};
use popele_engine::{CompiledProtocol, DenseExecutor};
use popele_graph::families;
use std::time::Duration;

const N: u32 = 1000;

/// Faulted elections need a *finite* budget: a corruption burst can
/// permanently kill every token-protocol candidate (the `leader_lost`
/// outcome), and such runs never restabilize — an unbounded budget
/// would spin forever. Clean clique(1000) elections take ~25M steps, so
/// 120M comfortably covers recovery while bounding lost-leader runs.
const MAX_STEPS: u64 = 120_000_000;

/// The sweep layer's corrupt profile, at bench scale.
fn corrupt_plan() -> FaultPlan {
    FaultPlan::periodic(FaultKind::CorruptNodes { count: 50 }, 40_000, 40_000, 3)
}

/// Churn plus rewiring: every topology path in one plan.
fn churn_plan() -> FaultPlan {
    FaultPlan::at(30_000, FaultKind::JoinNode { degree: 2 })
        .and(60_000, FaultKind::LeaveNode)
        .and(90_000, FaultKind::RewireEdge)
        .and(120_000, FaultKind::RemoveEdge)
}

fn bench_overhead(c: &mut Criterion) {
    let g = families::clique(N);
    let p = TokenProtocol::all_candidates();
    let compiled = CompiledProtocol::compile_default(&p, N).unwrap();
    let empty = FaultPlan::empty();
    let mut group = c.benchmark_group("faults/overhead");
    group.bench_function("plain_election", |b| {
        let mut exec = DenseExecutor::new(&g, &compiled, 0);
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            exec.reset(seed);
            black_box(exec.run_until_stable(MAX_STEPS).unwrap().stabilization_step)
        });
    });
    group.bench_function("empty_plan_session", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            let resolved = empty.resolve(&g, fault_seed(seed));
            let mut exec = DenseExecutor::new(&g, &compiled, seed);
            let report = run_with_faults(&mut exec, &resolved, MAX_STEPS);
            black_box(report.result.unwrap().stabilization_step)
        });
    });
    group.finish();
}

fn bench_resolve(c: &mut Criterion) {
    let clique = families::clique(N);
    let cycle = families::cycle(10_000);
    let mut group = c.benchmark_group("faults/resolve");
    group.bench_function("corrupt_clique_1000", |b| {
        let plan = corrupt_plan();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(plan.resolve(&clique, fault_seed(seed)).ops.len())
        });
    });
    group.bench_function("churn_cycle_10000", |b| {
        let plan = churn_plan();
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(plan.resolve(&cycle, fault_seed(seed)).ops.len())
        });
    });
    group.finish();
}

fn bench_faulted_elections(c: &mut Criterion) {
    let g = families::clique(N);
    let p = TokenProtocol::all_candidates();
    let mut group = c.benchmark_group("faults/election");
    for (name, plan) in [
        ("corrupt_clique_1000", corrupt_plan()),
        ("churn_clique_1000", churn_plan()),
    ] {
        let compiled = CompiledProtocol::compile_default(&p, N + plan.max_joins()).unwrap();
        group.bench_function(name, |b| {
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                let resolved = plan.resolve(&g, fault_seed(seed));
                let mut exec = DenseExecutor::new(&g, &compiled, seed);
                let report = run_with_faults(&mut exec, &resolved, MAX_STEPS);
                black_box(report.recovery.reconvergence_steps)
            });
        });
    }
    group.finish();
}

fn main() {
    let mut c = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(5))
        .sample_size(20);
    bench_overhead(&mut c);
    bench_resolve(&mut c);
    bench_faulted_elections(&mut c);
}
