//! Engine benchmark: the generic reference [`Executor`] vs the two
//! dense engines on identical workloads.
//!
//! * **generic vs AOT-dense** ([`DenseExecutor`]): full leader elections
//!   of the 6-state token protocol on `clique(1000)` and `cycle(1000)`,
//!   plus fixed-step throughput on the same graphs and on
//!   `cycle(120000)`, whose node count exceeds the packed decoder's
//!   16-bit range and therefore exercises the CSR edge decoder.
//! * **generic vs lazy-dense** ([`LazyDenseExecutor`]): the workloads
//!   the AOT cap excludes — full elections of the identifier protocol at
//!   realistic `k` on `cycle(1000)`, `star(1000)` and `torus(32×32)`
//!   (star is where no-op memoization pays most: the generic engine
//!   re-runs the oracle on every hub interaction), and fixed-step
//!   throughput of a full-scale fast-protocol instance on
//!   `cycle(120000)` (CSR decoder). These are exactly the cells where
//!   sweep campaigns used to fall back to the generic engine.
//!
//! All engines consume identical seed sequences, so they execute the
//! exact same interaction sequences; the measured ratio is pure engine
//! overhead. Besides the usual criterion output, this bench writes a
//! machine-readable `BENCH_engine.json` baseline at the workspace root
//! (medians, throughputs and speedups) so the perf trajectory of the
//! engine can be tracked across commits.

use criterion::{black_box, take_measurements, BenchmarkId, Criterion, Measurement};
use popele_core::params::{identifier_bits, FastParams};
use popele_core::{FastProtocol, IdentifierProtocol, TokenProtocol};
use popele_engine::{CompiledProtocol, DenseExecutor, Executor, LazyDenseExecutor};
use popele_graph::{families, Graph};
use std::fmt::Write as _;
use std::time::Duration;

const FIXED_STEPS: u64 = 2_000_000;

/// Lazy-tier steps workload name, shared between the bench loop and
/// `json_workloads` so a rename cannot silently drop the row from the
/// JSON baseline (missing measurements are skipped, not errors).
const FAST_STEPS_WORKLOAD: &str = "fast_cycle_120000";
const ELECTION_MAX: u64 = u64::MAX;

fn election_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("clique_1000", families::clique(1000)),
        ("cycle_1000", families::cycle(1000)),
    ]
}

/// The steps group adds a >2¹⁶-node sparse graph: elections there would
/// take minutes, but fixed-step throughput isolates exactly what the
/// CSR decoder changes.
fn steps_graphs() -> Vec<(&'static str, Graph)> {
    let mut graphs = election_graphs();
    graphs.push(("cycle_120000", families::cycle(120_000)));
    graphs
}

/// Lazy-tier election workloads: identifier protocol at the realistic
/// bit count for each graph (state spaces far beyond the AOT cap).
fn lazy_election_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("identifier_cycle_1000", families::cycle(1000)),
        ("identifier_star_1000", families::star(1000)),
        ("identifier_torus_1024", families::torus(32, 32)),
    ]
}

/// Each benchmark *iteration* runs one full cycle of elections over a
/// fixed seed set, so every sample of both engines measures the exact
/// same workload (elections vary a lot in length per seed; folding the
/// whole cycle into one iteration makes the comparison paired rather
/// than batch-aligned by luck). Executors are constructed once and
/// `reset` per election — the engines' intended usage for repeated
/// runs (for the lazy engine the reset keeps the pair cache warm, which
/// is exactly how the Monte-Carlo harness drives it). Cycle elections
/// are ~50× longer than clique ones, so that graph gets a smaller seed
/// set.
fn seed_cycle(name: &str) -> u64 {
    if name.contains("cycle") || name.contains("torus") {
        4
    } else {
        16
    }
}

fn bench_elections(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/election");
    let p = TokenProtocol::all_candidates();
    for (name, g) in election_graphs() {
        let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
        let seeds = seed_cycle(name);
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("token protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
        group.bench_with_input(BenchmarkId::new("dense", name), &g, |b, g| {
            let mut exec = DenseExecutor::new(g, &compiled, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("token protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
    }
    // Lazy tier: identifier elections at realistic k. The AOT engine
    // cannot take these (the tier the sweep grid spends most wall-clock
    // on); the race is generic vs lazy.
    for (name, g) in lazy_election_graphs() {
        let p = IdentifierProtocol::new(identifier_bits(g.num_nodes(), false));
        assert!(
            CompiledProtocol::compile_default(&p, g.num_nodes()).is_err(),
            "identifier workloads must exceed the AOT cap"
        );
        let seeds = seed_cycle(name);
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("identifier protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
        group.bench_with_input(BenchmarkId::new("lazy", name), &g, |b, g| {
            let mut exec = LazyDenseExecutor::new(g, &p, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("identifier protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

fn bench_fixed_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/steps");
    let p = TokenProtocol::all_candidates();
    for (name, g) in steps_graphs() {
        let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("dense", name), &g, |b, g| {
            let mut exec = DenseExecutor::new(g, &compiled, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
    }
    // Lazy tier: a full-scale fast-protocol instance (the practical
    // parameterization sparse families derive at n ≈ 10⁵: h = 17,
    // L = 17 — ≈ 2200 reachable states, past the AOT cap) at CSR-decoder
    // scale. Fixed steps rather than elections: full fast elections at
    // this size take minutes on the generic engine.
    {
        let name = FAST_STEPS_WORKLOAD;
        let g = families::cycle(120_000);
        let p = FastProtocol::new(FastParams::new(17, 17, 4));
        assert!(
            CompiledProtocol::compile_default(&p, g.num_nodes()).is_err(),
            "full-scale fast params must exceed the AOT cap"
        );
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("lazy", name), &g, |b, g| {
            let mut exec = LazyDenseExecutor::new(g, &p, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
    }
    group.finish();
}

fn median_of<'a>(ms: &'a [Measurement], id: &str) -> Option<&'a Measurement> {
    ms.iter().find(|m| m.id == id)
}

/// Every (group, workload, dense-tier engine label) triple the JSON
/// reports; the generic engine is the baseline of each row.
fn json_workloads() -> Vec<(&'static str, String, &'static str)> {
    let mut rows = Vec::new();
    for (name, _) in election_graphs() {
        rows.push(("engine/election", name.to_string(), "dense"));
    }
    for (name, _) in lazy_election_graphs() {
        rows.push(("engine/election", name.to_string(), "lazy"));
    }
    for (name, _) in steps_graphs() {
        rows.push(("engine/steps", name.to_string(), "dense"));
    }
    rows.push(("engine/steps", FAST_STEPS_WORKLOAD.to_string(), "lazy"));
    rows
}

/// Renders the collected measurements as the `BENCH_engine.json`
/// baseline (flat JSON written by hand — the workspace is hermetic and
/// carries no serde). Each workload row names the dense-tier engine it
/// raced against the generic baseline (`dense` = AOT-compiled, `lazy` =
/// lazily-compiling) and keys the median under that engine's name.
fn render_json(ms: &[Measurement]) -> String {
    let mut out = String::from(
        "{\n  \"benchmark\": \"engine: generic executor vs compiled dense engines\",\n",
    );
    let _ = writeln!(out, "  \"workloads\": [");
    let mut first = true;
    for (group, name, engine) in json_workloads() {
        let generic = median_of(ms, &format!("{group}/generic/{name}"));
        let fast_path = median_of(ms, &format!("{group}/{engine}/{name}"));
        let (Some(generic), Some(fast_path)) = (generic, fast_path) else {
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let speedup = generic.median_ns / fast_path.median_ns;
        let _ = write!(
            out,
            "    {{\"workload\": \"{group}/{name}\", \"engine\": \"{engine}\", \
             \"generic_median_ns\": {:.0}, \"{engine}_median_ns\": {:.0}, \"speedup\": {:.2}}}",
            generic.median_ns, fast_path.median_ns, speedup
        );
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let mut c = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8))
        .sample_size(30);
    bench_elections(&mut c);
    bench_fixed_steps(&mut c);

    let ms = take_measurements();
    let json = render_json(&ms);
    print!("{json}");
    // Workspace root: crates/bench/../..
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
