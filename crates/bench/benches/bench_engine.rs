//! Engine benchmark: the generic reference [`Executor`] vs the two
//! dense engines on identical workloads.
//!
//! * **generic vs AOT-dense** ([`DenseExecutor`]): full leader elections
//!   of the 6-state token protocol on `clique(1000)` and `cycle(1000)`,
//!   plus fixed-step throughput on the same graphs and on
//!   `cycle(120000)`, whose node count exceeds the packed decoder's
//!   16-bit range and therefore exercises the CSR edge decoder.
//! * **generic vs lazy-dense** ([`LazyDenseExecutor`]): the workloads
//!   the AOT cap excludes — full elections of the identifier protocol at
//!   realistic `k` on `cycle(1000)`, `star(1000)` and `torus(32×32)`
//!   (star is where no-op memoization pays most: the generic engine
//!   re-runs the oracle on every hub interaction), and fixed-step
//!   throughput of a full-scale fast-protocol instance on
//!   `cycle(120000)` (CSR decoder). These are exactly the cells where
//!   sweep campaigns used to fall back to the generic engine.
//! * **scalar dense vs lane-parallel dense** ([`LaneDenseExecutor`]):
//!   8- and 16-lane packs against a scalar [`DenseExecutor`] over the
//!   same trial seeds — full token elections on `clique(1000)` (fused
//!   branchless path) and fixed-step throughput of a near-cap AOT fast
//!   instance on `cycle(1000)` (packed decoder, non-linear oracle).
//!   Both sides run the identical trial set sequentially vs in
//!   lockstep, so the speedup *is* the aggregate trials/sec ratio the
//!   sweep's `--lanes` flag buys.
//! * **count-based batch engine** ([`CountEngine`]): clique workloads at
//!   populations no per-agent engine can represent — full fast-protocol
//!   elections (clique-tuned parameters) at `n = 10⁷` and `n = 10⁸`,
//!   and fixed-step token-protocol throughput at `n = 10⁹`.
//!   These rows are *standalone* (no generic baseline): a clique at
//!   `n = 10⁷` has ~5·10¹³ edges, so the graph-backed engines cannot
//!   even construct the workload. The JSON reports absolute medians and
//!   interactions/second instead of a speedup.
//! * **campaign scheduler** ([`run_campaign`]): end-to-end sweep
//!   campaigns through the real runner — a 32-shard grid under the
//!   serial scheduler vs a 4-worker pool (identical outputs by the
//!   byte-identity contract, so the ratio is pure scheduling), and the
//!   per-shard checkpoint save at 10³ completed shards: one journal
//!   append (O(shard)) vs the full `checkpoint.json` rewrite
//!   (O(campaign)) it replaces. On a single-core host the worker-pool
//!   ratio measures scheduler overhead, not speedup — the workers
//!   contend for one CPU; the `io_ratio` of the checkpoint row is
//!   hardware-independent.
//!
//! All racing engines consume identical seed sequences, so they execute
//! the exact same interaction sequences; the measured ratio is pure
//! engine overhead. Besides the usual criterion output, this bench
//! writes a machine-readable `BENCH_engine.json` baseline at the
//! workspace root (medians, throughputs and speedups) so the perf
//! trajectory of the engine can be tracked across commits. Every
//! workload in the manifest must produce its row — a rename that drops
//! a measurement aborts the run instead of silently shrinking the
//! baseline.

use criterion::{black_box, take_measurements, BenchmarkId, Criterion, Measurement};
use popele_core::params::{identifier_bits, FastParams};
use popele_core::{FastProtocol, IdentifierProtocol, TokenProtocol};
use popele_engine::{
    compile_for_count, CompiledProtocol, CountEngine, DenseExecutor, Executor, LaneDenseExecutor,
    LazyDenseExecutor, Protocol,
};
use popele_graph::{families, Graph};
use popele_lab::sweep::{
    run_campaign, CampaignOptions, CellMeta, Checkpoint, Journal, JournalEntry, ProtocolSpec,
    SweepSpec, TrialRecord,
};
use popele_lab::workloads::Family;
use std::fmt::Write as _;
use std::time::Duration;

const FIXED_STEPS: u64 = 2_000_000;

/// Lazy-tier steps workload name, shared between the bench loop and
/// `json_workloads` so a rename cannot silently drop the row from the
/// JSON baseline (missing measurements are skipped, not errors).
const FAST_STEPS_WORKLOAD: &str = "fast_cycle_120000";
const ELECTION_MAX: u64 = u64::MAX;

/// Count-tier workload names and populations, shared with
/// `count_workloads` for the same rename protection as
/// [`FAST_STEPS_WORKLOAD`].
const COUNT_ELECTION_WORKLOAD: &str = "fast_clique_1e7";
const COUNT_ELECTION_AGENTS: u64 = 10_000_000;
const COUNT_ELECTION_1E8_WORKLOAD: &str = "fast_clique_1e8";
const COUNT_ELECTION_1E8_AGENTS: u64 = 100_000_000;
const COUNT_STEPS_WORKLOAD: &str = "token_clique_1e9";
const COUNT_STEPS_AGENTS: u64 = 1_000_000_000;
/// Step budget for count-tier elections, in parallel-time units.
/// Clique-tuned fast elections finish in tens of parallel units
/// (occasionally a few hundred when the last two contenders keep
/// tying); the only way to exceed this budget is the `O(n^{-τ})`
/// backup fallback, which at these populations must abort the bench
/// loudly rather than grind through `Θ(n²)` token coalescence.
const COUNT_ELECTION_PARALLEL_BUDGET: u64 = 2_000;
/// Interactions per iteration of the count-tier throughput workload:
/// large enough that epoch setup amortizes away (≈2000 batch epochs at
/// `n = 10⁹`), small enough for sub-second iterations.
const COUNT_FIXED_STEPS: u64 = 100_000_000;

fn election_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("clique_1000", families::clique(1000)),
        ("cycle_1000", families::cycle(1000)),
    ]
}

/// The steps group adds a >2¹⁶-node sparse graph: elections there would
/// take minutes, but fixed-step throughput isolates exactly what the
/// CSR decoder changes.
fn steps_graphs() -> Vec<(&'static str, Graph)> {
    let mut graphs = election_graphs();
    graphs.push(("cycle_120000", families::cycle(120_000)));
    graphs
}

/// Lazy-tier election workloads: identifier protocol at the realistic
/// bit count for each graph (state spaces far beyond the AOT cap).
fn lazy_election_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("identifier_cycle_1000", families::cycle(1000)),
        ("identifier_star_1000", families::star(1000)),
        ("identifier_torus_1024", families::torus(32, 32)),
    ]
}

/// Each benchmark *iteration* runs one full cycle of elections over a
/// fixed seed set, so every sample of both engines measures the exact
/// same workload (elections vary a lot in length per seed; folding the
/// whole cycle into one iteration makes the comparison paired rather
/// than batch-aligned by luck). Executors are constructed once and
/// `reset` per election — the engines' intended usage for repeated
/// runs (for the lazy engine the reset keeps the pair cache warm, which
/// is exactly how the Monte-Carlo harness drives it). Cycle elections
/// are ~50× longer than clique ones, so that graph gets a smaller seed
/// set.
fn seed_cycle(name: &str) -> u64 {
    if name.contains("cycle") || name.contains("torus") {
        4
    } else {
        16
    }
}

fn bench_elections(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/election");
    let p = TokenProtocol::all_candidates();
    for (name, g) in election_graphs() {
        let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
        let seeds = seed_cycle(name);
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("token protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
        group.bench_with_input(BenchmarkId::new("dense", name), &g, |b, g| {
            let mut exec = DenseExecutor::new(g, &compiled, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("token protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
    }
    // Lazy tier: identifier elections at realistic k. The AOT engine
    // cannot take these (the tier the sweep grid spends most wall-clock
    // on); the race is generic vs lazy.
    for (name, g) in lazy_election_graphs() {
        let p = IdentifierProtocol::new(identifier_bits(g.num_nodes(), false));
        assert!(
            CompiledProtocol::compile_default(&p, g.num_nodes()).is_err(),
            "identifier workloads must exceed the AOT cap"
        );
        let seeds = seed_cycle(name);
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("identifier protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
        group.bench_with_input(BenchmarkId::new("lazy", name), &g, |b, g| {
            let mut exec = LazyDenseExecutor::new(g, &p, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("identifier protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

fn bench_fixed_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/steps");
    let p = TokenProtocol::all_candidates();
    for (name, g) in steps_graphs() {
        let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("dense", name), &g, |b, g| {
            let mut exec = DenseExecutor::new(g, &compiled, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
    }
    // Lazy tier: a full-scale fast-protocol instance (the practical
    // parameterization sparse families derive at n ≈ 10⁵: h = 17,
    // L = 17 — ≈ 2200 reachable states, past the AOT cap) at CSR-decoder
    // scale. Fixed steps rather than elections: full fast elections at
    // this size take minutes on the generic engine.
    {
        let name = FAST_STEPS_WORKLOAD;
        let g = families::cycle(120_000);
        let p = FastProtocol::new(FastParams::new(17, 17, 4));
        assert!(
            CompiledProtocol::compile_default(&p, g.num_nodes()).is_err(),
            "full-scale fast params must exceed the AOT cap"
        );
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("lazy", name), &g, |b, g| {
            let mut exec = LazyDenseExecutor::new(g, &p, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
    }
    group.finish();
}

/// Step budget per trial for the lane fixed-step workloads: safely
/// below the fast instance's earliest observed stabilization on
/// `cycle(1000)` (~2M steps), so neither side ever stabilizes early and
/// both apply exactly `trials × LANE_FIXED_STEPS` interactions.
const LANE_FIXED_STEPS: u64 = 1_000_000;

/// Lane-tier workload manifest: `(workload name, lane count)`. Shared
/// with `lanes_workloads` for the same rename protection as
/// [`FAST_STEPS_WORKLOAD`]. Each workload runs
/// `lanes * LANE_TRIAL_FACTOR` trials on both sides — a retiring lane
/// immediately reloads from the trial pool, the shape every sweep cell
/// has — so the measured ratio is the aggregate trials/sec gain at
/// sustained occupancy, with the wind-down tail amortized over the
/// pool rather than dominating a single pack.
const LANE_WORKLOADS: [(&str, usize); 4] = [
    ("token_clique_1000_8", 8),
    ("token_clique_1000_16", 16),
    ("fast_cycle_1000_8", 8),
    ("fast_cycle_1000_16", 16),
];

/// Trials per lane in the lane-tier workloads: enough of a refill pool
/// that retire-and-refill keeps the pack near full occupancy for most
/// of the run (election lengths are ragged; with a pool a lane's early
/// retirement admits the next trial instead of idling the slot).
const LANE_TRIAL_FACTOR: usize = 3;

/// Runs trials `1..=trials` (seeded by trial index, both sides
/// identically) to stabilization on the scalar engine, returning the
/// summed stabilization steps.
fn scalar_elections<P: Protocol>(exec: &mut DenseExecutor<'_, P>, trials: usize) -> u64 {
    let mut total = 0u64;
    for seed in 1..=trials as u64 {
        exec.reset(seed);
        total += exec
            .run_until_stable(ELECTION_MAX)
            .expect("election stabilizes")
            .stabilization_step;
    }
    total
}

/// The same trial set as [`scalar_elections`], one retire-and-refill
/// pack (the [`run_trials_lanes`] loop shape, inlined so the bench
/// controls the seeds).
///
/// [`run_trials_lanes`]: popele_engine::run_trials_lanes
fn lane_elections<P: Protocol>(lanes: &mut LaneDenseExecutor<'_, P>, trials: usize) -> u64 {
    let mut total = 0u64;
    let mut next = 1usize;
    let mut done = 0usize;
    while done < trials {
        while next <= trials && lanes.has_free_lane() {
            lanes.load(next, next as u64);
            next += 1;
        }
        lanes.run_block(ELECTION_MAX);
        while let Some(out) = lanes.take_finished() {
            total += out.stabilization_step.expect("election stabilizes");
            done += 1;
        }
    }
    total
}

/// Fixed-step lane throughput: every trial exhausts the same budget
/// (retiring as a timeout), mirroring the scalar `run_steps` workloads;
/// retired generations refill from the trial pool like the elections.
fn lane_fixed_steps<P: Protocol>(lanes: &mut LaneDenseExecutor<'_, P>, trials: usize) -> usize {
    let mut next = 1usize;
    let mut done = 0usize;
    while done < trials {
        while next <= trials && lanes.has_free_lane() {
            lanes.load(next, next as u64);
            next += 1;
        }
        lanes.run_block(LANE_FIXED_STEPS);
        while lanes.take_finished().is_some() {
            done += 1;
        }
    }
    done
}

/// Lane-tier races: scalar dense vs the lane engine over identical
/// trial seeds. Token elections on the clique take the fused branchless
/// path; the fast instance (`h = 8`, `L = 17` — 1016 states, just under
/// the AOT cap) on the cycle takes the packed-decoder path with the
/// non-linear fast oracle, fixed-step so election heavy-tails don't
/// swamp the throughput comparison.
fn bench_lanes(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/lanes");
    let token = TokenProtocol::all_candidates();
    let token_graph = families::clique(1000);
    let token_compiled = CompiledProtocol::compile_default(&token, 1000).unwrap();
    let fast = FastProtocol::new(FastParams::new(8, 17, 4));
    let fast_graph = families::cycle(1000);
    let fast_compiled = CompiledProtocol::compile_default(&fast, 1000)
        .expect("h=8, L=17 fast params must fit the AOT cap");
    for (name, num_lanes) in LANE_WORKLOADS {
        let trials = num_lanes * LANE_TRIAL_FACTOR;
        if name.starts_with("token_clique") {
            group.bench_with_input(BenchmarkId::new("dense", name), &token_graph, |b, g| {
                let mut exec = DenseExecutor::new(g, &token_compiled, 0);
                b.iter(|| black_box(scalar_elections(&mut exec, trials)));
            });
            group.bench_with_input(BenchmarkId::new("lanes", name), &token_graph, |b, g| {
                let mut lanes = LaneDenseExecutor::new(g, &token_compiled, num_lanes);
                b.iter(|| black_box(lane_elections(&mut lanes, trials)));
            });
        } else {
            group.bench_with_input(BenchmarkId::new("dense", name), &fast_graph, |b, g| {
                let mut exec = DenseExecutor::new(g, &fast_compiled, 0);
                b.iter(|| {
                    for seed in 1..=trials as u64 {
                        exec.reset(seed);
                        exec.run_steps(LANE_FIXED_STEPS);
                    }
                    black_box(exec.leader_count())
                });
            });
            group.bench_with_input(BenchmarkId::new("lanes", name), &fast_graph, |b, g| {
                let mut lanes = LaneDenseExecutor::new(g, &fast_compiled, num_lanes);
                b.iter(|| black_box(lane_fixed_steps(&mut lanes, trials)));
            });
        }
    }
    group.finish();
}

/// Count-tier workloads: clique populations past every per-agent
/// engine's reach. Elections run the fast protocol at its
/// clique-tuned parameterization ([`FastParams::clique_tuned`] — the
/// waiting phase is dead weight when every degree equals `n − 1`):
/// full elections at `n = 10⁷` and `n = 10⁸` exercise the whole
/// epoch/replay machinery down to the exact first-stable step.
/// Fixed-step throughput of the 6-state token protocol at `n = 10⁹`
/// isolates the batch samplers. Election seeds rotate across
/// iterations, so the reported median is a median *over seeds* of the
/// full election time — election lengths are heavy-tailed (a duel
/// between the last two contenders restarts on every tie), and a
/// single-seed median would hide that.
fn bench_count(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/count");
    group.sample_size(10);
    for (name, agents) in [
        (COUNT_ELECTION_WORKLOAD, COUNT_ELECTION_AGENTS),
        (COUNT_ELECTION_1E8_WORKLOAD, COUNT_ELECTION_1E8_AGENTS),
    ] {
        let p = FastProtocol::new(FastParams::clique_tuned(
            u32::try_from(agents).expect("count populations are 32-bit"),
        ));
        let compiled = compile_for_count(&p, agents).unwrap();
        group.bench_with_input(BenchmarkId::new("count", name), &agents, |b, &n| {
            let mut eng = CountEngine::new(&compiled, n, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 8) + 1;
                eng.reset(seed);
                let out = eng
                    .run_until_stable(n.saturating_mul(COUNT_ELECTION_PARALLEL_BUDGET))
                    .expect("clique-tuned fast election hit the backup fallback");
                black_box(out.stabilization_step)
            });
        });
    }
    {
        let p = TokenProtocol::all_candidates();
        let compiled = compile_for_count(&p, COUNT_STEPS_AGENTS).unwrap();
        group.bench_with_input(
            BenchmarkId::new("count", COUNT_STEPS_WORKLOAD),
            &COUNT_STEPS_AGENTS,
            |b, &n| {
                let mut eng = CountEngine::new(&compiled, n, 0);
                let mut seed = 0u64;
                b.iter(|| {
                    seed = (seed % 16) + 1;
                    eng.reset(seed);
                    eng.run_steps(COUNT_FIXED_STEPS);
                    black_box(eng.leader_count())
                });
            },
        );
    }
    group.finish();
}

/// Campaign-tier workload names, shared with `render_json` for the same
/// rename protection as [`FAST_STEPS_WORKLOAD`].
const CAMPAIGN_GRID_WORKLOAD: &str = "grid_32shards";
const CAMPAIGN_CHECKPOINT_WORKLOAD: &str = "checkpoint_1000";
/// Worker-pool size raced against the serial scheduler.
const CAMPAIGN_WORKERS: usize = 4;
/// Completed shards in the synthetic checkpoint whose save cost the
/// checkpoint workload measures — deep enough that the O(campaign)
/// rewrite dwarfs an O(shard) append, shallow enough for sub-second
/// iterations.
const CAMPAIGN_CHECKPOINT_SHARDS: usize = 1_000;
/// Journal appends per iteration of the journal side: amortizes the
/// per-iteration journal reset (a header rewrite) across a batch, so
/// the per-append median reported in the JSON is the steady-state
/// append cost, not the reset.
const CAMPAIGN_JOURNAL_BATCH: usize = 100;

/// The grid the scheduler race runs: 8 cells × 4 single-trial shards —
/// small enough for sub-second iterations, sharded enough that the
/// worker pool has real stealing to do and the artifact cache sees
/// repeated hits per cell.
fn campaign_spec() -> SweepSpec {
    SweepSpec {
        name: "bench".into(),
        protocols: vec![ProtocolSpec::Token, ProtocolSpec::Majority],
        families: vec![Family::Clique, Family::Star],
        sizes: vec![64, 128],
        trials_per_cell: 4,
        shard_trials: 1,
        max_steps: 1 << 22,
        master_seed: 0xBE7C4,
        threads: 1,
        max_edges: 1 << 20,
        ..SweepSpec::default()
    }
}

/// A synthetic completed-shard record: the fields are arbitrary but
/// realistic (a stabilized trial), so rendered line lengths match real
/// checkpoints.
fn synth_record(trial: usize) -> TrialRecord {
    TrialRecord {
        trial,
        steps: Some(123_456 + trial as u64),
        leader: Some(7),
        recovery: None,
        holding: None,
    }
}

/// A checkpoint holding `shards` completed shards (2 trials each), the
/// save-cost baseline the journal replaces.
fn synth_checkpoint(spec: &SweepSpec, shards: usize) -> Checkpoint {
    let mut ckpt = Checkpoint::new(spec);
    for s in 0..shards {
        let cell = format!("token/clique/{}", 1000 + s / 4);
        ckpt.cells
            .entry(cell.clone())
            .or_insert(CellMeta { n: 64, m: 2016 });
        ckpt.shards.insert(
            format!("{cell}/s{}", s % 4),
            vec![synth_record(2 * (s % 4)), synth_record(2 * (s % 4) + 1)],
        );
    }
    ckpt
}

/// Campaign-tier races. The grid workload runs the whole pipeline —
/// graph builds, engine selection, trials, journal, compaction — with
/// the scheduler as the only variable. The checkpoint workload isolates
/// the per-shard save: appending one completed shard to the journal vs
/// rewriting a `checkpoint.json` that already holds
/// [`CAMPAIGN_CHECKPOINT_SHARDS`] shards, which is what *every* shard
/// completion used to cost.
fn bench_campaign(c: &mut Criterion) {
    let mut group = c.benchmark_group("sweep/campaign");
    group.sample_size(10);
    let spec = campaign_spec();
    let out_dir = std::env::temp_dir().join("popele-bench-campaign");
    for (label, workers) in [("serial", 1), ("workers4", CAMPAIGN_WORKERS)] {
        group.bench_with_input(
            BenchmarkId::new(label, CAMPAIGN_GRID_WORKLOAD),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    std::fs::remove_dir_all(&out_dir).ok();
                    let outcome = run_campaign(
                        &spec,
                        &CampaignOptions {
                            out_dir: out_dir.clone(),
                            workers,
                            ..CampaignOptions::default()
                        },
                    )
                    .expect("bench campaign runs");
                    assert!(outcome.completed);
                    black_box(outcome.ran_shards)
                });
            },
        );
    }
    std::fs::remove_dir_all(&out_dir).ok();

    let dir = std::env::temp_dir().join("popele-bench-checkpoint");
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let ckpt = synth_checkpoint(&campaign_spec(), CAMPAIGN_CHECKPOINT_SHARDS);
    let entry = JournalEntry {
        shard_key: "token/clique/2000/s0".into(),
        cell_key: "token/clique/2000".into(),
        meta: CellMeta { n: 64, m: 2016 },
        records: vec![synth_record(0), synth_record(1)],
    };
    group.bench_with_input(
        BenchmarkId::new("rewrite", CAMPAIGN_CHECKPOINT_WORKLOAD),
        &ckpt,
        |b, ckpt| {
            let path = dir.join("checkpoint.json");
            b.iter(|| ckpt.save(&path).expect("checkpoint save"));
        },
    );
    group.bench_with_input(
        BenchmarkId::new("journal", CAMPAIGN_CHECKPOINT_WORKLOAD),
        &entry,
        |b, entry| {
            let (mut journal, _) =
                Journal::open(&dir.join("checkpoint.log"), &ckpt.fingerprint).unwrap();
            b.iter(|| {
                journal.clear(&ckpt.fingerprint).expect("journal reset");
                for _ in 0..CAMPAIGN_JOURNAL_BATCH {
                    journal.append(entry).expect("journal append");
                }
                black_box(journal.len())
            });
        },
    );
    std::fs::remove_dir_all(&dir).ok();
    group.finish();
}

fn median_of<'a>(ms: &'a [Measurement], id: &str) -> Option<&'a Measurement> {
    ms.iter().find(|m| m.id == id)
}

/// Every (group, workload, dense-tier engine label) triple the JSON
/// reports; the generic engine is the baseline of each row.
fn json_workloads() -> Vec<(&'static str, String, &'static str)> {
    let mut rows = Vec::new();
    for (name, _) in election_graphs() {
        rows.push(("engine/election", name.to_string(), "dense"));
    }
    for (name, _) in lazy_election_graphs() {
        rows.push(("engine/election", name.to_string(), "lazy"));
    }
    for (name, _) in steps_graphs() {
        rows.push(("engine/steps", name.to_string(), "dense"));
    }
    rows.push(("engine/steps", FAST_STEPS_WORKLOAD.to_string(), "lazy"));
    rows
}

/// Lane-tier rows, straight from the bench manifest: `(workload name,
/// lane count)`. The scalar dense engine is the baseline of each row
/// (racing against the *generic* engine would double-count the
/// dense-vs-generic gain already reported above).
fn lanes_workloads() -> Vec<(&'static str, usize)> {
    LANE_WORKLOADS.to_vec()
}

/// Count-tier rows: `(workload name, population, interactions per
/// iteration)` — `None` for full elections, whose step count is
/// workload-determined rather than fixed.
fn count_workloads() -> Vec<(&'static str, u64, Option<u64>)> {
    vec![
        (COUNT_ELECTION_WORKLOAD, COUNT_ELECTION_AGENTS, None),
        (COUNT_ELECTION_1E8_WORKLOAD, COUNT_ELECTION_1E8_AGENTS, None),
        (
            COUNT_STEPS_WORKLOAD,
            COUNT_STEPS_AGENTS,
            Some(COUNT_FIXED_STEPS),
        ),
    ]
}

/// Renders the collected measurements as the `BENCH_engine.json`
/// baseline (flat JSON written by hand — the workspace is hermetic and
/// carries no serde). Each racing row names the dense-tier engine it
/// raced against the generic baseline (`dense` = AOT-compiled, `lazy` =
/// lazily-compiling) and keys the median under that engine's name;
/// count-tier rows are standalone (absolute median plus, for fixed-step
/// workloads, interactions/second). Any manifest row whose measurement
/// is missing is collected into the error list — the caller aborts on
/// it, so a workload rename cannot silently drop a row from the
/// baseline.
fn render_json(ms: &[Measurement]) -> (String, Vec<String>) {
    let mut missing = Vec::new();
    let mut out = String::from(
        "{\n  \"benchmark\": \"engine: generic executor vs compiled dense engines\",\n",
    );
    let _ = writeln!(out, "  \"workloads\": [");
    let mut first = true;
    for (group, name, engine) in json_workloads() {
        let generic = median_of(ms, &format!("{group}/generic/{name}"));
        let fast_path = median_of(ms, &format!("{group}/{engine}/{name}"));
        let (Some(generic), Some(fast_path)) = (generic, fast_path) else {
            missing.push(format!("{group}/{name} ({engine})"));
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let speedup = generic.median_ns / fast_path.median_ns;
        let _ = write!(
            out,
            "    {{\"workload\": \"{group}/{name}\", \"engine\": \"{engine}\", \
             \"generic_median_ns\": {:.0}, \"{engine}_median_ns\": {:.0}, \"speedup\": {:.2}}}",
            generic.median_ns, fast_path.median_ns, speedup
        );
    }
    for (name, num_lanes) in lanes_workloads() {
        let dense = median_of(ms, &format!("engine/lanes/dense/{name}"));
        let lanes = median_of(ms, &format!("engine/lanes/lanes/{name}"));
        let (Some(dense), Some(lanes)) = (dense, lanes) else {
            missing.push(format!("engine/lanes/{name} (lanes)"));
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        // Both sides run the identical trial set per iteration, so the
        // median ratio is the aggregate trials/sec speedup.
        let speedup = dense.median_ns / lanes.median_ns;
        let _ = write!(
            out,
            "    {{\"workload\": \"engine/lanes/{name}\", \"engine\": \"lanes\", \
             \"num_lanes\": {num_lanes}, \"dense_median_ns\": {:.0}, \
             \"lanes_median_ns\": {:.0}, \"speedup\": {:.2}}}",
            dense.median_ns, lanes.median_ns, speedup
        );
    }
    for (name, agents, fixed_steps) in count_workloads() {
        let Some(m) = median_of(ms, &format!("engine/count/count/{name}")) else {
            missing.push(format!("engine/count/{name} (count)"));
            continue;
        };
        if !first {
            out.push_str(",\n");
        }
        first = false;
        let _ = write!(
            out,
            "    {{\"workload\": \"engine/count/{name}\", \"engine\": \"count\", \
             \"num_agents\": {agents}, \"count_median_ns\": {:.0}",
            m.median_ns
        );
        if let Some(steps) = fixed_steps {
            let per_sec = steps as f64 / (m.median_ns / 1e9);
            let _ = write!(out, ", \"steps_per_sec\": {per_sec:.0}");
        }
        out.push('}');
    }
    // Campaign tier: the scheduler race reports the serial/pool ratio
    // (≈1.0 on a single-core host — see the module doc); the checkpoint
    // row reports the per-append journal cost (batch median divided by
    // the batch size) and the I/O ratio a journaled save buys over the
    // full rewrite.
    {
        let serial = median_of(
            ms,
            &format!("sweep/campaign/serial/{CAMPAIGN_GRID_WORKLOAD}"),
        );
        let pooled = median_of(
            ms,
            &format!("sweep/campaign/workers4/{CAMPAIGN_GRID_WORKLOAD}"),
        );
        if let (Some(serial), Some(pooled)) = (serial, pooled) {
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let speedup = serial.median_ns / pooled.median_ns;
            let _ = write!(
                out,
                "    {{\"workload\": \"sweep/campaign/{CAMPAIGN_GRID_WORKLOAD}\", \
                 \"engine\": \"workers\", \"num_workers\": {CAMPAIGN_WORKERS}, \
                 \"serial_median_ns\": {:.0}, \"workers_median_ns\": {:.0}, \
                 \"speedup\": {:.2}}}",
                serial.median_ns, pooled.median_ns, speedup
            );
        } else {
            missing.push(format!("sweep/campaign/{CAMPAIGN_GRID_WORKLOAD} (workers)"));
        }
        let rewrite = median_of(
            ms,
            &format!("sweep/campaign/rewrite/{CAMPAIGN_CHECKPOINT_WORKLOAD}"),
        );
        let journal = median_of(
            ms,
            &format!("sweep/campaign/journal/{CAMPAIGN_CHECKPOINT_WORKLOAD}"),
        );
        if let (Some(rewrite), Some(journal)) = (rewrite, journal) {
            if !first {
                out.push_str(",\n");
            }
            let append_ns = journal.median_ns / CAMPAIGN_JOURNAL_BATCH as f64;
            let _ = write!(
                out,
                "    {{\"workload\": \"sweep/campaign/{CAMPAIGN_CHECKPOINT_WORKLOAD}\", \
                 \"engine\": \"journal\", \"num_shards\": {CAMPAIGN_CHECKPOINT_SHARDS}, \
                 \"rewrite_median_ns\": {:.0}, \"journal_append_median_ns\": {append_ns:.0}, \
                 \"io_ratio\": {:.1}}}",
                rewrite.median_ns,
                rewrite.median_ns / append_ns
            );
        } else {
            missing.push(format!(
                "sweep/campaign/{CAMPAIGN_CHECKPOINT_WORKLOAD} (journal)"
            ));
        }
    }
    out.push_str("\n  ]\n}\n");
    (out, missing)
}

fn main() {
    let mut c = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8))
        .sample_size(30);
    bench_elections(&mut c);
    bench_fixed_steps(&mut c);
    bench_lanes(&mut c);
    bench_count(&mut c);
    bench_campaign(&mut c);

    let ms = take_measurements();
    let (json, missing) = render_json(&ms);
    assert!(
        missing.is_empty(),
        "workload manifest rows without measurements (renamed bench?): {missing:?}"
    );
    print!("{json}");
    // Workspace root: crates/bench/../..
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
