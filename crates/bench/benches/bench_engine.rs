//! Two-engine benchmark: the generic reference [`Executor`] vs the
//! compiled dense-state [`DenseExecutor`] on identical workloads —
//! full leader elections of the 6-state token protocol on `clique(1000)`
//! and `cycle(1000)`, plus fixed-step throughput on the same graphs and
//! on `cycle(120000)`, whose node count exceeds the packed decoder's
//! 16-bit range and therefore exercises the CSR edge decoder.
//!
//! Both engines consume identical seed sequences, so they execute the
//! exact same interaction sequences; the measured ratio is pure engine
//! overhead. Besides the usual criterion output, this bench writes a
//! machine-readable `BENCH_engine.json` baseline at the workspace root
//! (medians, throughputs and speedups) so the perf trajectory of the
//! engine can be tracked across commits.

use criterion::{black_box, take_measurements, BenchmarkId, Criterion, Measurement};
use popele_core::TokenProtocol;
use popele_engine::{CompiledProtocol, DenseExecutor, Executor};
use popele_graph::{families, Graph};
use std::fmt::Write as _;
use std::time::Duration;

const FIXED_STEPS: u64 = 2_000_000;
const ELECTION_MAX: u64 = u64::MAX;

fn election_graphs() -> Vec<(&'static str, Graph)> {
    vec![
        ("clique_1000", families::clique(1000)),
        ("cycle_1000", families::cycle(1000)),
    ]
}

/// The steps group adds a >2¹⁶-node sparse graph: elections there would
/// take minutes, but fixed-step throughput isolates exactly what the
/// CSR decoder changes.
fn steps_graphs() -> Vec<(&'static str, Graph)> {
    let mut graphs = election_graphs();
    graphs.push(("cycle_120000", families::cycle(120_000)));
    graphs
}

/// Each benchmark *iteration* runs one full cycle of elections over a
/// fixed seed set, so every sample of both engines measures the exact
/// same workload (elections vary a lot in length per seed; folding the
/// whole cycle into one iteration makes the comparison paired rather
/// than batch-aligned by luck). Executors are constructed once and
/// `reset` per election — the engines' intended usage for repeated
/// runs. Cycle elections are ~50× longer than clique ones, so that
/// graph gets a smaller seed set.
fn seed_cycle(name: &str) -> u64 {
    if name.starts_with("cycle") {
        4
    } else {
        16
    }
}

fn bench_elections(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/election");
    let p = TokenProtocol::all_candidates();
    for (name, g) in election_graphs() {
        let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
        let seeds = seed_cycle(name);
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("token protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
        group.bench_with_input(BenchmarkId::new("dense", name), &g, |b, g| {
            let mut exec = DenseExecutor::new(g, &compiled, 0);
            b.iter(|| {
                let mut total = 0u64;
                for seed in 1..=seeds {
                    exec.reset(seed);
                    total += exec
                        .run_until_stable(ELECTION_MAX)
                        .expect("token protocol stabilizes")
                        .stabilization_step;
                }
                black_box(total)
            });
        });
    }
    group.finish();
}

fn bench_fixed_steps(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine/steps");
    let p = TokenProtocol::all_candidates();
    for (name, g) in steps_graphs() {
        let compiled = CompiledProtocol::compile_default(&p, g.num_nodes()).unwrap();
        group.bench_with_input(BenchmarkId::new("generic", name), &g, |b, g| {
            let mut exec = Executor::new(g, &p, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
        group.bench_with_input(BenchmarkId::new("dense", name), &g, |b, g| {
            let mut exec = DenseExecutor::new(g, &compiled, 0);
            let mut seed = 0u64;
            b.iter(|| {
                seed = (seed % 16) + 1;
                exec.reset(seed);
                exec.run_steps(FIXED_STEPS);
                black_box(exec.leader_count())
            });
        });
    }
    group.finish();
}

fn median_of<'a>(ms: &'a [Measurement], id: &str) -> Option<&'a Measurement> {
    ms.iter().find(|m| m.id == id)
}

/// Renders the collected measurements as the `BENCH_engine.json`
/// baseline (flat JSON written by hand — the workspace is hermetic and
/// carries no serde).
fn render_json(ms: &[Measurement]) -> String {
    let mut out =
        String::from("{\n  \"benchmark\": \"engine: generic executor vs compiled dense core\",\n");
    let _ = writeln!(out, "  \"workloads\": [");
    let mut first = true;
    for (group, graphs) in [
        ("engine/election", election_graphs()),
        ("engine/steps", steps_graphs()),
    ] {
        for (name, _) in graphs {
            let generic = median_of(ms, &format!("{group}/generic/{name}"));
            let dense = median_of(ms, &format!("{group}/dense/{name}"));
            let (Some(generic), Some(dense)) = (generic, dense) else {
                continue;
            };
            if !first {
                out.push_str(",\n");
            }
            first = false;
            let speedup = generic.median_ns / dense.median_ns;
            let _ = write!(
                out,
                "    {{\"workload\": \"{group}/{name}\", \"generic_median_ns\": {:.0}, \"dense_median_ns\": {:.0}, \"speedup\": {:.2}}}",
                generic.median_ns, dense.median_ns, speedup
            );
        }
    }
    out.push_str("\n  ]\n}\n");
    out
}

fn main() {
    let mut c = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(8))
        .sample_size(30);
    bench_elections(&mut c);
    bench_fixed_steps(&mut c);

    let ms = take_measurements();
    let json = render_json(&ms);
    print!("{json}");
    // Workspace root: crates/bench/../..
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_engine.json");
    match std::fs::write(path, &json) {
        Ok(()) => println!("baseline written to {path}"),
        Err(e) => eprintln!("could not write {path}: {e}"),
    }
}
