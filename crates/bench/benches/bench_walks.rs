//! Lemma 17–19 / Proposition 20 harness: hitting-time computations
//! (exact linear solves and simulations), the timing complement of
//! `popele-lab walks`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popele_bench::bench_graph;
use popele_dynamics::walks::{
    classic_hitting_times, classic_worst_hitting, simulate_meeting_time,
    simulate_population_hitting,
};
use std::hint::black_box;
use std::time::Duration;

fn bench_exact_hitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("walks/exact-hitting");
    for family in ["clique", "cycle", "gnp"] {
        let g = bench_graph(family, 32);
        group.bench_with_input(BenchmarkId::new("single-target", family), &g, |b, g| {
            b.iter(|| black_box(classic_hitting_times(g, 0)));
        });
    }
    let g = bench_graph("cycle", 32);
    group.bench_function("worst-case-cycle32", |b| {
        b.iter(|| black_box(classic_worst_hitting(&g)));
    });
    group.finish();
}

fn bench_simulated_walks(c: &mut Criterion) {
    let mut group = c.benchmark_group("walks/simulated");
    let g = bench_graph("cycle", 32);
    group.bench_function("population-hitting", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(simulate_population_hitting(&g, 0, 16, seed))
        });
    });
    group.bench_function("meeting-time", |b| {
        let mut seed = 0u64;
        b.iter(|| {
            seed += 1;
            black_box(simulate_meeting_time(&g, 0, 16, seed))
        });
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_exact_hitting, bench_simulated_walks
}
criterion_main!(benches);
