//! Lemmas 26–29 harness: streak-clock sampling throughput, the timing
//! complement of `popele-lab clocks`.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use popele_core::clock::sample_interactions_per_tick;
use popele_math::rng::small_rng;
use std::hint::black_box;
use std::time::Duration;

fn bench_tick_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("clocks/tick");
    for h in [2u8, 6, 10] {
        group.bench_with_input(BenchmarkId::from_parameter(h), &h, |b, &h| {
            let mut rng = small_rng(3);
            b.iter(|| black_box(sample_interactions_per_tick(h, &mut rng)));
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .warm_up_time(Duration::from_secs(1))
        .measurement_time(Duration::from_secs(2))
        .sample_size(30);
    targets = bench_tick_sampling
}
criterion_main!(benches);
